//! The load balancer without the constraint solver: UTS on the same
//! runtime — the paper's point that dynamic load balancing is orthogonal
//! to the problem being solved.
//!
//! ```text
//! cargo run --release --example uts_loadbalance
//! ```

use macs::prelude::*;

fn main() {
    // A deliberately unbalanced binomial tree: most nodes are leaves, a
    // few spawn deep subtrees — worst case for static partitioning.
    let shape = TreeShape::medium_bin(3);
    let seed = 3;

    let reference = uts_sequential(shape, seed);
    println!(
        "tree: {} nodes, {} leaves, depth {}",
        reference.nodes, reference.leaves, reference.max_depth
    );

    for (label, cfg) in [
        ("1 worker          ", RuntimeConfig::single_node(1)),
        ("4 workers, 1 node ", RuntimeConfig::single_node(4)),
        ("4 workers, 2 nodes", RuntimeConfig::clustered(4, 2)),
    ] {
        let t0 = std::time::Instant::now();
        let (stats, report) = uts_parallel(shape, seed, &cfg);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(stats, reference, "every node visited exactly once");
        let (ls, lf, rs, rf) = report.steal_totals();
        println!("{label}: {dt:>7.3}s  steals local {ls} (failed {lf})  remote {rs} (failed {rf})");
    }

    // Victim-selection ablation on a shared-memory node.
    println!("\nvictim selection (4 workers, same tree):");
    for (label, sel) in [
        ("greedy   ", VictimSelect::Greedy),
        ("max-steal", VictimSelect::MaxSteal),
    ] {
        let mut cfg = RuntimeConfig::single_node(4);
        cfg.victim_select = sel;
        let (stats, report) = uts_parallel(shape, seed, &cfg);
        assert_eq!(stats.checksum, reference.checksum);
        let (ls, lf, _, _) = report.steal_totals();
        println!("  {label}: {ls} local steals, {lf} failed");
    }
}
