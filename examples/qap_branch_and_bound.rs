//! Branch-and-bound optimisation: the Quadratic Assignment Problem.
//!
//! Solves an embedded hypercube (esc16-family) instance; pass a QAPLIB
//! file path to solve a real instance instead.
//!
//! ```text
//! cargo run --release --example qap_branch_and_bound [qaplib-file]
//! ```

use macs::prelude::*;

fn main() {
    let inst = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path).expect("readable QAPLIB file");
            QapInstance::parse(&path, &text).expect("valid QAPLIB format")
        }
        None => QapInstance::cube8_like(3),
    };
    println!(
        "instance {} : n = {}, store = {} bytes",
        inst.name,
        inst.n,
        qap_model(&inst).store_bytes()
    );

    let prob = qap_model(&inst);

    // Sequential baseline.
    let t0 = std::time::Instant::now();
    let seq = solve_seq(&prob, &SeqOptions::default());
    println!(
        "sequential : optimum {:?} in {:.3}s ({} nodes)",
        seq.best_cost,
        t0.elapsed().as_secs_f64(),
        seq.nodes
    );

    // Parallel branch & bound under each bound-dissemination policy — the
    // knob the paper identifies as the COP scalability limiter.
    for (label, policy) in [
        ("immediate bounds   ", BoundPolicy::Immediate),
        ("periodic bounds    ", BoundPolicy::Periodic { every: 256 }),
        ("hierarchical bounds", BoundPolicy::Hierarchical),
    ] {
        let mut cfg = SolverConfig::clustered(4, 2);
        cfg.runtime.bound_policy = policy;
        let t0 = std::time::Instant::now();
        let out = Solver::new(cfg).solve(&prob);
        assert_eq!(out.best_cost, seq.best_cost, "optimum must not change");
        println!(
            "4 workers, {label}: optimum {:?} in {:.3}s ({} nodes, {} improving solutions)",
            out.best_cost,
            t0.elapsed().as_secs_f64(),
            out.nodes,
            out.solutions
        );
    }

    // Verify the winning permutation explicitly.
    let p = seq.best_assignment.expect("feasible");
    println!("assignment (facility → location): {:?}", &p[..inst.n]);
    assert_eq!(inst.cost(&p[..inst.n]), seq.best_cost.unwrap());
}
