//! Quickstart: model a problem, solve it in parallel, inspect the run.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use macs::prelude::*;

fn main() {
    // ---- 1. model a problem declaratively ---------------------------------
    // A small scheduling puzzle: four tasks with distinct start slots in
    // 0..=7, task 1 exactly 2 after task 0, task 3 at least 3 after task 2,
    // and the makespan (a fifth variable) minimised.
    let mut m = Model::new("mini-schedule");
    let t: Vec<_> = (0..4).map(|_| m.new_var(0, 7)).collect();
    let makespan = m.new_var(0, 10);
    m.post(Propag::AllDiffVal { vars: t.clone() });
    m.post(Propag::EqOffset {
        x: t[1],
        y: t[0],
        c: 2,
    }); // t1 = t0 + 2
    m.post(Propag::LeOffset {
        x: t[2],
        y: t[3],
        c: -3,
    }); // t2 ≤ t3 − 3
    for &ti in &t {
        m.post(Propag::LeOffset {
            x: ti,
            y: makespan,
            c: 0,
        }); // ti ≤ makespan
    }
    m.minimize_var(makespan);
    let prob = m.compile();

    // ---- 2. solve it on the parallel MaCS runtime -------------------------
    // Two nodes of two workers each: work stealing happens over shared
    // memory inside a node and over the (simulated) interconnect across.
    let cfg = SolverConfig::clustered(4, 2);
    let out = Solver::new(cfg).solve(&prob);

    println!("problem         : {}", prob.name);
    println!("store size      : {} bytes", prob.store_bytes());
    println!("optimal makespan: {:?}", out.best_cost);
    println!("assignment      : {:?}", out.best_assignment);
    println!("stores processed: {}", out.nodes);
    let (ls, lf, rs, rf) = out.report.steal_totals();
    println!("steals          : {ls} local ({lf} failed), {rs} remote ({rf} failed)");

    // ---- 3. the classic: count all 8-queens solutions ----------------------
    let queens = queens(8, QueensModel::Pairwise);
    let out = Solver::new(SolverConfig::with_workers(2)).solve(&queens);
    println!("\n8-queens solutions: {} (expected 92)", out.solutions);
    assert_eq!(out.solutions, 92);
}
