//! The paper's headline experiment in miniature: N-Queens scalability.
//!
//! Runs queens-N on the real threaded runtime for small worker counts,
//! then on the discrete-event simulator up to 64 virtual cores (the full
//! 512-core series lives in the `macs-bench` harness binaries).
//!
//! ```text
//! cargo run --release --example nqueens_scaling [N]
//! ```

use macs::prelude::*;
use macs_core::{CpProcessor, SearchMode};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let prob = queens(n, QueensModel::Pairwise);
    println!("== queens-{n}: {} bytes/store ==\n", prob.store_bytes());

    // ---- real threads -------------------------------------------------------
    println!("threaded runtime (real cores of this host):");
    let seq = solve_seq(&prob, &SeqOptions::default());
    println!(
        "  sequential: {} solutions, {} nodes",
        seq.solutions, seq.nodes
    );
    let mut t1 = None;
    for workers in [1usize, 2, 4] {
        let cfg = SolverConfig::with_workers(workers);
        let t0 = std::time::Instant::now();
        let out = Solver::new(cfg).solve(&prob);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(out.solutions, seq.solutions);
        let t1v = *t1.get_or_insert(dt);
        println!(
            "  {workers:>2} workers: {:>8.3}s  speed-up {:>5.2}  ({:.2} Mnodes/s)",
            dt,
            t1v / dt,
            out.nodes as f64 / dt / 1e6
        );
    }

    // ---- virtual cores (discrete-event simulation) -------------------------
    println!("\nsimulated cluster (4 cores/node, InfiniBand-class fabric):");
    let root = prob.root.as_words().to_vec();
    let mut base = None;
    for cores in [1usize, 4, 8, 16, 32, 64] {
        let topo = if cores >= 4 {
            Topology::clustered(cores, 4)
        } else {
            Topology::single_node(cores)
        };
        let mut cfg = SimConfig::new(topo);
        cfg.costs = CostModel::paper_queens();
        let report = simulate_macs(
            &cfg,
            prob.layout.store_words(),
            std::slice::from_ref(&root),
            |_| CpProcessor::new(&prob, 0, SearchMode::Exhaustive),
        );
        let secs = report.makespan_ns as f64 / 1e9;
        let b = *base.get_or_insert(secs);
        let (ls, lf, rs, rf) = report.steal_totals();
        println!(
            "  {cores:>3} vcores: {secs:>8.3}s  speed-up {:>6.2}  eff {:>5.1}%  steals {ls}/{rs} (failed {lf}/{rf})",
            b / secs,
            100.0 * b / secs / cores as f64,
        );
    }
}
