//! Scale regression tests at 64k virtual cores: the conservation and
//! accounting invariants that caught bugs at 8–512 cores must survive
//! three orders of magnitude more workers — lost work
//! (`roots + pushes == completed + abandoned`), the steal-distance
//! histogram's bucket sum, drain-steal exclusion, and the fabric's
//! message books. These run release-fast because the event core is
//! O(log n) per event and the rings are O(1) views; a materialised-ring
//! simulator would need ~32 GB just to build the victim lists at this
//! scale.

use macs_core::{CpProcessor, SearchMode};
use macs_engine::seq::{solve_seq, SeqOptions};
use macs_problems::{queens, QueensModel};
use macs_runtime::Topology;
use macs_sim::{simulate_macs, simulate_paccs, CostModel, FabricModel, SimConfig, SimReport};

const CORES: usize = 65_536;

fn cfg_64k() -> SimConfig {
    let mut cfg = SimConfig::new(Topology::clustered(CORES, 4));
    cfg.costs = CostModel::paper_queens();
    cfg
}

/// Every invariant that must hold for an exhaustive run, at any scale.
fn assert_invariants<O>(r: &SimReport<O>, roots: u64, what: &str) {
    // Lost-work conservation: every unit created is either completed or
    // (in a race) abandoned — nothing leaks, nothing is double-counted.
    assert_eq!(
        roots + r.total_pushes(),
        r.completed_items + r.abandoned_items,
        "{what}: lost work at {CORES} cores"
    );
    // Histogram bucket sum: every successful steal landed in exactly one
    // distance bucket.
    let (local_ok, _, remote_ok, _) = r.steal_totals();
    assert_eq!(
        r.steal_distance_histogram().total(),
        local_ok + remote_ok,
        "{what}: histogram bucket sum"
    );
    // Fabric conservation books.
    assert_eq!(
        r.fabric.injected,
        r.fabric.delivered + r.fabric.in_flight,
        "{what}: fabric message conservation"
    );
    assert!(r.events > 0, "{what}: no events dispatched?");
    assert!(r.peak_live_items > 0, "{what}: arena never held an item?");
}

#[test]
fn invariants_hold_at_64k_cores_macs() {
    let prob = queens(12, QueensModel::Pairwise);
    let seq = solve_seq(&prob, &SeqOptions::default());
    let r = simulate_macs(
        &cfg_64k(),
        prob.layout.store_words(),
        &[prob.root.as_words().to_vec()],
        |_| CpProcessor::new(&prob, 1, SearchMode::Exhaustive),
    );
    assert_invariants(&r, 1, "macs/latency");
    // Exhaustive: the full tree, the full count, nothing abandoned.
    assert_eq!(r.total_solutions(), seq.solutions);
    assert_eq!(r.total_items(), seq.nodes);
    assert_eq!(r.abandoned_items, 0);
    // 64k workers over one root: the work spread far beyond node 0.
    let (_, _, remote_ok, _) = r.steal_totals();
    assert!(remote_ok > 0, "no remote steals at 16384 nodes");
}

#[test]
fn invariants_hold_at_64k_cores_paccs_contention() {
    let prob = queens(12, QueensModel::Pairwise);
    let seq = solve_seq(&prob, &SeqOptions::default());
    let mut cfg = cfg_64k();
    cfg.fabric = "contention".parse::<FabricModel>().unwrap();
    let r = simulate_paccs(
        &cfg,
        prob.layout.store_words(),
        &[prob.root.as_words().to_vec()],
        |_| CpProcessor::new(&prob, 1, SearchMode::Exhaustive),
    );
    assert_invariants(&r, 1, "paccs/contention");
    assert_eq!(r.total_solutions(), seq.solutions);
    assert_eq!(r.total_items(), seq.nodes);
    assert!(r.fabric.contention);
}

#[test]
fn drain_steals_stay_out_of_steal_counts_at_64k() {
    // First-solution race at 64k cores: steals resolved after the winner
    // flag is a drain, not a delivery — they must appear in
    // `drain_steals` and NOWHERE else (not in the local/remote totals,
    // not in the distance histogram), or the steal tables double-count.
    let prob = queens(12, QueensModel::Pairwise);
    let r = simulate_macs(
        &cfg_64k(),
        prob.layout.store_words(),
        &[prob.root.as_words().to_vec()],
        |_| CpProcessor::new(&prob, 1, SearchMode::FirstSolution),
    );
    assert_invariants(&r, 1, "macs/race");
    assert!(r.first_solution_ns.is_some(), "race never won");
    assert!(r.total_solutions() >= 1);
    // The histogram equality inside assert_invariants is the exclusion
    // proof: if any drain were recorded as a steal (or vice versa) the
    // bucket sum and the steal totals would disagree.
}
