//! The cost-model codec: `parse ∘ emit = id` on seeded random models, a
//! typed rejection for every way a file can be wrong, a pinned golden
//! file (so the on-disk format can only change deliberately), and the
//! acceptance check that a loaded model reproducing the default
//! constants is *bit-identical* in behaviour — same determinism digest,
//! same event trace.

use std::path::Path;

use macs_core::{CpProcessor, SearchMode};
use macs_problems::{queens, QueensModel};
use macs_sim::{simulate_macs, CostModel, CostModelError, NodeCost, SimConfig};
use macs_topo::MachineTopology;

/// SplitMix64 — the workspace's standard seeded stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn random_model(rng: &mut Rng) -> CostModel {
    CostModel {
        node: if rng.next().is_multiple_of(2) {
            NodeCost::Fixed {
                ns: rng.next() % 100_000,
                jitter_pct: (rng.next() % 101) as u8,
            }
        } else {
            NodeCost::Measured {
                num: rng.next() % 1000,
                den: 1 + rng.next() % 1000,
            }
        },
        pool_op_ns: rng.next() % 10_000,
        release_ns: rng.next() % 10_000,
        steal_local_ns: rng.next() % 10_000,
        per_item_ns: rng.next() % 1_000,
        poll_ns: rng.next() % 1_000,
        find_remote_ns: rng.next() % 100_000,
        post_request_ns: rng.next() % 100_000,
        write_response_ns: rng.next() % 10_000,
        remote_latency_ns: rng.next() % 1_000_000,
        level_hop_factor: 1 + rng.next() % 8,
        cross_level_ns: rng.next() % 10_000,
        byte_ps: rng.next() % 100_000,
        ctrl_bytes: rng.next() % 4_096,
        header_bytes: rng.next() % 4_096,
        idle_backoff_ns: rng.next() % 100_000,
    }
}

#[test]
fn parse_emit_is_identity_on_random_models() {
    let mut rng = Rng(0xC057);
    for _ in 0..200 {
        let m = random_model(&mut rng);
        let text = m.to_string();
        let back: CostModel = text.parse().expect("canonical emit must parse");
        assert_eq!(back, m, "parse ∘ emit = id");
        // And the emit itself is stable (canonical form is a fixpoint).
        assert_eq!(back.to_string(), text);
    }
}

#[test]
fn golden_file_is_pinned_and_loads_to_the_default() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/default.cost");
    let loaded = CostModel::load(&path).expect("golden file must load");
    assert_eq!(
        loaded,
        CostModel::default(),
        "golden file drifted from the built-in defaults"
    );
    // The canonical emit *is* the golden file: the on-disk format can
    // only change by touching both this file and the codec.
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(CostModel::default().to_string(), text);
}

#[test]
fn comments_blanks_and_order_are_tolerated() {
    let text = "\n# a calibrated model\nmacs-cost-model v1\n\nbyte_ps = 667 # inline note\nnode = fixed:2000,20\npool_op_ns = 60\nrelease_ns = 650\nsteal_local_ns = 400\nper_item_ns = 40\npoll_ns = 50\nfind_remote_ns = 2000\npost_request_ns = 2500\nwrite_response_ns = 300\nremote_latency_ns = 2000\nlevel_hop_factor = 4\ncross_level_ns = 150\nctrl_bytes = 64\nheader_bytes = 64\nidle_backoff_ns = 500\n";
    let m: CostModel = text.parse().expect("free-form order/comments parse");
    assert_eq!(m, CostModel::default());
}

#[test]
fn rejections_are_typed() {
    // No header.
    assert_eq!(
        "node = fixed:1,1".parse::<CostModel>(),
        Err(CostModelError::MissingHeader)
    );
    // Unknown key.
    let text = "macs-cost-model v1\nwarp_factor = 9\n";
    assert!(matches!(
        text.parse::<CostModel>(),
        Err(CostModelError::UnknownKey { line: 2, ref key }) if key == "warp_factor"
    ));
    // Duplicate key.
    let text = "macs-cost-model v1\npoll_ns = 1\npoll_ns = 2\n";
    assert!(matches!(
        text.parse::<CostModel>(),
        Err(CostModelError::DuplicateKey { line: 3, .. })
    ));
    // Negative latency: a *typed* rejection, not a generic parse error.
    let text = "macs-cost-model v1\npoll_ns = -5\n";
    assert!(matches!(
        text.parse::<CostModel>(),
        Err(CostModelError::NegativeValue { line: 2, ref value, .. }) if value == "-5"
    ));
    // Unparseable value.
    let text = "macs-cost-model v1\npoll_ns = fast\n";
    assert!(matches!(
        text.parse::<CostModel>(),
        Err(CostModelError::BadValue { line: 2, .. })
    ));
    // Not key = value at all.
    let text = "macs-cost-model v1\njust some words\n";
    assert!(matches!(
        text.parse::<CostModel>(),
        Err(CostModelError::BadLine { line: 2, .. })
    ));
    // Missing field: drop idle_backoff_ns from the golden text.
    let full = CostModel::default().to_string();
    let trimmed: String = full
        .lines()
        .filter(|l| !l.starts_with("idle_backoff_ns"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(
        trimmed.parse::<CostModel>(),
        Err(CostModelError::MissingField {
            key: "idle_backoff_ns"
        })
    );
    // Missing node line.
    let no_node: String = full
        .lines()
        .filter(|l| !l.starts_with("node"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(
        no_node.parse::<CostModel>(),
        Err(CostModelError::MissingField { key: "node" })
    );
    // Loading a missing path is Io, not a panic.
    assert!(matches!(
        CostModel::load(Path::new("/no/such/model.cost")),
        Err(CostModelError::Io { .. })
    ));
}

#[test]
fn save_load_round_trips_through_disk() {
    let mut rng = Rng(0x5A7E);
    let path = std::env::temp_dir().join(format!("macs-cost-rt-{}.cost", std::process::id()));
    for _ in 0..8 {
        let m = random_model(&mut rng);
        m.save(&path).unwrap();
        assert_eq!(CostModel::load(&path).unwrap(), m);
    }
    std::fs::remove_file(&path).ok();
}

/// The acceptance criterion: a loaded model whose values match the old
/// constants reproduces the default behaviour *bit-identically* — the
/// determinism digest and event-trace hash of a simulated run cannot
/// tell the two apart.
#[test]
fn loaded_default_model_is_digest_identical() {
    let prob = queens(9, QueensModel::Pairwise);
    let run = |costs: CostModel| {
        let topo = MachineTopology::try_new(&[4, 2, 2], 1).unwrap();
        let cfg = SimConfig::new(topo).with_cost_model(costs);
        simulate_macs(
            &cfg,
            prob.layout.store_words(),
            &[prob.root.as_words().to_vec()],
            |_| CpProcessor::new(&prob, 1, SearchMode::Exhaustive),
        )
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/default.cost");
    let baseline = run(CostModel::default());
    let loaded = run(CostModel::load(&path).unwrap());
    assert_eq!(baseline.digest(), loaded.digest(), "digest must not move");
    assert_eq!(baseline.makespan_ns, loaded.makespan_ns);
    assert_eq!(baseline.total_solutions(), loaded.total_solutions());
}
