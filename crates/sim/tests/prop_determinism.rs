//! Same-seed determinism, pinned bit for bit at every scale.
//!
//! The event heap's key is `(due time, monotone sequence id)` — a strict
//! total order with no tie-break hole (the old heap keyed
//! `(t, seq, worker, epoch)`; the worker/epoch components were dead
//! weight once the sequence id is globally unique, and any key that fell
//! back on them would have made pop order depend on heap internals).
//! These tests run every (scale × balancer × fabric model) cell twice
//! with the same seed and demand *identical* `SimReport`s — every
//! counter, every state time, the event count and the event-trace hash —
//! via [`SimReport::digest`], which folds all of them. A single
//! reordered event anywhere diverges the trace hash.

use macs_core::{CpProcessor, SearchMode};
use macs_problems::{queens, QueensModel};
use macs_runtime::Topology;
use macs_sim::{
    simulate_macs, simulate_paccs, CostModel, FabricModel, SimConfig, SimMode, SimReport,
};

const SCALES: [usize; 4] = [64, 512, 4_096, 32_768];

fn run(
    mode: SimMode,
    cores: usize,
    fabric: FabricModel,
    seed: u64,
) -> SimReport<macs_core::CpOutput> {
    let prob = queens(9, QueensModel::Pairwise);
    let mut cfg = SimConfig::new(Topology::clustered(cores, 4));
    cfg.costs = CostModel::paper_queens();
    cfg.fabric = fabric;
    cfg.seed = seed;
    let words = prob.layout.store_words();
    let roots = [prob.root.as_words().to_vec()];
    let factory = |_| CpProcessor::new(&prob, 1, SearchMode::Exhaustive);
    match mode {
        SimMode::Macs => simulate_macs(&cfg, words, &roots, factory),
        SimMode::Paccs => simulate_paccs(&cfg, words, &roots, factory),
    }
}

#[test]
fn same_seed_runs_are_bit_identical_across_scales_and_models() {
    for &cores in &SCALES {
        for mode in [SimMode::Macs, SimMode::Paccs] {
            for fabric in [
                FabricModel::Latency,
                "contention".parse::<FabricModel>().unwrap(),
            ] {
                let a = run(mode, cores, fabric, 0x51D);
                let b = run(mode, cores, fabric, 0x51D);
                let cell = format!("{mode:?}/{fabric}/{cores} cores");
                assert_eq!(a.trace_hash, b.trace_hash, "{cell}: event trace diverged");
                assert_eq!(a.events, b.events, "{cell}: event count diverged");
                assert_eq!(a.digest(), b.digest(), "{cell}: report digest diverged");
                // Spot checks behind the digest, for readable failures.
                assert_eq!(a.makespan_ns, b.makespan_ns, "{cell}");
                assert_eq!(a.steal_totals(), b.steal_totals(), "{cell}");
                assert_eq!(a.fabric, b.fabric, "{cell}");
            }
        }
    }
}

#[test]
fn different_seeds_usually_diverge() {
    // The digest must actually be sensitive: two *different* seeds at the
    // same scale should produce different interleavings (if this ever
    // fails the seeds converged by astronomical luck — or the digest went
    // blind, which is what it guards against).
    let a = run(SimMode::Macs, 512, FabricModel::Latency, 1);
    let b = run(SimMode::Macs, 512, FabricModel::Latency, 2);
    assert_ne!(
        (a.trace_hash, a.digest()),
        (b.trace_hash, b.digest()),
        "digest is seed-blind"
    );
}

#[test]
fn fabric_model_changes_the_schedule_not_the_answer() {
    // Contention re-times messages (so traces differ) but never changes
    // what the search computes.
    let a = run(SimMode::Macs, 4_096, FabricModel::Latency, 0x51D);
    let b = run(SimMode::Macs, 4_096, "contention".parse().unwrap(), 0x51D);
    assert_eq!(a.total_solutions(), b.total_solutions());
    assert_eq!(a.total_items(), b.total_items());
    assert!(b.fabric.contention && !a.fabric.contention);
}
