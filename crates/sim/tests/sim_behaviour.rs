//! Behavioural tests of the discrete-event simulator: tree conservation,
//! scaling sanity, steal accounting, and the COP bound-dissemination
//! effect — all on real CP search trees.

use macs_core::{CpProcessor, SearchMode};
use macs_engine::seq::{solve_seq, SeqOptions};
use macs_problems::{qap::QapInstance, qap_model, queens, QueensModel};
use macs_runtime::{MachineTopology, Topology};
use macs_sim::{simulate_macs, simulate_paccs, BoundPolicy, CostModel, SimConfig};

fn queens_cfg(workers: usize, cores_per_node: usize) -> SimConfig {
    let mut cfg = SimConfig::new(if workers.is_multiple_of(cores_per_node) {
        Topology::clustered(workers, cores_per_node)
    } else {
        Topology::single_node(workers)
    });
    cfg.costs = CostModel::woodcrest_ib(3_000);
    cfg
}

#[test]
fn macs_sim_counts_match_sequential_queens() {
    let prob = queens(8, QueensModel::Pairwise);
    let seq = solve_seq(&prob, &SeqOptions::default());
    for (w, cpn) in [(1, 1), (4, 4), (8, 4), (16, 4)] {
        let cfg = queens_cfg(w, cpn);
        let report = simulate_macs(
            &cfg,
            prob.layout.store_words(),
            &[prob.root.as_words().to_vec()],
            |_| CpProcessor::new(&prob, 4, SearchMode::Exhaustive),
        );
        assert_eq!(report.total_solutions(), seq.solutions, "{w} vworkers");
        // Satisfaction trees are schedule-independent: node counts match
        // the sequential solver exactly.
        assert_eq!(report.total_items(), seq.nodes, "{w} vworkers");
    }
}

#[test]
fn macs_sim_speedup_is_monotone_and_sane() {
    let prob = queens(9, QueensModel::Pairwise);
    let root = prob.root.as_words().to_vec();
    let mut t = Vec::new();
    for w in [1usize, 4, 16] {
        let cfg = queens_cfg(w, if w >= 4 { 4 } else { 1 });
        let report = simulate_macs(
            &cfg,
            prob.layout.store_words(),
            std::slice::from_ref(&root),
            |_| CpProcessor::new(&prob, 0, SearchMode::Exhaustive),
        );
        t.push(report.makespan_ns as f64);
    }
    let s4 = t[0] / t[1];
    let s16 = t[0] / t[2];
    assert!(s4 > 2.0, "speed-up at 4 vcores too low: {s4:.2}");
    assert!(s4 < 4.4, "speed-up at 4 vcores super-linear: {s4:.2}");
    assert!(
        s16 > s4,
        "speed-up must grow with cores ({s4:.2} vs {s16:.2})"
    );
    assert!(s16 < 17.0, "speed-up at 16 vcores impossible: {s16:.2}");
}

#[test]
fn macs_sim_hierarchical_steals_and_states() {
    let prob = queens(9, QueensModel::Pairwise);
    let cfg = queens_cfg(16, 4);
    let report = simulate_macs(
        &cfg,
        prob.layout.store_words(),
        &[prob.root.as_words().to_vec()],
        |_| CpProcessor::new(&prob, 0, SearchMode::Exhaustive),
    );
    let (local_ok, _lf, remote_ok, _rf) = report.steal_totals();
    assert!(local_ok > 0, "local steals expected");
    assert!(remote_ok > 0, "remote steals expected across 4 nodes");
    let fr = report.state_fractions();
    let sum: f64 = fr.iter().sum();
    assert!((sum - 1.0).abs() < 1e-6);
    // Workers should be mostly busy on a tree this large.
    assert!(
        report.overhead_fraction() < 0.5,
        "overhead {:.1}% too high",
        report.overhead_fraction() * 100.0
    );
}

#[test]
fn paccs_sim_counts_match_sequential() {
    let prob = queens(8, QueensModel::Pairwise);
    let seq = solve_seq(&prob, &SeqOptions::default());
    for w in [4usize, 8] {
        let cfg = queens_cfg(w, 4);
        let report = simulate_paccs(
            &cfg,
            prob.layout.store_words(),
            &[prob.root.as_words().to_vec()],
            |_| CpProcessor::new(&prob, 0, SearchMode::Exhaustive),
        );
        assert_eq!(report.total_solutions(), seq.solutions);
        assert_eq!(report.total_items(), seq.nodes);
        assert!(report.makespan_ns > 0);
    }
}

#[test]
fn macs_beats_or_matches_paccs_at_scale() {
    // The paper's Fig. 4/6: both scale, MaCS a whisker ahead at high core
    // counts. We assert MaCS is not *slower* by more than 15% at 32 vcores.
    let prob = queens(9, QueensModel::Pairwise);
    let root = prob.root.as_words().to_vec();
    let cfg = queens_cfg(32, 4);
    let m = simulate_macs(
        &cfg,
        prob.layout.store_words(),
        std::slice::from_ref(&root),
        |_| CpProcessor::new(&prob, 0, SearchMode::Exhaustive),
    );
    let p = simulate_paccs(&cfg, prob.layout.store_words(), &[root], |_| {
        CpProcessor::new(&prob, 0, SearchMode::Exhaustive)
    });
    assert_eq!(m.total_items(), p.total_items());
    let ratio = m.makespan_ns as f64 / p.makespan_ns as f64;
    assert!(ratio < 1.15, "MaCS/PaCCS makespan ratio {ratio:.2}");
}

#[test]
fn qap_sim_finds_optimum_and_grows_with_delay() {
    let inst = QapInstance::cube8_like(3);
    let prob = qap_model(&inst);
    let seq = solve_seq(&prob, &SeqOptions::default());
    let root = prob.root.as_words().to_vec();

    let mut cfg = queens_cfg(8, 4);
    cfg.costs = CostModel::woodcrest_ib(8_000);
    cfg.bound_delay_ns = Some(0);
    let fast = simulate_macs(
        &cfg,
        prob.layout.store_words(),
        std::slice::from_ref(&root),
        |_| CpProcessor::new(&prob, 0, SearchMode::Exhaustive),
    );
    assert_eq!(fast.incumbent, seq.best_cost.unwrap(), "optimum reached");

    // A huge dissemination delay leaves workers pruning on stale bounds:
    // the tree must not shrink, and typically grows (the paper's COP
    // problem-size growth).
    cfg.bound_delay_ns = Some(50_000_000);
    let slow = simulate_macs(&cfg, prob.layout.store_words(), &[root], |_| {
        CpProcessor::new(&prob, 0, SearchMode::Exhaustive)
    });
    assert_eq!(slow.incumbent, seq.best_cost.unwrap());
    assert!(
        slow.total_items() >= fast.total_items(),
        "stale bounds cannot shrink the tree: {} < {}",
        slow.total_items(),
        fast.total_items()
    );
}

#[test]
fn bound_policies_agree_on_the_optimum_and_differ_in_volume() {
    let inst = QapInstance::cube8_like(5);
    let prob = qap_model(&inst);
    let seq = solve_seq(&prob, &SeqOptions::default());
    let expect = seq.best_cost.unwrap();
    let root = prob.root.as_words().to_vec();
    let topo = MachineTopology::try_new(&[4, 2, 2], 1).unwrap(); // 4 nodes of 4
    let run = |policy| {
        let mut cfg = SimConfig::new(topo.clone());
        cfg.costs = CostModel::woodcrest_ib(8_000);
        cfg.bound_policy = policy;
        simulate_macs(
            &cfg,
            prob.layout.store_words(),
            std::slice::from_ref(&root),
            |_| CpProcessor::new(&prob, 0, SearchMode::Exhaustive),
        )
    };
    let imm = run(BoundPolicy::Immediate);
    let per = run(BoundPolicy::Periodic { every: 32 });
    let hier = run(BoundPolicy::Hierarchical);
    // Delay moves *when* a bound arrives, never the answer.
    for (name, r) in [
        ("immediate", &imm),
        ("periodic", &per),
        ("hierarchical", &hier),
    ] {
        assert_eq!(r.incumbent, expect, "{name} optimum");
        assert!(r.bound_updates > 0, "{name} accepted improvements");
    }
    // The broadcast tree bills remote leaders, not remote workers.
    assert!(
        hier.bound_msgs < imm.bound_msgs,
        "hierarchical {} !< immediate {}",
        hier.bound_msgs,
        imm.bound_msgs
    );
}

#[test]
fn chunk_policies_agree_on_counts_and_optimum() {
    // Granularity moves work between workers, never the answer: every
    // policy must reproduce the sequential solution count (enumeration)
    // and the optimum (optimisation) — on a satisfaction and an
    // optimisation workload, both simulated balancers.
    use macs_sim::ChunkPolicy;
    let prob = queens(8, QueensModel::Pairwise);
    let seq = solve_seq(&prob, &SeqOptions::default());
    let inst = QapInstance::cube8_like(5);
    let qap = qap_model(&inst);
    let qseq = solve_seq(&qap, &SeqOptions::default());
    let root = prob.root.as_words().to_vec();
    let qroot = qap.root.as_words().to_vec();
    let topo = MachineTopology::try_new(&[2, 2, 4], 1).unwrap();
    for policy in ChunkPolicy::ALL {
        let mut cfg = SimConfig::new(topo.clone());
        cfg.chunk_policy = policy;
        let r = simulate_macs(
            &cfg,
            prob.layout.store_words(),
            std::slice::from_ref(&root),
            |_| CpProcessor::new(&prob, 0, SearchMode::Exhaustive),
        );
        assert_eq!(r.total_solutions(), seq.solutions, "{policy} queens count");
        let p = simulate_paccs(
            &cfg,
            prob.layout.store_words(),
            std::slice::from_ref(&root),
            |_| CpProcessor::new(&prob, 0, SearchMode::Exhaustive),
        );
        assert_eq!(p.total_solutions(), seq.solutions, "{policy} paccs count");
        let mut qcfg = SimConfig::new(topo.clone());
        qcfg.chunk_policy = policy;
        qcfg.costs = CostModel::woodcrest_ib(8_000);
        let q = simulate_macs(
            &qcfg,
            qap.layout.store_words(),
            std::slice::from_ref(&qroot),
            |_| CpProcessor::new(&qap, 0, SearchMode::Exhaustive),
        );
        assert_eq!(q.incumbent, qseq.best_cost.unwrap(), "{policy} optimum");
    }
}

#[test]
fn release_interval_reduces_releases() {
    let prob = queens(9, QueensModel::Pairwise);
    let root = prob.root.as_words().to_vec();
    let mut cfg = queens_cfg(8, 4);
    cfg.release = macs_runtime::ReleasePolicy::default(); // interval 1
    let eager = simulate_macs(
        &cfg,
        prob.layout.store_words(),
        std::slice::from_ref(&root),
        |_| CpProcessor::new(&prob, 0, SearchMode::Exhaustive),
    );
    cfg.release = macs_runtime::ReleasePolicy::tuned(); // interval 32
    let tuned = simulate_macs(&cfg, prob.layout.store_words(), &[root], |_| {
        CpProcessor::new(&prob, 0, SearchMode::Exhaustive)
    });
    let e_rel: u64 = eager.workers.iter().map(|w| w.releases).sum();
    let t_rel: u64 = tuned.workers.iter().map(|w| w.releases).sum();
    assert!(
        t_rel < e_rel,
        "tuned interval must release less: {t_rel} vs {e_rel}"
    );
    assert_eq!(eager.total_items(), tuned.total_items());
}

#[test]
fn deterministic_given_seed() {
    let prob = queens(8, QueensModel::Pairwise);
    let root = prob.root.as_words().to_vec();
    let cfg = queens_cfg(8, 4);
    let a = simulate_macs(
        &cfg,
        prob.layout.store_words(),
        std::slice::from_ref(&root),
        |_| CpProcessor::new(&prob, 0, SearchMode::Exhaustive),
    );
    let b = simulate_macs(&cfg, prob.layout.store_words(), &[root], |_| {
        CpProcessor::new(&prob, 0, SearchMode::Exhaustive)
    });
    assert_eq!(a.makespan_ns, b.makespan_ns);
    assert_eq!(a.steal_totals(), b.steal_totals());
}
