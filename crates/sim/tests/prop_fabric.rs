//! Fabric conservation properties, pinned across seeded steal-storm
//! scenarios: every remote steal-plane message handed to the fabric is
//! either delivered or still in flight when the simulation drains
//! (`injected == delivered + in_flight` — a message can't vanish or be
//! consumed twice), and no link's FIFO can ever be deeper than the run's
//! horizon divided by one message's serialization time (a queue only
//! grows by messages that still occupy link time inside the horizon).
//!
//! The storm scenario is the one `FabricModel::Contention` exists for:
//! one root on worker 0, thousands of idle thieves — under the flat
//! latency model they all pay the same per-ring delay; under contention
//! the victim node's links must absorb the storm as queueing.

use macs_core::{CpProcessor, SearchMode};
use macs_problems::{queens, QueensModel};
use macs_runtime::Topology;
use macs_sim::{
    simulate_macs, simulate_paccs, ContentionParams, CostModel, FabricModel, SimConfig, SimMode,
    SimReport,
};

/// One root, `cores` workers: a steal storm onto node 0's links.
fn storm(
    mode: SimMode,
    cores: usize,
    fabric: FabricModel,
    seed: u64,
) -> SimReport<macs_core::CpOutput> {
    let prob = queens(10, QueensModel::Pairwise);
    let mut cfg = SimConfig::new(Topology::clustered(cores, 4));
    cfg.costs = CostModel::paper_queens();
    cfg.fabric = fabric;
    cfg.seed = seed;
    let words = prob.layout.store_words();
    let roots = [prob.root.as_words().to_vec()];
    let factory = |_| CpProcessor::new(&prob, 1, SearchMode::Exhaustive);
    match mode {
        SimMode::Macs => simulate_macs(&cfg, words, &roots, factory),
        SimMode::Paccs => simulate_paccs(&cfg, words, &roots, factory),
    }
}

fn assert_conservation<O>(r: &SimReport<O>, what: &str) {
    assert_eq!(
        r.fabric.injected,
        r.fabric.delivered + r.fabric.in_flight,
        "{what}: fabric books don't balance"
    );
    if r.fabric.contention {
        // Depth bound: every queued message occupies at least one control
        // message's serialization on its link, and all of it inside the
        // run's horizon — so depth can never exceed horizon/ser + 1.
        // Wire constants resolve from the cost model the storms run with.
        let w = ContentionParams::default().resolve(&CostModel::paper_queens());
        let ser = (w.link_byte_ps * w.ctrl_bytes / 1000).max(1);
        let bound = r.makespan_ns / ser + 1;
        assert!(
            r.fabric.max_link_depth <= bound,
            "{what}: link depth {} exceeds horizon bound {bound}",
            r.fabric.max_link_depth
        );
    }
}

#[test]
fn conservation_holds_across_seeded_storms() {
    for seed in [0x51D, 1, 7, 99] {
        for mode in [SimMode::Macs, SimMode::Paccs] {
            for fabric in [
                FabricModel::Latency,
                "contention".parse::<FabricModel>().unwrap(),
            ] {
                let r = storm(mode, 2_048, fabric, seed);
                assert_conservation(&r, &format!("{mode:?}/{fabric}/seed {seed}"));
                assert!(r.fabric.injected > 0, "a 2048-core storm sends messages");
            }
        }
    }
}

#[test]
fn conservation_holds_when_a_race_abandons_in_flight_work() {
    // First-solution race: the winner flag drains pools while replies are
    // still in flight — the books must balance even when messages die
    // unread in mailboxes at teardown (that's what `in_flight` counts).
    for seed in [0x51D, 3] {
        let prob = queens(10, QueensModel::Pairwise);
        let mut cfg = SimConfig::new(Topology::clustered(1_024, 4));
        cfg.costs = CostModel::paper_queens();
        cfg.fabric = "contention".parse().unwrap();
        cfg.seed = seed;
        let r = simulate_macs(
            &cfg,
            prob.layout.store_words(),
            &[prob.root.as_words().to_vec()],
            |_| CpProcessor::new(&prob, 1, SearchMode::FirstSolution),
        );
        assert_conservation(&r, &format!("race/seed {seed}"));
        assert!(r.first_solution_ns.is_some());
    }
}

#[test]
fn storm_pays_queueing_under_contention_not_under_latency() {
    // The model's point: the same storm that is free under flat latency
    // shows up as queueing time under contention — and a bigger storm
    // queues more. PaCCS is the storm protocol (its request queues are
    // unbounded, so every idle thief's request lands); MaCS throttles
    // storms structurally — one pending request per victim — which is
    // asserted below as a *property*, not assumed.
    let flat = storm(SimMode::Paccs, 4_096, FabricModel::Latency, 0x51D);
    let small = storm(SimMode::Paccs, 1_024, "contention".parse().unwrap(), 0x51D);
    let big = storm(SimMode::Paccs, 4_096, "contention".parse().unwrap(), 0x51D);
    assert_eq!(flat.fabric.total_queue_ns, 0, "latency model never queues");
    assert_eq!(flat.fabric.max_link_depth, 0);
    assert!(
        big.fabric.queued_msgs > 0,
        "a 4096-thief storm onto one victim node must queue"
    );
    assert!(
        big.fabric.total_queue_ns > small.fabric.total_queue_ns,
        "queueing must grow with the storm: {} !> {}",
        big.fabric.total_queue_ns,
        small.fabric.total_queue_ns
    );
    // Backpressure slows the storm down, it never changes the answer.
    assert_eq!(flat.total_solutions(), big.total_solutions());
    assert_eq!(flat.total_items(), big.total_items());

    // MaCS under the same storm: the one-slot mailbox caps each victim at
    // one in-flight request, so its queues stay shallow — the protocol's
    // structural backpressure, visible as bounded link depth.
    let macs = storm(SimMode::Macs, 4_096, "contention".parse().unwrap(), 0x51D);
    assert!(
        macs.fabric.max_link_depth < big.fabric.max_link_depth,
        "MaCS mailbox throttling must keep queues shallower: {} !< {}",
        macs.fabric.max_link_depth,
        big.fabric.max_link_depth
    );
}

#[test]
fn contention_parameters_scale_the_pressure() {
    // A 100× slower link must produce at least as much queueing delay as
    // the default — the knob actually reaches the model.
    let slow = FabricModel::Contention(ContentionParams {
        link_byte_ps: Some(66_700),
        ..ContentionParams::default()
    });
    let fast = storm(SimMode::Macs, 2_048, "contention".parse().unwrap(), 0x51D);
    let slowed = storm(SimMode::Macs, 2_048, slow, 0x51D);
    assert!(
        slowed.fabric.total_queue_ns > fast.fabric.total_queue_ns,
        "slower links must queue longer: {} !> {}",
        slowed.fabric.total_queue_ns,
        fast.fabric.total_queue_ns
    );
    assert_eq!(fast.total_solutions(), slowed.total_solutions());
}
