//! Simulation results: the same quantities the threaded runtime reports,
//! in virtual time.

use macs_runtime::{StealHistogram, WorkerState, NUM_STATES};

use crate::fabric::FabricReport;

/// Per-virtual-worker counters and state times (virtual nanoseconds).
#[derive(Clone, Debug, Default)]
pub struct SimWorkerStats {
    pub items: u64,
    pub pushes: u64,
    pub solutions: u64,
    pub local_steals: u64,
    pub local_steal_items: u64,
    pub local_steal_failures: u64,
    pub remote_steals: u64,
    pub remote_steal_items: u64,
    pub remote_steal_failures: u64,
    pub releases: u64,
    pub released_items: u64,
    pub polls: u64,
    pub requests_served: u64,
    pub proxy_serves: u64,
    pub requests_refused: u64,
    /// Successful steals (as thief) by topological distance.
    pub steals_by_distance: StealHistogram,
    /// First-solution races: steals resolved after this worker observed
    /// the winner flag — a drain, not a delivery; kept out of the steal
    /// counts and the distance histogram.
    pub drain_steals: u64,
    /// Victim-pool chunks written across all served responses.
    pub response_chunks: u64,
    /// Responses that carried more than one victim's chunk.
    pub batched_responses: u64,
    /// Node expansions run under a bound worse than the best value already
    /// submitted globally — work an ideal zero-delay bound fabric might
    /// have pruned (the cost side of cheap dissemination).
    pub stale_bound_nodes: u64,
    pub state_ns: [u64; NUM_STATES],
}

/// Everything one simulation produced.
#[derive(Clone, Debug)]
pub struct SimReport<O> {
    /// Virtual wall time from start to the last completed work item.
    pub makespan_ns: u64,
    pub workers: Vec<SimWorkerStats>,
    pub outputs: Vec<O>,
    /// Final incumbent (optimisation; `i64::MAX` otherwise).
    pub incumbent: i64,
    /// Fabric messages spent disseminating bound updates (broadcast
    /// fan-out plus periodic pulls) — the volume axis of the
    /// `bound_ablation` trade-off.
    pub bound_msgs: u64,
    /// Incumbent improvements accepted by the bound fabric.
    pub bound_updates: u64,
    /// First-solution races: virtual instant the winning solution
    /// completed (`None` otherwise).
    pub first_solution_ns: Option<u64>,
    /// First-solution races: node expansions that completed after the win
    /// instant — work the winner flag's per-level delivery delay failed
    /// to prevent.
    pub nodes_after_win: u64,
    /// Work units discarded unprocessed once their holder observed the
    /// winner flag (pool drains, in-flight steal batches, mid-chain
    /// continuations).
    pub abandoned_items: u64,
    /// Work units that ran to natural completion (a failed or solved
    /// leaf). Conservation: `roots + Σ pushes == completed_items +
    /// abandoned_items` — no unit is ever lost or double-counted, raced
    /// or not (the `prop_race` suite pins this).
    pub completed_items: u64,
    /// Discrete events dispatched (one per event-heap pop) — the
    /// numerator of the events/sec throughput `perf_record` tracks.
    pub events: u64,
    /// FNV-1a fold of `(time, worker, phase)` over every dispatched
    /// event, in dispatch order. Two same-seed runs must produce the same
    /// hash bit for bit — the determinism witness `prop_determinism`
    /// pins at every scale point.
    pub trace_hash: u64,
    /// Peak number of work items simultaneously live in the slot arena
    /// (pools + staged children + in-flight batches).
    pub peak_live_items: u64,
    /// Steal-plane message conservation and congestion counters.
    pub fabric: FabricReport,
}

impl<O> SimReport<O> {
    pub fn total_items(&self) -> u64 {
        self.workers.iter().map(|w| w.items).sum()
    }

    /// Children pushed across all workers (work units created beyond the
    /// roots; discarded children of an already-won race count too).
    pub fn total_pushes(&self) -> u64 {
        self.workers.iter().map(|w| w.pushes).sum()
    }

    pub fn total_solutions(&self) -> u64 {
        self.workers.iter().map(|w| w.solutions).sum()
    }

    /// Virtual items per second.
    pub fn items_per_sec(&self) -> f64 {
        self.total_items() as f64 / (self.makespan_ns.max(1) as f64 / 1e9)
    }

    /// Fraction of aggregate worker time per state (Fig. 3/5 bars).
    pub fn state_fractions(&self) -> [f64; NUM_STATES] {
        let mut totals = [0.0f64; NUM_STATES];
        let mut sum = 0.0;
        for w in &self.workers {
            for (i, &ns) in w.state_ns.iter().enumerate() {
                totals[i] += ns as f64;
                sum += ns as f64;
            }
        }
        if sum > 0.0 {
            for t in totals.iter_mut() {
                *t /= sum;
            }
        }
        totals
    }

    pub fn overhead_fraction(&self) -> f64 {
        1.0 - self.state_fractions()[WorkerState::Working as usize]
    }

    /// (local ok, local failed, remote ok, remote failed) — Tables I/II.
    pub fn steal_totals(&self) -> (u64, u64, u64, u64) {
        let mut t = (0, 0, 0, 0);
        for w in &self.workers {
            t.0 += w.local_steals;
            t.1 += w.local_steal_failures;
            t.2 += w.remote_steals;
            t.3 += w.remote_steal_failures;
        }
        t
    }

    /// Successful steals by topological distance, over all workers.
    pub fn steal_distance_histogram(&self) -> StealHistogram {
        let mut h = StealHistogram::new();
        for w in &self.workers {
            h.merge(&w.steals_by_distance);
        }
        h
    }

    /// Remote request round trips (each steal attempt that posted a
    /// request costs exactly one, served or refused).
    pub fn remote_round_trips(&self) -> u64 {
        let (_, _, ok, failed) = self.steal_totals();
        ok + failed
    }

    /// Work items delivered per successful remote steal — the quantity
    /// batched responses raise.
    pub fn items_per_remote_steal(&self) -> f64 {
        let (_, _, ok, _) = self.steal_totals();
        if ok == 0 {
            return 0.0;
        }
        let items: u64 = self.workers.iter().map(|w| w.remote_steal_items).sum();
        items as f64 / ok as f64
    }

    /// Node expansions run under a stale bound, over all workers (see
    /// [`SimWorkerStats::stale_bound_nodes`]).
    pub fn stale_expansions(&self) -> u64 {
        self.workers.iter().map(|w| w.stale_bound_nodes).sum()
    }

    /// Race-drain steals over all workers (see
    /// [`SimWorkerStats::drain_steals`]).
    pub fn drain_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.drain_steals).sum()
    }

    /// (responses served, chunks shipped, responses with > 1 chunk).
    pub fn response_batching(&self) -> (u64, u64, u64) {
        let mut t = (0, 0, 0);
        for w in &self.workers {
            t.0 += w.requests_served;
            t.1 += w.response_chunks;
            t.2 += w.batched_responses;
        }
        t
    }

    /// One FNV-1a hash over *everything* deterministic in the report:
    /// every counter, every per-worker stat, every state time, the steal
    /// histograms, the fabric books and the event-trace hash. Two
    /// same-seed runs must agree on this digest bit for bit (generic
    /// outputs and wall-clock time are excluded — outputs are pinned
    /// separately where comparable).
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(self.makespan_ns);
        mix(self.incumbent as u64);
        mix(self.bound_msgs);
        mix(self.bound_updates);
        mix(self.first_solution_ns.map(|t| t + 1).unwrap_or(0));
        mix(self.nodes_after_win);
        mix(self.abandoned_items);
        mix(self.completed_items);
        mix(self.events);
        mix(self.trace_hash);
        mix(self.peak_live_items);
        mix(self.fabric.contention as u64);
        mix(self.fabric.injected);
        mix(self.fabric.delivered);
        mix(self.fabric.in_flight);
        mix(self.fabric.max_link_depth);
        mix(self.fabric.queued_msgs);
        mix(self.fabric.total_queue_ns);
        for w in &self.workers {
            mix(w.items);
            mix(w.pushes);
            mix(w.solutions);
            mix(w.local_steals);
            mix(w.local_steal_items);
            mix(w.local_steal_failures);
            mix(w.remote_steals);
            mix(w.remote_steal_items);
            mix(w.remote_steal_failures);
            mix(w.releases);
            mix(w.released_items);
            mix(w.polls);
            mix(w.requests_served);
            mix(w.proxy_serves);
            mix(w.requests_refused);
            mix(w.drain_steals);
            mix(w.response_chunks);
            mix(w.batched_responses);
            mix(w.stale_bound_nodes);
            for &c in &w.steals_by_distance.counts {
                mix(c);
            }
            for &ns in &w.state_ns {
                mix(ns);
            }
        }
        h
    }
}
