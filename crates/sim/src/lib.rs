//! Discrete-event simulation of MaCS (and PaCCS) work stealing at
//! arbitrary virtual core counts.
//!
//! The paper's evaluation runs on 8–512 cores of an InfiniBand cluster.
//! This crate regenerates those series on any host: it steps *virtual
//! workers* over a *virtual clock*, processing the **real** search tree
//! (the same [`Processor`](macs_runtime::Processor) implementations the
//! threaded runtime drives — propagation, splitting, branch-and-bound all
//! actually execute), while the pool discipline, release interval, victim
//! selection, request mailboxes, dynamic polling and fabric latencies are
//! modelled by a [`CostModel`] in virtual nanoseconds.
//!
//! What emerges — who steals from whom, how often steals fail, how much
//! time each worker spends per state, how the incumbent's dissemination
//! delay inflates COP trees — is a product of the simulated interleaving,
//! not of scripted formulas, so the *shapes* of the paper's figures
//! (speed-up, efficiency, Mnodes/s, overhead breakdowns, steal tables) can
//! be reproduced at 512 virtual cores on a 2-core laptop.
//!
//! Two balancer models are provided:
//! * [`simulate_macs`] — the MaCS protocol (split pools, one-sided
//!   metadata scans, request mailbox + in-place response, proxy
//!   fulfilment, dynamic polling);
//! * [`simulate_paccs`] — the PaCCS protocol (two-sided request/reply at
//!   node-completion granularity, neighbourhood sweeps, controller-routed
//!   bounds), used for the comparison series of Fig. 4/6.

pub mod cost;
pub mod engine_sim;
pub mod incumbent;
pub mod report;

pub use cost::{CostModel, NodeCost};
pub use engine_sim::{simulate_macs, simulate_paccs, SimConfig, SimMode};
pub use incumbent::SimIncumbent;
pub use report::{SimReport, SimWorkerStats};
