//! Discrete-event simulation of MaCS (and PaCCS) work stealing at
//! arbitrary virtual core counts.
//!
//! The paper's evaluation runs on 8–512 cores of an InfiniBand cluster.
//! This crate regenerates those series on any host: it steps *virtual
//! workers* over a *virtual clock*, processing the **real** search tree
//! (the same [`Processor`](macs_runtime::Processor) implementations the
//! threaded runtime drives — propagation, splitting, branch-and-bound all
//! actually execute), while the pool discipline, release interval, victim
//! selection, request mailboxes, dynamic polling and fabric latencies are
//! modelled by a [`CostModel`] in virtual nanoseconds.
//!
//! What emerges — who steals from whom, how often steals fail, how much
//! time each worker spends per state, how the incumbent's dissemination
//! delay inflates COP trees — is a product of the simulated interleaving,
//! not of scripted formulas, so the *shapes* of the paper's figures
//! (speed-up, efficiency, Mnodes/s, overhead breakdowns, steal tables) can
//! be reproduced at 512 virtual cores on a 2-core laptop — and
//! extrapolated far past the paper's testbed: the event core (indexed
//! min-heap keyed by `(time, monotone seq)`, arena-backed work items,
//! lazy per-worker rings and processors) replays queens-14 at 65 536
//! virtual cores in under a minute and reaches 262 144 cores in a few
//! minutes of wall time. Same-seed runs are bit-identical at every
//! scale: the heap key is a strict total order, and
//! [`SimReport::digest`] folds every counter plus an event-trace hash
//! so a single reordered event is detectable.
//!
//! The network is a [`FabricModel`] knob: `Latency` prices every hop
//! with a fixed per-ring delay (infinite capacity), `Contention` gives
//! each node a finite-bandwidth uplink and downlink with FIFO queueing,
//! so steal storms pay queueing delay for the links they fight over.
//! The fabric keeps conservation books (injected = delivered +
//! in-flight) surfaced in [`FabricReport`].
//!
//! Two balancer models are provided:
//! * [`simulate_macs`] — the MaCS protocol (split pools, one-sided
//!   metadata scans, request mailbox + in-place response, proxy
//!   fulfilment, dynamic polling);
//! * [`simulate_paccs`] — the PaCCS protocol (two-sided request/reply at
//!   node-completion granularity, neighbourhood sweeps, controller-routed
//!   bounds), used for the comparison series of Fig. 4/6.
//!
//! Branch-and-bound incumbents travel through a [`BoundFabric`] applying
//! the configured [`BoundPolicy`] — flat eager broadcast, cached periodic
//! reads, or the node-leader broadcast tree with per-level delivery delay
//! — and the report counts bound messages and stale-bound expansions, the
//! two sides of the dissemination trade.
//!
//! # Worked example
//!
//! Simulate 16 virtual cores (4 nodes × 2 sockets × 2 cores) solving
//! 8-queens under hierarchical bound dissemination:
//!
//! ```
//! use macs_core::{CpProcessor, SearchMode};
//! use macs_runtime::MachineTopology;
//! use macs_sim::{simulate_macs, BoundPolicy, SimConfig};
//!
//! let prob = macs_problems::queens(8, macs_problems::QueensModel::Pairwise);
//! let mut cfg = SimConfig::new(MachineTopology::try_new(&[4, 2, 2], 1)?);
//! cfg.bound_policy = BoundPolicy::Hierarchical;
//!
//! let report = simulate_macs(
//!     &cfg,
//!     prob.layout.store_words(),
//!     &[prob.root.as_words().to_vec()],
//!     |_worker| CpProcessor::new(&prob, 0, SearchMode::Exhaustive),
//! );
//! assert_eq!(report.total_solutions(), 92);
//! assert!(report.makespan_ns > 0); // virtual wall time at 16 cores
//! # Ok::<(), macs_runtime::TopoError>(())
//! ```

pub mod cost;
pub mod engine_sim;
pub mod fabric;
pub mod incumbent;
pub mod report;

pub use cost::{CostModel, CostModelError, NodeCost};
pub use engine_sim::{simulate_macs, simulate_paccs, SimConfig, SimMode};
pub use fabric::{ContentionParams, FabricModel, FabricReport, WireParams};
pub use incumbent::{BoundFabric, SimIncumbent};
pub use macs_search::{BoundPolicy, ChunkPolicy, SearchMode};
pub use report::{SimReport, SimWorkerStats};
