//! Branch-and-bound incumbent with virtual-time dissemination delay.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use macs_runtime::Incumbent;

/// The global incumbent timeline: improvements become visible to other
/// workers only `delay_ns` after submission — the bound-dissemination
/// effect the paper identifies as the COP scalability limiter.
#[derive(Debug, Default)]
pub struct Timeline {
    /// (visible_at, value); `visible_at` non-decreasing, `value` strictly
    /// decreasing.
    events: RefCell<Vec<(u64, i64)>>,
}

impl Timeline {
    /// Best value submitted so far regardless of visibility.
    pub fn global_min(&self) -> i64 {
        self.events
            .borrow()
            .last()
            .map(|&(_, v)| v)
            .unwrap_or(i64::MAX)
    }

    /// Best value visible at time `t`.
    pub fn visible_at(&self, t: u64) -> i64 {
        let ev = self.events.borrow();
        // Scan from the newest: timelines are short (one entry per
        // improving solution).
        for &(vis, val) in ev.iter().rev() {
            if vis <= t {
                return val;
            }
        }
        i64::MAX
    }

    fn submit(&self, visible_at: u64, value: i64) -> bool {
        let mut ev = self.events.borrow_mut();
        if ev.last().map(|&(_, v)| value < v).unwrap_or(true) {
            // Visibility must stay monotone even if delays differ.
            let vis = ev
                .last()
                .map(|&(t, _)| t.max(visible_at))
                .unwrap_or(visible_at);
            ev.push((vis, value));
            true
        } else {
            false
        }
    }
}

/// Per-virtual-worker incumbent handle. `now` is advanced by the simulator
/// before each `process()` call; the worker sees the global value delayed
/// by the fabric, plus its own submissions immediately.
pub struct SimIncumbent {
    timeline: Rc<Timeline>,
    /// Dissemination delay for values travelling to *other* workers.
    delay_ns: u64,
    now: Cell<u64>,
    own: Cell<i64>,
}

impl SimIncumbent {
    pub fn new(timeline: Rc<Timeline>, delay_ns: u64) -> Self {
        SimIncumbent {
            timeline,
            delay_ns,
            now: Cell::new(0),
            own: Cell::new(i64::MAX),
        }
    }

    /// Advance this worker's clock (simulator-internal).
    pub fn set_now(&self, t: u64) {
        self.now.set(t);
    }
}

impl Incumbent for SimIncumbent {
    fn get(&self) -> i64 {
        self.timeline.visible_at(self.now.get()).min(self.own.get())
    }

    fn submit(&self, value: i64) -> bool {
        self.own.set(self.own.get().min(value));
        self.timeline.submit(self.now.get() + self.delay_ns, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_hides_fresh_bounds() {
        let tl = Rc::new(Timeline::default());
        let a = SimIncumbent::new(Rc::clone(&tl), 1_000);
        let b = SimIncumbent::new(Rc::clone(&tl), 1_000);
        a.set_now(5_000);
        b.set_now(5_000);
        assert!(a.submit(100));
        // The submitter sees its own bound immediately …
        assert_eq!(a.get(), 100);
        // … the other worker still sees nothing.
        assert_eq!(b.get(), i64::MAX);
        b.set_now(6_000);
        assert_eq!(b.get(), 100);
    }

    #[test]
    fn non_improving_submissions_are_rejected() {
        let tl = Rc::new(Timeline::default());
        let a = SimIncumbent::new(Rc::clone(&tl), 0);
        a.set_now(1);
        assert!(a.submit(50));
        assert!(!a.submit(70));
        assert!(a.submit(49));
        assert_eq!(tl.global_min(), 49);
    }

    #[test]
    fn visibility_is_monotone() {
        let tl = Rc::new(Timeline::default());
        let a = SimIncumbent::new(Rc::clone(&tl), 10_000);
        let b = SimIncumbent::new(Rc::clone(&tl), 0);
        a.set_now(100);
        a.submit(90); // visible at 10_100
        b.set_now(200);
        b.submit(80); // would be visible at 200, clamped to ≥ 10_100
        assert_eq!(tl.visible_at(9_999), i64::MAX);
        assert_eq!(tl.visible_at(10_100), 80);
    }
}
