//! Branch-and-bound incumbent with virtual-time dissemination delay.
//!
//! The fabric replays one of the three [`BoundPolicy`] variants in virtual
//! time:
//!
//! * `Immediate` — the original flat model: an improvement becomes visible
//!   to every other worker after one uniform delay (the eager broadcast
//!   the paper calls unrealistically cheap at scale), billed at one fabric
//!   message per off-node worker;
//! * `Periodic { every }` — the value travels like `Immediate`, but each
//!   worker reads a *cached* copy refreshed every `every` processed nodes
//!   (one fabric pull per off-node refresh);
//! * `Hierarchical` — the value climbs the node-leader broadcast tree
//!   ([`BroadcastTree`]): per-level intra-node hops priced at
//!   `cross_level_ns`, one leader-to-leader fabric hop priced by remote
//!   ring (`remote_latency × level_hop_factor^(ring−1)`), so delivery
//!   delay is monotone in [`MachineTopology::distance`] — and the message
//!   bill drops to one per remote *leader*.
//!
//! Stale bounds are sound (they only prune less); the fabric additionally
//! counts how many node expansions ran under a bound worse than the best
//! value already submitted — the "wasted work" axis of the
//! `bound_ablation` trade-off.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use macs_runtime::{Incumbent, MachineTopology};
use macs_search::{BoundPolicy, BroadcastTree, RefreshGate};

use crate::cost::CostModel;

/// One submitted improvement: virtual submission instant, submitting
/// worker, value. Values are strictly decreasing along the list.
type BoundEvent = (u64, usize, i64);

/// The shared bound-dissemination fabric of one simulation: every
/// improvement ever submitted, plus the policy machinery that decides when
/// each virtual worker gets to see it.
pub struct BoundFabric {
    tree: BroadcastTree,
    policy: BoundPolicy,
    /// Uniform one-way delay of the flat (`Immediate`/`Periodic`) model.
    flat_delay_ns: u64,
    /// Per-level prices of the hierarchical path (`cross_level_ns`,
    /// `remote_latency_for`).
    costs: CostModel,
    events: RefCell<Vec<BoundEvent>>,
    /// Fabric messages spent disseminating bounds (broadcasts + pulls).
    msgs: Cell<u64>,
    /// Improvements accepted.
    updates: Cell<u64>,
}

impl BoundFabric {
    pub fn new(
        topo: &MachineTopology,
        policy: BoundPolicy,
        flat_delay_ns: u64,
        costs: &CostModel,
    ) -> Self {
        BoundFabric {
            tree: BroadcastTree::new(topo),
            policy,
            flat_delay_ns,
            costs: *costs,
            events: RefCell::new(Vec::new()),
            msgs: Cell::new(0),
            updates: Cell::new(0),
        }
    }

    pub fn policy(&self) -> BoundPolicy {
        self.policy
    }

    /// Fabric messages charged to bound dissemination so far.
    pub fn messages(&self) -> u64 {
        self.msgs.get()
    }

    /// Improvements accepted so far.
    pub fn updates(&self) -> u64 {
        self.updates.get()
    }

    /// Best value submitted so far regardless of visibility.
    pub fn global_min(&self) -> i64 {
        self.events
            .borrow()
            .last()
            .map(|&(_, _, v)| v)
            .unwrap_or(i64::MAX)
    }

    /// Best value *submitted* at or before `t` (what a zero-delay fabric
    /// would show) — the reference stale-bound expansions are counted
    /// against.
    pub fn submitted_min(&self, t: u64) -> i64 {
        let ev = self.events.borrow();
        // Newest-first: submission times are non-decreasing.
        for &(at, _, v) in ev.iter().rev() {
            if at <= t {
                return v;
            }
        }
        i64::MAX
    }

    /// One-way dissemination delay from `origin` to `dest` under the
    /// fabric's policy.
    pub fn delay_ns(&self, origin: usize, dest: usize) -> u64 {
        if origin == dest {
            return 0;
        }
        match self.policy {
            BoundPolicy::Immediate | BoundPolicy::Periodic { .. } => self.flat_delay_ns,
            BoundPolicy::Hierarchical => {
                let path = self.tree.path(origin, dest);
                let intra = self.costs.cross_level_ns * path.intra_hops as u64;
                let fabric = if path.fabric_ring == 0 {
                    0
                } else {
                    self.costs.remote_latency_for(path.fabric_ring)
                };
                intra + fabric
            }
        }
    }

    /// Best value visible to `dest` at time `t`.
    pub fn visible_to(&self, dest: usize, t: u64) -> i64 {
        let ev = self.events.borrow();
        let mut best = i64::MAX;
        // Values decrease along the list, so scan newest-first and stop at
        // the first delivered event — everything older is worse.
        for &(at, origin, v) in ev.iter().rev() {
            if at.saturating_add(self.delay_ns(origin, dest)) <= t {
                best = v;
                break;
            }
        }
        best
    }

    /// Submit an improvement from `origin` at virtual time `t`; bills the
    /// policy's broadcast fan-out. Returns `true` iff it strictly improved
    /// the best submitted value.
    fn submit(&self, origin: usize, t: u64, value: i64) -> bool {
        let mut ev = self.events.borrow_mut();
        if ev.last().map(|&(_, _, v)| value < v).unwrap_or(true) {
            // Submission instants must stay monotone for submitted_min's
            // newest-first scan.
            let at = ev.last().map(|&(a, _, _)| a.max(t)).unwrap_or(t);
            ev.push((at, origin, value));
            self.updates.set(self.updates.get() + 1);
            let fabric_msgs = match self.policy {
                BoundPolicy::Immediate => self.tree.eager_fanout(origin).fabric_msgs,
                // Write-through to the root cell; readers pay at refresh.
                BoundPolicy::Periodic { .. } => (self.tree.topology().node_of(origin) != 0) as u64,
                BoundPolicy::Hierarchical => self.tree.hierarchical_fanout(origin).fabric_msgs,
            };
            self.msgs.set(self.msgs.get() + fabric_msgs);
            true
        } else {
            false
        }
    }

    /// Bill one fabric pull (a periodic refresh crossing the fabric).
    fn charge_pull(&self, reader: usize) {
        if self.tree.topology().node_of(reader) != 0 {
            self.msgs.set(self.msgs.get() + 1);
        }
    }
}

impl std::fmt::Debug for BoundFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundFabric")
            .field("policy", &self.policy)
            .field("events", &self.events.borrow().len())
            .field("msgs", &self.msgs.get())
            .finish()
    }
}

/// Per-virtual-worker incumbent handle. `now` is advanced by the simulator
/// before each `process()` call; the worker sees the global value delayed
/// by the fabric (and, under `Periodic`, by its own refresh cadence), plus
/// its own submissions immediately.
pub struct SimIncumbent {
    fabric: Rc<BoundFabric>,
    me: usize,
    now: Cell<u64>,
    own: Cell<i64>,
    /// Periodic policy: the cached copy and its refresh cadence.
    cache: Cell<i64>,
    gate: RefreshGate,
    /// Bound this worker last pruned with (`MAX` until the first read) —
    /// drained by the simulator's stale-expansion accounting.
    last_seen: Cell<i64>,
}

impl SimIncumbent {
    pub fn new(fabric: Rc<BoundFabric>, me: usize) -> Self {
        SimIncumbent {
            fabric,
            me,
            now: Cell::new(0),
            own: Cell::new(i64::MAX),
            cache: Cell::new(i64::MAX),
            gate: RefreshGate::new(),
            last_seen: Cell::new(i64::MAX),
        }
    }

    /// Advance this worker's clock (simulator-internal).
    pub fn set_now(&self, t: u64) {
        self.now.set(t);
    }

    /// The bound the worker last read, resetting the record
    /// (simulator-internal, for stale-expansion accounting).
    pub fn take_last_seen(&self) -> i64 {
        self.last_seen.replace(i64::MAX)
    }
}

impl Incumbent for SimIncumbent {
    fn get(&self) -> i64 {
        let visible = match self.fabric.policy() {
            BoundPolicy::Periodic { every } => {
                if self.gate.due(every) {
                    self.fabric.charge_pull(self.me);
                    let v = self.fabric.visible_to(self.me, self.now.get());
                    self.cache.set(v);
                    v
                } else {
                    self.cache.get()
                }
            }
            _ => self.fabric.visible_to(self.me, self.now.get()),
        };
        let v = visible.min(self.own.get());
        self.last_seen.set(v);
        v
    }

    fn submit(&self, value: i64) -> bool {
        self.own.set(self.own.get().min(value));
        self.fabric.submit(self.me, self.now.get(), value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(policy: BoundPolicy, delay: u64) -> Rc<BoundFabric> {
        let topo = MachineTopology::try_clustered(8, 4).unwrap();
        Rc::new(BoundFabric::new(
            &topo,
            policy,
            delay,
            &CostModel::woodcrest_ib(1_000),
        ))
    }

    #[test]
    fn delay_hides_fresh_bounds() {
        let fb = fabric(BoundPolicy::Immediate, 1_000);
        let a = SimIncumbent::new(Rc::clone(&fb), 0);
        let b = SimIncumbent::new(Rc::clone(&fb), 4);
        a.set_now(5_000);
        b.set_now(5_000);
        assert!(a.submit(100));
        // The submitter sees its own bound immediately …
        assert_eq!(a.get(), 100);
        // … the other worker still sees nothing.
        assert_eq!(b.get(), i64::MAX);
        b.set_now(6_000);
        assert_eq!(b.get(), 100);
    }

    #[test]
    fn non_improving_submissions_are_rejected() {
        let fb = fabric(BoundPolicy::Immediate, 0);
        let a = SimIncumbent::new(Rc::clone(&fb), 0);
        a.set_now(1);
        assert!(a.submit(50));
        assert!(!a.submit(70));
        assert!(a.submit(49));
        assert_eq!(fb.global_min(), 49);
        assert_eq!(fb.updates(), 2);
    }

    #[test]
    fn periodic_reads_are_cached_between_refreshes() {
        let fb = fabric(BoundPolicy::Periodic { every: 3 }, 0);
        let a = SimIncumbent::new(Rc::clone(&fb), 0);
        let b = SimIncumbent::new(Rc::clone(&fb), 4);
        b.set_now(10);
        assert_eq!(b.get(), i64::MAX, "refresh before any submission");
        a.set_now(20);
        a.submit(7);
        b.set_now(30);
        assert_eq!(b.get(), i64::MAX, "cached: cadence not yet elapsed");
        assert_eq!(b.get(), i64::MAX);
        assert_eq!(b.get(), 7, "third read refreshes");
    }

    #[test]
    fn hierarchical_delivery_is_monotone_in_distance() {
        // 2 clusters × 2 nodes × 2 sockets × 2 cores, fabric above level 2.
        let topo = MachineTopology::try_new(&[2, 2, 2, 2], 2).unwrap();
        let fb = BoundFabric::new(
            &topo,
            BoundPolicy::Hierarchical,
            2_000,
            &CostModel::woodcrest_ib(1_000),
        );
        for origin in [0usize, 5, 13] {
            let mut by_distance: Vec<(usize, u64)> = (0..topo.total_workers())
                .map(|w| (topo.distance(origin, w), fb.delay_ns(origin, w)))
                .collect();
            by_distance.sort();
            for pair in by_distance.windows(2) {
                assert!(
                    pair[0].1 <= pair[1].1,
                    "delay must not shrink with distance: {pair:?} from {origin}"
                );
            }
            // Strictly increasing across distinct distances.
            for d in 1..topo.levels() {
                let at = |dd| {
                    by_distance
                        .iter()
                        .find(|&&(x, _)| x == dd)
                        .map(|&(_, ns)| ns)
                        .unwrap()
                };
                assert!(at(d) < at(d + 1), "distance {d} vs {} from {origin}", d + 1);
            }
        }
    }

    #[test]
    fn hierarchical_bills_leaders_not_workers() {
        let topo = MachineTopology::try_clustered(16, 4).unwrap(); // 4 nodes
        let costs = CostModel::woodcrest_ib(1_000);
        let h = BoundFabric::new(&topo, BoundPolicy::Hierarchical, 2_000, &costs);
        let i = BoundFabric::new(&topo, BoundPolicy::Immediate, 2_000, &costs);
        assert!(h.submit(5, 0, 100));
        assert!(i.submit(5, 0, 100));
        assert_eq!(h.messages(), 3, "one per remote leader");
        assert_eq!(i.messages(), 12, "one per remote worker");
    }
}
