//! The discrete-event drivers: MaCS and PaCCS balancers in virtual time.
//!
//! # The event core, at scale
//!
//! The simulator is built to run 64k–262k virtual workers in minutes, so
//! every per-event and per-worker cost is bounded:
//!
//! * **Indexed min-heap** (`EventHeap`): each worker has at most one
//!   live event, keyed `(time, seq)` with a globally monotone sequence
//!   id — a strict total order, so same-time events fire in schedule
//!   order and every same-seed run replays bit-identically (the
//!   `prop_determinism` suite pins this via the event-trace hash).
//!   Rescheduling updates the worker's slot in place; no stale entries
//!   accumulate, and pop order equals the old lazy-deletion heap's order
//!   over live events.
//! * **Slot arena** (`SlotArena`): work items live in one flat `u64`
//!   buffer of fixed `slot_words` slots; pools and steal responses move
//!   `u32` slot ids, not boxed allocations.
//! * **Lazy rings**: victim rings are O(1) range views computed from the
//!   topology's mixed-radix arithmetic ([`MachineTopology::peers_at`],
//!   [`MachineTopology::node_ring_at`]) — materialising them per worker
//!   would cost O(workers²) memory, tens of GB at 64k cores.
//! * **Lazy processors**: a worker's real search kernel is only built on
//!   the first node it actually expands; at 64k cores most workers never
//!   touch the (small) tree.

use std::collections::VecDeque;
use std::rc::Rc;

use macs_runtime::{
    BoundPolicy, ChunkPolicy, MachineTopology, PhaseTimers, PollPolicy, ProcCtx, Processor,
    ReleasePolicy, ScanOrder, SplitMix64, Step, Topology, VictimOrder, VictimSelect, WorkSink,
    WorkerState,
};
use macs_search::{AdaptiveBatch, WorkBatch};
use macs_topo::{NodeRing, PeerRing};

use crate::cost::{CostModel, CostModelError, NodeCost};
use crate::fabric::{FabricModel, NetFabric};
use crate::incumbent::{BoundFabric, SimIncumbent};
use crate::report::{SimReport, SimWorkerStats};

/// Which balancer protocol to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimMode {
    /// MaCS: split pools, one-sided scans, mailbox + in-place response.
    Macs,
    /// PaCCS: two-sided request/reply served at node granularity,
    /// neighbourhood sweeps, controller-routed bounds.
    Paccs,
}

/// Simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    pub topology: MachineTopology,
    pub costs: CostModel,
    pub release: ReleasePolicy,
    pub poll: PollPolicy,
    pub victim: VictimSelect,
    /// Victim ordering: level-by-level with affinity, or the flat scan.
    pub scan_order: ScanOrder,
    pub max_steal_chunk: u64,
    /// Steal-chunk granularity: the flat `max_steal_chunk` cap
    /// (`Static`), a distance-scaled reservation (small same-socket
    /// chunks, bigger cross-cluster ones — and the per-level latencies
    /// plus per-byte transfer cost price those big far chunks honestly),
    /// or `Adaptive`, which also tunes the response batch online from
    /// reply thinness. See [`ChunkPolicy`].
    pub chunk_policy: ChunkPolicy,
    /// Maximum number of victim pools contributing chunks to fill one
    /// remote steal response (1 = single-chunk replies; the response's
    /// total size stays capped at the per-steal cap either way). Under
    /// `ChunkPolicy::Adaptive` this is only the starting point — each
    /// victim's reply-thinness EWMA takes over.
    pub response_batch: u32,
    pub remote_node_attempts: u32,
    /// When incumbent improvements reach other virtual workers:
    /// `Immediate` (flat eager broadcast — the default, and the
    /// pre-hierarchical behaviour), `Periodic` (cached reads), or
    /// `Hierarchical` (node-leader broadcast tree with per-level delivery
    /// delay). See [`crate::incumbent::BoundFabric`].
    pub bound_policy: BoundPolicy,
    /// Flat incumbent visibility delay (`Immediate`/`Periodic`); `None`
    /// derives it from the fabric latency (1× for MaCS' global cell, 2×
    /// for PaCCS' controller hop). `Hierarchical` prices each delivery by
    /// its path through the topology instead.
    pub bound_delay_ns: Option<u64>,
    /// How remote steal-plane messages are priced: flat per-ring latency,
    /// or finite link capacity with FIFO queueing (steal storms pay
    /// backpressure instead of flat latency). See [`FabricModel`].
    pub fabric: FabricModel,
    pub seed: u64,
}

impl SimConfig {
    pub fn new(topology: impl Into<MachineTopology>) -> Self {
        SimConfig {
            topology: topology.into(),
            costs: CostModel::default(),
            release: ReleasePolicy::default(),
            poll: PollPolicy::default(),
            victim: VictimSelect::Greedy,
            scan_order: ScanOrder::default(),
            max_steal_chunk: 16,
            chunk_policy: ChunkPolicy::default(),
            response_batch: 2,
            remote_node_attempts: 2,
            bound_policy: BoundPolicy::Immediate,
            bound_delay_ns: None,
            fabric: FabricModel::default(),
            seed: 0x51D,
        }
    }

    /// The paper's cluster shape at `total` virtual cores (4 per node).
    pub fn paper_cluster(total: usize) -> Self {
        SimConfig::new(Topology::clustered(total, 4))
    }

    /// Replace the cost model with one loaded from a `calibrate`-emitted
    /// (or hand-written) model file. Every consumer — node charging,
    /// steal pricing, the contention fabric's wire constants, bound
    /// propagation — reads from the loaded model; nothing falls back to
    /// the built-in constants.
    pub fn load_cost_model(&mut self, path: &std::path::Path) -> Result<(), CostModelError> {
        self.costs = CostModel::load(path)?;
        Ok(())
    }

    /// Builder form of [`SimConfig::load_cost_model`].
    pub fn with_cost_model(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }
}

// ---------------------------------------------------------------------------
// event heap
// ---------------------------------------------------------------------------

const ABSENT: u32 = u32::MAX;

/// Indexed binary min-heap with one slot per worker, keyed by
/// `(due instant, monotone sequence id)`. The sequence id is bumped on
/// every schedule, so keys are unique and the pop order is a strict,
/// reproducible total order; rescheduling a worker updates its key in
/// place (O(log n)), which is the event-superseding rule the old
/// epoch-tagged `BinaryHeap` expressed with lazy deletion.
struct EventHeap {
    /// Worker ids in heap order.
    heap: Vec<u32>,
    /// `pos[w]` = index of `w` in `heap`, or [`ABSENT`].
    pos: Vec<u32>,
    /// `key[w]` = (due time, sequence id) of `w`'s live event.
    key: Vec<(u64, u64)>,
}

impl EventHeap {
    fn new(n: usize) -> Self {
        assert!(n < ABSENT as usize, "too many workers for the event heap");
        EventHeap {
            heap: Vec::with_capacity(n),
            pos: vec![ABSENT; n],
            key: vec![(0, 0); n],
        }
    }

    #[inline]
    fn less(&self, a: u32, b: u32) -> bool {
        self.key[a as usize] < self.key[b as usize]
    }

    /// Insert or reschedule worker `w`'s (single) event.
    fn schedule(&mut self, w: usize, t: u64, seq: u64) {
        self.key[w] = (t, seq);
        let i = self.pos[w];
        if i == ABSENT {
            let i = self.heap.len();
            self.heap.push(w as u32);
            self.pos[w] = i as u32;
            self.sift_up(i);
        } else {
            let i = i as usize;
            if !self.sift_up(i) {
                self.sift_down(i);
            }
        }
    }

    fn pop(&mut self) -> Option<(u64, usize)> {
        let &w = self.heap.first()?;
        let w = w as usize;
        let last = self.heap.pop().expect("non-empty");
        self.pos[w] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0);
        }
        Some((self.key[w].0, w))
    }

    #[inline]
    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a as u32;
        self.pos[self.heap[b] as usize] = b as u32;
    }

    fn sift_up(&mut self, mut i: usize) -> bool {
        let mut moved = false;
        while i > 0 {
            let p = (i - 1) / 2;
            if self.less(self.heap[i], self.heap[p]) {
                self.swap(i, p);
                i = p;
                moved = true;
            } else {
                break;
            }
        }
        moved
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            if l >= self.heap.len() {
                break;
            }
            let r = l + 1;
            let c = if r < self.heap.len() && self.less(self.heap[r], self.heap[l]) {
                r
            } else {
                l
            };
            if self.less(self.heap[c], self.heap[i]) {
                self.swap(i, c);
                i = c;
            } else {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// slot arena
// ---------------------------------------------------------------------------

/// Arena of fixed-size work-item slots (`slot_words` `u64`s each — the
/// `Processor` contract). Pools, mailboxes and steal batches move `u32`
/// slot ids; the only copies are into a slot at stage time and out into
/// the worker's in-hand buffer at adoption.
struct SlotArena {
    words: usize,
    data: Vec<u64>,
    free_ids: Vec<u32>,
    live: u64,
    peak: u64,
}

impl SlotArena {
    fn new(words: usize) -> Self {
        SlotArena {
            words: words.max(1),
            data: Vec::new(),
            free_ids: Vec::new(),
            live: 0,
            peak: 0,
        }
    }

    fn alloc(&mut self, item: &[u64]) -> u32 {
        assert!(item.len() <= self.words, "work item exceeds slot_words");
        let id = match self.free_ids.pop() {
            Some(id) => id,
            None => {
                let id = (self.data.len() / self.words) as u32;
                assert!(id < ABSENT, "slot arena overflow");
                self.data.resize(self.data.len() + self.words, 0);
                id
            }
        };
        let at = id as usize * self.words;
        self.data[at..at + item.len()].copy_from_slice(item);
        self.data[at + item.len()..at + self.words].fill(0);
        self.live += 1;
        self.peak = self.peak.max(self.live);
        id
    }

    #[inline]
    fn get(&self, id: u32) -> &[u64] {
        let at = id as usize * self.words;
        &self.data[at..at + self.words]
    }

    #[inline]
    fn release(&mut self, id: u32) {
        self.live -= 1;
        self.free_ids.push(id);
    }
}

// ---------------------------------------------------------------------------
// virtual pool
// ---------------------------------------------------------------------------

/// A worker pool in simulator form: a deque of arena slot ids (front =
/// tail = oldest) plus the split index; the first `split` items are
/// shared/stealable.
#[derive(Debug, Default)]
struct VPool {
    ids: VecDeque<u32>,
    split: usize,
}

impl VPool {
    fn push(&mut self, id: u32) {
        self.ids.push_back(id);
    }

    fn pop_private(&mut self) -> Option<u32> {
        if self.ids.len() > self.split {
            self.ids.pop_back()
        } else {
            None
        }
    }

    /// PaCCS-style pop (no split discipline).
    fn pop_any(&mut self) -> Option<u32> {
        let it = self.ids.pop_back();
        self.split = self.split.min(self.ids.len());
        it
    }

    fn private(&self) -> usize {
        self.ids.len() - self.split
    }

    fn shared(&self) -> usize {
        self.split
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn release(&mut self, k: usize) -> usize {
        let m = k.min(self.private());
        self.split += m;
        m
    }

    fn reacquire(&mut self, k: usize) -> usize {
        let m = k.min(self.split);
        self.split -= m;
        m
    }

    /// Steal the `m` oldest shared items.
    fn steal(&mut self, max: usize) -> Vec<u32> {
        let m = max.min(self.split);
        self.split -= m;
        self.ids.drain(..m).collect()
    }

    /// PaCCS-style steal: oldest items regardless of the split.
    fn steal_any(&mut self, max: usize) -> Vec<u32> {
        let m = max.min(self.ids.len());
        self.split = self.split.saturating_sub(m);
        self.ids.drain(..m).collect()
    }
}

// ---------------------------------------------------------------------------
// shared worker plumbing
// ---------------------------------------------------------------------------

/// A steal response travelling as arena slot ids: the id-level mirror of
/// [`WorkBatch`] (whose `share_ceil`/`share_floor`/`thin_threshold`
/// arithmetic the assembly sites still use).
#[derive(Debug, Default)]
struct SimBatch {
    ids: Vec<u32>,
    chunks: u32,
}

impl SimBatch {
    fn from_chunk(ids: Vec<u32>) -> Self {
        let chunks = if ids.is_empty() { 0 } else { 1 };
        SimBatch { ids, chunks }
    }

    fn push_chunk(&mut self, ids: Vec<u32>) {
        if !ids.is_empty() {
            self.chunks += 1;
            self.ids.extend(ids);
        }
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    fn chunks(&self) -> usize {
        self.chunks as usize
    }
}

enum Resp {
    /// A steal reply: the (possibly multi-chunk) batch and the serving
    /// victim, so the thief can account distance and affinity.
    Work(SimBatch, usize),
    /// A refusal, with the refusing victim (the thief drops any affinity
    /// pinned to it, mirroring the threaded runtime).
    Fail(usize),
}

impl Resp {
    fn victim(&self) -> usize {
        match self {
            Resp::Work(_, v) | Resp::Fail(v) => *v,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Boot,
    Finish,
    ApplySteal {
        victim: usize,
    },
    Wait,
    /// Injected service wake for a parked PaCCS victim: serve the request
    /// queue, then re-park.
    Serve,
    Idle {
        round: u32,
    },
}

/// Event-trace tag: phase discriminant plus its payload, mixed into the
/// determinism trace hash.
fn phase_tag(p: Phase) -> u64 {
    match p {
        Phase::Boot => 0,
        Phase::Finish => 1,
        Phase::ApplySteal { victim } => 2 | ((victim as u64) << 3),
        Phase::Wait => 3,
        Phase::Serve => 4,
        Phase::Idle { round } => 5 | ((round as u64) << 3),
    }
}

/// One FNV-1a step over a `u64`.
#[inline]
fn fnv1a(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

struct SimSink<'a> {
    arena: &'a mut SlotArena,
    staged: &'a mut Vec<u32>,
    solutions: &'a mut u64,
    cancelled: &'a mut bool,
}

impl WorkSink for SimSink<'_> {
    fn push(&mut self, item: &[u64]) {
        self.staged.push(self.arena.alloc(item));
    }
    fn solution(&mut self) {
        *self.solutions += 1;
    }
    /// Stage a cancellation request (first-solution race): the winner flag
    /// is raised at this node's virtual *completion* instant, in
    /// [`Sim::finish_node`].
    fn cancel(&mut self) {
        *self.cancelled = true;
    }
}

/// A raised winner flag: the virtual instant the winning node completed
/// and where it ran. Every other worker *observes* it only after the flag
/// has travelled the hierarchical winner route (node leader → remote
/// leaders → their nodes, priced per level like a hierarchical bound
/// update) — nodes started in that window are the race's overhead.
#[derive(Clone, Copy, Debug)]
struct Win {
    t: u64,
}

struct VW<P: Processor> {
    pool: VPool,
    /// The in-hand work item (`slot_words` long; live iff `has_cur`).
    /// Kept as an owned buffer, not an arena slot: `process()` mutates it
    /// in place while the sink allocates new slots from the same arena.
    cur: Box<[u64]>,
    has_cur: bool,
    staged: Vec<u32>,
    staged_step: Step,
    staged_solutions: u64,
    staged_cancel: bool,
    /// The real search kernel — built lazily on the first node this
    /// worker expands (at 64k+ cores most workers never get one).
    proc: Option<P>,
    inc: Rc<SimIncumbent>,
    timers: PhaseTimers,
    stats: SimWorkerStats,
    rng: SplitMix64,
    phase: Phase,
    charge_state: WorkerState,
    cursor: u64,
    since_release: u32,
    since_poll: u32,
    poll_interval: u32,
    /// MaCS: at most one pending remote request (thief, arrival time).
    pending_req: Option<(usize, u64)>,
    /// PaCCS: a queue of pending requests.
    req_queue: VecDeque<(usize, u64)>,
    inbox: Option<Resp>,
    /// PaCCS: position in the victim sweep.
    sweep_pos: usize,
    /// Last-successful-steal affinity per distance ring.
    vorder: VictimOrder,
    /// Response-batch tuner for [`ChunkPolicy::Adaptive`] (victim side).
    adaptive: AdaptiveBatch,
}

// ---------------------------------------------------------------------------
// the simulator
// ---------------------------------------------------------------------------

struct Sim<'c, P: Processor, F: FnMut(usize) -> P> {
    cfg: &'c SimConfig,
    mode: SimMode,
    slot_words: usize,
    factory: F,
    workers: Vec<VW<P>>,
    arena: SlotArena,
    events: EventHeap,
    /// Monotone event sequence — the deterministic tie-break.
    seq: u64,
    outstanding: i64,
    fabric: Rc<BoundFabric>,
    /// The steal-plane message fabric (latency or contention pricing,
    /// plus the conservation books).
    net: NetFabric,
    /// The winner flag of a first-solution race, once raised.
    win: Option<Win>,
    /// Virtual instant at which each worker observes the winner flag
    /// (`u64::MAX` until a win; filled from the hierarchical route's
    /// per-level delivery delay when the flag is raised).
    win_seen: Vec<u64>,
    /// Prices the winner flag's delivery path (always the hierarchical
    /// node-leader route, independent of the *bound* policy under test).
    winner_fabric: BoundFabric,
    /// Work-unit conservation counters (see `SimReport`).
    nodes_after_win: u64,
    abandoned: u64,
    completed: u64,
    end_time: Option<u64>,
    /// Events dispatched (one per heap pop).
    n_events: u64,
    /// FNV-1a fold of `(t, worker, phase tag)` per dispatched event — the
    /// bit-identical replay witness.
    trace: u64,
}

impl<'c, P: Processor, F: FnMut(usize) -> P> Sim<'c, P, F> {
    fn schedule(&mut self, wi: usize, t: u64, state: WorkerState, phase: Phase) {
        self.workers[wi].charge_state = state;
        self.workers[wi].phase = phase;
        self.seq += 1;
        self.events.schedule(wi, t, self.seq);
    }

    /// Direct charge: `ns` of `state` at the worker's current instant.
    fn charge(&mut self, wi: usize, state: WorkerState, ns: u64, now: &mut u64) {
        self.workers[wi].stats.state_ns[state as usize] += ns;
        *now += ns;
        self.workers[wi].cursor = *now;
    }

    fn node_cost(&mut self, wi: usize) -> u64 {
        match self.cfg.costs.node {
            NodeCost::Fixed { ns, jitter_pct } => {
                if jitter_pct == 0 {
                    ns
                } else {
                    let j = jitter_pct as u64;
                    let f = 100 - j + self.workers[wi].rng.below(2 * j + 1);
                    ns * f / 100
                }
            }
            NodeCost::Measured { .. } => 0, // measured around process()
        }
    }

    /// Run the real processor on the current item, staging its effects;
    /// schedule the Finish event.
    fn start_node(&mut self, wi: usize, now: u64) {
        let mut cost = self.node_cost(wi);
        let node_id = self.cfg.topology.node_of(wi);
        let t_bound = now + cost;
        // Stale-expansion reference, snapshotted *before* the node runs so
        // a solution this very step submits does not count its own
        // discovering expansion as stale.
        let ref_min = self.fabric.submitted_min(t_bound);
        let t_real = std::time::Instant::now();
        let (step, seen) = {
            let Sim {
                workers,
                arena,
                factory,
                ..
            } = self;
            let w = &mut workers[wi];
            let inc = Rc::clone(&w.inc);
            inc.set_now(t_bound);
            debug_assert!(w.has_cur, "start_node without current");
            let step = {
                let mut sink = SimSink {
                    arena,
                    staged: &mut w.staged,
                    solutions: &mut w.staged_solutions,
                    cancelled: &mut w.staged_cancel,
                };
                let mut ctx = ProcCtx::new(wi, node_id, &mut w.timers, &*inc, &mut sink);
                w.proc
                    .get_or_insert_with(|| factory(wi))
                    .process(&mut w.cur, &mut ctx)
            };
            (step, inc.take_last_seen())
        };
        if let NodeCost::Measured { num, den } = self.cfg.costs.node {
            cost = (t_real.elapsed().as_nanos() as u64).max(50) * num / den.max(1);
        }
        self.workers[wi].staged_step = step;
        // Wasted-work accounting: the node ran under a bound worse than
        // the best value already *submitted* somewhere — an expansion an
        // ideal zero-delay fabric might have pruned.
        if seen > ref_min {
            self.workers[wi].stats.stale_bound_nodes += 1;
        }
        self.schedule(wi, now + cost, WorkerState::Working, Phase::Finish);
    }

    /// Copy an arena item into `wi`'s hand and free the slot.
    fn adopt(&mut self, wi: usize, id: u32) {
        let Sim { workers, arena, .. } = self;
        let w = &mut workers[wi];
        w.cur.copy_from_slice(arena.get(id));
        w.has_cur = true;
        arena.release(id);
    }

    /// Has `wi` seen the winner flag by virtual instant `t`?
    fn observed_win(&self, wi: usize, t: u64) -> bool {
        self.win.is_some() && self.win_seen[wi] <= t
    }

    /// The per-steal reservation cap for workers `a` and `b` — the chunk
    /// policy's decision point (distance-scaled policies grant far
    /// thieves bigger reservations; the transfer cost and per-level
    /// latency then price those chunks).
    fn chunk_cap(&self, a: usize, b: usize) -> u64 {
        let topo = &self.cfg.topology;
        self.cfg
            .chunk_policy
            .cap_for(topo.distance(a, b), topo.levels(), self.cfg.max_steal_chunk)
    }

    /// Raise the winner flag at instant `t` from `origin` (first cancel
    /// wins) and price its delivery to every worker over the hierarchical
    /// node-leader route.
    fn raise_win(&mut self, origin: usize, t: u64) {
        if self.win.is_some() {
            return;
        }
        self.win = Some(Win { t });
        for (dest, seen) in self.win_seen.iter_mut().enumerate() {
            *seen = t.saturating_add(self.winner_fabric.delay_ns(origin, dest));
        }
    }

    /// Discard everything `wi` holds (pool + the item in hand): the
    /// abandon path of an observed win. Returns `true` if the whole
    /// computation just ended.
    fn drain_observed(&mut self, wi: usize, now: u64) -> bool {
        let Sim { workers, arena, .. } = self;
        let w = &mut workers[wi];
        let n = w.pool.len() as i64;
        for id in w.pool.ids.drain(..) {
            arena.release(id);
        }
        w.pool.split = 0;
        self.outstanding -= n;
        self.abandoned += n as u64;
        if std::mem::take(&mut w.has_cur) {
            self.outstanding -= 1;
            self.abandoned += 1;
        }
        if self.outstanding == 0 {
            self.end_time = Some(now);
            return true;
        }
        false
    }

    /// Apply the staged node results at its (virtual) completion instant.
    /// Returns `false` if the whole computation just ended.
    fn finish_node(&mut self, wi: usize, t: u64) -> bool {
        let mut now = t;
        {
            let w = &mut self.workers[wi];
            w.stats.items += 1;
            w.stats.solutions += w.staged_solutions;
            w.staged_solutions = 0;
        }
        // A staged cancellation raises the winner flag at this node's
        // completion instant; the winner itself observes immediately.
        if std::mem::take(&mut self.workers[wi].staged_cancel) {
            self.raise_win(wi, now);
        }
        if let Some(win) = self.win {
            if now > win.t {
                // This node was still being expanded when the race was
                // already decided — the dissemination lag's bill.
                self.nodes_after_win += 1;
            }
        }
        let staged: Vec<u32> = std::mem::take(&mut self.workers[wi].staged);
        if self.observed_win(wi, now) {
            // Children die before ever entering a pool; the unit in hand
            // completed if it was a leaf, and is abandoned mid-chain
            // otherwise.
            let w = &mut self.workers[wi];
            w.stats.pushes += staged.len() as u64;
            self.abandoned += staged.len() as u64;
            for id in staged {
                self.arena.release(id);
            }
            let w = &mut self.workers[wi];
            if w.staged_step == Step::Leaf {
                self.completed += 1;
            } else {
                self.abandoned += 1;
            }
            w.has_cur = false;
            self.outstanding -= 1;
        } else {
            self.outstanding += staged.len() as i64;
            let w = &mut self.workers[wi];
            for id in staged {
                w.pool.push(id);
                w.stats.pushes += 1;
            }
            if w.staged_step == Step::Leaf {
                w.has_cur = false;
                self.outstanding -= 1;
                self.completed += 1;
            }
        }
        if self.outstanding == 0 {
            self.end_time = Some(now);
            return false;
        }

        if self.mode == SimMode::Macs {
            // Release policy.
            self.workers[wi].since_release += 1;
            if self.workers[wi].since_release >= self.cfg.release.interval {
                self.workers[wi].since_release = 0;
                let pol = &self.cfg.release;
                let (private, shared) = {
                    let p = &self.workers[wi].pool;
                    (p.private() as u64, p.shared() as u64)
                };
                if private > pol.min_private && shared < pol.share_target {
                    let k = ((private - pol.min_private) / 2).max(1);
                    let release_ns = self.cfg.costs.release_ns;
                    self.charge(wi, WorkerState::Releasing, release_ns, &mut now);
                    let m = self.workers[wi].pool.release(k as usize);
                    self.workers[wi].stats.releases += 1;
                    self.workers[wi].stats.released_items += m as u64;
                }
            }
            // Dynamic polling.
            self.workers[wi].since_poll += 1;
            if self.workers[wi].since_poll >= self.workers[wi].poll_interval {
                self.workers[wi].since_poll = 0;
                let hit = self.serve_request_macs(wi, &mut now);
                if !hit {
                    let poll_ns = self.cfg.costs.poll_ns;
                    self.charge(wi, WorkerState::Poll, poll_ns, &mut now);
                    self.workers[wi].stats.polls += 1;
                }
                self.workers[wi].poll_interval =
                    self.cfg.poll.next(self.workers[wi].poll_interval, hit);
            }
        } else {
            // PaCCS: MPI progress — a message check every node completion,
            // then serve whatever has arrived.
            let poll_ns = self.cfg.costs.poll_ns;
            self.charge(wi, WorkerState::Poll, poll_ns, &mut now);
            self.serve_requests_paccs(wi, &mut now);
        }

        if self.workers[wi].has_cur {
            self.start_node(wi, now);
        } else {
            self.enter_acquire(wi, now);
        }
        true
    }

    /// Restore step 1: own pool (private, then shared via reacquire).
    fn enter_acquire(&mut self, wi: usize, mut now: u64) {
        if self.observed_win(wi, now) {
            // Drain everything we own and wait out the termination.
            if self.drain_observed(wi, now) {
                return;
            }
            self.enter_idle(wi, now, 0);
            return;
        }
        let pool_op = self.cfg.costs.pool_op_ns;
        self.charge(wi, WorkerState::Searching, pool_op, &mut now);
        let popped = if self.mode == SimMode::Macs {
            self.workers[wi].pool.pop_private()
        } else {
            self.workers[wi].pool.pop_any()
        };
        if let Some(id) = popped {
            self.adopt(wi, id);
            self.start_node(wi, now);
            return;
        }
        if self.mode == SimMode::Macs && self.workers[wi].pool.shared() > 0 {
            let release_ns = self.cfg.costs.release_ns;
            self.charge(wi, WorkerState::Searching, release_ns, &mut now);
            let chunk = self.cfg.max_steal_chunk as usize;
            self.workers[wi].pool.reacquire(chunk);
            if let Some(id) = self.workers[wi].pool.pop_private() {
                self.adopt(wi, id);
                self.start_node(wi, now);
                return;
            }
        }
        match self.mode {
            SimMode::Macs => self.try_steal_macs(wi, now),
            SimMode::Paccs => self.sweep_paccs(wi, now),
        }
    }

    fn enter_idle(&mut self, wi: usize, now: u64, round: u32) {
        let base = self.cfg.costs.idle_backoff_ns.max(1);
        let backoff = base << round.min(6);
        self.schedule(wi, now + backoff, WorkerState::Idle, Phase::Idle { round });
    }

    // ----- victim rings (lazy O(1) views) -----------------------------------

    /// Number of local victim rings `wi` scans, nearest level first (flat
    /// scan: one ring of all co-located peers).
    fn local_ring_count(&self) -> usize {
        match self.cfg.scan_order {
            ScanOrder::DistanceAware => self.cfg.topology.local_distance_max(),
            ScanOrder::Flat => 1,
        }
    }

    /// The `ri`-th local victim ring of `wi` — computed from the shape's
    /// arithmetic, enumerating the same IDs in the same order as the
    /// materialised rings [`ScanOrder::victim_rings`] builds for the
    /// threaded runtime.
    fn local_ring(&self, wi: usize, ri: usize) -> PeerRing {
        let topo = &self.cfg.topology;
        match self.cfg.scan_order {
            ScanOrder::DistanceAware => topo.peers_at(wi, ri + 1),
            ScanOrder::Flat => PeerRing::hole(topo.peers_of(wi), wi),
        }
    }

    /// Number of remote node rings `wi` probes (flat scan: one ring of
    /// every other node; none on single-node machines).
    fn node_ring_count(&self) -> usize {
        let topo = &self.cfg.topology;
        if topo.nodes() <= 1 {
            return 0;
        }
        match self.cfg.scan_order {
            ScanOrder::DistanceAware => topo.node_prefix(),
            ScanOrder::Flat => 1,
        }
    }

    /// The `ri`-th remote node ring of `wi`, nearest first.
    fn node_ring(&self, wi: usize, ri: usize) -> NodeRing {
        let topo = &self.cfg.topology;
        match self.cfg.scan_order {
            ScanOrder::DistanceAware => topo.node_ring_at(wi, topo.local_distance_max() + 1 + ri),
            ScanOrder::Flat => NodeRing::hole(0..topo.nodes(), topo.node_of(wi)),
        }
    }

    /// The `pos`-th victim of `wi`'s PaCCS sweep: the distance rings
    /// flattened nearest first (the paper's expanding neighbourhood),
    /// computed on demand instead of materialised per worker.
    fn sweep_victim(&self, wi: usize, pos: usize) -> Option<usize> {
        let topo = &self.cfg.topology;
        let mut p = pos;
        for d in 1..=topo.levels() {
            let ring = topo.peers_at(wi, d);
            let n = ring.len();
            if p < n {
                return Some(ring.get(p));
            }
            p -= n;
        }
        None
    }

    // ----- message fabric ---------------------------------------------------

    /// One-way propagation latency between two workers, by how many
    /// remote rings the message crosses. The flat scan is distance-blind
    /// (the original single-tier fabric); distance-aware runs charge each
    /// further level.
    fn fabric_latency(&self, a: usize, b: usize) -> u64 {
        if self.cfg.scan_order == ScanOrder::Flat {
            return self.cfg.costs.remote_latency_ns;
        }
        let topo = &self.cfg.topology;
        let rank = topo
            .distance(a, b)
            .saturating_sub(topo.local_distance_max());
        self.cfg.costs.remote_latency_for(rank.max(1))
    }

    /// Send a control message (request / refusal) from `a` to `b` at
    /// `now`; returns the arrival instant (queueing-priced under
    /// contention).
    fn send_ctrl(&mut self, a: usize, b: usize, now: u64) -> u64 {
        let prop = self.fabric_latency(a, b);
        let topo = &self.cfg.topology;
        let (fa, fb) = (topo.node_of(a), topo.node_of(b));
        let bytes = self.net.params().ctrl_bytes;
        self.net.send(fa, fb, bytes, prop, 0, now)
    }

    /// Send a work reply carrying `payload_bytes` from `a` to `b` at
    /// `now`; under the flat model this is propagation + the per-byte
    /// transfer cost, under contention the payload serialises on both
    /// link directions.
    fn send_payload(&mut self, a: usize, b: usize, payload_bytes: u64, now: u64) -> u64 {
        let prop = self.fabric_latency(a, b);
        let flat = self.cfg.costs.transfer_ns(payload_bytes);
        let topo = &self.cfg.topology;
        let (fa, fb) = (topo.node_of(a), topo.node_of(b));
        let bytes = payload_bytes + self.net.params().header_bytes;
        self.net.send(fa, fb, bytes, prop, flat, now)
    }

    // ----- MaCS protocol ----------------------------------------------------

    fn try_steal_macs(&mut self, wi: usize, mut now: u64) {
        // A won race leaves nothing worth stealing: the victims' owners
        // will discard that work anyway. Idle towards termination.
        if self.observed_win(wi, now) {
            self.enter_idle(wi, now, 0);
            return;
        }
        // Local victim scan, ring by ring (nearest level first; the flat
        // scan has a single ring). The affinity victim is probed before
        // the rest of its ring; every probed candidate costs a metadata
        // read.
        // Pool states cannot change within one event, so the metadata
        // reads are charged in one sum after the scan — same virtual time,
        // no per-candidate allocation on this hottest of paths.
        let mut victim = None;
        let mut inspected = 0u64;
        'local: for ri in 0..self.local_ring_count() {
            let d = ri + 1;
            let ring = self.local_ring(wi, ri);
            match self.cfg.victim {
                VictimSelect::Greedy => {
                    let rot = self.workers[wi].rng.below_usize(ring.len().max(1));
                    for v in self.workers[wi].vorder.ring_order(&ring, d, rot) {
                        inspected += 1;
                        // A single shared item can never be granted (the
                        // victim retains one): only ≥ 2 is viable surplus.
                        if self.workers[v].pool.shared() > 1 {
                            victim = Some(v);
                            break 'local;
                        }
                    }
                }
                VictimSelect::MaxSteal => {
                    // Inspect the whole ring, take the largest shared
                    // region (≥ 2 — one retained item is not stealable);
                    // only move a level out if the ring is dry.
                    let mut best = 1usize;
                    for v in ring.clone() {
                        inspected += 1;
                        let s = self.workers[v].pool.shared();
                        if s > best {
                            best = s;
                            victim = Some(v);
                        }
                    }
                    if victim.is_some() {
                        break 'local;
                    }
                }
            }
        }
        let scan_ns = self.cfg.costs.pool_op_ns * inspected;
        self.charge(wi, WorkerState::Searching, scan_ns, &mut now);
        if let Some(v) = victim {
            // The lock delay is the race window: the steal applies later.
            // The flat baseline keeps the original distance-blind lock
            // cost, mirroring `fabric_latency`.
            let lock_ns = match self.cfg.scan_order {
                ScanOrder::Flat => self.cfg.costs.steal_local_ns,
                ScanOrder::DistanceAware => self
                    .cfg
                    .costs
                    .local_steal_ns(self.cfg.topology.distance(wi, v)),
            };
            self.schedule(
                wi,
                now + lock_ns,
                WorkerState::Stealing,
                Phase::ApplySteal { victim: v },
            );
            return;
        }
        // Remote: scan whole nodes one-sidedly, nearest ring first (the
        // last node that yielded work ahead of random candidates), post
        // to the best mailbox found.
        // As with the local scan, pool states are fixed within the event,
        // so the one-sided node scans are charged in one sum afterwards.
        let mut target = None;
        let mut probes = 0u64;
        'rings: for ri in 0..self.node_ring_count() {
            let ring = self.node_ring(wi, ri);
            if ring.is_empty() {
                continue;
            }
            let ring_d = self.cfg.topology.local_distance_max() + 1 + ri;
            let attempts = (self.cfg.remote_node_attempts.max(1) as usize).min(ring.len());
            let rot = self.workers[wi].rng.below_usize(ring.len());
            for cand in self.workers[wi]
                .vorder
                .node_probe_order(&self.cfg.topology, &ring, ring_d, rot)
                .take(attempts)
            {
                probes += 1;
                let mut best: Option<(usize, usize)> = None;
                for v in self.cfg.topology.workers_on(cand) {
                    // s > 1: a single shared item is unservable under the
                    // retention clamp — posting there buys a guaranteed
                    // refusal.
                    let s = self.workers[v].pool.shared();
                    if s > 1
                        && self.workers[v].pending_req.is_none()
                        && best.map(|(b, _)| s > b).unwrap_or(true)
                    {
                        best = Some((s, v));
                    }
                }
                if let Some((_, v)) = best {
                    target = Some(v);
                    break 'rings;
                }
            }
        }
        let find_ns = self.cfg.costs.find_remote_ns * probes;
        self.charge(wi, WorkerState::SearchingRemote, find_ns, &mut now);
        if let Some(v) = target {
            let post_ns = self.cfg.costs.post_request_ns;
            self.charge(wi, WorkerState::FindRemote, post_ns, &mut now);
            let arrival = self.send_ctrl(wi, v, now);
            self.workers[v].pending_req = Some((wi, arrival));
            // Park: the victim's response event will wake us.
            self.workers[wi].phase = Phase::Wait;
            self.workers[wi].charge_state = WorkerState::WaitRemote;
            return;
        }
        self.enter_idle(wi, now, 0);
    }

    fn apply_steal_macs(&mut self, wi: usize, v: usize, mut now: u64) {
        if self.observed_win(wi, now) {
            // The winner flag reached this thief during the lock delay:
            // stealing now would only move work its owner is about to
            // discard — and recording it would count a race drain as a
            // successful steal. Leave the victim's pool alone and head
            // into the drain path.
            self.workers[wi].stats.drain_steals += 1;
            self.enter_acquire(wi, now);
            return;
        }
        let shared = self.workers[v].pool.shared() as u64;
        let want = WorkBatch::share_ceil(shared, self.chunk_cap(wi, v)) as usize;
        let items = self.workers[v].pool.steal(want);
        let d = self.cfg.topology.distance(wi, v);
        if items.is_empty() {
            // The victim looked loaded at scan time but was drained: a
            // failed local steal (the race the paper counts).
            self.workers[wi].stats.local_steal_failures += 1;
            if self.cfg.scan_order == ScanOrder::DistanceAware {
                let topo = &self.cfg.topology;
                self.workers[wi].vorder.record_failure(topo, v);
            }
            self.try_steal_macs(wi, now);
            return;
        }
        let per_item = self.cfg.costs.per_item_ns * items.len() as u64;
        self.charge(wi, WorkerState::Stealing, per_item, &mut now);
        if self.cfg.scan_order == ScanOrder::DistanceAware {
            let topo = &self.cfg.topology;
            self.workers[wi].vorder.record_success(topo, v);
        }
        {
            let w = &mut self.workers[wi];
            w.stats.local_steals += 1;
            w.stats.local_steal_items += items.len() as u64;
            w.stats.steals_by_distance.record(d);
        }
        let mut it = items.into_iter();
        let first = it.next().expect("non-empty steal");
        self.adopt(wi, first);
        for rest in it {
            self.workers[wi].pool.push(rest);
        }
        self.start_node(wi, now);
    }

    /// Victim side: serve the (single) pending MaCS request, with proxy
    /// fulfilment. Returns true if a request was found.
    fn serve_request_macs(&mut self, wi: usize, now: &mut u64) -> bool {
        let Some((thief, arrival)) = self.workers[wi].pending_req else {
            return false;
        };
        if arrival > *now {
            return false;
        }
        self.workers[wi].pending_req = None;
        self.net.deliver();
        let poll_ns = self.cfg.costs.poll_ns;
        self.charge(wi, WorkerState::Poll, poll_ns, now);
        self.workers[wi].stats.polls += 1;

        // Assemble the batched response: one response carries at most the
        // chunk policy's per-steal cap — static, or scaled by the thief's
        // topological distance so a far thief's expensive round trip
        // carries a proportionally bigger reservation — but up to
        // `response_batch` co-located pools may contribute chunks to fill
        // it: our own chunk first, then the peers with the most surplus
        // (proxy fulfilment generalised). All chunks travel in the one
        // reply, so the thief's single round trip delivers full value
        // even when no one pool had enough. Under the adaptive policy the
        // batch ceiling follows this victim's own reply-thinness EWMA.
        let chunk = self.chunk_cap(wi, thief);
        let max_chunks = if self.cfg.chunk_policy.is_adaptive() {
            self.workers[wi].adaptive.batch() as u64
        } else {
            self.cfg.response_batch.max(1) as u64
        };
        let mut budget = chunk;
        let mut batch = SimBatch::default();
        let mut proxy = false;
        let own_share =
            WorkBatch::share_ceil(self.workers[wi].pool.shared() as u64, budget) as usize;
        batch.push_chunk(self.workers[wi].pool.steal(own_share));
        budget -= (batch.len() as u64).min(budget);
        // Top up only while the reply is *thin* (below the shared
        // threshold, which never exceeds the cap): a healthy single-pool
        // chunk ships as-is, but a dribble of a reply — which would send
        // the thief straight back into another round trip — gets filled
        // from the node's other pools. The gate stays anchored to the
        // *static* cap even when the policy grants a far thief a bigger
        // reservation: a gate that scales with the cap over-exports from
        // the serving node (the drained pools' owners turn remote
        // themselves — measured in `chunk_ablation`, the same failure
        // mode PR-2 found for aggressive batching).
        let gate_cap = chunk.min(self.cfg.max_steal_chunk);
        let top_up_below = WorkBatch::thin_threshold(gate_cap);
        let mut taken: Vec<usize> = Vec::new();
        while budget > 0
            && (batch.is_empty()
                || ((batch.len() as u64) < top_up_below && (batch.chunks() as u64) < max_chunks))
        {
            let cand = self
                .cfg
                .topology
                .peers_of(wi)
                .filter(|&p| p != wi && p != thief && !taken.contains(&p))
                .map(|p| (self.workers[p].pool.shared(), p))
                // s > 1: a lone shared item cannot be granted (retention).
                .filter(|&(s, _)| s > 1)
                .max();
            let Some((s, p)) = cand else {
                break;
            };
            taken.push(p);
            let share = WorkBatch::share_ceil(s as u64, budget) as usize;
            let before = batch.len();
            batch.push_chunk(self.workers[p].pool.steal(share));
            budget -= ((batch.len() - before) as u64).min(budget);
            proxy |= batch.len() > before;
        }

        let resp_ns = self.cfg.costs.write_response_ns;
        self.charge(wi, WorkerState::Poll, resp_ns, now);
        if batch.is_empty() {
            self.workers[wi].stats.requests_refused += 1;
            let t = self.send_ctrl(wi, thief, *now);
            self.workers[thief].inbox = Some(Resp::Fail(wi));
            self.schedule(thief, t, WorkerState::WaitRemote, Phase::Wait);
        } else {
            if self.cfg.chunk_policy.is_adaptive() {
                self.workers[wi]
                    .adaptive
                    .observe(batch.len() as u64, gate_cap);
            }
            self.workers[wi].stats.requests_served += 1;
            self.workers[wi].stats.response_chunks += batch.chunks() as u64;
            if batch.chunks() > 1 {
                self.workers[wi].stats.batched_responses += 1;
            }
            if proxy {
                self.workers[wi].stats.proxy_serves += 1;
            }
            let bytes = (batch.len() * self.slot_words * 8) as u64;
            let t = self.send_payload(wi, thief, bytes, *now);
            self.workers[thief].inbox = Some(Resp::Work(batch, wi));
            self.schedule(thief, t, WorkerState::WaitRemote, Phase::Wait);
        }
        true
    }

    fn wake_from_wait(&mut self, wi: usize, t: u64) {
        let mut now = t;
        let resp = self.workers[wi].inbox.take();
        if let Some(r) = &resp {
            // Conservation: the reply is consumed here. PaCCS also routes
            // same-node replies through the mailbox (at poll latency) —
            // those never entered the fabric.
            if self.mode == SimMode::Macs || !self.cfg.topology.is_local(wi, r.victim()) {
                self.net.deliver();
            }
        }
        match resp {
            Some(Resp::Work(batch, _)) if self.observed_win(wi, t) => {
                // The reply raced the winner flag and lost: the stolen
                // items die on arrival (they stayed outstanding while in
                // flight, so the books settle here). The steal lands in
                // the drain bucket — not in `remote_steals` or the
                // distance histogram, which count only steals that
                // delivered live work.
                self.workers[wi].stats.drain_steals += 1;
                self.outstanding -= batch.len() as i64;
                self.abandoned += batch.len() as u64;
                for id in batch.ids {
                    self.arena.release(id);
                }
                if self.outstanding == 0 {
                    self.end_time = Some(now);
                    return;
                }
                self.enter_acquire(wi, now);
            }
            Some(Resp::Work(batch, victim)) => {
                let per_item = self.cfg.costs.per_item_ns * batch.len() as u64;
                self.charge(wi, WorkerState::Stealing, per_item, &mut now);
                let d = self.cfg.topology.distance(wi, victim);
                if self.cfg.scan_order == ScanOrder::DistanceAware {
                    let topo = &self.cfg.topology;
                    self.workers[wi].vorder.record_success(topo, victim);
                }
                {
                    let w = &mut self.workers[wi];
                    w.stats.remote_steals += 1;
                    w.stats.remote_steal_items += batch.len() as u64;
                    w.stats.steals_by_distance.record(d);
                }
                let mut it = batch.ids.into_iter();
                let first = it.next().expect("non-empty work reply");
                self.adopt(wi, first);
                for rest in it {
                    self.workers[wi].pool.push(rest);
                }
                self.start_node(wi, now);
            }
            Some(Resp::Fail(victim)) => {
                self.workers[wi].stats.remote_steal_failures += 1;
                // Mirror the threaded runtime: a refusal clears any
                // affinity pinned to the drained victim.
                if self.cfg.scan_order == ScanOrder::DistanceAware {
                    let topo = &self.cfg.topology;
                    self.workers[wi].vorder.record_failure(topo, victim);
                }
                match self.mode {
                    SimMode::Macs => self.enter_idle(wi, now, 0),
                    SimMode::Paccs => {
                        self.workers[wi].sweep_pos += 1;
                        self.sweep_paccs(wi, now);
                    }
                }
            }
            None => self.enter_acquire(wi, now),
        }
    }

    // ----- PaCCS protocol -----------------------------------------------------

    /// Idle PaCCS agent: send the next steal request in neighbourhood
    /// order and park for the reply.
    fn sweep_paccs(&mut self, wi: usize, mut now: u64) {
        let order_len = self.cfg.topology.total_workers() - 1;
        if order_len == 0 || self.observed_win(wi, now) {
            self.enter_idle(wi, now, 0);
            return;
        }
        let pos = self.workers[wi].sweep_pos;
        if pos >= order_len {
            // Full sweep failed: back off, then start over.
            self.workers[wi].sweep_pos = 0;
            self.enter_idle(wi, now, 0);
            return;
        }
        let v = self.sweep_victim(wi, pos).expect("sweep position in range");
        let local = self.cfg.topology.is_local(wi, v);
        // Two-sided request: send cost + message latency.
        let send_ns = self.cfg.costs.post_request_ns / 2;
        self.charge(wi, WorkerState::FindRemote, send_ns, &mut now);
        let arrival = if local {
            now + self.cfg.costs.poll_ns.max(200)
        } else {
            self.send_ctrl(wi, v, now)
        };
        self.workers[v].req_queue.push_back((wi, arrival));
        // A parked victim (itself blocked on a steal reply) would never
        // look at its queue: inject a service wake — the simulated
        // equivalent of the threaded agent answering requests while it
        // waits for its own reply.
        if self.workers[v].phase == Phase::Wait && self.workers[v].inbox.is_none() {
            self.schedule(v, arrival, WorkerState::WaitRemote, Phase::Serve);
        }
        self.workers[wi].phase = Phase::Wait;
        self.workers[wi].charge_state = WorkerState::WaitRemote;
    }

    /// PaCCS victim: serve every request that has arrived (replies are
    /// generated only at node-completion or idle instants — the two-sided
    /// granularity MaCS avoids).
    fn serve_requests_paccs(&mut self, wi: usize, now: &mut u64) {
        loop {
            let Some(&(thief, arrival)) = self.workers[wi].req_queue.front() else {
                return;
            };
            if arrival > *now {
                return;
            }
            self.workers[wi].req_queue.pop_front();
            let local = self.cfg.topology.is_local(wi, thief);
            if !local {
                self.net.deliver();
            }
            let poll_ns = self.cfg.costs.poll_ns;
            self.charge(wi, WorkerState::Poll, poll_ns, now);
            self.workers[wi].stats.polls += 1;

            let have = self.workers[wi].pool.len();
            let give = WorkBatch::share_floor(have as u64, self.chunk_cap(wi, thief)) as usize;
            if give == 0 {
                self.workers[wi].stats.requests_refused += 1;
                let t = if local {
                    *now + self.cfg.costs.poll_ns.max(200)
                } else {
                    self.send_ctrl(wi, thief, *now)
                };
                self.workers[thief].inbox = Some(Resp::Fail(wi));
                self.schedule(thief, t, WorkerState::WaitRemote, Phase::Wait);
            } else {
                let items = self.workers[wi].pool.steal_any(give);
                self.workers[wi].stats.requests_served += 1;
                let batch = SimBatch::from_chunk(items);
                self.workers[wi].stats.response_chunks += batch.chunks() as u64;
                let bytes = (batch.len() * self.slot_words * 8) as u64;
                let t = if local {
                    *now + self.cfg.costs.poll_ns.max(200) + self.cfg.costs.transfer_ns(bytes)
                } else {
                    self.send_payload(wi, thief, bytes, *now)
                };
                // Classify on the thief when the reply arrives.
                self.workers[thief].inbox = Some(Resp::Work(batch, wi));
                self.schedule(thief, t, WorkerState::WaitRemote, Phase::Wait);
            }
        }
    }

    // ----- main loop ----------------------------------------------------------

    fn run(&mut self, roots: &[Vec<u64>]) {
        self.outstanding = roots.len() as i64;
        for r in roots {
            let id = self.arena.alloc(r);
            self.workers[0].pool.push(id);
        }
        for wi in 0..self.workers.len() {
            self.schedule(wi, 0, WorkerState::Barrier, Phase::Boot);
        }
        while let Some((t, wi)) = self.events.pop() {
            if self.end_time.is_some() {
                break;
            }
            self.n_events += 1;
            let phase = self.workers[wi].phase;
            self.trace = fnv1a(fnv1a(fnv1a(self.trace, t), wi as u64), phase_tag(phase));
            // Charge the interval since the worker's last instant to the
            // state it was parked/scheduled in.
            {
                let w = &mut self.workers[wi];
                let dt = t.saturating_sub(w.cursor);
                w.stats.state_ns[w.charge_state as usize] += dt;
                w.cursor = t;
            }
            match phase {
                Phase::Boot => self.enter_acquire(wi, t),
                Phase::Finish => {
                    if !self.finish_node(wi, t) {
                        break;
                    }
                }
                Phase::ApplySteal { victim } => self.apply_steal_macs(wi, victim, t),
                Phase::Wait => self.wake_from_wait(wi, t),
                Phase::Serve => {
                    let mut now = t;
                    self.serve_requests_paccs(wi, &mut now);
                    // Re-park: we are still a thief awaiting our own reply.
                    self.workers[wi].phase = Phase::Wait;
                    self.workers[wi].charge_state = WorkerState::WaitRemote;
                }
                Phase::Idle { round } => {
                    let mut now = t;
                    match self.mode {
                        SimMode::Macs => {
                            self.serve_request_macs(wi, &mut now);
                            self.enter_acquire_or_retry(wi, now, round);
                        }
                        SimMode::Paccs => {
                            self.serve_requests_paccs(wi, &mut now);
                            self.workers[wi].sweep_pos = 0;
                            self.enter_acquire_or_retry(wi, now, round);
                        }
                    }
                }
            }
        }
        // Close every worker's clock at the makespan.
        let end = self
            .end_time
            .unwrap_or_else(|| self.workers.iter().map(|w| w.cursor).max().unwrap_or(0));
        self.end_time = Some(end);
        for w in &mut self.workers {
            let dt = end.saturating_sub(w.cursor);
            w.stats.state_ns[w.charge_state as usize] += dt;
            w.cursor = end;
        }
    }

    /// From an idle wake: try to acquire again (pool may have refilled via
    /// an in-place response in MaCS, or we retry the steal paths).
    fn enter_acquire_or_retry(&mut self, wi: usize, now: u64, round: u32) {
        if self.workers[wi].pool.len() > 0 || self.workers[wi].has_cur {
            self.enter_acquire(wi, now);
            return;
        }
        match self.mode {
            SimMode::Macs => {
                // Retry the full steal ladder; it either schedules a steal
                // (ApplySteal/Wait) or re-idles at round 0 — patch the
                // round so the exponential backoff keeps growing.
                self.try_steal_macs(wi, now);
                if let Phase::Idle { .. } = self.workers[wi].phase {
                    self.patch_idle_round(wi, round.saturating_add(1));
                }
            }
            SimMode::Paccs => {
                self.sweep_paccs(wi, now);
                if let Phase::Idle { .. } = self.workers[wi].phase {
                    self.patch_idle_round(wi, round.saturating_add(1));
                }
            }
        }
    }

    /// The idle event just scheduled used round 0; keep the exponential
    /// backoff by rescheduling is not possible (event already queued), so
    /// we simply record the grown round for the *next* wake.
    fn patch_idle_round(&mut self, wi: usize, round: u32) {
        self.workers[wi].phase = Phase::Idle {
            round: round.min(16),
        };
    }

    /// Messages sitting unconsumed in mailboxes/queues at drain time —
    /// the fabric's in-flight count (only messages that actually entered
    /// the fabric: PaCCS same-node traffic never did).
    fn undelivered(&self) -> u64 {
        let topo = &self.cfg.topology;
        let mut n = 0u64;
        for (wi, w) in self.workers.iter().enumerate() {
            if w.pending_req.is_some() {
                n += 1;
            }
            for &(thief, _) in &w.req_queue {
                if !topo.is_local(wi, thief) {
                    n += 1;
                }
            }
            if let Some(r) = &w.inbox {
                if self.mode == SimMode::Macs || !topo.is_local(wi, r.victim()) {
                    n += 1;
                }
            }
        }
        n
    }
}

// ---------------------------------------------------------------------------
// public entry points
// ---------------------------------------------------------------------------

fn build_and_run<P, F>(
    cfg: &SimConfig,
    mode: SimMode,
    slot_words: usize,
    roots: &[Vec<u64>],
    factory: F,
) -> SimReport<P::Output>
where
    P: Processor,
    F: FnMut(usize) -> P,
{
    let n = cfg.topology.total_workers();
    assert!(!roots.is_empty());
    // Flat one-way visibility delay (Immediate/Periodic; PaCCS routes
    // through its controller, hence the extra hop). Hierarchical prices
    // deliveries per level instead.
    let flat_delay = cfg.bound_delay_ns.unwrap_or(match mode {
        SimMode::Macs => cfg.costs.remote_latency_ns,
        SimMode::Paccs => 2 * cfg.costs.remote_latency_ns,
    });
    let fabric = Rc::new(BoundFabric::new(
        &cfg.topology,
        cfg.bound_policy,
        flat_delay,
        &cfg.costs,
    ));

    let words = slot_words.max(roots.iter().map(|r| r.len()).max().unwrap_or(0));
    let workers: Vec<VW<P>> = (0..n)
        .map(|wi| VW {
            vorder: VictimOrder::new(&cfg.topology, wi),
            pool: VPool::default(),
            cur: vec![0u64; words.max(1)].into_boxed_slice(),
            has_cur: false,
            staged: Vec::new(),
            staged_step: Step::Leaf,
            staged_solutions: 0,
            staged_cancel: false,
            proc: None,
            inc: Rc::new(SimIncumbent::new(Rc::clone(&fabric), wi)),
            timers: PhaseTimers::default(),
            stats: SimWorkerStats::default(),
            rng: SplitMix64::for_worker(cfg.seed, wi),
            phase: Phase::Boot,
            charge_state: WorkerState::Barrier,
            cursor: 0,
            since_release: 0,
            since_poll: 0,
            poll_interval: cfg.poll.initial(),
            pending_req: None,
            req_queue: VecDeque::new(),
            inbox: None,
            sweep_pos: 0,
            adaptive: AdaptiveBatch::starting_at(cfg.response_batch),
        })
        .collect();

    // The winner flag of a first-solution race always travels the
    // hierarchical node-leader route, whatever bound policy is under
    // test — one flag per remote leader, per-level delivery delay.
    let winner_fabric = BoundFabric::new(
        &cfg.topology,
        BoundPolicy::Hierarchical,
        flat_delay,
        &cfg.costs,
    );

    let mut sim = Sim {
        cfg,
        mode,
        slot_words,
        factory,
        workers,
        arena: SlotArena::new(words),
        events: EventHeap::new(n),
        seq: 0,
        outstanding: 0,
        fabric: Rc::clone(&fabric),
        net: NetFabric::new(cfg.fabric, cfg.topology.nodes(), &cfg.costs),
        win: None,
        win_seen: vec![u64::MAX; n],
        winner_fabric,
        nodes_after_win: 0,
        abandoned: 0,
        completed: 0,
        end_time: None,
        n_events: 0,
        trace: 0xcbf2_9ce4_8422_2325,
    };
    sim.run(roots);

    let makespan_ns = sim.end_time.unwrap_or(0);
    let incumbent = sim.fabric.global_min();
    let bound_msgs = sim.fabric.messages();
    let bound_updates = sim.fabric.updates();
    let first_solution_ns = sim.win.map(|w| w.t);
    let (nodes_after_win, abandoned_items, completed_items) =
        (sim.nodes_after_win, sim.abandoned, sim.completed);
    let fabric_report = sim.net.report(sim.undelivered());
    let (events, trace_hash, peak_live_items) = (sim.n_events, sim.trace, sim.arena.peak);
    let mut factory = sim.factory;
    let (stats, outputs): (Vec<_>, Vec<_>) = sim
        .workers
        .into_iter()
        .enumerate()
        .map(|(wi, mut w)| {
            // Workers that never expanded a node get a transient
            // processor just to produce their (empty) output.
            let proc = w.proc.take().unwrap_or_else(|| factory(wi));
            (w.stats.clone(), proc.finish())
        })
        .unzip();
    SimReport {
        makespan_ns,
        workers: stats,
        outputs,
        incumbent,
        bound_msgs,
        bound_updates,
        first_solution_ns,
        nodes_after_win,
        abandoned_items,
        completed_items,
        events,
        trace_hash,
        peak_live_items,
        fabric: fabric_report,
    }
}

/// Simulate the MaCS balancer over the real work of `factory`'s
/// processors.
pub fn simulate_macs<P, F>(
    cfg: &SimConfig,
    slot_words: usize,
    roots: &[Vec<u64>],
    factory: F,
) -> SimReport<P::Output>
where
    P: Processor,
    F: FnMut(usize) -> P,
{
    build_and_run(cfg, SimMode::Macs, slot_words, roots, factory)
}

/// Simulate the PaCCS balancer over the same work.
pub fn simulate_paccs<P, F>(
    cfg: &SimConfig,
    slot_words: usize,
    roots: &[Vec<u64>],
    factory: F,
) -> SimReport<P::Output>
where
    P: Processor,
    F: FnMut(usize) -> P,
{
    build_and_run(cfg, SimMode::Paccs, slot_words, roots, factory)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_heap_pops_in_key_order_with_reschedules() {
        let mut h = EventHeap::new(8);
        // Same time, schedule order breaks the tie.
        for (seq, w) in [(1, 3usize), (2, 1), (3, 5)] {
            h.schedule(w, 100, seq);
        }
        // Worker 1 rescheduled later: supersedes its first event.
        h.schedule(1, 400, 4);
        h.schedule(7, 50, 5);
        let mut out = Vec::new();
        while let Some((t, w)) = h.pop() {
            out.push((t, w));
        }
        assert_eq!(out, vec![(50, 7), (100, 3), (100, 5), (400, 1)]);
    }

    #[test]
    fn event_heap_reschedule_can_move_earlier() {
        let mut h = EventHeap::new(4);
        h.schedule(0, 1_000, 1);
        h.schedule(1, 2_000, 2);
        h.schedule(1, 10, 3); // decrease-key
        assert_eq!(h.pop(), Some((10, 1)));
        assert_eq!(h.pop(), Some((1_000, 0)));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn slot_arena_recycles_slots() {
        let mut a = SlotArena::new(4);
        let x = a.alloc(&[1, 2, 3, 4]);
        let y = a.alloc(&[5, 6, 7, 8]);
        assert_eq!(a.get(x), &[1, 2, 3, 4]);
        assert_eq!(a.get(y), &[5, 6, 7, 8]);
        assert_eq!(a.peak, 2);
        a.release(x);
        let z = a.alloc(&[9, 9]); // short item zero-padded
        assert_eq!(z, x, "freed slot reused");
        assert_eq!(a.get(z), &[9, 9, 0, 0]);
        assert_eq!(a.peak, 2, "peak unchanged by reuse");
        assert_eq!(a.data.len(), 8, "no growth beyond two slots");
    }
}
