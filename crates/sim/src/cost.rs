//! Virtual-time cost model for the simulator.

/// How the processing time of one node (propagate + split) is charged.
#[derive(Clone, Copy, Debug)]
pub enum NodeCost {
    /// Fixed mean with ±`jitter_pct`% deterministic jitter (reproducible
    /// runs; the default).
    Fixed { ns: u64, jitter_pct: u8 },
    /// Charge the *measured* wall time of the real `process()` call scaled
    /// by `num/den` (heterogeneous per-node costs; non-deterministic
    /// across hosts).
    Measured { num: u64, den: u64 },
}

impl NodeCost {
    pub fn fixed(ns: u64) -> Self {
        NodeCost::Fixed { ns, jitter_pct: 20 }
    }
}

/// All virtual-time costs, in nanoseconds. Defaults are calibrated to the
/// paper's testbed class: dual-socket Woodcrest nodes (the ~6.4 µs/node
/// implied by 40 Mnodes/s on 256 cores for queens-17) on InfiniBand DDR
/// (~2 µs one-way small-message latency).
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    pub node: NodeCost,
    /// Pool push/pop (head pointer manipulation).
    pub pool_op_ns: u64,
    /// Release / reacquire (lock + split pointer).
    pub release_ns: u64,
    /// Local steal: victim lock + item copies.
    pub steal_local_ns: u64,
    /// Per-item copy cost (added per transferred item, local or remote).
    pub per_item_ns: u64,
    /// Mailbox check.
    pub poll_ns: u64,
    /// One-sided metadata read of one remote node's pools.
    pub find_remote_ns: u64,
    /// Mailbox CAS (remote atomic).
    pub post_request_ns: u64,
    /// Victim-side posting of the in-place response (queued write).
    pub write_response_ns: u64,
    /// One-way fabric latency to the *nearest* remote ring (one level
    /// above the node boundary).
    pub remote_latency_ns: u64,
    /// Latency growth per additional topology level a message crosses: a
    /// steal spanning `r` remote rings pays
    /// `remote_latency_ns × level_hop_factor^(r−1)` one way (switch tiers
    /// / inter-cluster links). 1 = distance-blind fabric.
    pub level_hop_factor: u64,
    /// Extra lock/coherence cost per intra-node level a local steal
    /// crosses beyond the first (cross-socket cache-line bouncing): a
    /// distance-`d` local steal costs
    /// `steal_local_ns + (d − 1) × cross_level_ns`.
    pub cross_level_ns: u64,
    /// Transfer cost per byte, in picoseconds (667 ≙ ~1.5 GB/s).
    pub byte_ps: u64,
    /// Initial idle backoff (doubles per round, capped ×64).
    pub idle_backoff_ns: u64,
}

impl CostModel {
    /// Paper-testbed-class defaults with a given mean node cost.
    pub fn woodcrest_ib(node_ns: u64) -> Self {
        CostModel {
            node: NodeCost::fixed(node_ns),
            pool_op_ns: 60,
            // Lock + split-pointer update + the associated coherence
            // traffic. Calibrated so that releasing on every node (the
            // MaCS default) costs ≈10% of a queens node — the "Releasing"
            // band visible in the paper's Fig. 3.
            release_ns: 650,
            steal_local_ns: 400,
            per_item_ns: 40,
            poll_ns: 50,
            find_remote_ns: 2_000,
            post_request_ns: 2_500,
            write_response_ns: 300,
            remote_latency_ns: 2_000,
            // IB switch tiers: each level further out roughly quadruples
            // the one-way latency (leaf switch → spine → inter-cluster).
            level_hop_factor: 4,
            // Cross-socket steal premium (QPI hop + coherence misses).
            cross_level_ns: 150,
            byte_ps: 667,
            idle_backoff_ns: 500,
        }
    }

    /// The paper's implied queens-17 node cost (≈ 6.4 µs).
    pub fn paper_queens() -> Self {
        CostModel::woodcrest_ib(6_400)
    }

    /// A COP-like node cost (propagation-heavy: the paper reports 80% of
    /// time in propagation for the QAP).
    pub fn paper_qap() -> Self {
        CostModel::woodcrest_ib(25_000)
    }

    #[inline]
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        self.byte_ps.saturating_mul(bytes) / 1000
    }

    /// One-way latency to a victim `ring_rank` remote rings out
    /// (`1` = the nearest remote ring).
    #[inline]
    pub fn remote_latency_for(&self, ring_rank: usize) -> u64 {
        let mut lat = self.remote_latency_ns;
        for _ in 1..ring_rank.max(1) {
            lat = lat.saturating_mul(self.level_hop_factor.max(1));
        }
        lat
    }

    /// Lock + copy setup cost of a local steal spanning `d` intra-node
    /// levels (`d >= 1`).
    #[inline]
    pub fn local_steal_ns(&self, d: usize) -> u64 {
        self.steal_local_ns + (d.saturating_sub(1) as u64) * self.cross_level_ns
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::woodcrest_ib(2_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_sensibly() {
        let q = CostModel::paper_queens();
        let c = CostModel::paper_qap();
        match (q.node, c.node) {
            (NodeCost::Fixed { ns: a, .. }, NodeCost::Fixed { ns: b, .. }) => assert!(a < b),
            _ => panic!("presets use fixed node costs"),
        }
        assert!(
            q.find_remote_ns > q.steal_local_ns,
            "remote dearer than local"
        );
    }

    #[test]
    fn transfer_cost_scales() {
        let m = CostModel::woodcrest_ib(1000);
        assert_eq!(m.transfer_ns(1500), 1000); // 667 ps/B ≈ 1.5 GB/s
        assert_eq!(m.transfer_ns(0), 0);
    }

    #[test]
    fn per_level_costs_grow_with_distance() {
        let m = CostModel::woodcrest_ib(1000);
        assert_eq!(m.remote_latency_for(1), m.remote_latency_ns);
        assert_eq!(m.remote_latency_for(2), m.remote_latency_ns * 4);
        assert_eq!(m.remote_latency_for(3), m.remote_latency_ns * 16);
        assert_eq!(m.local_steal_ns(1), m.steal_local_ns);
        assert_eq!(m.local_steal_ns(2), m.steal_local_ns + m.cross_level_ns);
        let mut flatline = m;
        flatline.level_hop_factor = 1;
        assert_eq!(flatline.remote_latency_for(3), m.remote_latency_ns);
    }
}
