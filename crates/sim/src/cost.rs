//! Virtual-time cost model for the simulator — and the text codec that
//! makes it a loadable artifact.
//!
//! Until PR 10 every cost below was a hand-invented constant. The
//! `calibrate` bin (macs-bench) now measures a real machine and emits a
//! model file; [`CostModel::load`] / [`CostModel::save`] and the
//! `FromStr`/`Display` pair
//! round-trip it. The codec is hand-rolled `key = value` text (this
//! workspace builds offline — no serde):
//!
//! ```text
//! macs-cost-model v1
//! # comments and blank lines are ignored
//! node = fixed:2000,20        # or measured:NUM,DEN
//! pool_op_ns = 60
//! ...
//! ```
//!
//! Every field is required (a model that silently falls back to a
//! default for a missing latency would defeat calibration); unknown
//! keys, duplicates, and negative values are typed
//! [`CostModelError`]s.

use std::fmt;
use std::path::Path;
use std::str::FromStr;

/// How the processing time of one node (propagate + split) is charged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeCost {
    /// Fixed mean with ±`jitter_pct`% deterministic jitter (reproducible
    /// runs; the default).
    Fixed { ns: u64, jitter_pct: u8 },
    /// Charge the *measured* wall time of the real `process()` call scaled
    /// by `num/den` (heterogeneous per-node costs; non-deterministic
    /// across hosts).
    Measured { num: u64, den: u64 },
}

impl NodeCost {
    pub fn fixed(ns: u64) -> Self {
        NodeCost::Fixed { ns, jitter_pct: 20 }
    }
}

/// All virtual-time costs, in nanoseconds. Defaults are calibrated to the
/// paper's testbed class: dual-socket Woodcrest nodes (the ~6.4 µs/node
/// implied by 40 Mnodes/s on 256 cores for queens-17) on InfiniBand DDR
/// (~2 µs one-way small-message latency).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    pub node: NodeCost,
    /// Pool push/pop (head pointer manipulation).
    pub pool_op_ns: u64,
    /// Release / reacquire (lock + split pointer).
    pub release_ns: u64,
    /// Local steal: victim lock + item copies.
    pub steal_local_ns: u64,
    /// Per-item copy cost (added per transferred item, local or remote).
    pub per_item_ns: u64,
    /// Mailbox check.
    pub poll_ns: u64,
    /// One-sided metadata read of one remote node's pools.
    pub find_remote_ns: u64,
    /// Mailbox CAS (remote atomic).
    pub post_request_ns: u64,
    /// Victim-side posting of the in-place response (queued write).
    pub write_response_ns: u64,
    /// One-way fabric latency to the *nearest* remote ring (one level
    /// above the node boundary).
    pub remote_latency_ns: u64,
    /// Latency growth per additional topology level a message crosses: a
    /// steal spanning `r` remote rings pays
    /// `remote_latency_ns × level_hop_factor^(r−1)` one way (switch tiers
    /// / inter-cluster links). 1 = distance-blind fabric.
    pub level_hop_factor: u64,
    /// Extra lock/coherence cost per intra-node level a local steal
    /// crosses beyond the first (cross-socket cache-line bouncing): a
    /// distance-`d` local steal costs
    /// `steal_local_ns + (d − 1) × cross_level_ns`.
    pub cross_level_ns: u64,
    /// Transfer cost per byte, in picoseconds (667 ≙ ~1.5 GB/s). The
    /// *single* per-byte rate: the contention fabric's link
    /// serialization derives from it too, unless a
    /// [`ContentionParams`](crate::ContentionParams) override is given
    /// explicitly — a loaded model can never disagree with itself across
    /// the latency and contention paths.
    pub byte_ps: u64,
    /// Wire size of a control message (steal request / refusal), bytes.
    pub ctrl_bytes: u64,
    /// Per-message header added to payload replies, bytes.
    pub header_bytes: u64,
    /// Initial idle backoff (doubles per round, capped ×64).
    pub idle_backoff_ns: u64,
}

impl CostModel {
    /// Paper-testbed-class defaults with a given mean node cost.
    pub fn woodcrest_ib(node_ns: u64) -> Self {
        CostModel {
            node: NodeCost::fixed(node_ns),
            pool_op_ns: 60,
            // Lock + split-pointer update + the associated coherence
            // traffic. Calibrated so that releasing on every node (the
            // MaCS default) costs ≈10% of a queens node — the "Releasing"
            // band visible in the paper's Fig. 3.
            release_ns: 650,
            steal_local_ns: 400,
            per_item_ns: 40,
            poll_ns: 50,
            find_remote_ns: 2_000,
            post_request_ns: 2_500,
            write_response_ns: 300,
            remote_latency_ns: 2_000,
            // IB switch tiers: each level further out roughly quadruples
            // the one-way latency (leaf switch → spine → inter-cluster).
            level_hop_factor: 4,
            // Cross-socket steal premium (QPI hop + coherence misses).
            cross_level_ns: 150,
            byte_ps: 667,
            ctrl_bytes: 64,
            header_bytes: 64,
            idle_backoff_ns: 500,
        }
    }

    /// The paper's implied queens-17 node cost (≈ 6.4 µs).
    pub fn paper_queens() -> Self {
        CostModel::woodcrest_ib(6_400)
    }

    /// A COP-like node cost (propagation-heavy: the paper reports 80% of
    /// time in propagation for the QAP).
    pub fn paper_qap() -> Self {
        CostModel::woodcrest_ib(25_000)
    }

    #[inline]
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        self.byte_ps.saturating_mul(bytes) / 1000
    }

    /// One-way latency to a victim `ring_rank` remote rings out
    /// (`1` = the nearest remote ring).
    #[inline]
    pub fn remote_latency_for(&self, ring_rank: usize) -> u64 {
        let mut lat = self.remote_latency_ns;
        for _ in 1..ring_rank.max(1) {
            lat = lat.saturating_mul(self.level_hop_factor.max(1));
        }
        lat
    }

    /// Lock + copy setup cost of a local steal spanning `d` intra-node
    /// levels (`d >= 1`).
    #[inline]
    pub fn local_steal_ns(&self, d: usize) -> u64 {
        self.steal_local_ns + (d.saturating_sub(1) as u64) * self.cross_level_ns
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::woodcrest_ib(2_000)
    }
}

// ---------------------------------------------------------------------
// The codec.

/// First line of every model file; the version suffix lets the format
/// evolve without silently misreading old files.
const HEADER: &str = "macs-cost-model v1";

/// Why a cost-model file could not be read or parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CostModelError {
    /// The first non-blank line is not `macs-cost-model v1`.
    MissingHeader,
    /// A line is not `key = value` (nor a comment/blank).
    BadLine { line: usize, text: String },
    /// A key this version does not know.
    UnknownKey { line: usize, key: String },
    /// The same key given twice.
    DuplicateKey { line: usize, key: String },
    /// A value that does not parse for its key.
    BadValue {
        line: usize,
        key: String,
        value: String,
    },
    /// A latency/size that parses but is negative — never meaningful.
    NegativeValue {
        line: usize,
        key: String,
        value: String,
    },
    /// A required key never appeared (a model must be total: silently
    /// defaulting a missing latency would defeat calibration).
    MissingField { key: &'static str },
    /// The file could not be read or written.
    Io { path: String, detail: String },
}

impl fmt::Display for CostModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostModelError::MissingHeader => {
                write!(f, "cost model file must start with {HEADER:?}")
            }
            CostModelError::BadLine { line, text } => {
                write!(f, "line {line}: expected `key = value`, got {text:?}")
            }
            CostModelError::UnknownKey { line, key } => {
                write!(f, "line {line}: unknown cost-model key {key:?}")
            }
            CostModelError::DuplicateKey { line, key } => {
                write!(f, "line {line}: duplicate key {key:?}")
            }
            CostModelError::BadValue { line, key, value } => {
                write!(f, "line {line}: bad value {value:?} for {key}")
            }
            CostModelError::NegativeValue { line, key, value } => {
                write!(f, "line {line}: negative value {value} for {key}")
            }
            CostModelError::MissingField { key } => {
                write!(f, "cost model is missing required key {key:?}")
            }
            CostModelError::Io { path, detail } => write!(f, "cost model {path}: {detail}"),
        }
    }
}

impl std::error::Error for CostModelError {}

/// The numeric (plain `u64`) fields, in canonical emit order. `node` is
/// handled separately (it is an enum).
const NUMERIC_KEYS: [&str; 15] = [
    "pool_op_ns",
    "release_ns",
    "steal_local_ns",
    "per_item_ns",
    "poll_ns",
    "find_remote_ns",
    "post_request_ns",
    "write_response_ns",
    "remote_latency_ns",
    "level_hop_factor",
    "cross_level_ns",
    "byte_ps",
    "ctrl_bytes",
    "header_bytes",
    "idle_backoff_ns",
];

impl CostModel {
    fn numeric(&self, key: &str) -> u64 {
        match key {
            "pool_op_ns" => self.pool_op_ns,
            "release_ns" => self.release_ns,
            "steal_local_ns" => self.steal_local_ns,
            "per_item_ns" => self.per_item_ns,
            "poll_ns" => self.poll_ns,
            "find_remote_ns" => self.find_remote_ns,
            "post_request_ns" => self.post_request_ns,
            "write_response_ns" => self.write_response_ns,
            "remote_latency_ns" => self.remote_latency_ns,
            "level_hop_factor" => self.level_hop_factor,
            "cross_level_ns" => self.cross_level_ns,
            "byte_ps" => self.byte_ps,
            "ctrl_bytes" => self.ctrl_bytes,
            "header_bytes" => self.header_bytes,
            "idle_backoff_ns" => self.idle_backoff_ns,
            _ => unreachable!("numeric() called with unknown key {key}"),
        }
    }

    fn set_numeric(&mut self, key: &str, v: u64) {
        match key {
            "pool_op_ns" => self.pool_op_ns = v,
            "release_ns" => self.release_ns = v,
            "steal_local_ns" => self.steal_local_ns = v,
            "per_item_ns" => self.per_item_ns = v,
            "poll_ns" => self.poll_ns = v,
            "find_remote_ns" => self.find_remote_ns = v,
            "post_request_ns" => self.post_request_ns = v,
            "write_response_ns" => self.write_response_ns = v,
            "remote_latency_ns" => self.remote_latency_ns = v,
            "level_hop_factor" => self.level_hop_factor = v,
            "cross_level_ns" => self.cross_level_ns = v,
            "byte_ps" => self.byte_ps = v,
            "ctrl_bytes" => self.ctrl_bytes = v,
            "header_bytes" => self.header_bytes = v,
            "idle_backoff_ns" => self.idle_backoff_ns = v,
            _ => unreachable!("set_numeric() called with unknown key {key}"),
        }
    }

    /// Read a model file from disk (the `calibrate` output, or a
    /// hand-edited scenario).
    pub fn load(path: &Path) -> Result<CostModel, CostModelError> {
        let text = std::fs::read_to_string(path).map_err(|e| CostModelError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        text.parse()
    }

    /// Write the canonical emit (the `Display` form) to disk.
    pub fn save(&self, path: &Path) -> Result<(), CostModelError> {
        std::fs::write(path, self.to_string()).map_err(|e| CostModelError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })
    }
}

impl fmt::Display for CostModel {
    /// The canonical emit: header, `node`, then every numeric field in
    /// `NUMERIC_KEYS` order. `parse(emit(m)) == m` for every model.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{HEADER}")?;
        match self.node {
            NodeCost::Fixed { ns, jitter_pct } => writeln!(f, "node = fixed:{ns},{jitter_pct}")?,
            NodeCost::Measured { num, den } => writeln!(f, "node = measured:{num},{den}")?,
        }
        for key in NUMERIC_KEYS {
            writeln!(f, "{key} = {}", self.numeric(key))?;
        }
        Ok(())
    }
}

/// Parse a non-negative integer no wider than `max`, distinguishing
/// "negative" from "unparseable" for the error taxonomy.
fn parse_value(line: usize, key: &str, value: &str, max: u64) -> Result<u64, CostModelError> {
    let bad = || CostModelError::BadValue {
        line,
        key: key.to_string(),
        value: value.to_string(),
    };
    let n: i128 = value.trim().parse().map_err(|_| bad())?;
    if n < 0 {
        return Err(CostModelError::NegativeValue {
            line,
            key: key.to_string(),
            value: value.trim().to_string(),
        });
    }
    if n > max as i128 {
        return Err(bad());
    }
    Ok(n as u64)
}

impl FromStr for CostModel {
    type Err = CostModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut lines = s.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
        match lines.find(|(_, l)| !l.is_empty() && !l.starts_with('#')) {
            Some((_, l)) if l == HEADER => {}
            _ => return Err(CostModelError::MissingHeader),
        }

        let mut model = CostModel::default();
        let mut seen: Vec<&'static str> = Vec::new();
        let mut node_seen = false;
        for (line, text) in lines {
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            let text = text.split('#').next().unwrap().trim();
            let Some((key, value)) = text.split_once('=') else {
                return Err(CostModelError::BadLine {
                    line,
                    text: text.to_string(),
                });
            };
            let (key, value) = (key.trim(), value.trim());
            if key == "node" {
                if node_seen {
                    return Err(CostModelError::DuplicateKey {
                        line,
                        key: key.to_string(),
                    });
                }
                node_seen = true;
                let bad = || CostModelError::BadValue {
                    line,
                    key: key.to_string(),
                    value: value.to_string(),
                };
                let (kind, args) = value.split_once(':').ok_or_else(bad)?;
                let (a, b) = args.split_once(',').ok_or_else(bad)?;
                model.node = match kind.trim() {
                    "fixed" => NodeCost::Fixed {
                        ns: parse_value(line, "node.ns", a, u64::MAX)?,
                        jitter_pct: parse_value(line, "node.jitter_pct", b, 100)? as u8,
                    },
                    "measured" => NodeCost::Measured {
                        num: parse_value(line, "node.num", a, u64::MAX)?,
                        den: parse_value(line, "node.den", b, u64::MAX)?.max(1),
                    },
                    _ => return Err(bad()),
                };
                continue;
            }
            let Some(&canon) = NUMERIC_KEYS.iter().find(|&&k| k == key) else {
                return Err(CostModelError::UnknownKey {
                    line,
                    key: key.to_string(),
                });
            };
            if seen.contains(&canon) {
                return Err(CostModelError::DuplicateKey {
                    line,
                    key: key.to_string(),
                });
            }
            seen.push(canon);
            let v = parse_value(line, key, value, u64::MAX)?;
            model.set_numeric(canon, v);
        }

        if !node_seen {
            return Err(CostModelError::MissingField { key: "node" });
        }
        for key in NUMERIC_KEYS {
            if !seen.contains(&key) {
                return Err(CostModelError::MissingField { key });
            }
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_sensibly() {
        let q = CostModel::paper_queens();
        let c = CostModel::paper_qap();
        match (q.node, c.node) {
            (NodeCost::Fixed { ns: a, .. }, NodeCost::Fixed { ns: b, .. }) => assert!(a < b),
            _ => panic!("presets use fixed node costs"),
        }
        assert!(
            q.find_remote_ns > q.steal_local_ns,
            "remote dearer than local"
        );
    }

    #[test]
    fn transfer_cost_scales() {
        let m = CostModel::woodcrest_ib(1000);
        assert_eq!(m.transfer_ns(1500), 1000); // 667 ps/B ≈ 1.5 GB/s
        assert_eq!(m.transfer_ns(0), 0);
    }

    #[test]
    fn per_level_costs_grow_with_distance() {
        let m = CostModel::woodcrest_ib(1000);
        assert_eq!(m.remote_latency_for(1), m.remote_latency_ns);
        assert_eq!(m.remote_latency_for(2), m.remote_latency_ns * 4);
        assert_eq!(m.remote_latency_for(3), m.remote_latency_ns * 16);
        assert_eq!(m.local_steal_ns(1), m.steal_local_ns);
        assert_eq!(m.local_steal_ns(2), m.steal_local_ns + m.cross_level_ns);
        let mut flatline = m;
        flatline.level_hop_factor = 1;
        assert_eq!(flatline.remote_latency_for(3), m.remote_latency_ns);
    }
}
