//! The steal-plane message fabric: flat per-ring latencies, or a
//! contention model with per-link capacity and FIFO queueing.
//!
//! The original cost model charges every remote message a *fixed* one-way
//! latency for its distance ring, however many messages share a link — so
//! 10k thieves hammering one victim node all pay the same 2 µs, which is
//! exactly the dishonesty Gent & McCreesh warn parallel-CP comparisons
//! about. Under [`FabricModel::Contention`] each shared-memory node gets
//! one *uplink* (egress) and one *downlink* (ingress) of finite capacity;
//! a message serialises at `link_byte_ps` per byte on both, queues FIFO
//! behind whatever the link is still transmitting, and only then pays the
//! per-ring propagation delay. A steal storm therefore pays queueing
//! delay that grows with the storm, not flat latency.
//!
//! The fabric also keeps conservation books — messages injected,
//! delivered, and (at drain) in flight — which `prop_fabric` pins:
//! `injected == delivered + in_flight` at every drain, and no link's
//! queue can ever be deeper than `horizon / serialization + 1`.

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

use crate::cost::CostModel;

/// Capacity *overrides* for [`FabricModel::Contention`]. Every `None`
/// field resolves from the run's [`CostModel`] — `byte_ps`,
/// `ctrl_bytes`, `header_bytes` — so the contention fabric and the flat
/// latency path price bytes from one source of truth and a loaded model
/// can never disagree with itself. (Before PR 10 this struct carried its
/// own copies of all three defaults; a calibrated `byte_ps` would have
/// silently left the contention links at the old constant.)
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContentionParams {
    /// Serialization cost per byte on a node's uplink/downlink, in
    /// picoseconds; `None` = the cost model's `byte_ps`.
    pub link_byte_ps: Option<u64>,
    /// Wire size of a control message, bytes; `None` = the cost model's
    /// `ctrl_bytes`.
    pub ctrl_bytes: Option<u64>,
    /// Per-message header added to payload replies, bytes; `None` = the
    /// cost model's `header_bytes`.
    pub header_bytes: Option<u64>,
}

/// The fully-resolved wire parameters a simulation actually runs with:
/// the cost model's values with any [`ContentionParams`] overrides
/// applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireParams {
    pub link_byte_ps: u64,
    pub ctrl_bytes: u64,
    pub header_bytes: u64,
}

impl ContentionParams {
    /// Apply the overrides to a cost model's wire constants.
    pub fn resolve(&self, costs: &CostModel) -> WireParams {
        WireParams {
            link_byte_ps: self.link_byte_ps.unwrap_or(costs.byte_ps),
            ctrl_bytes: self.ctrl_bytes.unwrap_or(costs.ctrl_bytes),
            header_bytes: self.header_bytes.unwrap_or(costs.header_bytes),
        }
    }
}

/// How remote steal-plane messages are priced. Threaded through
/// [`SimConfig`](crate::SimConfig); the `fabric_ablation` bin compares
/// the two models head to head.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FabricModel {
    /// Fixed one-way latency per distance ring plus a flat per-byte
    /// transfer cost — infinite link capacity (the PR 2–7 behaviour).
    #[default]
    Latency,
    /// Finite per-node link capacity with FIFO queueing on each node's
    /// uplink and downlink; propagation stays per-ring.
    Contention(ContentionParams),
}

impl FabricModel {
    pub fn is_contention(&self) -> bool {
        matches!(self, FabricModel::Contention(_))
    }
}

impl fmt::Display for FabricModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricModel::Latency => write!(f, "latency"),
            FabricModel::Contention(p) => {
                if *p == ContentionParams::default() {
                    return write!(f, "contention");
                }
                // Positional emit, trailing unset fields trimmed; an
                // unset field between set ones prints empty
                // (`contention:,32`), which `FromStr` reads back as
                // `None` — round-trip by construction.
                let fields = [p.link_byte_ps, p.ctrl_bytes, p.header_bytes];
                let last = fields.iter().rposition(|f| f.is_some()).unwrap();
                write!(f, "contention:")?;
                for (i, field) in fields[..=last].iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    if let Some(v) = field {
                        write!(f, "{v}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

impl FromStr for FabricModel {
    type Err = String;

    /// `latency`, `contention`, or `contention:BYTE_PS[,CTRL[,HDR]]` —
    /// an empty positional field (e.g. `contention:,32`) leaves that
    /// parameter to the cost model.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "latency" | "flat" => Ok(FabricModel::Latency),
            "contention" => Ok(FabricModel::Contention(ContentionParams::default())),
            _ => {
                let rest = s
                    .strip_prefix("contention:")
                    .ok_or_else(|| format!("unknown fabric model {s:?}"))?;
                let mut p = ContentionParams::default();
                let mut it = rest.split(',');
                let field = |v: Option<&str>| -> Result<Option<u64>, String> {
                    match v.map(str::trim) {
                        None | Some("") => Ok(None),
                        Some(x) => x
                            .parse()
                            .map(Some)
                            .map_err(|_| format!("bad fabric field {x:?}")),
                    }
                };
                p.link_byte_ps = field(it.next())?;
                p.ctrl_bytes = field(it.next())?;
                p.header_bytes = field(it.next())?;
                if it.next().is_some() {
                    return Err(format!("too many fabric fields in {s:?}"));
                }
                Ok(FabricModel::Contention(p))
            }
        }
    }
}

/// One direction of a node's network attachment: busy-until horizon plus
/// the departure times of in-queue messages (for depth accounting).
#[derive(Clone, Debug, Default)]
struct Link {
    busy_until: u64,
    departs: VecDeque<u64>,
    max_depth: u64,
}

impl Link {
    /// Enqueue a message of `ser_ns` serialization at `now`; returns
    /// (departure instant, queueing wait).
    fn enqueue(&mut self, now: u64, ser_ns: u64) -> (u64, u64) {
        while self.departs.front().is_some_and(|&d| d <= now) {
            self.departs.pop_front();
        }
        let start = self.busy_until.max(now);
        let wait = start - now;
        let dep = start + ser_ns;
        self.busy_until = dep;
        self.departs.push_back(dep);
        self.max_depth = self.max_depth.max(self.departs.len() as u64);
        (dep, wait)
    }
}

/// Conservation and congestion counters, copied into the
/// [`SimReport`](crate::SimReport) at drain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricReport {
    /// Was the contention model active?
    pub contention: bool,
    /// Remote steal-plane messages handed to the fabric (requests,
    /// refusals, work replies; bound dissemination is billed analytically
    /// by the [`BoundFabric`](crate::BoundFabric) and counted in
    /// `bound_msgs` instead).
    pub injected: u64,
    /// Messages consumed by their destination worker.
    pub delivered: u64,
    /// Messages still travelling (or sitting unread in a mailbox) when
    /// the simulation drained: `injected == delivered + in_flight`.
    pub in_flight: u64,
    /// Deepest FIFO backlog any single link direction reached.
    pub max_link_depth: u64,
    /// Messages that had to wait behind an earlier transmission.
    pub queued_msgs: u64,
    /// Total virtual time spent queueing (the steal-storm bill).
    pub total_queue_ns: u64,
}

/// The message fabric: prices every remote steal-plane message and keeps
/// the conservation books. One instance per simulation.
#[derive(Clone, Debug)]
pub(crate) struct NetFabric {
    model: FabricModel,
    /// Wire constants resolved against the run's cost model (the single
    /// source of truth for per-byte pricing and message sizes).
    wire: WireParams,
    /// `links[2n]` = node `n`'s egress (uplink), `links[2n+1]` = ingress.
    links: Vec<Link>,
    injected: u64,
    delivered: u64,
    queued_msgs: u64,
    total_queue_ns: u64,
}

impl NetFabric {
    pub fn new(model: FabricModel, nodes: usize, costs: &CostModel) -> Self {
        let (links, wire) = match model {
            FabricModel::Latency => (Vec::new(), ContentionParams::default().resolve(costs)),
            FabricModel::Contention(p) => (vec![Link::default(); 2 * nodes], p.resolve(costs)),
        };
        NetFabric {
            model,
            wire,
            links,
            injected: 0,
            delivered: 0,
            queued_msgs: 0,
            total_queue_ns: 0,
        }
    }

    pub fn params(&self) -> WireParams {
        self.wire
    }

    /// Price one remote message sent at `now`: `bytes` on the wire,
    /// `prop_ns` of per-ring propagation, and `flat_extra_ns` the flat
    /// model's per-byte transfer surcharge (zero for control messages).
    /// Returns the arrival instant at the destination worker.
    pub fn send(
        &mut self,
        from_node: usize,
        to_node: usize,
        bytes: u64,
        prop_ns: u64,
        flat_extra_ns: u64,
        now: u64,
    ) -> u64 {
        self.injected += 1;
        match self.model {
            FabricModel::Latency => now + prop_ns + flat_extra_ns,
            FabricModel::Contention(_) => {
                let ser = self.wire.link_byte_ps.saturating_mul(bytes) / 1000;
                let (out, w1) = self.links[2 * from_node].enqueue(now, ser);
                let at_ingress = out + prop_ns;
                let (arrival, w2) = self.links[2 * to_node + 1].enqueue(at_ingress, ser);
                let wait = w1 + w2;
                if wait > 0 {
                    self.queued_msgs += 1;
                    self.total_queue_ns += wait;
                }
                arrival
            }
        }
    }

    /// Record a message consumed by its destination.
    pub fn deliver(&mut self) {
        self.delivered += 1;
    }

    /// Close the books: `undelivered` messages found still sitting in
    /// mailboxes/queues at drain time.
    pub fn report(&self, undelivered: u64) -> FabricReport {
        debug_assert_eq!(self.injected, self.delivered + undelivered);
        FabricReport {
            contention: self.model.is_contention(),
            injected: self.injected,
            delivered: self.delivered,
            in_flight: self.injected - self.delivered,
            max_link_depth: self.links.iter().map(|l| l.max_depth).max().unwrap_or(0),
            queued_msgs: self.queued_msgs,
            total_queue_ns: self.total_queue_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_model_is_flat() {
        let mut f = NetFabric::new(FabricModel::Latency, 4, &CostModel::default());
        // Arrival is now + propagation + flat transfer, independent of load.
        for _ in 0..100 {
            assert_eq!(f.send(0, 1, 64, 2_000, 0, 10), 2_010);
        }
        let r = f.report(100);
        assert_eq!(r.injected, 100);
        assert_eq!(r.max_link_depth, 0);
        assert_eq!(r.total_queue_ns, 0);
    }

    #[test]
    fn contention_queues_fifo_behind_busy_links() {
        let p = ContentionParams {
            link_byte_ps: Some(1_000_000), // 1 µs per byte: easy arithmetic
            ctrl_bytes: Some(64),
            header_bytes: Some(0),
        };
        let mut f = NetFabric::new(FabricModel::Contention(p), 2, &CostModel::default());
        // 10-byte message = 10 µs serialization per link direction.
        let a1 = f.send(0, 1, 10, 500, 0, 0);
        assert_eq!(a1, 10_000 + 500 + 10_000);
        // Sent at the same instant: queues behind the first on both links.
        let a2 = f.send(0, 1, 10, 500, 0, 0);
        assert_eq!(a2, 20_000 + 500 + 10_000);
        assert!(a2 > a1, "FIFO order preserved");
        let r = f.report(2);
        assert_eq!(r.queued_msgs, 1);
        assert!(r.total_queue_ns > 0);
        assert_eq!(r.max_link_depth, 2);
    }

    #[test]
    fn storm_backpressure_grows_with_thieves() {
        let p = ContentionParams::default();
        let costs = CostModel::default();
        let mut small = NetFabric::new(FabricModel::Contention(p), 8, &costs);
        let mut big = NetFabric::new(FabricModel::Contention(p), 8, &costs);
        // 10 vs 10_000 thieves all hitting node 0's ingress at t=0.
        let last_small = (0..10)
            .map(|s| small.send(1 + s % 7, 0, 64, 2_000, 0, 0))
            .max();
        let last_big = (0..10_000)
            .map(|s| big.send(1 + s % 7, 0, 64, 2_000, 0, 0))
            .max();
        assert!(last_big.unwrap() > 10 * last_small.unwrap());
        assert!(big.report(10_000).total_queue_ns > small.report(10).total_queue_ns);
    }

    #[test]
    fn model_parses_and_displays() {
        assert_eq!(
            "latency".parse::<FabricModel>().unwrap(),
            FabricModel::Latency
        );
        assert_eq!(
            "contention".parse::<FabricModel>().unwrap(),
            FabricModel::Contention(ContentionParams::default())
        );
        let m: FabricModel = "contention:1000,32,16".parse().unwrap();
        match m {
            FabricModel::Contention(p) => {
                assert_eq!(
                    (p.link_byte_ps, p.ctrl_bytes, p.header_bytes),
                    (Some(1000), Some(32), Some(16))
                );
            }
            _ => panic!(),
        }
        assert_eq!(m.to_string(), "contention:1000,32,16");
        assert_eq!(FabricModel::Latency.to_string(), "latency");
        assert!("warp".parse::<FabricModel>().is_err());
        assert!("contention:a".parse::<FabricModel>().is_err());

        // Partial overrides: unset fields stay on the cost model, and
        // Display/FromStr round-trip every combination.
        for s in ["contention:1000", "contention:,32", "contention:,,16"] {
            let m: FabricModel = s.parse().unwrap();
            assert_eq!(m.to_string(), s, "positional round-trip");
            assert_eq!(m.to_string().parse::<FabricModel>().unwrap(), m);
        }
        let costs = CostModel::default();
        let FabricModel::Contention(p) = "contention:,32".parse().unwrap() else {
            panic!()
        };
        let w = p.resolve(&costs);
        assert_eq!(w.link_byte_ps, costs.byte_ps, "unset → cost model");
        assert_eq!(w.ctrl_bytes, 32, "set → override");
        assert_eq!(w.header_bytes, costs.header_bytes);
    }
}
