//! The steal-plane message fabric: flat per-ring latencies, or a
//! contention model with per-link capacity and FIFO queueing.
//!
//! The original cost model charges every remote message a *fixed* one-way
//! latency for its distance ring, however many messages share a link — so
//! 10k thieves hammering one victim node all pay the same 2 µs, which is
//! exactly the dishonesty Gent & McCreesh warn parallel-CP comparisons
//! about. Under [`FabricModel::Contention`] each shared-memory node gets
//! one *uplink* (egress) and one *downlink* (ingress) of finite capacity;
//! a message serialises at `link_byte_ps` per byte on both, queues FIFO
//! behind whatever the link is still transmitting, and only then pays the
//! per-ring propagation delay. A steal storm therefore pays queueing
//! delay that grows with the storm, not flat latency.
//!
//! The fabric also keeps conservation books — messages injected,
//! delivered, and (at drain) in flight — which `prop_fabric` pins:
//! `injected == delivered + in_flight` at every drain, and no link's
//! queue can ever be deeper than `horizon / serialization + 1`.

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

/// Capacity parameters of one link direction under
/// [`FabricModel::Contention`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContentionParams {
    /// Serialization cost per byte on a node's uplink/downlink, in
    /// picoseconds (667 ≙ ~1.5 GB/s, matching the flat model's
    /// per-byte transfer cost).
    pub link_byte_ps: u64,
    /// Wire size of a control message (steal request / refusal), bytes.
    pub ctrl_bytes: u64,
    /// Per-message header added to payload replies, bytes.
    pub header_bytes: u64,
}

impl Default for ContentionParams {
    fn default() -> Self {
        ContentionParams {
            link_byte_ps: 667,
            ctrl_bytes: 64,
            header_bytes: 64,
        }
    }
}

/// How remote steal-plane messages are priced. Threaded through
/// [`SimConfig`](crate::SimConfig); the `fabric_ablation` bin compares
/// the two models head to head.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FabricModel {
    /// Fixed one-way latency per distance ring plus a flat per-byte
    /// transfer cost — infinite link capacity (the PR 2–7 behaviour).
    #[default]
    Latency,
    /// Finite per-node link capacity with FIFO queueing on each node's
    /// uplink and downlink; propagation stays per-ring.
    Contention(ContentionParams),
}

impl FabricModel {
    pub fn is_contention(&self) -> bool {
        matches!(self, FabricModel::Contention(_))
    }
}

impl fmt::Display for FabricModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricModel::Latency => write!(f, "latency"),
            FabricModel::Contention(p) => {
                let d = ContentionParams::default();
                if *p == d {
                    write!(f, "contention")
                } else {
                    write!(
                        f,
                        "contention:{},{},{}",
                        p.link_byte_ps, p.ctrl_bytes, p.header_bytes
                    )
                }
            }
        }
    }
}

impl FromStr for FabricModel {
    type Err = String;

    /// `latency`, `contention`, or `contention:BYTE_PS[,CTRL[,HDR]]`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "latency" | "flat" => Ok(FabricModel::Latency),
            "contention" => Ok(FabricModel::Contention(ContentionParams::default())),
            _ => {
                let rest = s
                    .strip_prefix("contention:")
                    .ok_or_else(|| format!("unknown fabric model {s:?}"))?;
                let mut p = ContentionParams::default();
                let mut it = rest.split(',');
                let field = |v: Option<&str>, cur: u64| -> Result<u64, String> {
                    match v {
                        None => Ok(cur),
                        Some(x) => x.parse().map_err(|_| format!("bad fabric field {x:?}")),
                    }
                };
                p.link_byte_ps = field(it.next(), p.link_byte_ps)?;
                p.ctrl_bytes = field(it.next(), p.ctrl_bytes)?;
                p.header_bytes = field(it.next(), p.header_bytes)?;
                if it.next().is_some() {
                    return Err(format!("too many fabric fields in {s:?}"));
                }
                Ok(FabricModel::Contention(p))
            }
        }
    }
}

/// One direction of a node's network attachment: busy-until horizon plus
/// the departure times of in-queue messages (for depth accounting).
#[derive(Clone, Debug, Default)]
struct Link {
    busy_until: u64,
    departs: VecDeque<u64>,
    max_depth: u64,
}

impl Link {
    /// Enqueue a message of `ser_ns` serialization at `now`; returns
    /// (departure instant, queueing wait).
    fn enqueue(&mut self, now: u64, ser_ns: u64) -> (u64, u64) {
        while self.departs.front().is_some_and(|&d| d <= now) {
            self.departs.pop_front();
        }
        let start = self.busy_until.max(now);
        let wait = start - now;
        let dep = start + ser_ns;
        self.busy_until = dep;
        self.departs.push_back(dep);
        self.max_depth = self.max_depth.max(self.departs.len() as u64);
        (dep, wait)
    }
}

/// Conservation and congestion counters, copied into the
/// [`SimReport`](crate::SimReport) at drain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricReport {
    /// Was the contention model active?
    pub contention: bool,
    /// Remote steal-plane messages handed to the fabric (requests,
    /// refusals, work replies; bound dissemination is billed analytically
    /// by the [`BoundFabric`](crate::BoundFabric) and counted in
    /// `bound_msgs` instead).
    pub injected: u64,
    /// Messages consumed by their destination worker.
    pub delivered: u64,
    /// Messages still travelling (or sitting unread in a mailbox) when
    /// the simulation drained: `injected == delivered + in_flight`.
    pub in_flight: u64,
    /// Deepest FIFO backlog any single link direction reached.
    pub max_link_depth: u64,
    /// Messages that had to wait behind an earlier transmission.
    pub queued_msgs: u64,
    /// Total virtual time spent queueing (the steal-storm bill).
    pub total_queue_ns: u64,
}

/// The message fabric: prices every remote steal-plane message and keeps
/// the conservation books. One instance per simulation.
#[derive(Clone, Debug)]
pub(crate) struct NetFabric {
    model: FabricModel,
    /// `links[2n]` = node `n`'s egress (uplink), `links[2n+1]` = ingress.
    links: Vec<Link>,
    injected: u64,
    delivered: u64,
    queued_msgs: u64,
    total_queue_ns: u64,
}

impl NetFabric {
    pub fn new(model: FabricModel, nodes: usize) -> Self {
        let links = match model {
            FabricModel::Latency => Vec::new(),
            FabricModel::Contention(_) => vec![Link::default(); 2 * nodes],
        };
        NetFabric {
            model,
            links,
            injected: 0,
            delivered: 0,
            queued_msgs: 0,
            total_queue_ns: 0,
        }
    }

    pub fn params(&self) -> ContentionParams {
        match self.model {
            FabricModel::Latency => ContentionParams::default(),
            FabricModel::Contention(p) => p,
        }
    }

    /// Price one remote message sent at `now`: `bytes` on the wire,
    /// `prop_ns` of per-ring propagation, and `flat_extra_ns` the flat
    /// model's per-byte transfer surcharge (zero for control messages).
    /// Returns the arrival instant at the destination worker.
    pub fn send(
        &mut self,
        from_node: usize,
        to_node: usize,
        bytes: u64,
        prop_ns: u64,
        flat_extra_ns: u64,
        now: u64,
    ) -> u64 {
        self.injected += 1;
        match self.model {
            FabricModel::Latency => now + prop_ns + flat_extra_ns,
            FabricModel::Contention(p) => {
                let ser = p.link_byte_ps.saturating_mul(bytes) / 1000;
                let (out, w1) = self.links[2 * from_node].enqueue(now, ser);
                let at_ingress = out + prop_ns;
                let (arrival, w2) = self.links[2 * to_node + 1].enqueue(at_ingress, ser);
                let wait = w1 + w2;
                if wait > 0 {
                    self.queued_msgs += 1;
                    self.total_queue_ns += wait;
                }
                arrival
            }
        }
    }

    /// Record a message consumed by its destination.
    pub fn deliver(&mut self) {
        self.delivered += 1;
    }

    /// Close the books: `undelivered` messages found still sitting in
    /// mailboxes/queues at drain time.
    pub fn report(&self, undelivered: u64) -> FabricReport {
        debug_assert_eq!(self.injected, self.delivered + undelivered);
        FabricReport {
            contention: self.model.is_contention(),
            injected: self.injected,
            delivered: self.delivered,
            in_flight: self.injected - self.delivered,
            max_link_depth: self.links.iter().map(|l| l.max_depth).max().unwrap_or(0),
            queued_msgs: self.queued_msgs,
            total_queue_ns: self.total_queue_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_model_is_flat() {
        let mut f = NetFabric::new(FabricModel::Latency, 4);
        // Arrival is now + propagation + flat transfer, independent of load.
        for _ in 0..100 {
            assert_eq!(f.send(0, 1, 64, 2_000, 0, 10), 2_010);
        }
        let r = f.report(100);
        assert_eq!(r.injected, 100);
        assert_eq!(r.max_link_depth, 0);
        assert_eq!(r.total_queue_ns, 0);
    }

    #[test]
    fn contention_queues_fifo_behind_busy_links() {
        let p = ContentionParams {
            link_byte_ps: 1_000_000, // 1 µs per byte: easy arithmetic
            ctrl_bytes: 64,
            header_bytes: 0,
        };
        let mut f = NetFabric::new(FabricModel::Contention(p), 2);
        // 10-byte message = 10 µs serialization per link direction.
        let a1 = f.send(0, 1, 10, 500, 0, 0);
        assert_eq!(a1, 10_000 + 500 + 10_000);
        // Sent at the same instant: queues behind the first on both links.
        let a2 = f.send(0, 1, 10, 500, 0, 0);
        assert_eq!(a2, 20_000 + 500 + 10_000);
        assert!(a2 > a1, "FIFO order preserved");
        let r = f.report(2);
        assert_eq!(r.queued_msgs, 1);
        assert!(r.total_queue_ns > 0);
        assert_eq!(r.max_link_depth, 2);
    }

    #[test]
    fn storm_backpressure_grows_with_thieves() {
        let p = ContentionParams::default();
        let mut small = NetFabric::new(FabricModel::Contention(p), 8);
        let mut big = NetFabric::new(FabricModel::Contention(p), 8);
        // 10 vs 10_000 thieves all hitting node 0's ingress at t=0.
        let last_small = (0..10)
            .map(|s| small.send(1 + s % 7, 0, 64, 2_000, 0, 0))
            .max();
        let last_big = (0..10_000)
            .map(|s| big.send(1 + s % 7, 0, 64, 2_000, 0, 0))
            .max();
        assert!(last_big.unwrap() > 10 * last_small.unwrap());
        assert!(big.report(10_000).total_queue_ns > small.report(10).total_queue_ns);
    }

    #[test]
    fn model_parses_and_displays() {
        assert_eq!(
            "latency".parse::<FabricModel>().unwrap(),
            FabricModel::Latency
        );
        assert_eq!(
            "contention".parse::<FabricModel>().unwrap(),
            FabricModel::Contention(ContentionParams::default())
        );
        let m: FabricModel = "contention:1000,32,16".parse().unwrap();
        match m {
            FabricModel::Contention(p) => {
                assert_eq!(
                    (p.link_byte_ps, p.ctrl_bytes, p.header_bytes),
                    (1000, 32, 16)
                );
            }
            _ => panic!(),
        }
        assert_eq!(m.to_string(), "contention:1000,32,16");
        assert_eq!(FabricModel::Latency.to_string(), "latency");
        assert!("warp".parse::<FabricModel>().is_err());
        assert!("contention:a".parse::<FabricModel>().is_err());
    }
}
