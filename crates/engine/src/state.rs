//! Mutable propagation view over a store, with change logging.

use macs_domain::{bits, StoreLayout, Val, VarId};

/// Zero-sized "a domain became empty" error. Propagators return
/// `Result<_, Failed>` so `?` short-circuits the fixpoint loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Failed;

/// Records which variables were pruned during a propagator run, so the
/// fixpoint engine can schedule exactly their watchers.
#[derive(Debug, Default)]
pub struct ChangeLog {
    touched: Vec<VarId>,
    dirty: Vec<bool>,
}

impl ChangeLog {
    pub fn new(num_vars: usize) -> Self {
        ChangeLog {
            touched: Vec::with_capacity(num_vars),
            dirty: vec![false; num_vars],
        }
    }

    #[inline]
    pub fn mark(&mut self, v: VarId) {
        if !self.dirty[v] {
            self.dirty[v] = true;
            self.touched.push(v);
        }
    }

    /// Drain the touched set, resetting the log.
    #[inline]
    pub fn drain(&mut self, mut f: impl FnMut(VarId)) {
        for &v in &self.touched {
            self.dirty[v] = false;
        }
        for v in self.touched.drain(..) {
            f(v);
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    pub fn clear(&mut self) {
        for &v in &self.touched {
            self.dirty[v] = false;
        }
        self.touched.clear();
    }
}

/// The state a propagator runs against: the store's words, the layout, the
/// change log, and the objective incumbent in force for this propagation
/// round (`i64::MAX` when there is none).
///
/// All mutating accessors detect wipe-out (`Err(Failed)`) and record the
/// pruned variable in the change log, so individual propagators stay free
/// of bookkeeping.
pub struct PropState<'a> {
    layout: &'a StoreLayout,
    words: &'a mut [u64],
    log: &'a mut ChangeLog,
    /// Best objective value found so far (minimisation); `i64::MAX` if none.
    pub incumbent: i64,
}

impl<'a> PropState<'a> {
    pub fn new(
        layout: &'a StoreLayout,
        words: &'a mut [u64],
        log: &'a mut ChangeLog,
        incumbent: i64,
    ) -> Self {
        debug_assert_eq!(words.len(), layout.store_words());
        PropState {
            layout,
            words,
            log,
            incumbent,
        }
    }

    #[inline]
    pub fn layout(&self) -> &StoreLayout {
        self.layout
    }

    /// The whole store (header + cells), read-only — e.g. for cost
    /// lower-bound evaluation over the partial assignment.
    #[inline]
    pub fn store_words(&self) -> &[u64] {
        self.words
    }

    // ----- read access ----------------------------------------------------

    #[inline]
    pub fn dom(&self, v: VarId) -> &[u64] {
        &self.words[self.layout.var_range(v)]
    }

    #[inline]
    pub fn min(&self, v: VarId) -> Option<Val> {
        bits::min(self.dom(v))
    }

    #[inline]
    pub fn max(&self, v: VarId) -> Option<Val> {
        bits::max(self.dom(v))
    }

    #[inline]
    pub fn value(&self, v: VarId) -> Option<Val> {
        bits::singleton(self.dom(v))
    }

    #[inline]
    pub fn size(&self, v: VarId) -> u32 {
        bits::count(self.dom(v))
    }

    #[inline]
    pub fn contains(&self, v: VarId, val: Val) -> bool {
        bits::contains(self.dom(v), val)
    }

    #[inline]
    pub fn is_assigned(&self, v: VarId) -> bool {
        bits::is_singleton(self.dom(v))
    }

    // ----- pruning --------------------------------------------------------

    #[inline]
    fn dom_mut(&mut self, v: VarId) -> &mut [u64] {
        &mut self.words[self.layout.var_range(v)]
    }

    #[inline]
    fn after_change(&mut self, v: VarId) -> Result<(), Failed> {
        if bits::is_empty(self.dom(v)) {
            return Err(Failed);
        }
        self.log.mark(v);
        Ok(())
    }

    /// Remove one value. Ok(true) if the domain changed.
    #[inline]
    pub fn remove(&mut self, v: VarId, val: Val) -> Result<bool, Failed> {
        if val > self.layout.max_value() {
            return Ok(false);
        }
        if bits::remove(self.dom_mut(v), val) {
            self.after_change(v)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Reduce to the singleton `{val}`.
    #[inline]
    pub fn assign(&mut self, v: VarId, val: Val) -> Result<bool, Failed> {
        if val > self.layout.max_value() || !self.contains(v, val) {
            return Err(Failed);
        }
        if bits::keep_only(self.dom_mut(v), val) {
            self.after_change(v)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Remove all values `< lo` (signed: a negative bound is a no-op).
    #[inline]
    pub fn remove_below(&mut self, v: VarId, lo: i64) -> Result<bool, Failed> {
        if lo <= 0 {
            return Ok(false);
        }
        if lo > self.layout.max_value() as i64 {
            return Err(Failed);
        }
        if bits::remove_below(self.dom_mut(v), lo as Val) {
            self.after_change(v)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Remove all values `> hi` (signed: a negative bound fails).
    #[inline]
    pub fn remove_above(&mut self, v: VarId, hi: i64) -> Result<bool, Failed> {
        if hi < 0 {
            return Err(Failed);
        }
        if hi >= self.layout.max_value() as i64 {
            return Ok(false);
        }
        if bits::remove_above(self.dom_mut(v), hi as Val) {
            self.after_change(v)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Intersect `dom(v)` with an explicit bitmap.
    #[inline]
    pub fn intersect_with(&mut self, v: VarId, mask: &[u64]) -> Result<bool, Failed> {
        if bits::intersect(self.dom_mut(v), mask) {
            self.after_change(v)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Remove from `dom(v)` every value in an explicit bitmap.
    #[inline]
    pub fn subtract(&mut self, v: VarId, mask: &[u64]) -> Result<bool, Failed> {
        if bits::subtract(self.dom_mut(v), mask) {
            self.after_change(v)?;
            return Ok(true);
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macs_domain::Store;

    fn setup() -> (StoreLayout, Store, ChangeLog) {
        let l = StoreLayout::new(3, 9);
        let s = Store::root(&l);
        let log = ChangeLog::new(3);
        (l, s, log)
    }

    #[test]
    fn remove_logs_change_once() {
        let (l, mut s, mut log) = setup();
        let mut st = PropState::new(&l, s.as_words_mut(), &mut log, i64::MAX);
        assert!(st.remove(0, 3).unwrap());
        assert!(!st.remove(0, 3).unwrap());
        assert!(st.remove(0, 4).unwrap());
        let mut seen = vec![];
        log.drain(|v| seen.push(v));
        assert_eq!(seen, vec![0]);
        assert!(log.is_empty());
    }

    #[test]
    fn wipe_out_fails() {
        let (l, mut s, mut log) = setup();
        let mut st = PropState::new(&l, s.as_words_mut(), &mut log, i64::MAX);
        for v in 0..9 {
            st.remove(1, v).unwrap();
        }
        assert_eq!(st.remove(1, 9), Err(Failed));
    }

    #[test]
    fn assign_requires_membership() {
        let (l, mut s, mut log) = setup();
        let mut st = PropState::new(&l, s.as_words_mut(), &mut log, i64::MAX);
        st.remove(2, 5).unwrap();
        assert_eq!(st.assign(2, 5), Err(Failed));
        assert!(st.assign(2, 4).unwrap());
        assert_eq!(st.value(2), Some(4));
        assert!(!st.assign(2, 4).unwrap());
    }

    #[test]
    fn signed_bounds_behave() {
        let (l, mut s, mut log) = setup();
        let mut st = PropState::new(&l, s.as_words_mut(), &mut log, i64::MAX);
        assert!(!st.remove_below(0, -5).unwrap());
        assert!(!st.remove_above(0, 100).unwrap());
        assert_eq!(st.remove_above(0, -1), Err(Failed));
        assert_eq!(st.remove_below(1, 10), Err(Failed));
        assert!(st.remove_below(2, 4).unwrap());
        assert!(st.remove_above(2, 7).unwrap());
        assert_eq!(st.min(2), Some(4));
        assert_eq!(st.max(2), Some(7));
    }
}
