//! Mutable propagation view over a store, with change logging.

use std::cell::Cell;

use macs_domain::{bits, StoreLayout, Val, VarId};

/// Zero-sized "a domain became empty" error. Propagators return
/// `Result<_, Failed>` so `?` short-circuits the fixpoint loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Failed;

/// Records which variables were pruned during a propagator run — and *how*:
/// per variable, the mask of changed bitmap words ([`bits::word_bit`]) and
/// whether the domain collapsed to a singleton. The fixpoint engine uses
/// both to wake only the watchers whose words actually moved (and, for
/// assignment-triggered propagators, only on a fresh singleton).
///
/// The log also carries the per-variable first/last-set-word scan hints for
/// `min`/`max` (see [`ChangeLog::with_hints`]): within one propagation
/// round domains only shrink, so the first set word can only move up and
/// the last only down — a hint advanced past a cleared block never has to
/// be re-validated until the next round resets it. The hints are stored in
/// `Cell`s so read-only accessors (`PropState::min`) can advance them.
#[derive(Debug, Default)]
pub struct ChangeLog {
    touched: Vec<VarId>,
    dirty: Vec<bool>,
    /// Changed-words mask per variable (valid only while `dirty[v]`).
    masks: Vec<u64>,
    /// Did the variable become assigned during this drain window?
    assigned: Vec<bool>,
    /// Scan hints: `(round, word)` per variable; a hint is live only when
    /// its round matches `round` (O(1) invalidation at round start).
    lo_hint: Vec<Cell<(u64, u32)>>,
    hi_hint: Vec<Cell<(u64, u32)>>,
    round: u64,
}

impl ChangeLog {
    /// A log without scan hints (`min`/`max` always scan the full cell —
    /// the pre-hint behaviour, kept for single-word layouts where a hint
    /// cannot beat the one-word scan, and for baseline measurement).
    pub fn new(num_vars: usize) -> Self {
        ChangeLog {
            touched: Vec::with_capacity(num_vars),
            dirty: vec![false; num_vars],
            masks: vec![0; num_vars],
            assigned: vec![false; num_vars],
            lo_hint: Vec::new(),
            hi_hint: Vec::new(),
            round: 1,
        }
    }

    /// A log with first/last-set-word scan hints enabled for every
    /// variable (worth it only for multi-word cells).
    pub fn with_hints(num_vars: usize) -> Self {
        let mut log = Self::new(num_vars);
        log.lo_hint = vec![Cell::new((0, 0)); num_vars];
        log.hi_hint = vec![Cell::new((0, 0)); num_vars];
        log
    }

    /// Start a new propagation round: clears the touched set and
    /// invalidates every scan hint (domains now belong to a new store).
    pub fn begin_round(&mut self) {
        self.clear();
        self.round += 1;
    }

    /// Record that `v` changed: `mask` is the changed-words mask (an
    /// over-approximation is sound), `assigned` whether the domain is now a
    /// singleton.
    #[inline]
    pub fn mark(&mut self, v: VarId, mask: u64, assigned: bool) {
        if !self.dirty[v] {
            self.dirty[v] = true;
            self.masks[v] = mask;
            self.assigned[v] = assigned;
            self.touched.push(v);
        } else {
            self.masks[v] |= mask;
            self.assigned[v] |= assigned;
        }
    }

    /// Drain the touched set, resetting the log. The callback receives
    /// `(var, changed_words_mask, became_assigned)`.
    #[inline]
    pub fn drain(&mut self, mut f: impl FnMut(VarId, u64, bool)) {
        for &v in &self.touched {
            self.dirty[v] = false;
        }
        for v in self.touched.drain(..) {
            f(v, self.masks[v], self.assigned[v]);
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    pub fn clear(&mut self) {
        for &v in &self.touched {
            self.dirty[v] = false;
        }
        self.touched.clear();
    }

    // ----- scan hints -------------------------------------------------------

    /// Word index at which a `min` scan of `v` may start (0 without a live
    /// hint).
    #[inline]
    fn lo_start(&self, v: VarId) -> usize {
        match self.lo_hint.get(v) {
            Some(c) => {
                let (round, w) = c.get();
                if round == self.round {
                    w as usize
                } else {
                    0
                }
            }
            None => 0,
        }
    }

    #[inline]
    fn set_lo(&self, v: VarId, w: usize) {
        if let Some(c) = self.lo_hint.get(v) {
            c.set((self.round, w as u32));
        }
    }

    /// Word index + 1 at which a `max` scan of `v` may start (`len`
    /// without a live hint).
    #[inline]
    fn hi_start(&self, v: VarId, len: usize) -> usize {
        match self.hi_hint.get(v) {
            Some(c) => {
                let (round, w) = c.get();
                if round == self.round {
                    (w as usize + 1).min(len)
                } else {
                    len
                }
            }
            None => len,
        }
    }

    #[inline]
    fn set_hi(&self, v: VarId, w: usize) {
        if let Some(c) = self.hi_hint.get(v) {
            c.set((self.round, w as u32));
        }
    }
}

/// The state a propagator runs against: the store's words, the layout, the
/// change log, and the objective incumbent in force for this propagation
/// round (`i64::MAX` when there is none).
///
/// All mutating accessors detect wipe-out (`Err(Failed)`) and record the
/// pruned variable — with its changed-words mask and assignment event — in
/// the change log, so individual propagators stay free of bookkeeping.
pub struct PropState<'a> {
    layout: &'a StoreLayout,
    words: &'a mut [u64],
    log: &'a mut ChangeLog,
    /// Best objective value found so far (minimisation); `i64::MAX` if none.
    pub incumbent: i64,
}

impl<'a> PropState<'a> {
    pub fn new(
        layout: &'a StoreLayout,
        words: &'a mut [u64],
        log: &'a mut ChangeLog,
        incumbent: i64,
    ) -> Self {
        debug_assert_eq!(words.len(), layout.store_words());
        PropState {
            layout,
            words,
            log,
            incumbent,
        }
    }

    #[inline]
    pub fn layout(&self) -> &StoreLayout {
        self.layout
    }

    /// The whole store (header + cells), read-only — e.g. for cost
    /// lower-bound evaluation over the partial assignment.
    #[inline]
    pub fn store_words(&self) -> &[u64] {
        self.words
    }

    // ----- read access ----------------------------------------------------

    #[inline]
    pub fn dom(&self, v: VarId) -> &[u64] {
        &self.words[self.layout.var_range(v)]
    }

    /// Smallest value of `v`. Multi-word cells scan from the cached
    /// first-set-word hint and advance it past the zero words they skip.
    #[inline]
    pub fn min(&self, v: VarId) -> Option<Val> {
        let dom = self.dom(v);
        if dom.len() == 1 {
            return bits::min(dom);
        }
        let start = self.log.lo_start(v);
        for (i, &w) in dom.iter().enumerate().skip(start) {
            if w != 0 {
                self.log.set_lo(v, i);
                return Some((i * 64 + w.trailing_zeros() as usize) as Val);
            }
        }
        None
    }

    /// Largest value of `v` (last-set-word hint, symmetric to `min`).
    #[inline]
    pub fn max(&self, v: VarId) -> Option<Val> {
        let dom = self.dom(v);
        if dom.len() == 1 {
            return bits::max(dom);
        }
        let start = self.log.hi_start(v, dom.len());
        for i in (0..start).rev() {
            let w = dom[i];
            if w != 0 {
                self.log.set_hi(v, i);
                return Some((i * 64 + 63 - w.leading_zeros() as usize) as Val);
            }
        }
        None
    }

    #[inline]
    pub fn value(&self, v: VarId) -> Option<Val> {
        bits::singleton(self.dom(v))
    }

    #[inline]
    pub fn size(&self, v: VarId) -> u32 {
        bits::count(self.dom(v))
    }

    #[inline]
    pub fn contains(&self, v: VarId, val: Val) -> bool {
        bits::contains(self.dom(v), val)
    }

    #[inline]
    pub fn is_assigned(&self, v: VarId) -> bool {
        bits::is_singleton(self.dom(v))
    }

    // ----- pruning --------------------------------------------------------

    #[inline]
    fn dom_mut(&mut self, v: VarId) -> &mut [u64] {
        &mut self.words[self.layout.var_range(v)]
    }

    /// Wipe-out check + change logging after a mutation that touched the
    /// words in `mask`. One pass detects emptiness and singleton-ness
    /// together (the old code scanned once for emptiness and left watchers
    /// to rediscover singletons propagator by propagator).
    #[inline]
    fn after_change(&mut self, v: VarId, mask: u64) -> Result<(), Failed> {
        let dom = self.dom(v);
        let (empty, single) = if dom.len() == 1 {
            let w = dom[0];
            (w == 0, w.is_power_of_two())
        } else {
            let mut nonzero = 0u32;
            let mut last = 0u64;
            for &w in dom {
                if w != 0 {
                    nonzero += 1;
                    last = w;
                }
            }
            (nonzero == 0, nonzero == 1 && last.is_power_of_two())
        };
        if empty {
            return Err(Failed);
        }
        self.log.mark(v, mask, single);
        Ok(())
    }

    /// Remove one value. Ok(true) if the domain changed.
    #[inline]
    pub fn remove(&mut self, v: VarId, val: Val) -> Result<bool, Failed> {
        if val > self.layout.max_value() {
            return Ok(false);
        }
        if bits::remove(self.dom_mut(v), val) {
            self.after_change(v, bits::word_bit(val as usize / 64))?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Reduce to the singleton `{val}`.
    #[inline]
    pub fn assign(&mut self, v: VarId, val: Val) -> Result<bool, Failed> {
        if val > self.layout.max_value() || !self.contains(v, val) {
            return Err(Failed);
        }
        if bits::keep_only(self.dom_mut(v), val) {
            let all = bits::all_words_mask(self.layout.words_per_var());
            self.after_change(v, all)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Remove all values `< lo` (signed: a negative bound is a no-op).
    #[inline]
    pub fn remove_below(&mut self, v: VarId, lo: i64) -> Result<bool, Failed> {
        if lo <= 0 {
            return Ok(false);
        }
        if lo > self.layout.max_value() as i64 {
            return Err(Failed);
        }
        if bits::remove_below(self.dom_mut(v), lo as Val) {
            // Words 0..=w of the cell may have been cleared.
            let w = lo as usize / 64;
            self.after_change(v, bits::all_words_mask(w + 1))?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Remove all values `> hi` (signed: a negative bound fails).
    #[inline]
    pub fn remove_above(&mut self, v: VarId, hi: i64) -> Result<bool, Failed> {
        if hi < 0 {
            return Err(Failed);
        }
        if hi >= self.layout.max_value() as i64 {
            return Ok(false);
        }
        if bits::remove_above(self.dom_mut(v), hi as Val) {
            // Words w.. of the cell may have been cleared.
            let w = hi as usize / 64;
            let n = self.layout.words_per_var();
            let mask = bits::all_words_mask(n) & !(bits::word_bit(w) - 1);
            self.after_change(v, mask)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Intersect `dom(v)` with an explicit bitmap.
    #[inline]
    pub fn intersect_with(&mut self, v: VarId, mask: &[u64]) -> Result<bool, Failed> {
        let changed = bits::intersect_masked(self.dom_mut(v), mask);
        if changed != 0 {
            self.after_change(v, changed)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Remove from `dom(v)` every value in an explicit bitmap.
    #[inline]
    pub fn subtract(&mut self, v: VarId, mask: &[u64]) -> Result<bool, Failed> {
        let changed = bits::subtract_masked(self.dom_mut(v), mask);
        if changed != 0 {
            self.after_change(v, changed)?;
            return Ok(true);
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macs_domain::Store;

    fn setup() -> (StoreLayout, Store, ChangeLog) {
        let l = StoreLayout::new(3, 9);
        let s = Store::root(&l);
        let log = ChangeLog::new(3);
        (l, s, log)
    }

    #[test]
    fn remove_logs_change_once() {
        let (l, mut s, mut log) = setup();
        let mut st = PropState::new(&l, s.as_words_mut(), &mut log, i64::MAX);
        assert!(st.remove(0, 3).unwrap());
        assert!(!st.remove(0, 3).unwrap());
        assert!(st.remove(0, 4).unwrap());
        let mut seen = vec![];
        log.drain(|v, mask, assigned| seen.push((v, mask, assigned)));
        assert_eq!(seen, vec![(0, bits::word_bit(0), false)]);
        assert!(log.is_empty());
    }

    #[test]
    fn assignment_event_is_reported() {
        let (l, mut s, mut log) = setup();
        let mut st = PropState::new(&l, s.as_words_mut(), &mut log, i64::MAX);
        for v in 0..9 {
            st.remove(1, v).unwrap();
        }
        let mut events = vec![];
        log.drain(|v, _, assigned| events.push((v, assigned)));
        assert_eq!(events, vec![(1, true)], "collapse to {{9}} is an assign");
    }

    #[test]
    fn wipe_out_fails() {
        let (l, mut s, mut log) = setup();
        let mut st = PropState::new(&l, s.as_words_mut(), &mut log, i64::MAX);
        for v in 0..9 {
            st.remove(1, v).unwrap();
        }
        assert_eq!(st.remove(1, 9), Err(Failed));
    }

    #[test]
    fn assign_requires_membership() {
        let (l, mut s, mut log) = setup();
        let mut st = PropState::new(&l, s.as_words_mut(), &mut log, i64::MAX);
        st.remove(2, 5).unwrap();
        assert_eq!(st.assign(2, 5), Err(Failed));
        assert!(st.assign(2, 4).unwrap());
        assert_eq!(st.value(2), Some(4));
        assert!(!st.assign(2, 4).unwrap());
    }

    #[test]
    fn signed_bounds_behave() {
        let (l, mut s, mut log) = setup();
        let mut st = PropState::new(&l, s.as_words_mut(), &mut log, i64::MAX);
        assert!(!st.remove_below(0, -5).unwrap());
        assert!(!st.remove_above(0, 100).unwrap());
        assert_eq!(st.remove_above(0, -1), Err(Failed));
        assert_eq!(st.remove_below(1, 10), Err(Failed));
        assert!(st.remove_below(2, 4).unwrap());
        assert!(st.remove_above(2, 7).unwrap());
        assert_eq!(st.min(2), Some(4));
        assert_eq!(st.max(2), Some(7));
    }

    #[test]
    fn scan_hints_survive_shrinking_and_reset_per_round() {
        // 3 vars over 0..=199 (4 words per cell) with hints on.
        let l = StoreLayout::new(3, 199);
        let mut s = Store::root(&l);
        let mut log = ChangeLog::with_hints(3);
        log.begin_round();
        {
            let mut st = PropState::new(&l, s.as_words_mut(), &mut log, i64::MAX);
            assert_eq!(st.min(0), Some(0));
            assert_eq!(st.max(0), Some(199));
            // Clear the low and high blocks; the hints must move inward.
            st.remove_below(0, 130).unwrap();
            st.remove_above(0, 140).unwrap();
            assert_eq!(st.min(0), Some(130));
            assert_eq!(st.max(0), Some(140));
        }
        // New round on a fresh (full) store: stale hints must not leak.
        let mut s2 = Store::root(&l);
        log.begin_round();
        {
            let st = PropState::new(&l, s2.as_words_mut(), &mut log, i64::MAX);
            assert_eq!(st.min(0), Some(0), "hint from the last round must die");
            assert_eq!(st.max(0), Some(199));
        }
    }

    #[test]
    fn masks_accumulate_across_marks() {
        let l = StoreLayout::new(1, 199);
        let mut s = Store::root(&l);
        let mut log = ChangeLog::new(1);
        let mut st = PropState::new(&l, s.as_words_mut(), &mut log, i64::MAX);
        st.remove(0, 3).unwrap(); // word 0
        st.remove(0, 130).unwrap(); // word 2
        let mut seen = vec![];
        log.drain(|v, mask, _| seen.push((v, mask)));
        assert_eq!(seen, vec![(0, bits::word_bit(0) | bits::word_bit(2))]);
    }
}
