//! The propagator library.
//!
//! Propagators are represented as a closed enum ([`Propag`]) so the hot
//! fixpoint loop dispatches with a jump table instead of virtual calls; an
//! escape hatch ([`Propag::Custom`]) admits user-defined propagators behind
//! an `Arc<dyn CustomPropagator>` (the QAP lower-bound propagator in
//! `macs-problems` uses it).
//!
//! **Contract**: a propagator must be at a *local fixpoint with respect to
//! its own prunings* when it returns, because the engine does not reschedule
//! the propagator that is currently running for changes it made itself.

use std::sync::Arc;

use macs_domain::{bits, Val, VarId};

use crate::model::Objective;
use crate::state::{Failed, PropState};

/// Reusable per-worker scratch buffers for propagation (bitmap temporaries).
#[derive(Debug, Default)]
pub struct Scratch {
    pub a: Vec<u64>,
    pub b: Vec<u64>,
}

impl Scratch {
    pub fn for_words(words_per_var: usize) -> Self {
        Scratch {
            a: vec![0; words_per_var],
            b: vec![0; words_per_var],
        }
    }
}

/// A user-defined propagator (e.g. a problem-specific cost bound).
pub trait CustomPropagator: Send + Sync + std::fmt::Debug {
    /// The variables whose domain changes should re-trigger this propagator.
    fn vars(&self) -> Vec<VarId>;
    /// Prune; must reach a local fixpoint w.r.t. its own changes.
    fn propagate(&self, st: &mut PropState<'_>) -> Result<(), Failed>;
}

/// A constraint propagator over finite-domain variables.
#[derive(Clone, Debug)]
pub enum Propag {
    /// `x ≠ y + c`
    NeqOffset { x: VarId, y: VarId, c: i64 },
    /// `x ≠ v`
    NeqConst { x: VarId, v: Val },
    /// `x = y + c` (domain-consistent via bitmap shifts)
    EqOffset { x: VarId, y: VarId, c: i64 },
    /// `x ≤ y + c` (bounds-consistent)
    LeOffset { x: VarId, y: VarId, c: i64 },
    /// `alldifferent(vars)` — value consistency (assigned values are removed
    /// from the other domains, transitively)
    AllDiffVal { vars: Vec<VarId> },
    /// `alldifferent(vars)` — bounds consistency via Hall intervals, in
    /// addition to value consistency
    AllDiffBounds { vars: Vec<VarId> },
    /// `Σ aᵢ·xᵢ ≤ k` (bounds-consistent)
    LinearLe { terms: Vec<(i64, VarId)>, k: i64 },
    /// `Σ aᵢ·xᵢ = k` (bounds-consistent)
    LinearEq { terms: Vec<(i64, VarId)>, k: i64 },
    /// `array[index] = value` (domain-consistent)
    Element {
        array: Vec<Val>,
        index: VarId,
        value: VarId,
    },
    /// Objective pruning against the branch-and-bound incumbent; inserted by
    /// [`Model::compile`](crate::model::Model::compile), never posted
    /// directly.
    ObjectivePrune,
    /// A user-defined propagator.
    Custom(Arc<dyn CustomPropagator>),
}

impl Propag {
    /// The variables watched by this propagator (compile-time only).
    pub fn watched(&self, objective: &Objective) -> Vec<VarId> {
        match self {
            Propag::NeqOffset { x, y, .. }
            | Propag::EqOffset { x, y, .. }
            | Propag::LeOffset { x, y, .. } => vec![*x, *y],
            Propag::NeqConst { x, .. } => vec![*x],
            Propag::AllDiffVal { vars } | Propag::AllDiffBounds { vars } => vars.clone(),
            Propag::LinearLe { terms, .. } | Propag::LinearEq { terms, .. } => {
                terms.iter().map(|&(_, v)| v).collect()
            }
            Propag::Element { index, value, .. } => vec![*index, *value],
            Propag::ObjectivePrune => objective.watched(),
            Propag::Custom(c) => c.vars(),
        }
    }

    /// Wake-filtering metadata for this propagator's watches: the mask of
    /// bitmap words whose change can make re-running it productive (w.r.t.
    /// [`bits::word_bit`] indexing), and whether it only ever prunes in
    /// response to a variable *becoming assigned*.
    ///
    /// `on_assign_only` is exact for [`Propag::NeqOffset`] and
    /// [`Propag::AllDiffVal`]: both prune solely from singleton domains, so
    /// a shrink that leaves a domain non-singleton cannot enable pruning
    /// that was not already applied when an earlier singleton appeared
    /// (stores entering propagation are at fixpoint w.r.t. their ancestors
    /// — the same invariant `ScheduleSeed::Var` relies on). `NeqConst`
    /// cares only about the word holding its forbidden value. Everything
    /// else is woken on any change.
    pub fn wake_filter(&self, words_per_var: usize) -> (u64, bool) {
        let all = bits::all_words_mask(words_per_var);
        match self {
            Propag::NeqOffset { .. } | Propag::AllDiffVal { .. } => (all, true),
            Propag::NeqConst { v, .. } => (bits::word_bit(*v as usize / 64), false),
            _ => (all, false),
        }
    }

    /// Run the propagator to a local fixpoint.
    pub fn run(
        &self,
        st: &mut PropState<'_>,
        scratch: &mut Scratch,
        objective: &Objective,
    ) -> Result<(), Failed> {
        match self {
            Propag::NeqOffset { x, y, c } => neq_offset(st, *x, *y, *c),
            Propag::NeqConst { x, v } => {
                st.remove(*x, *v)?;
                Ok(())
            }
            Propag::EqOffset { x, y, c } => eq_offset(st, scratch, *x, *y, *c),
            Propag::LeOffset { x, y, c } => le_offset(st, *x, *y, *c),
            Propag::AllDiffVal { vars } => alldiff_val(st, scratch, vars).map(|_| ()),
            Propag::AllDiffBounds { vars } => {
                // Bounds pruning can create singletons that re-enable value
                // pruning and vice versa: iterate the pair to a joint
                // fixpoint (local-fixpoint contract).
                loop {
                    let a = alldiff_val(st, scratch, vars)?;
                    let b = alldiff_bounds(st, vars)?;
                    if !a && !b {
                        return Ok(());
                    }
                }
            }
            Propag::LinearLe { terms, k } => linear_le(st, terms, *k).map(|_| ()),
            Propag::LinearEq { terms, k } => {
                // The ≤ and ≥ halves feed each other (a bound tightened by
                // one changes the other's slack): iterate to a joint
                // fixpoint.
                loop {
                    let a = linear_le(st, terms, *k)?;
                    let b = linear_ge(st, terms, *k)?;
                    if !a && !b {
                        return Ok(());
                    }
                }
            }
            Propag::Element {
                array,
                index,
                value,
            } => element(st, scratch, array, *index, *value),
            Propag::ObjectivePrune => objective.prune(st),
            Propag::Custom(c) => c.propagate(st),
        }
    }
}

// ----- individual propagators ----------------------------------------------

fn neq_offset(st: &mut PropState<'_>, x: VarId, y: VarId, c: i64) -> Result<(), Failed> {
    // One directed pass reaches the local fixpoint. If y is assigned,
    // removing `vy + c` from x is all the pruning x ≠ y + c admits: should
    // x *become* a singleton {vx} by that removal, the reverse direction
    // would remove `vx − c` from the singleton {vy} — but `vx − c = vy`
    // would mean `vx = vy + c`, the very value just removed from x, so the
    // reverse pass is always a no-op (and a wipe-out of x already
    // surfaced as `Err`). Symmetrically when only x is assigned. The old
    // implementation looped until a verification pass saw no change,
    // costing two extra singleton reads per run on the solver's most
    // frequent propagator.
    let max = st.layout().max_value() as i64;
    if let Some(vy) = st.value(y) {
        let forbidden = vy as i64 + c;
        if (0..=max).contains(&forbidden) {
            st.remove(x, forbidden as Val)?;
        }
        return Ok(());
    }
    if let Some(vx) = st.value(x) {
        let forbidden = vx as i64 - c;
        if (0..=max).contains(&forbidden) {
            st.remove(y, forbidden as Val)?;
        }
    }
    Ok(())
}

fn eq_offset(
    st: &mut PropState<'_>,
    scratch: &mut Scratch,
    x: VarId,
    y: VarId,
    c: i64,
) -> Result<(), Failed> {
    // dom(x) ∩= dom(y) + c, then dom(y) ∩= dom(x) − c; one round reaches the
    // mutual fixpoint for equality.
    let w = st.layout().words_per_var();
    scratch.a.resize(w, 0);
    if c >= 0 {
        bits::shifted_up(st.dom(y), &mut scratch.a, c as u32);
    } else {
        bits::shifted_down(st.dom(y), &mut scratch.a, (-c) as u32);
    }
    let mask = std::mem::take(&mut scratch.a);
    st.intersect_with(x, &mask)?;
    scratch.a = mask;

    scratch.b.resize(w, 0);
    if c >= 0 {
        bits::shifted_down(st.dom(x), &mut scratch.b, c as u32);
    } else {
        bits::shifted_up(st.dom(x), &mut scratch.b, (-c) as u32);
    }
    let mask = std::mem::take(&mut scratch.b);
    st.intersect_with(y, &mask)?;
    scratch.b = mask;
    Ok(())
}

fn le_offset(st: &mut PropState<'_>, x: VarId, y: VarId, c: i64) -> Result<(), Failed> {
    // x ≤ y + c: ub(x) ≤ ub(y)+c and lb(y) ≥ lb(x)−c.
    let hi = st.max(y).ok_or(Failed)? as i64 + c;
    st.remove_above(x, hi)?;
    let lo = st.min(x).ok_or(Failed)? as i64 - c;
    st.remove_below(y, lo)?;
    Ok(())
}

fn alldiff_val(
    st: &mut PropState<'_>,
    scratch: &mut Scratch,
    vars: &[VarId],
) -> Result<bool, Failed> {
    let w = st.layout().words_per_var();
    let mut any_change = false;
    loop {
        // Build the bitmap of values taken by assigned variables, failing on
        // duplicates.
        scratch.a.resize(w, 0);
        scratch.a.fill(0);
        let mut n_assigned = 0u32;
        for &v in vars {
            if let Some(val) = st.value(v) {
                if bits::contains(&scratch.a, val) {
                    return Err(Failed);
                }
                bits::insert(&mut scratch.a, val);
                n_assigned += 1;
            }
        }
        if n_assigned == 0 {
            return Ok(any_change);
        }
        // Remove those values from every unassigned variable.
        let mask = std::mem::take(&mut scratch.a);
        let mut new_singleton = false;
        for &v in vars {
            if st.value(v).is_some() {
                continue;
            }
            match st.subtract(v, &mask) {
                Err(Failed) => {
                    scratch.a = mask;
                    return Err(Failed);
                }
                Ok(changed) => {
                    any_change |= changed;
                    if changed && st.value(v).is_some() {
                        new_singleton = true;
                    }
                }
            }
        }
        scratch.a = mask;
        if !new_singleton {
            return Ok(any_change);
        }
    }
}

/// Hall-interval bounds consistency: for every value interval `[a, b]`, if
/// the set `H` of variables whose bounds fit inside `[a, b]` has size
/// `b − a + 1`, then `[a, b]` is saturated by `H` and is removed from every
/// other variable; a size above the interval width is a failure.
///
/// The O(n²·w) pair scan is adequate for the arities used here (n ≤ 64) and
/// keeps the algorithm auditable; see Puget (1998) for the asymptotically
/// better version.
fn alldiff_bounds(st: &mut PropState<'_>, vars: &[VarId]) -> Result<bool, Failed> {
    let n = vars.len();
    let mut any_change = false;
    loop {
        let mut changed = false;
        let mut lows: Vec<(Val, Val, VarId)> = Vec::with_capacity(n);
        for &v in vars {
            let lo = st.min(v).ok_or(Failed)?;
            let hi = st.max(v).ok_or(Failed)?;
            lows.push((lo, hi, v));
        }
        // Candidate intervals are [lo_i, hi_j] for variable bound pairs.
        for i in 0..n {
            for j in 0..n {
                let a = lows[i].0;
                let b = lows[j].1;
                if a > b {
                    continue;
                }
                let width = (b - a + 1) as usize;
                if width > n {
                    continue;
                }
                let inside = lows
                    .iter()
                    .filter(|&&(lo, hi, _)| lo >= a && hi <= b)
                    .count();
                if inside > width {
                    return Err(Failed);
                }
                if inside == width {
                    // Hall interval: prune [a, b] from the outsiders' bounds.
                    for &(lo, hi, v) in &lows {
                        if lo >= a && hi <= b {
                            continue;
                        }
                        // Only bounds pruning: shift a bound that falls
                        // inside the Hall interval past it.
                        if (a..=b).contains(&lo) {
                            changed |= st.remove_below(v, b as i64 + 1)?;
                        }
                        if (a..=b).contains(&hi) {
                            changed |= st.remove_above(v, a as i64 - 1)?;
                        }
                    }
                }
            }
        }
        any_change |= changed;
        if !changed {
            return Ok(any_change);
        }
    }
}

fn term_min(st: &PropState<'_>, a: i64, v: VarId) -> Result<i64, Failed> {
    let lo = st.min(v).ok_or(Failed)? as i64;
    let hi = st.max(v).ok_or(Failed)? as i64;
    Ok(if a >= 0 { a * lo } else { a * hi })
}

fn linear_le(st: &mut PropState<'_>, terms: &[(i64, VarId)], k: i64) -> Result<bool, Failed> {
    // Σ aᵢxᵢ ≤ k. slack = k − Σ min(aᵢxᵢ); each term may exceed its own
    // minimum by at most the slack.
    let mut any_change = false;
    loop {
        let mut sum_min = 0i64;
        for &(a, v) in terms {
            sum_min += term_min(st, a, v)?;
        }
        let slack = k - sum_min;
        if slack < 0 {
            return Err(Failed);
        }
        let mut changed = false;
        for &(a, v) in terms {
            if a == 0 {
                continue;
            }
            if a > 0 {
                // a·x ≤ a·min + slack  ⇒  x ≤ min + slack/a
                let hi = st.min(v).ok_or(Failed)? as i64 + slack / a;
                changed |= st.remove_above(v, hi)?;
            } else {
                // a·x ≤ a·max + slack  ⇒  x ≥ max − slack/(−a)
                let lo = st.max(v).ok_or(Failed)? as i64 - slack / (-a);
                changed |= st.remove_below(v, lo)?;
            }
        }
        any_change |= changed;
        if !changed {
            return Ok(any_change);
        }
    }
}

fn linear_ge(st: &mut PropState<'_>, terms: &[(i64, VarId)], k: i64) -> Result<bool, Failed> {
    // Σ aᵢxᵢ ≥ k  ⇔  Σ (−aᵢ)xᵢ ≤ −k.
    let mut any_change = false;
    loop {
        let mut sum_min = 0i64;
        for &(a, v) in terms {
            sum_min += term_min(st, -a, v)?;
        }
        let slack = -k - sum_min;
        if slack < 0 {
            return Err(Failed);
        }
        let mut changed = false;
        for &(a, v) in terms {
            let na = -a;
            if na == 0 {
                continue;
            }
            if na > 0 {
                let hi = st.min(v).ok_or(Failed)? as i64 + slack / na;
                changed |= st.remove_above(v, hi)?;
            } else {
                let lo = st.max(v).ok_or(Failed)? as i64 - slack / (-na);
                changed |= st.remove_below(v, lo)?;
            }
        }
        any_change |= changed;
        if !changed {
            return Ok(any_change);
        }
    }
}

fn element(
    st: &mut PropState<'_>,
    scratch: &mut Scratch,
    array: &[Val],
    index: VarId,
    value: VarId,
) -> Result<(), Failed> {
    let w = st.layout().words_per_var();
    loop {
        // Supported values: { array[i] | i ∈ dom(index) }.
        scratch.a.resize(w, 0);
        scratch.a.fill(0);
        for i in bits::iter(st.dom(index)) {
            let i = i as usize;
            if i < array.len() {
                bits::insert(&mut scratch.a, array[i]);
            }
        }
        let mask = std::mem::take(&mut scratch.a);
        let r1 = st.intersect_with(value, &mask);
        scratch.a = mask;
        let mut changed = r1?;

        // Supported indices: i such that array[i] ∈ dom(value); also drop
        // indices outside the array.
        let mut to_remove: Option<Vec<Val>> = None;
        for i in bits::iter(st.dom(index)) {
            let iu = i as usize;
            if iu >= array.len() || !st.contains(value, array[iu]) {
                to_remove.get_or_insert_with(Vec::new).push(i);
            }
        }
        if let Some(rm) = to_remove {
            for i in rm {
                changed |= st.remove(index, i)?;
            }
        }
        if !changed {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ChangeLog;
    use macs_domain::{Store, StoreLayout};

    struct Fix {
        layout: StoreLayout,
        store: Store,
        log: ChangeLog,
        scratch: Scratch,
    }

    impl Fix {
        fn new(num_vars: usize, max: Val) -> Self {
            let layout = StoreLayout::new(num_vars, max);
            let store = Store::root(&layout);
            let log = ChangeLog::new(num_vars);
            let scratch = Scratch::for_words(layout.words_per_var());
            Fix {
                layout,
                store,
                log,
                scratch,
            }
        }

        fn run(&mut self, p: &Propag) -> Result<(), Failed> {
            let mut st = PropState::new(
                &self.layout,
                self.store.as_words_mut(),
                &mut self.log,
                i64::MAX,
            );
            p.run(&mut st, &mut self.scratch, &Objective::None)
        }

        fn dom_vals(&self, v: VarId) -> Vec<Val> {
            bits::iter(self.store.dom(&self.layout, v)).collect()
        }

        fn assign(&mut self, v: VarId, val: Val) {
            bits::keep_only(self.store.dom_mut(&self.layout, v), val);
        }

        fn restrict(&mut self, v: VarId, lo: Val, hi: Val) {
            bits::remove_below(self.store.dom_mut(&self.layout, v), lo);
            bits::remove_above(self.store.dom_mut(&self.layout, v), hi);
        }
    }

    #[test]
    fn neq_offset_prunes_both_directions() {
        let mut f = Fix::new(2, 9);
        f.assign(1, 4);
        f.run(&Propag::NeqOffset { x: 0, y: 1, c: 2 }).unwrap();
        assert!(!f.dom_vals(0).contains(&6));
        assert_eq!(f.dom_vals(0).len(), 9);

        let mut g = Fix::new(2, 9);
        g.assign(0, 3);
        g.run(&Propag::NeqOffset { x: 0, y: 1, c: -1 }).unwrap();
        assert!(!g.dom_vals(1).contains(&4));
    }

    #[test]
    fn neq_offset_cascades_to_local_fixpoint() {
        // dom(x) = {1,2}, y assigned 1, c = 1 ⇒ x ≠ 2 ⇒ x = 1 ⇒ y ≠ 0 (no-op).
        let mut f = Fix::new(2, 9);
        f.restrict(0, 1, 2);
        f.assign(1, 1);
        f.run(&Propag::NeqOffset { x: 0, y: 1, c: 1 }).unwrap();
        assert_eq!(f.dom_vals(0), vec![1]);
    }

    #[test]
    fn eq_offset_is_domain_consistent() {
        let mut f = Fix::new(2, 20);
        f.restrict(0, 5, 9); // x ∈ [5,9]
        f.restrict(1, 1, 3); // y ∈ [1,3]
        f.run(&Propag::EqOffset { x: 0, y: 1, c: 5 }).unwrap();
        assert_eq!(f.dom_vals(0), vec![6, 7, 8]);
        assert_eq!(f.dom_vals(1), vec![1, 2, 3]);
    }

    #[test]
    fn eq_offset_with_holes() {
        let mut f = Fix::new(2, 20);
        // y ∈ {2, 4, 6}
        f.restrict(1, 2, 6);
        let d = f.store.dom_mut(&f.layout, 1);
        bits::remove(d, 3);
        bits::remove(d, 5);
        f.run(&Propag::EqOffset { x: 0, y: 1, c: 10 }).unwrap();
        assert_eq!(f.dom_vals(0), vec![12, 14, 16]);
    }

    #[test]
    fn eq_offset_negative_offset() {
        let mut f = Fix::new(2, 20);
        f.restrict(0, 0, 4);
        f.restrict(1, 3, 20);
        f.run(&Propag::EqOffset { x: 0, y: 1, c: -3 }).unwrap();
        assert_eq!(f.dom_vals(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(f.dom_vals(1), vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn eq_offset_detects_failure() {
        let mut f = Fix::new(2, 20);
        f.restrict(0, 0, 2);
        f.restrict(1, 10, 20);
        assert_eq!(f.run(&Propag::EqOffset { x: 0, y: 1, c: 0 }), Err(Failed));
    }

    #[test]
    fn le_offset_tightens_bounds() {
        let mut f = Fix::new(2, 20);
        f.restrict(1, 0, 7);
        f.restrict(0, 5, 20);
        // x ≤ y − 2 ⇒ x ≤ 5, y ≥ 7
        f.run(&Propag::LeOffset { x: 0, y: 1, c: -2 }).unwrap();
        assert_eq!(f.dom_vals(0), vec![5]);
        assert_eq!(f.dom_vals(1), vec![7]);
    }

    #[test]
    fn alldiff_val_removes_assigned_and_cascades() {
        let mut f = Fix::new(3, 2);
        f.assign(0, 0);
        // dom(1) = {0,1}: removing 0 leaves {1}; then 1 cascades out of dom(2).
        f.restrict(1, 0, 1);
        f.run(&Propag::AllDiffVal {
            vars: vec![0, 1, 2],
        })
        .unwrap();
        assert_eq!(f.dom_vals(1), vec![1]);
        assert_eq!(f.dom_vals(2), vec![2]);
    }

    #[test]
    fn alldiff_val_duplicate_assignment_fails() {
        let mut f = Fix::new(2, 5);
        f.assign(0, 3);
        f.assign(1, 3);
        assert_eq!(f.run(&Propag::AllDiffVal { vars: vec![0, 1] }), Err(Failed));
    }

    #[test]
    fn alldiff_bounds_finds_hall_interval() {
        // x0, x1 ∈ {1,2} form a Hall interval [1,2]; x2 ∈ {1,2,3} must lose
        // 1 and 2 (value consistency alone cannot see this).
        let mut f = Fix::new(3, 5);
        f.restrict(0, 1, 2);
        f.restrict(1, 1, 2);
        f.restrict(2, 1, 3);
        f.run(&Propag::AllDiffBounds {
            vars: vec![0, 1, 2],
        })
        .unwrap();
        assert_eq!(f.dom_vals(2), vec![3]);
    }

    #[test]
    fn alldiff_bounds_overfull_interval_fails() {
        let mut f = Fix::new(3, 5);
        f.restrict(0, 1, 2);
        f.restrict(1, 1, 2);
        f.restrict(2, 1, 2);
        assert_eq!(
            f.run(&Propag::AllDiffBounds {
                vars: vec![0, 1, 2]
            }),
            Err(Failed)
        );
    }

    #[test]
    fn linear_le_prunes_uppers() {
        let mut f = Fix::new(2, 10);
        // x + y ≤ 4
        f.run(&Propag::LinearLe {
            terms: vec![(1, 0), (1, 1)],
            k: 4,
        })
        .unwrap();
        assert_eq!(f.dom_vals(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(f.dom_vals(1), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn linear_le_negative_coefficient() {
        let mut f = Fix::new(2, 10);
        // x − y ≤ −3  ⇒  y ≥ x + 3 ⇒ y ≥ 3
        f.run(&Propag::LinearLe {
            terms: vec![(1, 0), (-1, 1)],
            k: -3,
        })
        .unwrap();
        assert_eq!(f.dom_vals(1).first(), Some(&3));
        assert_eq!(f.dom_vals(0).last(), Some(&7));
    }

    #[test]
    fn linear_eq_fixes_last_var() {
        let mut f = Fix::new(3, 10);
        f.assign(0, 2);
        f.assign(1, 3);
        // x0 + x1 + x2 = 9 ⇒ x2 = 4
        f.run(&Propag::LinearEq {
            terms: vec![(1, 0), (1, 1), (1, 2)],
            k: 9,
        })
        .unwrap();
        assert_eq!(f.dom_vals(2), vec![4]);
    }

    #[test]
    fn linear_eq_le_ge_interaction_reaches_joint_fixpoint() {
        // Regression: 4x0 + 4x1 + 4x2 = 6 is infeasible over integers, but
        // a single ≤-then-≥ pass used to miss it when the ≥ half tightened
        // lower bounds after the ≤ half had already run.
        let mut f = Fix::new(3, 9);
        f.assign(0, 0);
        assert_eq!(
            f.run(&Propag::LinearEq {
                terms: vec![(4, 0), (4, 1), (4, 2)],
                k: 6,
            }),
            Err(Failed)
        );
    }

    #[test]
    fn linear_eq_infeasible_fails() {
        let mut f = Fix::new(2, 3);
        assert_eq!(
            f.run(&Propag::LinearEq {
                terms: vec![(1, 0), (1, 1)],
                k: 100,
            }),
            Err(Failed)
        );
    }

    #[test]
    fn element_prunes_both_sides() {
        let mut f = Fix::new(2, 10);
        // array = [4, 7, 4, 9]; index = var0, value = var1.
        let arr = vec![4, 7, 4, 9];
        f.restrict(0, 0, 3);
        f.restrict(1, 5, 10); // value ∈ [5,10] ⇒ only 7 and 9 supported
        f.run(&Propag::Element {
            array: arr,
            index: 0,
            value: 1,
        })
        .unwrap();
        assert_eq!(f.dom_vals(0), vec![1, 3]);
        assert_eq!(f.dom_vals(1), vec![7, 9]);
    }

    #[test]
    fn element_index_out_of_array_pruned() {
        let mut f = Fix::new(2, 10);
        let arr = vec![1, 2];
        f.run(&Propag::Element {
            array: arr,
            index: 0,
            value: 1,
        })
        .unwrap();
        assert_eq!(f.dom_vals(0), vec![0, 1]);
        assert_eq!(f.dom_vals(1), vec![1, 2]);
    }
}
