//! Variable/value selection and store splitting.
//!
//! Splitting is the paper's second solving step: "a problem is split into
//! sub-problems which are solved recursively". In MaCS each child is a full
//! store (copy of the parent with the branching variable narrowed), so a
//! child can be pushed to the work pool and later executed by any worker —
//! including a remote one — without context.

use macs_domain::{bits, StoreLayout, StoreViewMut, Val, VarId};

use crate::model::CompiledProblem;

/// Variable selection heuristic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VarSelect {
    /// First unassigned variable in index order.
    InputOrder,
    /// Smallest domain (> 1), ties by index — the classic first-fail rule.
    #[default]
    FirstFail,
}

/// Value selection heuristic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ValSelect {
    /// Ascending values.
    #[default]
    Min,
    /// Descending values.
    Max,
}

/// Shape of the split.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BranchKind {
    /// One child per value of the chosen variable (eager splitting: every
    /// child is an independent store, maximising pool parallelism).
    #[default]
    Eager,
    /// Two children: `x = v` and `x ≠ v`.
    Binary,
    /// Two children: `x ≤ mid` and `x > mid`.
    DomainSplit,
}

/// A complete branching strategy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Brancher {
    pub var: VarSelect,
    pub val: ValSelect,
    pub kind: BranchKind,
}

impl Brancher {
    pub fn new(var: VarSelect, val: ValSelect, kind: BranchKind) -> Self {
        Brancher { var, val, kind }
    }

    /// Choose the branching variable; `None` when every variable is
    /// assigned (the store is a solution).
    pub fn choose_var(&self, layout: &StoreLayout, words: &[u64]) -> Option<VarId> {
        match self.var {
            VarSelect::InputOrder => {
                (0..layout.num_vars()).find(|&v| !bits::is_singleton(&words[layout.var_range(v)]))
            }
            VarSelect::FirstFail => {
                let mut best: Option<(u32, VarId)> = None;
                if layout.words_per_var() == 1 {
                    // One word per cell: scan the contiguous cell slab as a
                    // flat `[u64]` (no per-variable range arithmetic) — the
                    // word-parallel pass the variable-major layout exists
                    // for.
                    for (v, &w) in words[layout.cells_range()].iter().enumerate() {
                        let sz = w.count_ones();
                        if sz > 1 && best.map(|(b, _)| sz < b).unwrap_or(true) {
                            best = Some((sz, v));
                            if sz == 2 {
                                break; // cannot do better than a binary domain
                            }
                        }
                    }
                } else {
                    for v in 0..layout.num_vars() {
                        let sz = bits::count(&words[layout.var_range(v)]);
                        if sz > 1 && best.map(|(b, _)| sz < b).unwrap_or(true) {
                            best = Some((sz, v));
                            if sz == 2 {
                                break; // cannot do better than a binary domain
                            }
                        }
                    }
                }
                best.map(|(_, v)| v)
            }
        }
    }

    /// Split the parent store on `var`, emitting each child in exploration
    /// order through `emit`. `scratch` must be a buffer of
    /// `layout.store_words()` words; its contents are overwritten.
    ///
    /// Returns the number of children emitted (≥ 1 for a non-singleton
    /// domain).
    pub fn split(
        &self,
        prob: &CompiledProblem,
        parent: &[u64],
        scratch: &mut [u64],
        mut emit: impl FnMut(&[u64]),
        var: VarId,
    ) -> usize {
        let layout = &prob.layout;
        debug_assert_eq!(parent.len(), layout.store_words());
        debug_assert_eq!(scratch.len(), layout.store_words());
        let depth = (parent[0] & 0xffff_ffff) as u32 + 1;
        // The children are derived straight from the parent's cell with the
        // bitmap iterators/rank-select — no value list is materialised
        // (splitting runs once per search-tree node; a heap allocation here
        // dominated small-store split cost).
        let dom = &parent[layout.var_range(var)];
        debug_assert!(bits::count(dom) > 1, "splitting a singleton domain");

        match self.kind {
            BranchKind::Eager => {
                let mut n = 0usize;
                let mut emit_child = |v: Val| {
                    scratch.copy_from_slice(parent);
                    let mut c = StoreViewMut::new(layout, scratch);
                    bits::keep_only(c.dom_mut(var), v);
                    c.set_depth(depth);
                    c.set_branch_var(Some(var));
                    emit(scratch);
                    n += 1;
                };
                match self.val {
                    ValSelect::Min => bits::iter(dom).for_each(&mut emit_child),
                    ValSelect::Max => bits::iter_rev(dom).for_each(&mut emit_child),
                }
                n
            }
            BranchKind::Binary => {
                let v = match self.val {
                    ValSelect::Min => bits::min(dom),
                    ValSelect::Max => bits::max(dom),
                }
                .expect("non-empty domain");
                scratch.copy_from_slice(parent);
                let mut left = StoreViewMut::new(layout, scratch);
                bits::keep_only(left.dom_mut(var), v);
                left.set_depth(depth);
                left.set_branch_var(Some(var));
                emit(scratch);

                scratch.copy_from_slice(parent);
                let mut right = StoreViewMut::new(layout, scratch);
                bits::remove(right.dom_mut(var), v);
                right.set_depth(depth);
                right.set_branch_var(Some(var));
                emit(scratch);
                2
            }
            BranchKind::DomainSplit => {
                // Median split: the median is selected by rank directly on
                // the bitmap.
                let size = bits::count(dom);
                let mid = bits::nth(dom, (size - 1) / 2).expect("non-empty domain");
                // Min order explores the low half first, Max the high half.
                let halves = if self.val == ValSelect::Max {
                    [false, true]
                } else {
                    [true, false]
                };
                for low in halves {
                    scratch.copy_from_slice(parent);
                    let mut c = StoreViewMut::new(layout, scratch);
                    if low {
                        bits::remove_above(c.dom_mut(var), mid);
                    } else {
                        bits::remove_below(c.dom_mut(var), mid + 1);
                    }
                    c.set_depth(depth);
                    c.set_branch_var(Some(var));
                    emit(scratch);
                }
                2
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::propag::Propag;
    use macs_domain::StoreView;

    fn problem() -> CompiledProblem {
        let mut m = Model::new("t");
        let _x = m.new_var(0, 4);
        let _y = m.new_var(0, 4);
        m.post(Propag::NeqOffset { x: 0, y: 1, c: 0 });
        m.compile()
    }

    #[test]
    fn input_order_picks_first_unassigned() {
        let p = problem();
        let mut s = p.root.clone();
        bits::keep_only(s.dom_mut(&p.layout, 0), 2);
        let b = Brancher::new(VarSelect::InputOrder, ValSelect::Min, BranchKind::Eager);
        assert_eq!(b.choose_var(&p.layout, s.as_words()), Some(1));
        bits::keep_only(s.dom_mut(&p.layout, 1), 3);
        assert_eq!(b.choose_var(&p.layout, s.as_words()), None);
    }

    #[test]
    fn first_fail_picks_smallest_domain() {
        let p = problem();
        let mut s = p.root.clone();
        bits::remove(s.dom_mut(&p.layout, 1), 0);
        bits::remove(s.dom_mut(&p.layout, 1), 1);
        let b = Brancher::default();
        assert_eq!(b.choose_var(&p.layout, s.as_words()), Some(1));
    }

    #[test]
    fn eager_split_partitions_domain() {
        let p = problem();
        let s = p.root.clone();
        let b = Brancher::default();
        let mut scratch = vec![0u64; p.layout.store_words()];
        let mut children: Vec<Vec<u64>> = vec![];
        let n = b.split(
            &p,
            s.as_words(),
            &mut scratch,
            |c| children.push(c.to_vec()),
            0,
        );
        assert_eq!(n, 5);
        for (i, c) in children.iter().enumerate() {
            let v = StoreView::new(&p.layout, c);
            assert_eq!(v.value(0), Some(i as Val));
            assert_eq!(v.depth(), 1);
        }
    }

    #[test]
    fn binary_split_is_complementary() {
        let p = problem();
        let s = p.root.clone();
        let b = Brancher::new(VarSelect::InputOrder, ValSelect::Min, BranchKind::Binary);
        let mut scratch = vec![0u64; p.layout.store_words()];
        let mut children: Vec<Vec<u64>> = vec![];
        b.split(
            &p,
            s.as_words(),
            &mut scratch,
            |c| children.push(c.to_vec()),
            0,
        );
        assert_eq!(children.len(), 2);
        let left = StoreView::new(&p.layout, &children[0]);
        assert_eq!(left.value(0), Some(0));
        let right = StoreView::new(&p.layout, &children[1]);
        let vals: Vec<Val> = bits::iter(right.dom(0)).collect();
        assert_eq!(vals, vec![1, 2, 3, 4]);
    }

    #[test]
    fn domain_split_halves() {
        let p = problem();
        let s = p.root.clone();
        let b = Brancher::new(
            VarSelect::InputOrder,
            ValSelect::Min,
            BranchKind::DomainSplit,
        );
        let mut scratch = vec![0u64; p.layout.store_words()];
        let mut children: Vec<Vec<u64>> = vec![];
        b.split(
            &p,
            s.as_words(),
            &mut scratch,
            |c| children.push(c.to_vec()),
            0,
        );
        assert_eq!(children.len(), 2);
        let lo: Vec<Val> = bits::iter(StoreView::new(&p.layout, &children[0]).dom(0)).collect();
        let hi: Vec<Val> = bits::iter(StoreView::new(&p.layout, &children[1]).dom(0)).collect();
        assert_eq!(lo, vec![0, 1, 2]);
        assert_eq!(hi, vec![3, 4]);
    }

    #[test]
    fn max_value_order_reverses_children() {
        let p = problem();
        let s = p.root.clone();
        let b = Brancher::new(VarSelect::InputOrder, ValSelect::Max, BranchKind::Eager);
        let mut scratch = vec![0u64; p.layout.store_words()];
        let mut first_vals: Vec<Val> = vec![];
        b.split(
            &p,
            s.as_words(),
            &mut scratch,
            |c| first_vals.push(StoreView::new(&p.layout, c).value(0).unwrap()),
            0,
        );
        assert_eq!(first_vals, vec![4, 3, 2, 1, 0]);
    }
}
