//! Variable/value selection and store splitting.
//!
//! Splitting is the paper's second solving step: "a problem is split into
//! sub-problems which are solved recursively". In MaCS each child is a full
//! store (copy of the parent with the branching variable narrowed), so a
//! child can be pushed to the work pool and later executed by any worker —
//! including a remote one — without context.

use macs_domain::{bits, StoreLayout, StoreViewMut, Val, VarId};

use crate::model::CompiledProblem;

/// Variable selection heuristic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VarSelect {
    /// First unassigned variable in index order.
    InputOrder,
    /// Smallest domain (> 1), ties by index — the classic first-fail rule.
    #[default]
    FirstFail,
}

/// Value selection heuristic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ValSelect {
    /// Ascending values.
    #[default]
    Min,
    /// Descending values.
    Max,
}

/// Shape of the split.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BranchKind {
    /// One child per value of the chosen variable (eager splitting: every
    /// child is an independent store, maximising pool parallelism).
    #[default]
    Eager,
    /// Two children: `x = v` and `x ≠ v`.
    Binary,
    /// Two children: `x ≤ mid` and `x > mid`.
    DomainSplit,
}

/// A complete branching strategy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Brancher {
    pub var: VarSelect,
    pub val: ValSelect,
    pub kind: BranchKind,
}

impl Brancher {
    pub fn new(var: VarSelect, val: ValSelect, kind: BranchKind) -> Self {
        Brancher { var, val, kind }
    }

    /// Choose the branching variable; `None` when every variable is
    /// assigned (the store is a solution).
    pub fn choose_var(&self, layout: &StoreLayout, words: &[u64]) -> Option<VarId> {
        match self.var {
            VarSelect::InputOrder => {
                (0..layout.num_vars()).find(|&v| !bits::is_singleton(&words[layout.var_range(v)]))
            }
            VarSelect::FirstFail => {
                let mut best: Option<(u32, VarId)> = None;
                for v in 0..layout.num_vars() {
                    let sz = bits::count(&words[layout.var_range(v)]);
                    if sz > 1 && best.map(|(b, _)| sz < b).unwrap_or(true) {
                        best = Some((sz, v));
                        if sz == 2 {
                            break; // cannot do better than a binary domain
                        }
                    }
                }
                best.map(|(_, v)| v)
            }
        }
    }

    /// Split the parent store on `var`, emitting each child in exploration
    /// order through `emit`. `scratch` must be a buffer of
    /// `layout.store_words()` words; its contents are overwritten.
    ///
    /// Returns the number of children emitted (≥ 1 for a non-singleton
    /// domain).
    pub fn split(
        &self,
        prob: &CompiledProblem,
        parent: &[u64],
        scratch: &mut [u64],
        mut emit: impl FnMut(&[u64]),
        var: VarId,
    ) -> usize {
        let layout = &prob.layout;
        debug_assert_eq!(parent.len(), layout.store_words());
        debug_assert_eq!(scratch.len(), layout.store_words());
        let depth = (parent[0] & 0xffff_ffff) as u32 + 1;

        let mut values: Vec<Val> = bits::iter(&parent[layout.var_range(var)]).collect();
        debug_assert!(values.len() > 1, "splitting a singleton domain");
        if self.val == ValSelect::Max {
            values.reverse();
        }

        match self.kind {
            BranchKind::Eager => {
                for &v in &values {
                    scratch.copy_from_slice(parent);
                    let mut c = StoreViewMut::new(layout, scratch);
                    bits::keep_only(c.dom_mut(var), v);
                    c.set_depth(depth);
                    c.set_branch_var(Some(var));
                    emit(scratch);
                }
                values.len()
            }
            BranchKind::Binary => {
                let v = values[0];
                scratch.copy_from_slice(parent);
                let mut left = StoreViewMut::new(layout, scratch);
                bits::keep_only(left.dom_mut(var), v);
                left.set_depth(depth);
                left.set_branch_var(Some(var));
                emit(scratch);

                scratch.copy_from_slice(parent);
                let mut right = StoreViewMut::new(layout, scratch);
                bits::remove(right.dom_mut(var), v);
                right.set_depth(depth);
                right.set_branch_var(Some(var));
                emit(scratch);
                2
            }
            BranchKind::DomainSplit => {
                // Median split on the (ascending) value list.
                let mut asc = values;
                if self.val == ValSelect::Max {
                    asc.reverse();
                }
                let mid = asc[(asc.len() - 1) / 2];

                scratch.copy_from_slice(parent);
                let mut lo = StoreViewMut::new(layout, scratch);
                bits::remove_above(lo.dom_mut(var), mid);
                lo.set_depth(depth);
                lo.set_branch_var(Some(var));
                let lo_first = self.val != ValSelect::Max;
                if lo_first {
                    emit(scratch);
                }
                if !lo_first {
                    // Defer the low half: emit the high half first.
                    let mut hi_buf = parent.to_vec();
                    let mut hi = StoreViewMut::new(layout, &mut hi_buf);
                    bits::remove_below(hi.dom_mut(var), mid + 1);
                    hi.set_depth(depth);
                    hi.set_branch_var(Some(var));
                    emit(&hi_buf);
                    emit(scratch);
                } else {
                    scratch.copy_from_slice(parent);
                    let mut hi = StoreViewMut::new(layout, scratch);
                    bits::remove_below(hi.dom_mut(var), mid + 1);
                    hi.set_depth(depth);
                    hi.set_branch_var(Some(var));
                    emit(scratch);
                }
                2
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::propag::Propag;
    use macs_domain::StoreView;

    fn problem() -> CompiledProblem {
        let mut m = Model::new("t");
        let _x = m.new_var(0, 4);
        let _y = m.new_var(0, 4);
        m.post(Propag::NeqOffset { x: 0, y: 1, c: 0 });
        m.compile()
    }

    #[test]
    fn input_order_picks_first_unassigned() {
        let p = problem();
        let mut s = p.root.clone();
        bits::keep_only(s.dom_mut(&p.layout, 0), 2);
        let b = Brancher::new(VarSelect::InputOrder, ValSelect::Min, BranchKind::Eager);
        assert_eq!(b.choose_var(&p.layout, s.as_words()), Some(1));
        bits::keep_only(s.dom_mut(&p.layout, 1), 3);
        assert_eq!(b.choose_var(&p.layout, s.as_words()), None);
    }

    #[test]
    fn first_fail_picks_smallest_domain() {
        let p = problem();
        let mut s = p.root.clone();
        bits::remove(s.dom_mut(&p.layout, 1), 0);
        bits::remove(s.dom_mut(&p.layout, 1), 1);
        let b = Brancher::default();
        assert_eq!(b.choose_var(&p.layout, s.as_words()), Some(1));
    }

    #[test]
    fn eager_split_partitions_domain() {
        let p = problem();
        let s = p.root.clone();
        let b = Brancher::default();
        let mut scratch = vec![0u64; p.layout.store_words()];
        let mut children: Vec<Vec<u64>> = vec![];
        let n = b.split(
            &p,
            s.as_words(),
            &mut scratch,
            |c| children.push(c.to_vec()),
            0,
        );
        assert_eq!(n, 5);
        for (i, c) in children.iter().enumerate() {
            let v = StoreView::new(&p.layout, c);
            assert_eq!(v.value(0), Some(i as Val));
            assert_eq!(v.depth(), 1);
        }
    }

    #[test]
    fn binary_split_is_complementary() {
        let p = problem();
        let s = p.root.clone();
        let b = Brancher::new(VarSelect::InputOrder, ValSelect::Min, BranchKind::Binary);
        let mut scratch = vec![0u64; p.layout.store_words()];
        let mut children: Vec<Vec<u64>> = vec![];
        b.split(
            &p,
            s.as_words(),
            &mut scratch,
            |c| children.push(c.to_vec()),
            0,
        );
        assert_eq!(children.len(), 2);
        let left = StoreView::new(&p.layout, &children[0]);
        assert_eq!(left.value(0), Some(0));
        let right = StoreView::new(&p.layout, &children[1]);
        let vals: Vec<Val> = bits::iter(right.dom(0)).collect();
        assert_eq!(vals, vec![1, 2, 3, 4]);
    }

    #[test]
    fn domain_split_halves() {
        let p = problem();
        let s = p.root.clone();
        let b = Brancher::new(
            VarSelect::InputOrder,
            ValSelect::Min,
            BranchKind::DomainSplit,
        );
        let mut scratch = vec![0u64; p.layout.store_words()];
        let mut children: Vec<Vec<u64>> = vec![];
        b.split(
            &p,
            s.as_words(),
            &mut scratch,
            |c| children.push(c.to_vec()),
            0,
        );
        assert_eq!(children.len(), 2);
        let lo: Vec<Val> = bits::iter(StoreView::new(&p.layout, &children[0]).dom(0)).collect();
        let hi: Vec<Val> = bits::iter(StoreView::new(&p.layout, &children[1]).dom(0)).collect();
        assert_eq!(lo, vec![0, 1, 2]);
        assert_eq!(hi, vec![3, 4]);
    }

    #[test]
    fn max_value_order_reverses_children() {
        let p = problem();
        let s = p.root.clone();
        let b = Brancher::new(VarSelect::InputOrder, ValSelect::Max, BranchKind::Eager);
        let mut scratch = vec![0u64; p.layout.store_words()];
        let mut first_vals: Vec<Val> = vec![];
        b.split(
            &p,
            s.as_words(),
            &mut scratch,
            |c| first_vals.push(StoreView::new(&p.layout, c).value(0).unwrap()),
            0,
        );
        assert_eq!(first_vals, vec![4, 3, 2, 1, 0]);
    }
}
