//! The propagation queue and fixpoint loop.
//!
//! One [`Engine`] per worker; it owns all the scratch memory propagation
//! needs, so propagating a store allocates nothing. This is the
//! "propagation" step of the paper's three-step solving procedure
//! (propagation / splitting / restoring) whose cost split §VI reports.

use std::collections::VecDeque;

use macs_domain::VarId;

use crate::model::CompiledProblem;
use crate::propag::Scratch;
use crate::state::{ChangeLog, PropState};

/// Result of propagating a store to fixpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PropOutcome {
    /// A domain was wiped: the sub-problem is inconsistent.
    Failed,
    /// All propagators are at fixpoint; domains are consistent (so far).
    Fixpoint,
}

/// Which propagators to seed into the queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleSeed {
    /// Schedule every propagator (used at the root, or for a store of
    /// unknown provenance, e.g. one stolen from another worker).
    All,
    /// Schedule only the watchers of one just-pruned variable (used after a
    /// branching decision on that variable).
    Var(VarId),
}

/// Per-worker propagation engine: queue + scratch buffers.
#[derive(Debug)]
pub struct Engine {
    queue: VecDeque<u32>,
    queued: Vec<bool>,
    log: ChangeLog,
    scratch: Scratch,
    /// Number of individual propagator executions (for statistics).
    pub runs: u64,
}

impl Engine {
    pub fn new(prob: &CompiledProblem) -> Self {
        // min/max scan hints only pay off on multi-word cells; a one-word
        // cell is read in a single load anyway.
        let log = if prob.layout.words_per_var() > 1 {
            ChangeLog::with_hints(prob.layout.num_vars())
        } else {
            ChangeLog::new(prob.layout.num_vars())
        };
        Engine {
            queue: VecDeque::with_capacity(prob.props.len()),
            queued: vec![false; prob.props.len()],
            log,
            scratch: Scratch::for_words(prob.layout.words_per_var()),
            runs: 0,
        }
    }

    #[inline]
    fn enqueue(&mut self, p: u32) {
        if !self.queued[p as usize] {
            self.queued[p as usize] = true;
            self.queue.push_back(p);
        }
    }

    fn reset(&mut self) {
        for &p in &self.queue {
            self.queued[p as usize] = false;
        }
        self.queue.clear();
        // A new round also invalidates all min/max scan hints: `words` is a
        // different store than last time.
        self.log.begin_round();
    }

    /// Propagate `words` (a store of `prob`'s layout) to fixpoint.
    ///
    /// `incumbent` is the branch-and-bound exclusive upper bound in force
    /// (`i64::MAX` for satisfaction problems). When the objective incumbent
    /// may have improved since the store was created, callers should seed
    /// with [`ScheduleSeed::All`] (the objective pruner is always seeded
    /// when one exists).
    pub fn propagate(
        &mut self,
        prob: &CompiledProblem,
        words: &mut [u64],
        incumbent: i64,
        seed: ScheduleSeed,
    ) -> PropOutcome {
        self.reset();
        match seed {
            ScheduleSeed::All => {
                for p in 0..prob.props.len() as u32 {
                    self.enqueue(p);
                }
            }
            ScheduleSeed::Var(v) => {
                // Seeding ignores wake filters: the branching decision that
                // pruned `v` happened outside any propagation round, so no
                // mask/assignment information is available for it.
                for i in 0..prob.watchers[v].len() {
                    self.enqueue(prob.watchers[v][i].prop);
                }
                // The incumbent may have moved since this store was created:
                // always re-run the objective pruner (it is the last
                // propagator when present).
                if prob.objective.is_some() {
                    self.enqueue(prob.props.len() as u32 - 1);
                }
            }
        }

        while let Some(p) = self.queue.pop_front() {
            self.queued[p as usize] = false;
            self.runs += 1;
            let mut st = PropState::new(&prob.layout, words, &mut self.log, incumbent);
            let res = prob.props[p as usize].run(&mut st, &mut self.scratch, &prob.objective);
            if res.is_err() {
                return PropOutcome::Failed;
            }
            // Schedule watchers of every variable the run pruned, filtered
            // by each watch's wake conditions: the running propagator itself
            // is exempt (local-fixpoint contract), assignment-only watchers
            // wake only when the domain collapsed to a singleton, and the
            // changed-words mask must intersect the words the watcher cares
            // about.
            let queue = &mut self.queue;
            let queued = &mut self.queued;
            self.log.drain(|v, mask, assigned| {
                for w in &prob.watchers[v] {
                    if w.prop != p
                        && (assigned || !w.on_assign_only)
                        && (w.mask & mask) != 0
                        && !queued[w.prop as usize]
                    {
                        queued[w.prop as usize] = true;
                        queue.push_back(w.prop);
                    }
                }
            });
        }
        PropOutcome::Fixpoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::propag::Propag;
    use macs_domain::bits;

    #[test]
    fn chain_of_equalities_propagates_transitively() {
        // x0 = x1 + 1 = x2 + 2; assigning x2 fixes everything.
        let mut m = Model::new("chain");
        let x0 = m.new_var(0, 9);
        let x1 = m.new_var(0, 9);
        let x2 = m.new_var(0, 9);
        m.post(Propag::EqOffset { x: x0, y: x1, c: 1 });
        m.post(Propag::EqOffset { x: x1, y: x2, c: 1 });
        let p = m.compile();
        let mut s = p.root.clone();
        bits::keep_only(s.dom_mut(&p.layout, x2), 3);
        let mut e = Engine::new(&p);
        let out = e.propagate(&p, s.as_words_mut(), i64::MAX, ScheduleSeed::Var(x2));
        assert_eq!(out, PropOutcome::Fixpoint);
        assert_eq!(s.value(&p.layout, x1), Some(4));
        assert_eq!(s.value(&p.layout, x0), Some(5));
    }

    #[test]
    fn root_propagation_narrows_bounds() {
        let mut m = Model::new("le");
        let x = m.new_var(0, 9);
        let y = m.new_var(0, 9);
        m.post(Propag::LinearLe {
            terms: vec![(1, x), (1, y)],
            k: 3,
        });
        let p = m.compile();
        let mut s = p.root.clone();
        let mut e = Engine::new(&p);
        assert_eq!(
            e.propagate(&p, s.as_words_mut(), i64::MAX, ScheduleSeed::All),
            PropOutcome::Fixpoint
        );
        assert_eq!(bits::max(s.dom(&p.layout, x)), Some(3));
        assert_eq!(bits::max(s.dom(&p.layout, y)), Some(3));
    }

    #[test]
    fn failure_detected() {
        let mut m = Model::new("fail");
        let x = m.new_var(0, 4);
        let y = m.new_var(0, 4);
        m.post(Propag::EqOffset { x, y, c: 0 });
        m.post(Propag::NeqOffset { x, y, c: 0 });
        let p = m.compile();
        let mut s = p.root.clone();
        bits::keep_only(s.dom_mut(&p.layout, x), 2);
        let mut e = Engine::new(&p);
        assert_eq!(
            e.propagate(&p, s.as_words_mut(), i64::MAX, ScheduleSeed::Var(x)),
            PropOutcome::Failed
        );
    }

    #[test]
    fn incumbent_prunes_objective_var() {
        let mut m = Model::new("opt");
        let x = m.new_var(0, 9);
        m.minimize_var(x);
        let p = m.compile();
        let mut s = p.root.clone();
        let mut e = Engine::new(&p);
        assert_eq!(
            e.propagate(&p, s.as_words_mut(), 5, ScheduleSeed::All),
            PropOutcome::Fixpoint
        );
        assert_eq!(bits::max(s.dom(&p.layout, x)), Some(4));
        // Incumbent 0 ⇒ nothing can be better ⇒ failure.
        let mut s2 = p.root.clone();
        assert_eq!(
            e.propagate(&p, s2.as_words_mut(), 0, ScheduleSeed::All),
            PropOutcome::Failed
        );
    }

    #[test]
    fn engine_is_reusable_after_failure() {
        let mut m = Model::new("reuse");
        let x = m.new_var(0, 4);
        let y = m.new_var(0, 4);
        m.post(Propag::EqOffset { x, y, c: 0 });
        m.post(Propag::NeqOffset { x, y, c: 0 });
        let p = m.compile();
        let mut e = Engine::new(&p);
        let mut s = p.root.clone();
        bits::keep_only(s.dom_mut(&p.layout, x), 2);
        assert_eq!(
            e.propagate(&p, s.as_words_mut(), i64::MAX, ScheduleSeed::Var(x)),
            PropOutcome::Failed
        );
        // A fresh, unconstrained store must still propagate cleanly.
        let mut m2 = Model::new("ok");
        let a = m2.new_var(0, 4);
        let b = m2.new_var(0, 4);
        m2.post(Propag::EqOffset { x: a, y: b, c: 0 });
        let p2 = m2.compile();
        let mut e2 = Engine::new(&p2);
        let mut s2 = p2.root.clone();
        assert_eq!(
            e2.propagate(&p2, s2.as_words_mut(), i64::MAX, ScheduleSeed::All),
            PropOutcome::Fixpoint
        );
    }
}
