//! Sequential depth-first reference solver.
//!
//! This is the single-worker solving procedure of §II — propagate, split,
//! restore from a local stack — without any parallel machinery. It serves
//! as (a) the correctness oracle for the parallel solvers (identical
//! solution counts / optima), and (b) the T(1) baseline for speed-up and
//! efficiency figures.

use macs_domain::{branch_var_of, StoreView, Val};

use crate::fixpoint::{Engine, PropOutcome, ScheduleSeed};
use crate::mode::SearchMode;
use crate::model::CompiledProblem;

/// Options for a sequential solve.
#[derive(Clone, Debug)]
pub struct SeqOptions {
    /// Exhaustive search, or stop at the first solution (satisfaction
    /// only) — the sequential face of the five-path [`SearchMode`].
    pub mode: SearchMode,
    /// Keep at most this many concrete solutions (counting is unaffected).
    pub keep_solutions: usize,
    /// Abort after this many processed stores (`None` = unbounded).
    pub node_limit: Option<u64>,
}

impl SeqOptions {
    /// Stop at the first solution (a sequential first-solution "race" —
    /// the baseline the parallel race is measured against).
    pub fn first_solution() -> Self {
        SeqOptions {
            mode: SearchMode::FirstSolution,
            ..Default::default()
        }
    }
}

impl Default for SeqOptions {
    fn default() -> Self {
        SeqOptions {
            mode: SearchMode::Exhaustive,
            keep_solutions: 16,
            node_limit: None,
        }
    }
}

/// Result of a sequential solve.
#[derive(Clone, Debug, Default)]
pub struct SeqResult {
    /// Number of solutions found (for optimisation: number of incumbent
    /// improvements).
    pub solutions: u64,
    /// Stores processed (one per propagate+branch cycle, failed included) —
    /// the paper's "nodes".
    pub nodes: u64,
    /// Individual propagator executions.
    pub prop_runs: u64,
    /// Best objective value (optimisation only).
    pub best_cost: Option<i64>,
    /// Best (or sample) assignment found.
    pub best_assignment: Option<Vec<Val>>,
    /// Up to `keep_solutions` assignments.
    pub kept: Vec<Vec<Val>>,
    /// True if the node limit stopped the search early.
    pub truncated: bool,
    /// Stores processed up to (and including) the first solution — the
    /// sequential analogue of the parallel race's `first_solution_time`.
    pub first_solution_node: Option<u64>,
}

/// Solve `prob` depth-first with a single worker.
pub fn solve_seq(prob: &CompiledProblem, opts: &SeqOptions) -> SeqResult {
    let mut engine = Engine::new(prob);
    let layout = &prob.layout;
    let words = layout.store_words();

    let mut result = SeqResult::default();
    let mut incumbent = i64::MAX;

    // Depth-first stack of pending stores. Children are pushed in reverse
    // exploration order so the pop order matches value order.
    let mut stack: Vec<Box<[u64]>> = Vec::with_capacity(64);
    stack.push(prob.root.as_words().to_vec().into_boxed_slice());

    let mut scratch = vec![0u64; words];
    let mut children: Vec<Box<[u64]>> = Vec::new();

    while let Some(mut store) = stack.pop() {
        result.nodes += 1;
        if let Some(limit) = opts.node_limit {
            if result.nodes > limit {
                result.truncated = true;
                break;
            }
        }

        let seed = match branch_var_of(&store) {
            Some(v) => ScheduleSeed::Var(v),
            None => ScheduleSeed::All,
        };
        if engine.propagate(prob, &mut store, incumbent, seed) == PropOutcome::Failed {
            continue;
        }

        let view = StoreView::new(layout, &store);
        match prob.brancher.choose_var(layout, &store) {
            None => {
                // Solution.
                result.solutions += 1;
                result.first_solution_node.get_or_insert(result.nodes);
                let assignment = view.assignment().expect("all variables assigned");
                if let Some(cost) = prob.objective.cost(view) {
                    if cost < incumbent {
                        incumbent = cost;
                        result.best_cost = Some(cost);
                        result.best_assignment = Some(assignment.clone());
                    }
                } else {
                    result.best_assignment.get_or_insert(assignment.clone());
                }
                if result.kept.len() < opts.keep_solutions {
                    result.kept.push(assignment);
                }
                if opts.mode.is_race() && !prob.objective.is_some() {
                    break;
                }
            }
            Some(var) => {
                children.clear();
                prob.brancher.split(
                    prob,
                    &store,
                    &mut scratch,
                    |c| children.push(c.to_vec().into_boxed_slice()),
                    var,
                );
                for c in children.drain(..).rev() {
                    stack.push(c);
                }
            }
        }
    }

    result.prop_runs = engine.runs;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::propag::Propag;

    /// n-queens with pairwise disequalities (rows and both diagonals).
    fn queens(n: usize) -> CompiledProblem {
        let mut m = Model::new(format!("queens-{n}"));
        let q = m.new_vars(n, 0, (n - 1) as Val);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = (j - i) as i64;
                m.post(Propag::NeqOffset {
                    x: q[i],
                    y: q[j],
                    c: 0,
                });
                m.post(Propag::NeqOffset {
                    x: q[i],
                    y: q[j],
                    c: d,
                });
                m.post(Propag::NeqOffset {
                    x: q[i],
                    y: q[j],
                    c: -d,
                });
            }
        }
        m.compile()
    }

    #[test]
    fn queens_counts_match_known_values() {
        // OEIS A000170.
        for (n, expect) in [(4, 2u64), (5, 10), (6, 4), (7, 40), (8, 92)] {
            let p = queens(n);
            let r = solve_seq(&p, &SeqOptions::default());
            assert_eq!(r.solutions, expect, "queens-{n}");
        }
    }

    #[test]
    fn queens_solutions_are_valid() {
        let p = queens(6);
        let r = solve_seq(&p, &SeqOptions::default());
        assert_eq!(r.kept.len(), 4);
        for sol in &r.kept {
            assert!(p.check_assignment(sol));
        }
    }

    #[test]
    fn first_solution_mode_stops_early() {
        let p = queens(8);
        let r = solve_seq(&p, &SeqOptions::first_solution());
        assert_eq!(r.solutions, 1);
        assert!(r.nodes < 2000);
        assert_eq!(r.first_solution_node, Some(r.nodes));
        assert!(p.check_assignment(r.best_assignment.as_ref().unwrap()));
    }

    #[test]
    fn node_limit_truncates() {
        let p = queens(10);
        let r = solve_seq(
            &p,
            &SeqOptions {
                node_limit: Some(100),
                ..Default::default()
            },
        );
        assert!(r.truncated);
        assert!(r.nodes <= 101);
    }

    #[test]
    fn optimisation_finds_minimum() {
        // Minimise x subject to x + y = 10, x ≥ 3 via x ≠ 0..=2.
        let mut m = Model::new("opt");
        let x = m.new_var(0, 10);
        let y = m.new_var(0, 10);
        m.post(Propag::LinearEq {
            terms: vec![(1, x), (1, y)],
            k: 10,
        });
        m.post(Propag::NeqConst { x, v: 0 });
        m.post(Propag::NeqConst { x, v: 1 });
        m.post(Propag::NeqConst { x, v: 2 });
        m.minimize_var(x);
        let p = m.compile();
        let r = solve_seq(&p, &SeqOptions::default());
        assert_eq!(r.best_cost, Some(3));
        let a = r.best_assignment.unwrap();
        assert_eq!(a[x], 3);
        assert_eq!(a[y], 7);
    }

    #[test]
    fn unsatisfiable_has_zero_solutions() {
        let p = queens(3);
        let r = solve_seq(&p, &SeqOptions::default());
        assert_eq!(r.solutions, 0);
        assert!(r.best_assignment.is_none());
    }

    #[test]
    fn binary_branching_agrees_with_eager() {
        use crate::branch::{BranchKind, Brancher, ValSelect, VarSelect};
        let mut p = queens(7);
        p.brancher = Brancher::new(VarSelect::InputOrder, ValSelect::Min, BranchKind::Binary);
        let r = solve_seq(&p, &SeqOptions::default());
        assert_eq!(r.solutions, 40);
        let mut p2 = queens(7);
        p2.brancher = Brancher::new(VarSelect::FirstFail, ValSelect::Max, BranchKind::Eager);
        let r2 = solve_seq(&p2, &SeqOptions::default());
        assert_eq!(r2.solutions, 40);
    }

    #[test]
    fn domain_split_branching_agrees() {
        use crate::branch::{BranchKind, Brancher, ValSelect, VarSelect};
        let mut p = queens(6);
        p.brancher = Brancher::new(
            VarSelect::FirstFail,
            ValSelect::Min,
            BranchKind::DomainSplit,
        );
        let r = solve_seq(&p, &SeqOptions::default());
        assert_eq!(r.solutions, 4);
    }
}
