//! Declarative model construction and compilation.
//!
//! Following the paper's two-step methodology (§II: "first a model is
//! defined and then a solver is used to find solutions"), a [`Model`]
//! collects variables, constraints, an optional objective and a branching
//! specification, and [`Model::compile`] freezes it into an immutable
//! [`CompiledProblem`] that every worker shares by reference.

use std::sync::Arc;

use macs_domain::{bits, Store, StoreLayout, StoreView, Val, VarId};

use crate::branch::Brancher;
use crate::propag::Propag;
use crate::state::{Failed, PropState};

/// One entry of a variable's watcher list: which propagator to wake, and
/// under what conditions. `mask` is a changed-words filter over the
/// variable's bitmap cell ([`bits::word_bit`] indexing): the
/// propagator is scheduled only when a word it cares about
/// changed. `on_assign_only` restricts the wake further to prunings that
/// collapsed the domain to a singleton (see
/// [`Propag::wake_filter`](crate::propag::Propag::wake_filter)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Watch {
    pub prop: u32,
    pub mask: u64,
    pub on_assign_only: bool,
}

/// Problem-specific objective evaluation for branch & bound when the cost is
/// not a single decision variable (e.g. the QAP's quadratic objective).
pub trait CostEval: Send + Sync + std::fmt::Debug {
    /// A lower bound on the objective over every completion of the partial
    /// assignment in `view`. Must be monotone: shrinking domains may only
    /// raise the bound.
    fn lower_bound(&self, view: StoreView<'_>) -> i64;

    /// Exact objective value of a complete assignment.
    fn eval(&self, assignment: &[Val]) -> i64;

    /// Variables whose pruning should re-trigger bound checking.
    fn vars(&self) -> Vec<VarId>;

    /// Prune using `incumbent` (exclusive upper bound for minimisation).
    /// The default fails the store when `lower_bound ≥ incumbent`;
    /// problem-specific implementations may additionally prune values.
    fn prune(&self, st: &mut PropState<'_>, incumbent: i64) -> Result<(), Failed> {
        let view = StoreView::new(st.layout(), st.store_words());
        if self.lower_bound(view) >= incumbent {
            Err(Failed)
        } else {
            Ok(())
        }
    }
}

/// What the solver optimises. MaCS handles satisfaction and minimisation;
/// maximisation is modelled by negating the cost.
#[derive(Clone, Debug, Default)]
pub enum Objective {
    /// Pure satisfaction: enumerate or count solutions.
    #[default]
    None,
    /// Minimise the value of one decision variable.
    MinimizeVar(VarId),
    /// Minimise a problem-defined cost function with a pruning lower bound.
    MinimizeEval(Arc<dyn CostEval>),
}

impl Objective {
    pub fn is_some(&self) -> bool {
        !matches!(self, Objective::None)
    }

    /// Variables watched by the objective pruner.
    pub fn watched(&self) -> Vec<VarId> {
        match self {
            Objective::None => vec![],
            Objective::MinimizeVar(v) => vec![*v],
            Objective::MinimizeEval(e) => e.vars(),
        }
    }

    /// Prune against the incumbent (exclusive upper bound).
    pub fn prune(&self, st: &mut PropState<'_>) -> Result<(), Failed> {
        let ub = st.incumbent;
        if ub == i64::MAX {
            return Ok(());
        }
        match self {
            Objective::None => Ok(()),
            Objective::MinimizeVar(v) => {
                st.remove_above(*v, ub - 1)?;
                Ok(())
            }
            Objective::MinimizeEval(e) => e.prune(st, ub),
        }
    }

    /// Cost of a complete assignment, if optimising.
    pub fn cost(&self, view: StoreView<'_>) -> Option<i64> {
        match self {
            Objective::None => None,
            Objective::MinimizeVar(v) => view.value(*v).map(|x| x as i64),
            Objective::MinimizeEval(e) => {
                let a = view.assignment()?;
                Some(e.eval(&a))
            }
        }
    }
}

/// A constraint-satisfaction (or optimisation) model under construction.
#[derive(Debug, Default)]
pub struct Model {
    name: String,
    domains: Vec<(Val, Val)>,
    holes: Vec<(VarId, Val)>,
    props: Vec<Propag>,
    objective: Objective,
    brancher: Brancher,
}

impl Model {
    pub fn new(name: impl Into<String>) -> Self {
        Model {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Add a variable with domain `lo..=hi`.
    pub fn new_var(&mut self, lo: Val, hi: Val) -> VarId {
        assert!(lo <= hi, "empty initial domain");
        self.domains.push((lo, hi));
        self.domains.len() - 1
    }

    /// Add `n` variables with domain `lo..=hi`.
    pub fn new_vars(&mut self, n: usize, lo: Val, hi: Val) -> Vec<VarId> {
        (0..n).map(|_| self.new_var(lo, hi)).collect()
    }

    /// Punch a hole: remove `val` from the initial domain of `v`.
    pub fn remove_value(&mut self, v: VarId, val: Val) {
        self.holes.push((v, val));
    }

    /// Post a constraint.
    pub fn post(&mut self, p: Propag) {
        self.props.push(p);
    }

    /// Minimise a decision variable.
    pub fn minimize_var(&mut self, v: VarId) {
        self.objective = Objective::MinimizeVar(v);
    }

    /// Minimise a problem-defined cost.
    pub fn minimize(&mut self, eval: Arc<dyn CostEval>) {
        self.objective = Objective::MinimizeEval(eval);
    }

    /// Set the branching strategy (defaults to first-fail / min value /
    /// eager splitting).
    pub fn branching(&mut self, b: Brancher) {
        self.brancher = b;
    }

    pub fn num_vars(&self) -> usize {
        self.domains.len()
    }

    /// Freeze into an immutable, shareable problem.
    pub fn compile(mut self) -> CompiledProblem {
        assert!(!self.domains.is_empty(), "model has no variables");
        let max_value = self.domains.iter().map(|&(_, hi)| hi).max().unwrap();
        let layout = StoreLayout::new(self.domains.len(), max_value);

        let mut root = Store::root(&layout);
        for (v, &(lo, hi)) in self.domains.iter().enumerate() {
            let d = root.dom_mut(&layout, v);
            bits::remove_below(d, lo);
            bits::remove_above(d, hi);
        }
        for &(v, val) in &self.holes {
            bits::remove(root.dom_mut(&layout, v), val);
        }

        if self.objective.is_some() {
            self.props.push(Propag::ObjectivePrune);
        }

        let mut watchers = vec![Vec::new(); layout.num_vars()];
        for (i, p) in self.props.iter().enumerate() {
            let (mask, on_assign_only) = p.wake_filter(layout.words_per_var());
            let mut ws = p.watched(&self.objective);
            ws.sort_unstable();
            ws.dedup();
            for v in ws {
                watchers[v].push(Watch {
                    prop: i as u32,
                    mask,
                    on_assign_only,
                });
            }
        }

        CompiledProblem {
            name: self.name,
            layout,
            props: self.props,
            watchers,
            objective: self.objective,
            brancher: self.brancher,
            root,
        }
    }
}

/// An immutable, compiled problem: shared read-only by every worker.
#[derive(Debug)]
pub struct CompiledProblem {
    pub name: String,
    pub layout: StoreLayout,
    pub props: Vec<Propag>,
    /// `watchers[v]` = propagators to reschedule when `v` is pruned, each
    /// with its wake filter (changed-words mask, assignment-only flag).
    pub watchers: Vec<Vec<Watch>>,
    pub objective: Objective,
    pub brancher: Brancher,
    /// The root store (initial domains applied, not yet propagated).
    pub root: Store,
}

impl CompiledProblem {
    /// Verify a complete assignment against every constraint (test oracle;
    /// not used on the solving path).
    pub fn check_assignment(&self, assignment: &[Val]) -> bool {
        assert_eq!(assignment.len(), self.layout.num_vars());
        // Re-run propagation on a store with everything assigned: any
        // violated constraint wipes a domain.
        let mut s = self.root.clone();
        for (v, &val) in assignment.iter().enumerate() {
            if !bits::contains(s.dom(&self.layout, v), val) {
                return false;
            }
            bits::keep_only(s.dom_mut(&self.layout, v), val);
        }
        let mut engine = crate::fixpoint::Engine::new(self);
        engine.propagate(
            self,
            s.as_words_mut(),
            i64::MAX,
            crate::fixpoint::ScheduleSeed::All,
        ) == crate::fixpoint::PropOutcome::Fixpoint
    }

    /// The store size in bytes (the unit of work transferred between
    /// workers).
    pub fn store_bytes(&self) -> usize {
        self.layout.store_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_applies_initial_domains_and_holes() {
        let mut m = Model::new("t");
        let x = m.new_var(2, 5);
        let y = m.new_var(0, 9);
        m.remove_value(y, 4);
        m.post(Propag::NeqOffset { x, y, c: 0 });
        let p = m.compile();
        assert_eq!(p.layout.num_vars(), 2);
        assert_eq!(p.layout.max_value(), 9);
        let vals: Vec<Val> = bits::iter(p.root.dom(&p.layout, x)).collect();
        assert_eq!(vals, vec![2, 3, 4, 5]);
        assert!(!bits::contains(p.root.dom(&p.layout, y), 4));
    }

    #[test]
    fn watchers_are_deduplicated() {
        let mut m = Model::new("t");
        let x = m.new_var(0, 3);
        m.post(Propag::LinearEq {
            terms: vec![(1, x), (2, x)],
            k: 3,
        });
        let p = m.compile();
        assert_eq!(
            p.watchers[x],
            vec![Watch {
                prop: 0,
                mask: bits::all_words_mask(p.layout.words_per_var()),
                on_assign_only: false,
            }]
        );
    }

    #[test]
    fn objective_pruner_appended() {
        let mut m = Model::new("t");
        let x = m.new_var(0, 3);
        m.minimize_var(x);
        let p = m.compile();
        assert!(matches!(p.props.last(), Some(Propag::ObjectivePrune)));
        assert_eq!(p.watchers[x].len(), 1);
    }
}
