//! The MaCS constraint-propagation engine.
//!
//! Implements §II of the paper: a complete finite-domain solver kernel that
//! interleaves **constraint propagation** (pruning domains to a fixpoint at
//! every search-tree node) with **search** (splitting a problem into
//! sub-problems). The kernel is strictly sequential and allocation-free on
//! the hot path; parallelism lives above it (`macs-runtime` / `macs-core`),
//! which matches the paper's observation that load balancing is orthogonal
//! to the problem being solved.
//!
//! * [`model`] — declarative model construction ([`Model`]) compiled into an
//!   immutable, shareable [`CompiledProblem`];
//! * [`propag`] — the propagator library (disequalities, offset equalities,
//!   alldifferent at two consistency levels, linear arithmetic, element,
//!   plus user-defined [`CustomPropagator`]s);
//! * [`state`] — the mutable propagation view over a store with change
//!   logging and failure short-circuiting;
//! * [`fixpoint`] — the propagation queue and fixpoint loop ([`Engine`]);
//! * [`branch`] — variable/value selection and store splitting;
//! * [`seq`] — a sequential depth-first reference solver used for
//!   correctness oracles and single-core baselines.

pub mod branch;
pub mod fixpoint;
pub mod mode;
pub mod model;
pub mod propag;
pub mod seq;
pub mod state;

pub use branch::{BranchKind, Brancher, ValSelect, VarSelect};
pub use fixpoint::{Engine, PropOutcome, ScheduleSeed};
pub use mode::SearchMode;
pub use model::{CompiledProblem, CostEval, Model, Objective, Watch};
pub use propag::{CustomPropagator, Propag};
pub use state::{ChangeLog, Failed, PropState};

pub use macs_domain::{bits, Store, StoreLayout, StoreView, Val, VarId, HEADER_WORDS};
