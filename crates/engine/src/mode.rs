//! The search-mode vocabulary: exhaustive search vs a first-solution
//! race.
//!
//! Defined here — at the bottom of the dependency graph — so the
//! sequential oracle ([`crate::seq`]) and every parallel backend (via the
//! re-export in `macs-search`) share one type. See `macs_search::mode` for
//! the full story of how the winner flag travels a parallel machine.

use std::fmt;
use std::str::FromStr;

/// What terminates a run: tree exhaustion, or the first solution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SearchMode {
    /// Explore the whole tree: count/collect every solution, prove optima
    /// (the paper's setting, and the default everywhere).
    #[default]
    Exhaustive,
    /// Satisfaction race: the first solution wins, a winner flag spreads
    /// over the topology, and every worker abandons its remaining work.
    /// Ignored (treated as [`SearchMode::Exhaustive`]) on optimisation
    /// problems, which must keep searching to *prove* the optimum.
    FirstSolution,
}

impl SearchMode {
    /// Both modes, for sweeps.
    pub const ALL: [SearchMode; 2] = [SearchMode::Exhaustive, SearchMode::FirstSolution];

    /// Does this mode race to the first solution?
    #[inline]
    pub fn is_race(self) -> bool {
        self == SearchMode::FirstSolution
    }
}

impl fmt::Display for SearchMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchMode::Exhaustive => f.write_str("exhaustive"),
            SearchMode::FirstSolution => f.write_str("first-solution"),
        }
    }
}

impl FromStr for SearchMode {
    type Err = String;

    /// Accepts `exhaustive` and `first-solution` (plus the underscore and
    /// short spellings `first_solution` / `first`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exhaustive" => Ok(SearchMode::Exhaustive),
            "first-solution" | "first_solution" | "first" => Ok(SearchMode::FirstSolution),
            other => Err(format!(
                "unknown search mode {other:?}: expected exhaustive or first-solution"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for m in SearchMode::ALL {
            assert_eq!(m.to_string().parse::<SearchMode>().unwrap(), m);
        }
        assert_eq!(
            "first".parse::<SearchMode>().unwrap(),
            SearchMode::FirstSolution
        );
        assert_eq!(
            "first_solution".parse::<SearchMode>().unwrap(),
            SearchMode::FirstSolution
        );
        assert!("fastest".parse::<SearchMode>().is_err());
    }

    #[test]
    fn default_is_exhaustive() {
        assert_eq!(SearchMode::default(), SearchMode::Exhaustive);
        assert!(!SearchMode::Exhaustive.is_race());
        assert!(SearchMode::FirstSolution.is_race());
    }
}
