//! Where the branch-and-bound bound comes from.
//!
//! The kernel only ever asks two questions — "what is the bound in force?"
//! and "does this cost improve it?" — but every execution path answers
//! them differently: threaded MaCS reads a GPI global cell (possibly over
//! the interconnect), PaCCS routes the value through its controller and
//! caches it in a process-local atomic, the simulator replays a
//! virtual-time dissemination delay, and the sequential oracle keeps a
//! plain local variable. [`IncumbentSource`] abstracts exactly that seam.

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, Ordering};

/// Access to the global branch-and-bound incumbent (exclusive upper
/// bound; `i64::MAX` when none exists yet).
pub trait IncumbentSource {
    /// The bound in force for the node about to be processed. May be
    /// stale, which is sound (only prunes less).
    fn bound(&self) -> i64;

    /// Offer a solution cost; returns `true` iff it strictly improved the
    /// globally known incumbent at submission time.
    fn offer(&self, cost: i64) -> bool;
}

/// No bound at all — satisfaction problems and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoBound;

impl IncumbentSource for NoBound {
    fn bound(&self) -> i64 {
        i64::MAX
    }
    fn offer(&self, _cost: i64) -> bool {
        false
    }
}

/// Single-threaded incumbent for the sequential oracle and kernel tests.
#[derive(Debug)]
pub struct LocalIncumbent(Cell<i64>);

impl LocalIncumbent {
    pub fn new() -> Self {
        LocalIncumbent(Cell::new(i64::MAX))
    }

    pub fn get(&self) -> i64 {
        self.0.get()
    }
}

impl Default for LocalIncumbent {
    fn default() -> Self {
        LocalIncumbent::new()
    }
}

impl IncumbentSource for LocalIncumbent {
    fn bound(&self) -> i64 {
        self.0.get()
    }

    fn offer(&self, cost: i64) -> bool {
        if cost < self.0.get() {
            self.0.set(cost);
            true
        } else {
            false
        }
    }
}

/// Shared-memory atomic incumbent — the PaCCS model, where the value lives
/// centrally (conceptually at the controller) and agents read a possibly
/// stale copy; `fetch_min` keeps concurrent improvements sound.
#[derive(Debug)]
pub struct AtomicIncumbent(AtomicI64);

impl AtomicIncumbent {
    pub fn new() -> Self {
        AtomicIncumbent(AtomicI64::new(i64::MAX))
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Acquire)
    }
}

impl Default for AtomicIncumbent {
    fn default() -> Self {
        AtomicIncumbent::new()
    }
}

impl IncumbentSource for AtomicIncumbent {
    fn bound(&self) -> i64 {
        self.0.load(Ordering::Acquire)
    }

    fn offer(&self, cost: i64) -> bool {
        cost < self.0.fetch_min(cost, Ordering::AcqRel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_incumbent_tracks_minimum() {
        let inc = LocalIncumbent::new();
        assert_eq!(inc.bound(), i64::MAX);
        assert!(inc.offer(10));
        assert!(!inc.offer(10));
        assert!(!inc.offer(12));
        assert!(inc.offer(3));
        assert_eq!(inc.bound(), 3);
    }

    #[test]
    fn atomic_incumbent_is_monotone_under_races() {
        let inc = std::sync::Arc::new(AtomicIncumbent::new());
        let improved: usize = std::thread::scope(|s| {
            (0..4)
                .map(|t| {
                    let inc = std::sync::Arc::clone(&inc);
                    s.spawn(move || (0..100).filter(|i| inc.offer(1000 - t * 100 - i)).count())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(inc.get(), 1000 - 3 * 100 - 99);
        assert!(improved >= 100, "each strict improvement counted once");
    }
}
