//! *How much* of the tree a run explores: the search-mode vocabulary
//! shared by every execution path.
//!
//! The paper's evaluation always searches exhaustively (count every
//! solution, prove every optimum). A **first-solution race** stops the
//! whole machine at the first solution instead — the mode that stresses
//! exactly the parts exhaustive search never exercises: cancellation under
//! distance-aware scheduling, termination with work still in flight, and
//! the latency of a *winner flag* crossing the topology.
//!
//! All five execution paths (sequential oracle, threaded MaCS, threaded
//! PaCCS, simulated MaCS, simulated PaCCS) accept a [`SearchMode`]; under
//! [`SearchMode::FirstSolution`] the winning worker raises a winner flag
//! that travels the same node-leader route as a hierarchical bound update
//! (see [`crate::bounds::BroadcastTree`]): the winner stamps its own
//! node's mirror and the root flag; co-located workers see the mirror with
//! shared-memory latency; node *leaders* alone poll the root and refresh
//! their mirror, so the flag reaches a remote node after one leader
//! exchange rather than one fabric read per worker per item.
//!
//! The race is only meaningful for satisfaction problems: optimisation
//! runs must keep searching to *prove* the optimum, so every backend
//! ignores `FirstSolution` when the problem has an objective.
//!
//! Reports pair the mode with two race metrics:
//!
//! * `first_solution_time` — when the winning solution was found
//!   (wall time for the threaded paths, virtual ns for the simulator);
//! * `nodes_after_win` — nodes whose expansion *started* after the win,
//!   i.e. work the dissemination lag failed to prevent. A zero-latency
//!   winner broadcast would make this 0; the hierarchical flag trades a
//!   bounded number of these for far fewer flag reads on the fabric.

// The enum itself is defined at the bottom of the dependency graph so the
// sequential oracle shares it; this module is its canonical home for
// everything parallel (the docs above, and the race accounting below).
pub use macs_engine::mode::SearchMode;

/// A bounded ring of recent item-start timestamps (ns since the run's
/// epoch, or virtual ns). In a first-solution race the winner flag reaches
/// a worker with some lag — at most one node-leader refresh cadence of
/// items — and `nodes_after_win` is exactly the number of recent starts
/// later than the recorded win instant. The ring's capacity only needs to
/// cover that lag; [`RaceRing::count_after`] saturates (and reports every
/// slot) if the lag ever exceeds it.
#[derive(Debug)]
pub struct RaceRing {
    buf: Vec<i64>,
    pos: usize,
}

impl RaceRing {
    /// Comfortably above any leader-refresh cadence in the tree.
    pub const CAPACITY: usize = 512;

    pub fn new() -> Self {
        RaceRing {
            buf: Vec::with_capacity(Self::CAPACITY),
            pos: 0,
        }
    }

    /// Record one item-start instant.
    #[inline]
    pub fn record(&mut self, t_ns: i64) {
        if self.buf.len() < Self::CAPACITY {
            self.buf.push(t_ns);
        } else {
            self.buf[self.pos] = t_ns;
        }
        self.pos = (self.pos + 1) % Self::CAPACITY;
    }

    /// Recorded starts strictly later than `win_ns`.
    pub fn count_after(&self, win_ns: i64) -> u64 {
        self.buf.iter().filter(|&&t| t > win_ns).count() as u64
    }
}

impl Default for RaceRing {
    fn default() -> Self {
        RaceRing::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn race_ring_counts_recent_starts() {
        let mut r = RaceRing::new();
        for t in 0..10 {
            r.record(t);
        }
        assert_eq!(r.count_after(6), 3, "starts 7, 8, 9");
        assert_eq!(r.count_after(i64::MAX - 1), 0);
        // Wrap-around: old entries are overwritten, recent ones kept.
        for t in 0..(2 * RaceRing::CAPACITY as i64) {
            r.record(1_000 + t);
        }
        assert_eq!(r.count_after(1_000), RaceRing::CAPACITY as u64);
    }
}
