//! Store-buffer recycling.
//!
//! Every expanded node used to allocate one `Vec<u64>` per child; across a
//! multi-million-node search that is the dominant allocator traffic. The
//! slab keeps returned buffers on a free list so steady-state search
//! allocates nothing: a child buffer is handed out by [`StoreSlab::alloc_copy`],
//! travels through a pool or stack, and comes back via [`StoreSlab::recycle`]
//! once its content is dead.

/// A free list of fixed-size `Box<[u64]>` store buffers.
#[derive(Debug)]
pub struct StoreSlab {
    words: usize,
    free: Vec<Box<[u64]>>,
    /// Buffers handed out that were freshly allocated (free list empty).
    misses: u64,
    /// Buffers handed out from the free list.
    hits: u64,
}

/// Free-list cap: beyond this, recycled buffers are simply dropped. Deep
/// searches hold O(depth × branching) live stores, far below this.
const MAX_FREE: usize = 4096;

impl StoreSlab {
    /// A slab for stores of `words` u64s.
    pub fn new(words: usize) -> Self {
        StoreSlab {
            words,
            free: Vec::new(),
            misses: 0,
            hits: 0,
        }
    }

    /// Store size this slab serves.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Hand out a buffer holding a copy of `src` (which must be
    /// `words()` long).
    #[inline]
    pub fn alloc_copy(&mut self, src: &[u64]) -> Box<[u64]> {
        debug_assert_eq!(src.len(), self.words);
        match self.free.pop() {
            Some(mut buf) => {
                self.hits += 1;
                buf.copy_from_slice(src);
                buf
            }
            None => {
                self.misses += 1;
                src.to_vec().into_boxed_slice()
            }
        }
    }

    /// Return a dead buffer to the free list. Buffers of a foreign size
    /// (or beyond the cap) are dropped.
    #[inline]
    pub fn recycle(&mut self, buf: Box<[u64]>) {
        if buf.len() == self.words && self.free.len() < MAX_FREE {
            self.free.push(buf);
        }
    }

    /// Buffers currently parked on the free list.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// (free-list hits, fresh allocations) since construction.
    pub fn alloc_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_buffers_are_reused() {
        let mut slab = StoreSlab::new(4);
        let a = slab.alloc_copy(&[1, 2, 3, 4]);
        let ptr = a.as_ptr();
        slab.recycle(a);
        assert_eq!(slab.free_len(), 1);
        let b = slab.alloc_copy(&[5, 6, 7, 8]);
        assert_eq!(b.as_ptr(), ptr, "same buffer back");
        assert_eq!(&b[..], &[5, 6, 7, 8]);
        assert_eq!(slab.alloc_stats(), (1, 1));
    }

    #[test]
    fn foreign_sizes_are_dropped() {
        let mut slab = StoreSlab::new(4);
        slab.recycle(vec![0u64; 7].into_boxed_slice());
        assert_eq!(slab.free_len(), 0);
    }
}
