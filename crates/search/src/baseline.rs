//! The pre-refactor node step, kept verbatim as an A/B reference.
//!
//! Before the kernel was extracted, every execution path allocated a fresh
//! `Vec<u64>` per child on every split (see the seed's `CpProcessor` /
//! `agent_main`). This module preserves that allocation behaviour behind
//! the same driving API so the arena's effect stays measurable:
//! `benches/micro.rs` runs queens-10 node throughput through both this and
//! [`SearchKernel`](crate::SearchKernel). It is not used by any solver
//! path.

use std::collections::VecDeque;
use std::time::Instant;

use macs_domain::{Store, StoreView};
use macs_engine::{CompiledProblem, Engine, PropOutcome, ScheduleSeed};

use crate::batch::WorkItem;
use crate::incumbent::IncumbentSource;
use crate::kernel::{KernelTimers, SolutionReport, StepOutcome};

/// Allocate-per-child variant of the kernel. Phase timing is kept
/// identical to [`SearchKernel`](crate::SearchKernel) (the seed's
/// `CpProcessor` timed both phases too), so an A/B run isolates the
/// allocation strategy alone.
pub struct BaselineKernel<'a> {
    prob: &'a CompiledProblem,
    engine: Engine,
    scratch: Vec<u64>,
    children: Vec<WorkItem>,
    timers: KernelTimers,
}

impl<'a> BaselineKernel<'a> {
    pub fn new(prob: &'a CompiledProblem) -> Self {
        BaselineKernel {
            prob,
            engine: Engine::new(prob),
            scratch: vec![0u64; prob.layout.store_words()],
            children: Vec::new(),
            timers: KernelTimers::default(),
        }
    }

    /// Identical node classification to
    /// [`SearchKernel::step`](crate::SearchKernel::step), but every child
    /// is a fresh heap allocation.
    pub fn step<I: IncumbentSource + ?Sized>(&mut self, buf: &mut [u64], inc: &I) -> StepOutcome {
        let prob = self.prob;
        let layout = &prob.layout;
        let bound = if prob.objective.is_some() {
            inc.bound()
        } else {
            i64::MAX
        };
        let seed = match Store::from_words(layout, buf).branch_var() {
            Some(v) => ScheduleSeed::Var(v),
            None => ScheduleSeed::All,
        };
        let t0 = Instant::now();
        let failed = self.engine.propagate(prob, buf, bound, seed) == PropOutcome::Failed;
        self.timers.propagate += t0.elapsed();
        if failed {
            return StepOutcome::Failed;
        }
        let t0 = Instant::now();
        let var = prob.brancher.choose_var(layout, buf);
        let Some(var) = var else {
            self.timers.split += t0.elapsed();
            let view = StoreView::new(layout, buf);
            let assignment = view.assignment().expect("complete assignment");
            let (cost, improved) = match prob.objective.cost(view) {
                Some(c) => (Some(c), inc.offer(c)),
                None => (None, true),
            };
            return StepOutcome::Solution(SolutionReport {
                assignment,
                cost,
                improved,
            });
        };
        let children = &mut self.children;
        let n = prob.brancher.split(
            prob,
            buf,
            &mut self.scratch,
            |c| children.push(c.to_vec().into_boxed_slice()),
            var,
        );
        for c in children.iter_mut() {
            c[1] = bound as u64;
        }
        self.timers.split += t0.elapsed();
        StepOutcome::Children(n)
    }

    /// Accumulated phase timers, resetting them.
    pub fn take_timers(&mut self) -> KernelTimers {
        std::mem::take(&mut self.timers)
    }

    /// Stack-style consumption, mirroring
    /// [`SearchKernel::push_children`](crate::SearchKernel::push_children).
    pub fn push_children(&mut self, stack: &mut VecDeque<WorkItem>) {
        while let Some(c) = self.children.pop() {
            stack.push_back(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incumbent::NoBound;
    use crate::kernel::SearchKernel;
    use macs_engine::{Model, Propag};

    #[test]
    fn baseline_and_kernel_agree() {
        let mut m = Model::new("tiny");
        let x = m.new_var(0, 4);
        let y = m.new_var(0, 4);
        m.post(Propag::NeqOffset { x, y, c: 1 });
        let prob = m.compile();

        let drive_baseline = || {
            let mut k = BaselineKernel::new(&prob);
            let mut stack: VecDeque<WorkItem> = VecDeque::new();
            stack.push_back(SearchKernel::root_item(&prob).into_boxed_slice());
            let mut sols = 0u64;
            while let Some(mut s) = stack.pop_back() {
                match k.step(&mut s, &NoBound) {
                    StepOutcome::Solution(_) => sols += 1,
                    StepOutcome::Children(_) => k.push_children(&mut stack),
                    StepOutcome::Failed => {}
                }
            }
            sols
        };
        let drive_kernel = || {
            let mut k = SearchKernel::new(&prob);
            let mut stack: VecDeque<WorkItem> = VecDeque::new();
            let root = k.alloc_root();
            stack.push_back(root);
            let mut sols = 0u64;
            while let Some(mut s) = stack.pop_back() {
                match k.step(&mut s, &NoBound) {
                    StepOutcome::Solution(_) => sols += 1,
                    StepOutcome::Children(_) => k.push_children(&mut stack),
                    StepOutcome::Failed => {}
                }
                k.recycle(s);
            }
            sols
        };
        assert_eq!(drive_baseline(), drive_kernel());
    }
}
