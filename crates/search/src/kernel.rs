//! The single propagate → (solution | split) kernel.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use macs_domain::{branch_var_of, StoreView, Val};
use macs_engine::{CompiledProblem, Engine, PropOutcome, ScheduleSeed};

use crate::arena::StoreSlab;
use crate::batch::WorkItem;
use crate::incumbent::IncumbentSource;

/// A complete assignment found by the kernel.
#[derive(Clone, Debug)]
pub struct SolutionReport {
    pub assignment: Vec<Val>,
    /// Objective value (optimisation problems only).
    pub cost: Option<i64>,
    /// For optimisation: whether the cost strictly improved the incumbent
    /// at submission time (already offered through the
    /// [`IncumbentSource`]). Always `true` for satisfaction problems.
    pub improved: bool,
}

/// What one kernel step did to the store.
#[derive(Debug)]
pub enum StepOutcome {
    /// Propagation wiped a domain: the store is dead.
    Failed,
    /// Every variable is assigned. The cost (if any) has already been
    /// offered to the incumbent source; the caller decides what to count,
    /// keep, or route to a controller.
    Solution(SolutionReport),
    /// The store split into `n ≥ 1` children, parked inside the kernel in
    /// exploration order. Consume them with
    /// [`SearchKernel::continue_with_first`] or
    /// [`SearchKernel::push_children`].
    Children(usize),
}

/// Accumulated propagate/split wall time (the paper's §VI phase split).
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelTimers {
    pub propagate: Duration,
    pub split: Duration,
}

/// The node-processing kernel: one engine, one scratch buffer, one child
/// staging area, one store arena — everything a worker needs to expand
/// nodes without allocating on the steady-state path.
pub struct SearchKernel<'a> {
    prob: &'a CompiledProblem,
    engine: Engine,
    /// Scratch store the brancher builds each child in.
    scratch: Vec<u64>,
    /// Children of the current split, exploration order.
    children: Vec<WorkItem>,
    slab: StoreSlab,
    timers: KernelTimers,
    /// Whether [`KernelTimers`] are collected. On by default (the phase
    /// aggregation in the processors depends on it); throughput harnesses
    /// that don't read the timers can switch it off and save four
    /// `Instant::now` calls per node.
    timing: bool,
}

impl<'a> SearchKernel<'a> {
    pub fn new(prob: &'a CompiledProblem) -> Self {
        let words = prob.layout.store_words();
        SearchKernel {
            prob,
            engine: Engine::new(prob),
            scratch: vec![0u64; words],
            children: Vec::new(),
            slab: StoreSlab::new(words),
            timers: KernelTimers::default(),
            timing: true,
        }
    }

    /// Enable or disable phase-timer collection (see
    /// [`SearchKernel::take_timers`]). With timing off, `take_timers`
    /// returns zeros.
    pub fn set_timing(&mut self, on: bool) {
        self.timing = on;
    }

    /// The root work item of `prob` (a copy of the compiled root store).
    pub fn root_item(prob: &CompiledProblem) -> Vec<u64> {
        prob.root.as_words().to_vec()
    }

    /// The root work item as an arena-tracked buffer.
    pub fn alloc_root(&mut self) -> WorkItem {
        let root = self.prob.root.as_words().to_vec();
        self.slab.alloc_copy(&root)
    }

    pub fn prob(&self) -> &'a CompiledProblem {
        self.prob
    }

    /// Individual propagator executions so far.
    pub fn prop_runs(&self) -> u64 {
        self.engine.runs
    }

    /// Accumulated phase timers, resetting them (drained by callers that
    /// aggregate per-worker statistics).
    pub fn take_timers(&mut self) -> KernelTimers {
        std::mem::take(&mut self.timers)
    }

    /// Return a dead store buffer to the kernel's arena.
    #[inline]
    pub fn recycle(&mut self, buf: WorkItem) {
        self.slab.recycle(buf);
    }

    /// The kernel's store arena (diagnostics, tests).
    pub fn slab(&self) -> &StoreSlab {
        &self.slab
    }

    /// Process the store in `buf`: propagate to fixpoint under the bound
    /// from `inc`, then classify the node as failed, a solution (offering
    /// its cost to `inc`), or split into children.
    pub fn step<I: IncumbentSource + ?Sized>(&mut self, buf: &mut [u64], inc: &I) -> StepOutcome {
        let prob = self.prob;
        let layout = &prob.layout;

        // The branch-and-bound bound in force for this store.
        let bound = if prob.objective.is_some() {
            inc.bound()
        } else {
            i64::MAX
        };

        // Stores created by a split carry their branch variable in the
        // header; anything else (root, stolen stores of unknown history)
        // gets a full reschedule.
        let seed = match branch_var_of(buf) {
            Some(v) => ScheduleSeed::Var(v),
            None => ScheduleSeed::All,
        };

        // --- step 1: propagation ------------------------------------------
        let t0 = self.timing.then(Instant::now);
        let outcome = self.engine.propagate(prob, buf, bound, seed);
        if let Some(t0) = t0 {
            self.timers.propagate += t0.elapsed();
        }
        if outcome == PropOutcome::Failed {
            return StepOutcome::Failed;
        }

        // --- step 2: splitting (or a solution) -----------------------------
        let t0 = self.timing.then(Instant::now);
        let var = prob.brancher.choose_var(layout, buf);
        let Some(var) = var else {
            if let Some(t0) = t0 {
                self.timers.split += t0.elapsed();
            }
            // All variables assigned: a solution.
            let view = StoreView::new(layout, buf);
            let assignment = view.assignment().expect("complete assignment");
            let (cost, improved) = match prob.objective.cost(view) {
                // The incumbent may have moved since propagation; `offer`
                // re-checks atomically.
                Some(c) => (Some(c), inc.offer(c)),
                None => (None, true),
            };
            return StepOutcome::Solution(SolutionReport {
                assignment,
                cost,
                improved,
            });
        };

        debug_assert!(
            self.children.is_empty(),
            "children of the last split not consumed"
        );
        let slab = &mut self.slab;
        let children = &mut self.children;
        let n = prob.brancher.split(
            prob,
            buf,
            &mut self.scratch,
            |c| children.push(slab.alloc_copy(c)),
            var,
        );
        // Stamp the bound in force into the children (diagnostics).
        for c in children.iter_mut() {
            c[1] = bound as u64;
        }
        if let Some(t0) = t0 {
            self.timers.split += t0.elapsed();
        }
        debug_assert!(n >= 1);
        StepOutcome::Children(n)
    }

    /// Consume a split depth-first, pool-style: the first child replaces
    /// the parent in `buf` (no pool round-trip for the leftmost child);
    /// the remaining children go to `push` in *reverse* exploration order,
    /// so a LIFO pop visits them in exploration order. Child buffers are
    /// recycled once copied out.
    pub fn continue_with_first(&mut self, buf: &mut [u64], mut push: impl FnMut(&[u64])) {
        debug_assert!(!self.children.is_empty());
        while self.children.len() > 1 {
            let c = self.children.pop().expect("non-empty");
            push(&c);
            self.slab.recycle(c);
        }
        let first = self.children.pop().expect("first child");
        buf.copy_from_slice(&first);
        self.slab.recycle(first);
    }

    /// Consume a split stack-style: move every child onto the back of a
    /// depth-first work queue in reverse exploration order, so
    /// `pop_back()` yields them in exploration order. The buffers stay
    /// arena-tracked — return them with [`SearchKernel::recycle`] after
    /// processing.
    pub fn push_children(&mut self, stack: &mut VecDeque<WorkItem>) {
        while let Some(c) = self.children.pop() {
            stack.push_back(c);
        }
    }

    /// Drop (and recycle) any staged children — cancellation paths.
    pub fn discard_children(&mut self) {
        while let Some(c) = self.children.pop() {
            self.slab.recycle(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incumbent::{LocalIncumbent, NoBound};
    use macs_engine::{Model, Propag};

    fn tiny_problem() -> CompiledProblem {
        // x, y ∈ 0..=3, x ≠ y: 12 solutions.
        let mut m = Model::new("tiny");
        let x = m.new_var(0, 3);
        let y = m.new_var(0, 3);
        m.post(Propag::NeqOffset { x, y, c: 0 });
        m.compile()
    }

    /// Depth-first drive of the kernel over a whole problem.
    fn enumerate(prob: &CompiledProblem) -> (u64, u64, Vec<Vec<Val>>) {
        let mut kernel = SearchKernel::new(prob);
        let inc = LocalIncumbent::new();
        let mut stack: VecDeque<WorkItem> = VecDeque::new();
        let root = kernel.alloc_root();
        stack.push_back(root);
        let (mut nodes, mut solutions, mut kept) = (0u64, 0u64, Vec::new());
        while let Some(mut store) = stack.pop_back() {
            nodes += 1;
            match kernel.step(&mut store, &inc) {
                StepOutcome::Failed => {}
                StepOutcome::Solution(sol) => {
                    if sol.cost.is_none() || sol.improved {
                        solutions += 1;
                        kept.push(sol.assignment);
                    }
                }
                StepOutcome::Children(_) => kernel.push_children(&mut stack),
            }
            kernel.recycle(store);
        }
        (nodes, solutions, kept)
    }

    #[test]
    fn kernel_enumerates_all_solutions() {
        let prob = tiny_problem();
        let (nodes, solutions, kept) = enumerate(&prob);
        assert_eq!(solutions, 12);
        assert!(nodes >= 12);
        for a in &kept {
            assert!(prob.check_assignment(a));
        }
    }

    #[test]
    fn kernel_recycles_buffers() {
        let prob = tiny_problem();
        let mut kernel = SearchKernel::new(&prob);
        let mut stack: VecDeque<WorkItem> = VecDeque::new();
        let root = kernel.alloc_root();
        stack.push_back(root);
        while let Some(mut store) = stack.pop_back() {
            if let StepOutcome::Children(_) = kernel.step(&mut store, &NoBound) {
                kernel.push_children(&mut stack);
            }
            kernel.recycle(store);
        }
        let (hits, misses) = kernel.slab().alloc_stats();
        assert!(
            hits > misses,
            "steady state must reuse buffers: {hits} vs {misses}"
        );
    }

    #[test]
    fn continue_with_first_matches_exploration_order() {
        let prob = tiny_problem();
        let mut kernel = SearchKernel::new(&prob);
        let mut buf = SearchKernel::root_item(&prob);
        let StepOutcome::Children(n) = kernel.step(&mut buf, &NoBound) else {
            panic!("root must split");
        };
        assert_eq!(n, 4);
        let mut rest: Vec<Vec<u64>> = Vec::new();
        kernel.continue_with_first(&mut buf, |c| rest.push(c.to_vec()));
        assert_eq!(rest.len(), 3);
        // Reverse exploration order: a LIFO pop yields child 1, 2, 3.
        let view = |w: &[u64]| macs_domain::StoreView::new(&prob.layout, w).value(0);
        assert_eq!(view(&buf), Some(0), "first child continues in place");
        assert_eq!(view(rest.last().unwrap()), Some(1));
    }

    #[test]
    fn timers_accumulate_and_drain() {
        let prob = tiny_problem();
        let mut kernel = SearchKernel::new(&prob);
        let mut buf = SearchKernel::root_item(&prob);
        let _ = kernel.step(&mut buf, &NoBound);
        kernel.discard_children();
        let t = kernel.take_timers();
        assert!(t.propagate + t.split > Duration::ZERO);
        let t2 = kernel.take_timers();
        assert_eq!(t2.propagate, Duration::ZERO);
    }
}
