//! The steal-chunk transfer unit and its granularity policy.
//!
//! Every victim in the system answers a steal with "the oldest half of my
//! work, capped" — those are the largest sub-problems, the ones worth the
//! transfer. Before this type existed the split arithmetic and the
//! front-drain were re-implemented at each victim site; worse, the PaCCS
//! agent kept its depth-first stack in a `Vec`, so handing over the *front*
//! memmoved the entire remaining stack on every steal. [`WorkBatch`] owns
//! both the policy and the mechanics, over a `VecDeque` whose front-range
//! removal is O(chunk), not O(stack).
//!
//! The *cap* itself is a policy, not a constant: steal cost grows with
//! topological distance (a cross-cluster round trip is orders of magnitude
//! dearer than a same-socket lock), so the amount of work moved per steal
//! should too. [`ChunkPolicy`] decides the reservation granted to one
//! thief from the thief↔victim [`distance`](macs_topo::MachineTopology::distance):
//! small near chunks keep local stealing cheap and responsive, large far
//! chunks amortise the expensive round trip. [`AdaptiveBatch`] additionally
//! tunes the *response batch* (how many co-located pools top up one thin
//! reply) online from an EWMA of observed reply thinness.

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

/// How large a reservation a victim grants one thief — the steal-chunk
/// granularity policy threaded through every backend (threaded MaCS victim
/// replies, PaCCS `reply_steal`, the simulator's steal-response events).
///
/// The configured `max_steal_chunk` stays the *static* reference cap; the
/// policy maps it (and the steal's topological distance) to the effective
/// per-steal cap via [`cap_for`](ChunkPolicy::cap_for).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ChunkPolicy {
    /// One flat cap for every steal, whatever it crosses — the original
    /// (PR-2) behaviour and the ablation baseline.
    #[default]
    Static,
    /// Scale the cap with distance: `base` items for a distance-1 steal,
    /// growing linearly to `base × factor` at the machine's full depth.
    /// A same-socket thief keeps the near granularity (it can come back
    /// for more almost for free); a cross-cluster thief's one expensive
    /// round trip carries a proportionally bigger reservation. `base`
    /// should normally equal the static cap — shrinking near steals below
    /// the tuned baseline only drains pools faster and sends thieves
    /// remote sooner (measured in `chunk_ablation`).
    DistanceScaled {
        /// Cap for the nearest (distance-1) steal, clamped to ≥ 1.
        base: u64,
        /// Growth to the machine diameter: the farthest steal is capped at
        /// `base × factor` (clamped to ≥ 1).
        factor: u64,
    },
    /// Distance-scaled grants with the base taken from the static cap
    /// (growth ×2 to the diameter), plus online tuning of the response
    /// batch from reply thinness (see [`AdaptiveBatch`]): chronically
    /// thin replies raise how many co-located pools top up one response,
    /// fat replies lower it.
    Adaptive,
}

impl ChunkPolicy {
    /// The canonical sweep order for ablation harnesses.
    pub const ALL: [ChunkPolicy; 3] = [
        ChunkPolicy::Static,
        ChunkPolicy::DistanceScaled {
            base: 16,
            factor: 2,
        },
        ChunkPolicy::Adaptive,
    ];

    /// The effective per-steal cap for a thief `distance` levels away on a
    /// machine `levels` deep, given the configured static cap. Monotone
    /// non-decreasing in `distance` for every policy; `Static` ignores the
    /// distance entirely.
    pub fn cap_for(&self, distance: usize, levels: usize, static_cap: u64) -> u64 {
        let scaled = |base: u64, factor: u64| {
            let base = base.max(1);
            let factor = factor.max(1);
            let d = distance.clamp(1, levels.max(1)) as u64;
            let span = levels.max(1) as u64 - 1;
            // Linear interpolation from `base` at distance 1 to
            // `base × factor` at the machine diameter (flat machine:
            // base). Saturating: absurd user-supplied base/factor pairs
            // must clamp, not wrap (wrapping would break monotonicity).
            base.saturating_add(base.saturating_mul(factor - 1).saturating_mul(d - 1) / span.max(1))
        };
        match *self {
            ChunkPolicy::Static => static_cap.max(1),
            ChunkPolicy::DistanceScaled { base, factor } => scaled(base, factor),
            ChunkPolicy::Adaptive => scaled(static_cap.max(1), 2),
        }
    }

    /// Does this policy tune the response batch online?
    #[inline]
    pub fn is_adaptive(&self) -> bool {
        matches!(self, ChunkPolicy::Adaptive)
    }
}

impl fmt::Display for ChunkPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkPolicy::Static => write!(f, "static"),
            ChunkPolicy::DistanceScaled { base, factor } => write!(f, "distance:{base},{factor}"),
            ChunkPolicy::Adaptive => write!(f, "adaptive"),
        }
    }
}

impl FromStr for ChunkPolicy {
    type Err = String;

    /// Parse `static`, `distance[:base,factor]` (default `16,2`) or
    /// `adaptive` — the `--chunk-policy` argument of the bench bins.
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "static" => Ok(ChunkPolicy::Static),
            "adaptive" => Ok(ChunkPolicy::Adaptive),
            "distance" => Ok(ChunkPolicy::DistanceScaled {
                base: 16,
                factor: 2,
            }),
            _ => match s.strip_prefix("distance:") {
                Some(params) => {
                    let (b, f) = params.split_once(',').ok_or_else(|| {
                        format!("chunk policy {s:?} needs distance:base,factor (e.g. distance:8,4)")
                    })?;
                    let parse = |t: &str| {
                        t.parse::<u64>()
                            .map_err(|e| format!("bad number {t:?} in chunk policy {s:?}: {e}"))
                    };
                    let (base, factor) = (parse(b)?, parse(f)?);
                    if base == 0 || factor == 0 {
                        return Err(format!("chunk policy {s:?}: base and factor must be ≥ 1"));
                    }
                    // A cap is a number of work items in one reply; 2^20
                    // already exceeds any pool. Bounding the product here
                    // keeps cap_for's interpolation far from overflow.
                    if base.saturating_mul(factor) > (1 << 20) {
                        return Err(format!(
                            "chunk policy {s:?}: base × factor must be ≤ 2^20 items"
                        ));
                    }
                    Ok(ChunkPolicy::DistanceScaled { base, factor })
                }
                None => Err(format!(
                    "unknown chunk policy {s:?} (expected static, \
                     distance[:base,factor] or adaptive)"
                )),
            },
        }
    }
}

/// Online response-batch tuner for [`ChunkPolicy::Adaptive`]: an EWMA of
/// reply thinness (1024 = every recent reply thin, 0 = every reply fat)
/// with an ~8-reply horizon. Thin replies — the signal that no single
/// co-located pool can fill the cap — raise the batch towards
/// [`MAX_BATCH`](AdaptiveBatch::MAX_BATCH); fat replies lower it towards 1.
/// Each serving worker owns one (the signal is its own node's surplus).
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveBatch {
    /// Thinness EWMA in 1/1024 units.
    ewma: u32,
}

impl AdaptiveBatch {
    pub const MIN_BATCH: u32 = 1;
    pub const MAX_BATCH: u32 = 4;

    /// Start in the middle of the batch-2 band — the tuned PR-2 default —
    /// so the first observations move it either way.
    pub fn new() -> Self {
        AdaptiveBatch::starting_at(2)
    }

    /// Start from a configured batch (the `response_batch` knob): the
    /// EWMA is seeded at the centre of the band [`batch`](Self::batch)
    /// maps back onto, so the tuner begins at the configured ceiling and
    /// moves from there.
    pub fn starting_at(batch: u32) -> Self {
        let b = batch.clamp(Self::MIN_BATCH, Self::MAX_BATCH);
        AdaptiveBatch {
            ewma: (300 * (b - 1) + 150).min(1024),
        }
    }

    /// Record one served reply of `len` items against its per-steal `cap`.
    pub fn observe(&mut self, len: u64, cap: u64) {
        let thin = len < WorkBatch::thin_threshold(cap);
        self.ewma = (self.ewma * 7 + if thin { 1024 } else { 0 }) / 8;
    }

    /// The response batch the thinness EWMA currently argues for, clamped
    /// to `[MIN_BATCH, MAX_BATCH]`.
    pub fn batch(&self) -> u32 {
        (1 + self.ewma / 300).clamp(Self::MIN_BATCH, Self::MAX_BATCH)
    }
}

impl Default for AdaptiveBatch {
    fn default() -> Self {
        AdaptiveBatch::new()
    }
}

/// One relocatable work item: a fixed-size store image.
pub type WorkItem = Box<[u64]>;

/// A chunk of work items in transit from a victim to a thief, oldest
/// first.
///
/// A batch can carry work reserved from *several* victim pools — the
/// serving worker appends one chunk per co-located pool with
/// [`push_chunk`](WorkBatch::push_chunk) — so a single response (one
/// round trip) can deliver a whole node's surplus.
/// [`chunks`](WorkBatch::chunks) reports how many pools contributed.
#[derive(Debug, Default)]
pub struct WorkBatch {
    items: Vec<WorkItem>,
    /// Number of items contributed by each source pool, in append order.
    chunk_lens: Vec<usize>,
}

impl WorkBatch {
    /// The MaCS share policy: up to ⌈available/2⌉ items, capped — and the
    /// victim always retains at least one item. ⌈1/2⌉ = 1 used to grant
    /// the victim's *only* item, leaving its pool empty and forcing an
    /// immediate re-steal; the `available − 1` clamp pins the retention
    /// invariant for every `available`.
    #[inline]
    pub fn share_ceil(available: u64, cap: u64) -> u64 {
        available
            .div_ceil(2)
            .min(cap)
            .min(available.saturating_sub(1))
    }

    /// The PaCCS share policy: up to ⌊available/2⌋ items, capped — the
    /// victim always keeps at least one item, so it stays active (the
    /// floor already guarantees it; the clamp keeps both policies under
    /// the same invariant by construction).
    #[inline]
    pub fn share_floor(available: u64, cap: u64) -> u64 {
        (available / 2).min(cap).min(available.saturating_sub(1))
    }

    /// Below how many items a reply counts as *thin* (eligible for a
    /// batched top-up from co-located pools). `max(cap/4, 2)` — but
    /// clamped to the cap itself: with integer division a cap below 4
    /// would otherwise make the threshold *exceed* the cap, so every
    /// reply (even a full one) counted as thin and the thinness gate was
    /// meaningless. A full reply is never thin.
    #[inline]
    pub fn thin_threshold(cap: u64) -> u64 {
        (cap / 4).max(2).min(cap.max(1))
    }

    /// Victim side, PaCCS policy: split the oldest ⌊len/2⌋ (≤ `cap`) items
    /// off the front of a depth-first work queue.
    pub fn split_front(stack: &mut VecDeque<WorkItem>, cap: usize) -> WorkBatch {
        let give = Self::share_floor(stack.len() as u64, cap as u64) as usize;
        Self::take_front(stack, give)
    }

    /// Take exactly `n` items (clamped to the queue length) off the front.
    pub fn take_front(stack: &mut VecDeque<WorkItem>, n: usize) -> WorkBatch {
        let n = n.min(stack.len());
        let items: Vec<WorkItem> = stack.drain(..n).collect();
        WorkBatch::from_items(items)
    }

    /// Build a batch from already-collected items (oldest first), as a
    /// single chunk.
    pub fn from_items(items: Vec<WorkItem>) -> WorkBatch {
        let chunk_lens = if items.is_empty() {
            Vec::new()
        } else {
            vec![items.len()]
        };
        WorkBatch { items, chunk_lens }
    }

    /// Append one further victim pool's chunk (batched responses: several
    /// pools' reservations travel in one reply).
    pub fn push_chunk(&mut self, items: impl IntoIterator<Item = WorkItem>) {
        let before = self.items.len();
        self.items.extend(items);
        let added = self.items.len() - before;
        if added > 0 {
            self.chunk_lens.push(added);
        }
    }

    /// How many victim pools contributed to this batch.
    pub fn chunks(&self) -> usize {
        self.chunk_lens.len()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Payload size on the wire (message-passing byte accounting).
    pub fn payload_bytes(&self) -> usize {
        self.items.iter().map(|i| i.len() * 8).sum()
    }

    /// Thief side: append the batch to the back of a depth-first queue.
    /// The next pop works on the newest of the stolen items, preserving
    /// the victim's exploration order within the batch.
    pub fn adopt_into(self, stack: &mut VecDeque<WorkItem>) {
        stack.extend(self.items);
    }

    /// Consume the batch into its items, oldest first.
    pub fn into_items(self) -> Vec<WorkItem> {
        self.items
    }

    pub fn iter(&self) -> impl Iterator<Item = &WorkItem> {
        self.items.iter()
    }
}

impl IntoIterator for WorkBatch {
    type Item = WorkItem;
    type IntoIter = std::vec::IntoIter<WorkItem>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(v: u64) -> WorkItem {
        vec![v; 2].into_boxed_slice()
    }

    #[test]
    fn share_policies() {
        assert_eq!(
            WorkBatch::share_floor(1, 8),
            0,
            "victim keeps its last item"
        );
        assert_eq!(WorkBatch::share_floor(7, 8), 3);
        assert_eq!(WorkBatch::share_floor(64, 8), 8, "cap applies");
        assert_eq!(
            WorkBatch::share_ceil(1, 8),
            0,
            "ceil must not grant the victim's only item"
        );
        assert_eq!(WorkBatch::share_ceil(2, 8), 1);
        assert_eq!(WorkBatch::share_ceil(7, 8), 4);
        assert_eq!(WorkBatch::share_ceil(64, 8), 8);
        assert_eq!(WorkBatch::share_ceil(0, 8), 0);
        // The retention invariant, over the interesting small range.
        for available in 0..=20u64 {
            for cap in 1..=20u64 {
                for grant in [
                    WorkBatch::share_ceil(available, cap),
                    WorkBatch::share_floor(available, cap),
                ] {
                    assert!(grant < available.max(1), "victim retains ≥ 1");
                    assert!(grant <= cap);
                }
            }
        }
    }

    #[test]
    fn thin_threshold_never_exceeds_the_cap() {
        assert_eq!(WorkBatch::thin_threshold(16), 4);
        assert_eq!(WorkBatch::thin_threshold(8), 2);
        // Degenerate small caps: the old max(cap/4, 2) returned 2 for cap
        // 1..=3, so a *full* reply counted as thin.
        assert_eq!(WorkBatch::thin_threshold(3), 2);
        assert_eq!(WorkBatch::thin_threshold(2), 2);
        assert_eq!(WorkBatch::thin_threshold(1), 1);
        assert_eq!(WorkBatch::thin_threshold(0), 1);
        for cap in 1..=64u64 {
            assert!(
                WorkBatch::thin_threshold(cap) <= cap,
                "a full reply is never thin (cap {cap})"
            );
        }
    }

    #[test]
    fn chunk_policy_parses_and_round_trips() {
        for p in ChunkPolicy::ALL {
            assert_eq!(p.to_string().parse::<ChunkPolicy>().unwrap(), p);
        }
        assert_eq!(
            "distance".parse::<ChunkPolicy>().unwrap(),
            ChunkPolicy::DistanceScaled {
                base: 16,
                factor: 2
            }
        );
        assert_eq!(
            "distance:2,16".parse::<ChunkPolicy>().unwrap(),
            ChunkPolicy::DistanceScaled {
                base: 2,
                factor: 16
            }
        );
        for bad in [
            "",
            "Static",
            "distance:",
            "distance:8",
            "distance:x,4",
            "distance:0,4",
            "distance:8,0",
        ] {
            assert!(
                bad.parse::<ChunkPolicy>().is_err(),
                "{bad:?} must not parse"
            );
        }
    }

    #[test]
    fn chunk_caps_scale_with_distance() {
        let p = ChunkPolicy::DistanceScaled { base: 8, factor: 4 };
        // 3-level machine: 8 at the socket, 32 at the diameter, between
        // in between.
        assert_eq!(p.cap_for(1, 3, 16), 8);
        assert_eq!(p.cap_for(2, 3, 16), 20);
        assert_eq!(p.cap_for(3, 3, 16), 32);
        // Flat machine: one distance, the base.
        assert_eq!(p.cap_for(1, 1, 16), 8);
        // Static ignores distance; Adaptive takes its base from the
        // static cap, doubling to the diameter.
        assert_eq!(ChunkPolicy::Static.cap_for(3, 3, 16), 16);
        assert_eq!(ChunkPolicy::Adaptive.cap_for(1, 3, 16), 16);
        assert_eq!(ChunkPolicy::Adaptive.cap_for(2, 3, 16), 24);
        assert_eq!(ChunkPolicy::Adaptive.cap_for(3, 3, 16), 32);
        // Monotone in distance, and never zero.
        for levels in 1..=5usize {
            for policy in ChunkPolicy::ALL {
                let caps: Vec<u64> = (1..=levels)
                    .map(|d| policy.cap_for(d, levels, 16))
                    .collect();
                assert!(caps.windows(2).all(|w| w[0] <= w[1]), "{policy}: {caps:?}");
                assert!(caps.iter().all(|&c| c >= 1));
            }
        }
        // Absurd parameters saturate (stay monotone) instead of wrapping,
        // and the parser refuses them outright.
        let huge = ChunkPolicy::DistanceScaled {
            base: u64::MAX / 2,
            factor: u64::MAX / 2,
        };
        assert!(huge.cap_for(2, 3, 16) <= huge.cap_for(3, 3, 16));
        assert!("distance:6000000000,6000000000"
            .parse::<ChunkPolicy>()
            .is_err());
    }

    #[test]
    fn adaptive_batch_follows_reply_thinness() {
        for start in 0..=6u32 {
            let b = AdaptiveBatch::starting_at(start).batch();
            assert_eq!(
                b,
                start.clamp(AdaptiveBatch::MIN_BATCH, AdaptiveBatch::MAX_BATCH),
                "seeding lands in the configured band"
            );
        }
        let mut a = AdaptiveBatch::new();
        assert_eq!(a.batch(), 2, "starts at the tuned default");
        for _ in 0..32 {
            a.observe(16, 16); // fat replies
        }
        assert_eq!(a.batch(), AdaptiveBatch::MIN_BATCH);
        for _ in 0..32 {
            a.observe(1, 16); // thin replies
        }
        assert_eq!(a.batch(), AdaptiveBatch::MAX_BATCH);
        // A mixed stream settles strictly between the extremes.
        let mut m = AdaptiveBatch::new();
        for i in 0..64 {
            m.observe(if i % 2 == 0 { 1 } else { 16 }, 16);
        }
        let b = m.batch();
        assert!((AdaptiveBatch::MIN_BATCH..=AdaptiveBatch::MAX_BATCH).contains(&b));
    }

    #[test]
    fn split_front_takes_oldest() {
        let mut stack: VecDeque<WorkItem> = (0..6).map(item).collect();
        let batch = WorkBatch::split_front(&mut stack, 16);
        assert_eq!(batch.len(), 3);
        let vals: Vec<u64> = batch.iter().map(|i| i[0]).collect();
        assert_eq!(vals, vec![0, 1, 2], "front = oldest items");
        assert_eq!(stack.front().unwrap()[0], 3);
        assert_eq!(stack.back().unwrap()[0], 5, "victim stack order intact");
    }

    #[test]
    fn adopt_preserves_order() {
        let mut victim: VecDeque<WorkItem> = (0..8).map(item).collect();
        let batch = WorkBatch::split_front(&mut victim, 2);
        let mut thief: VecDeque<WorkItem> = VecDeque::new();
        batch.adopt_into(&mut thief);
        assert_eq!(thief.pop_back().unwrap()[0], 1, "newest of the batch first");
        assert_eq!(thief.pop_back().unwrap()[0], 0);
    }

    #[test]
    fn payload_bytes_counts_words() {
        let batch = WorkBatch::from_items(vec![item(1), item(2)]);
        assert_eq!(batch.payload_bytes(), 2 * 2 * 8);
    }

    #[test]
    fn chunk_bookkeeping_tracks_sources() {
        let mut batch = WorkBatch::default();
        assert_eq!(batch.chunks(), 0);
        batch.push_chunk(vec![item(1), item(2)]);
        batch.push_chunk(Vec::new()); // a dry pool contributes no chunk
        batch.push_chunk(vec![item(3)]);
        assert_eq!(batch.chunks(), 2);
        assert_eq!(batch.len(), 3);
        let vals: Vec<u64> = batch.iter().map(|i| i[0]).collect();
        assert_eq!(vals, vec![1, 2, 3], "chunks concatenate in order");

        assert_eq!(WorkBatch::from_items(vec![item(9)]).chunks(), 1);
        assert_eq!(WorkBatch::from_items(Vec::new()).chunks(), 0);
        let mut stack: VecDeque<WorkItem> = (0..4).map(item).collect();
        assert_eq!(WorkBatch::split_front(&mut stack, 8).chunks(), 1);
    }
}
