//! The steal-chunk transfer unit.
//!
//! Every victim in the system answers a steal with "the oldest half of my
//! work, capped" — those are the largest sub-problems, the ones worth the
//! transfer. Before this type existed the split arithmetic and the
//! front-drain were re-implemented at each victim site; worse, the PaCCS
//! agent kept its depth-first stack in a `Vec`, so handing over the *front*
//! memmoved the entire remaining stack on every steal. [`WorkBatch`] owns
//! both the policy and the mechanics, over a `VecDeque` whose front-range
//! removal is O(chunk), not O(stack).

use std::collections::VecDeque;

/// One relocatable work item: a fixed-size store image.
pub type WorkItem = Box<[u64]>;

/// A chunk of work items in transit from a victim to a thief, oldest
/// first.
///
/// A batch can carry work reserved from *several* victim pools — the
/// serving worker appends one chunk per co-located pool with
/// [`push_chunk`](WorkBatch::push_chunk) — so a single response (one
/// round trip) can deliver a whole node's surplus.
/// [`chunks`](WorkBatch::chunks) reports how many pools contributed.
#[derive(Debug, Default)]
pub struct WorkBatch {
    items: Vec<WorkItem>,
    /// Number of items contributed by each source pool, in append order.
    chunk_lens: Vec<usize>,
}

impl WorkBatch {
    /// The MaCS share policy: up to ⌈available/2⌉ items, capped.
    #[inline]
    pub fn share_ceil(available: u64, cap: u64) -> u64 {
        available.div_ceil(2).min(cap)
    }

    /// The PaCCS share policy: up to ⌊available/2⌋ items, capped — the
    /// victim always keeps at least one item, so it stays active.
    #[inline]
    pub fn share_floor(available: u64, cap: u64) -> u64 {
        (available / 2).min(cap)
    }

    /// Victim side, PaCCS policy: split the oldest ⌊len/2⌋ (≤ `cap`) items
    /// off the front of a depth-first work queue.
    pub fn split_front(stack: &mut VecDeque<WorkItem>, cap: usize) -> WorkBatch {
        let give = Self::share_floor(stack.len() as u64, cap as u64) as usize;
        Self::take_front(stack, give)
    }

    /// Take exactly `n` items (clamped to the queue length) off the front.
    pub fn take_front(stack: &mut VecDeque<WorkItem>, n: usize) -> WorkBatch {
        let n = n.min(stack.len());
        let items: Vec<WorkItem> = stack.drain(..n).collect();
        WorkBatch::from_items(items)
    }

    /// Build a batch from already-collected items (oldest first), as a
    /// single chunk.
    pub fn from_items(items: Vec<WorkItem>) -> WorkBatch {
        let chunk_lens = if items.is_empty() {
            Vec::new()
        } else {
            vec![items.len()]
        };
        WorkBatch { items, chunk_lens }
    }

    /// Append one further victim pool's chunk (batched responses: several
    /// pools' reservations travel in one reply).
    pub fn push_chunk(&mut self, items: impl IntoIterator<Item = WorkItem>) {
        let before = self.items.len();
        self.items.extend(items);
        let added = self.items.len() - before;
        if added > 0 {
            self.chunk_lens.push(added);
        }
    }

    /// How many victim pools contributed to this batch.
    pub fn chunks(&self) -> usize {
        self.chunk_lens.len()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Payload size on the wire (message-passing byte accounting).
    pub fn payload_bytes(&self) -> usize {
        self.items.iter().map(|i| i.len() * 8).sum()
    }

    /// Thief side: append the batch to the back of a depth-first queue.
    /// The next pop works on the newest of the stolen items, preserving
    /// the victim's exploration order within the batch.
    pub fn adopt_into(self, stack: &mut VecDeque<WorkItem>) {
        stack.extend(self.items);
    }

    /// Consume the batch into its items, oldest first.
    pub fn into_items(self) -> Vec<WorkItem> {
        self.items
    }

    pub fn iter(&self) -> impl Iterator<Item = &WorkItem> {
        self.items.iter()
    }
}

impl IntoIterator for WorkBatch {
    type Item = WorkItem;
    type IntoIter = std::vec::IntoIter<WorkItem>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(v: u64) -> WorkItem {
        vec![v; 2].into_boxed_slice()
    }

    #[test]
    fn share_policies() {
        assert_eq!(
            WorkBatch::share_floor(1, 8),
            0,
            "victim keeps its last item"
        );
        assert_eq!(WorkBatch::share_floor(7, 8), 3);
        assert_eq!(WorkBatch::share_floor(64, 8), 8, "cap applies");
        assert_eq!(WorkBatch::share_ceil(1, 8), 1);
        assert_eq!(WorkBatch::share_ceil(7, 8), 4);
        assert_eq!(WorkBatch::share_ceil(64, 8), 8);
    }

    #[test]
    fn split_front_takes_oldest() {
        let mut stack: VecDeque<WorkItem> = (0..6).map(item).collect();
        let batch = WorkBatch::split_front(&mut stack, 16);
        assert_eq!(batch.len(), 3);
        let vals: Vec<u64> = batch.iter().map(|i| i[0]).collect();
        assert_eq!(vals, vec![0, 1, 2], "front = oldest items");
        assert_eq!(stack.front().unwrap()[0], 3);
        assert_eq!(stack.back().unwrap()[0], 5, "victim stack order intact");
    }

    #[test]
    fn adopt_preserves_order() {
        let mut victim: VecDeque<WorkItem> = (0..8).map(item).collect();
        let batch = WorkBatch::split_front(&mut victim, 2);
        let mut thief: VecDeque<WorkItem> = VecDeque::new();
        batch.adopt_into(&mut thief);
        assert_eq!(thief.pop_back().unwrap()[0], 1, "newest of the batch first");
        assert_eq!(thief.pop_back().unwrap()[0], 0);
    }

    #[test]
    fn payload_bytes_counts_words() {
        let batch = WorkBatch::from_items(vec![item(1), item(2)]);
        assert_eq!(batch.payload_bytes(), 2 * 2 * 8);
    }

    #[test]
    fn chunk_bookkeeping_tracks_sources() {
        let mut batch = WorkBatch::default();
        assert_eq!(batch.chunks(), 0);
        batch.push_chunk(vec![item(1), item(2)]);
        batch.push_chunk(Vec::new()); // a dry pool contributes no chunk
        batch.push_chunk(vec![item(3)]);
        assert_eq!(batch.chunks(), 2);
        assert_eq!(batch.len(), 3);
        let vals: Vec<u64> = batch.iter().map(|i| i[0]).collect();
        assert_eq!(vals, vec![1, 2, 3], "chunks concatenate in order");

        assert_eq!(WorkBatch::from_items(vec![item(9)]).chunks(), 1);
        assert_eq!(WorkBatch::from_items(Vec::new()).chunks(), 0);
        let mut stack: VecDeque<WorkItem> = (0..4).map(item).collect();
        assert_eq!(WorkBatch::split_front(&mut stack, 8).chunks(), 1);
    }
}
