//! **The** node-processing search kernel of the workspace.
//!
//! The paper's central claim is that MaCS (PGAS work stealing) and PaCCS
//! (message passing) run the *same* constraint-solving kernel over
//! different communication substrates. This crate is that kernel, extracted
//! so it exists exactly once:
//!
//! * [`SearchKernel`] — the propagate → (solution | split) cycle over one
//!   relocatable store, with per-phase timing and an arena-backed child
//!   buffer ([`StoreSlab`]) that recycles store allocations on the hot
//!   path;
//! * [`IncumbentSource`] — where the branch-and-bound bound comes from:
//!   the GPI global cell for threaded MaCS, a controller-routed
//!   [`AtomicIncumbent`] for PaCCS, the virtual-time incumbent for the
//!   simulator, a [`LocalIncumbent`] for sequential oracles;
//! * [`bounds`] — *when* the bound reaches other workers: the
//!   [`BoundPolicy`] dissemination vocabulary (immediate / periodic /
//!   hierarchical) and the node-leader [`BroadcastTree`] the hierarchical
//!   policy routes over, shared by all three backends;
//! * [`SearchMode`] — whether a run explores the whole tree or races to
//!   the first solution (the winner flag then travels the same
//!   node-leader tree as a hierarchical bound update);
//! * [`WorkBatch`] — the steal-chunk transfer unit shared by every
//!   victim-side reply (threaded PaCCS, simulated MaCS/PaCCS) together
//!   with the half-split share policies;
//! * [`ChunkPolicy`] — *how much* one steal moves: a static cap, a
//!   distance-scaled reservation (small near, large far — matching how
//!   steal cost grows with topological distance), or the adaptive variant
//!   whose [`AdaptiveBatch`] also tunes the response batch online from
//!   reply thinness;
//! * [`baseline`] — the pre-refactor allocate-per-child step, kept only as
//!   the A/B reference for the arena micro-benchmark.
//!
//! Every execution path — `macs-core`'s `CpProcessor` (threaded and
//! simulated MaCS), `macs-paccs`'s agents, and the cross-solver tests —
//! drives [`SearchKernel::step`]; adding a propagator, a branching rule or
//! a new backend is a single-site change.
//!
//! # Worked example
//!
//! A depth-first drive of the kernel is a dozen lines — this is exactly
//! the loop every backend wraps in its own scheduling and communication:
//!
//! ```
//! use std::collections::VecDeque;
//! use macs_search::{LocalIncumbent, SearchKernel, StepOutcome, WorkItem};
//!
//! // x, y ∈ 0..=2, x ≠ y — six solutions.
//! let mut m = macs_engine::Model::new("pair");
//! let x = m.new_var(0, 2);
//! let y = m.new_var(0, 2);
//! m.post(macs_engine::Propag::NeqOffset { x, y, c: 0 });
//! let prob = m.compile();
//!
//! let mut kernel = SearchKernel::new(&prob);
//! let inc = LocalIncumbent::new(); // any IncumbentSource
//! let mut stack: VecDeque<WorkItem> = VecDeque::new();
//! stack.push_back(kernel.alloc_root());
//! let mut solutions = 0;
//! while let Some(mut store) = stack.pop_back() {
//!     match kernel.step(&mut store, &inc) {
//!         StepOutcome::Failed => {}
//!         StepOutcome::Solution(_) => solutions += 1,
//!         StepOutcome::Children(_) => kernel.push_children(&mut stack),
//!     }
//!     kernel.recycle(store); // arena-recycled, no steady-state allocation
//! }
//! assert_eq!(solutions, 6);
//! ```

pub mod arena;
pub mod baseline;
pub mod batch;
pub mod bounds;
pub mod incumbent;
pub mod kernel;
pub mod mode;

pub use arena::StoreSlab;
pub use batch::{AdaptiveBatch, ChunkPolicy, WorkBatch, WorkItem};
pub use bounds::{BoundFanout, BoundPath, BoundPolicy, BroadcastTree, RefreshGate};
pub use incumbent::{AtomicIncumbent, IncumbentSource, LocalIncumbent, NoBound};
pub use kernel::{KernelTimers, SearchKernel, SolutionReport, StepOutcome};
pub use mode::{RaceRing, SearchMode};
