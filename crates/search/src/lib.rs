//! **The** node-processing search kernel of the workspace.
//!
//! The paper's central claim is that MaCS (PGAS work stealing) and PaCCS
//! (message passing) run the *same* constraint-solving kernel over
//! different communication substrates. This crate is that kernel, extracted
//! so it exists exactly once:
//!
//! * [`SearchKernel`] — the propagate → (solution | split) cycle over one
//!   relocatable store, with per-phase timing and an arena-backed child
//!   buffer ([`StoreSlab`]) that recycles store allocations on the hot
//!   path;
//! * [`IncumbentSource`] — where the branch-and-bound bound comes from:
//!   the GPI global cell for threaded MaCS, a controller-routed
//!   [`AtomicIncumbent`] for PaCCS, the virtual-time incumbent for the
//!   simulator, a [`LocalIncumbent`] for sequential oracles;
//! * [`WorkBatch`] — the steal-chunk transfer unit shared by every
//!   victim-side reply (threaded PaCCS, simulated MaCS/PaCCS) together
//!   with the half-split share policies;
//! * [`baseline`] — the pre-refactor allocate-per-child step, kept only as
//!   the A/B reference for the arena micro-benchmark.
//!
//! Every execution path — `macs-core`'s `CpProcessor` (threaded and
//! simulated MaCS), `macs-paccs`'s agents, and the cross-solver tests —
//! drives [`SearchKernel::step`]; adding a propagator, a branching rule or
//! a new backend is a single-site change.

pub mod arena;
pub mod baseline;
pub mod batch;
pub mod incumbent;
pub mod kernel;

pub use arena::StoreSlab;
pub use batch::{WorkBatch, WorkItem};
pub use incumbent::{AtomicIncumbent, IncumbentSource, LocalIncumbent, NoBound};
pub use kernel::{KernelTimers, SearchKernel, SolutionReport, StepOutcome};
