//! Bound-dissemination policies and the node-leader broadcast tree.
//!
//! A branch-and-bound incumbent improvement is only useful once other
//! workers *see* it — and on a hierarchical machine, "seeing it" has a
//! per-level price. This module owns the policy vocabulary shared by every
//! backend and the topology-derived broadcast structure they implement it
//! with:
//!
//! * [`BoundPolicy`] — *when* a worker learns of an improvement:
//!   eagerly ([`Immediate`](BoundPolicy::Immediate)), on a refresh cadence
//!   ([`Periodic`](BoundPolicy::Periodic)), or along the machine's level
//!   structure ([`Hierarchical`](BoundPolicy::Hierarchical));
//! * [`BroadcastTree`] — *how* the hierarchical variant routes a value:
//!   the publishing worker hands it to its **node leader** (the first
//!   worker of its shared-memory node), leaders exchange it across the
//!   `node_prefix` boundary ring by ring
//!   (`MachineTopology::node_rings`), and each leader fans it out to its
//!   node's workers through shared memory;
//! * [`BoundPath`] / [`BoundFanout`] — the hop profile of one delivery
//!   and the message bill of one improvement, in *topology units* (level
//!   crossings and fabric ring ranks). Pricing them in nanoseconds is the
//!   executor's job (the simulator's `CostModel`); counting them is the
//!   same everywhere.
//!
//! # The three policies, concretely
//!
//! | policy | freshness | fabric messages per improvement |
//! |---|---|---|
//! | `Immediate` | every `bound()` sees the newest value after one flat hop | one per off-node worker (eager broadcast) |
//! | `Periodic { every }` | cached; refreshed every `every` processed nodes | 1 write-through, plus 1 per off-node refresh (pull) |
//! | `Hierarchical` | per-level delay: near workers learn before far ones | one per remote node **leader** (`nodes − 1`) |
//!
//! On the paper's 512-core testbed shape (128 nodes × 4 cores) an
//! `Immediate` improvement costs 508 fabric messages; `Hierarchical`
//! costs 127 — the per-level delay it introduces in exchange is exactly
//! what the `bound_ablation` harness measures in wasted (stale-bound)
//! node expansions.

use std::cell::Cell;
use std::fmt;
use std::str::FromStr;

use macs_topo::MachineTopology;

/// How branch-and-bound incumbent improvements reach other workers.
///
/// Every backend (threaded GPI cells, PaCCS controller relay, simulator
/// timeline) interprets the same three variants; only the final optimum is
/// policy-invariant — the tree size and the message volume are not, which
/// is the trade the paper's §VI discussion asks about.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BoundPolicy {
    /// Read the freshest global value before every node; eager flat
    /// broadcast on improvement. Exact, and the most fabric traffic.
    #[default]
    Immediate,
    /// Work from a cached value, refreshed every `every` processed nodes.
    /// Cheap, but every worker may prune on a bound up to `every` nodes
    /// stale.
    Periodic {
        /// Refresh cadence in processed nodes (clamped to ≥ 1).
        every: u32,
    },
    /// Route improvements over the node-leader broadcast tree derived
    /// from the machine topology (see [`BroadcastTree`]): publish to the
    /// node leader, leader exchange across the `node_prefix` boundary,
    /// shared-memory fan-out inside each node. Staleness grows with
    /// topological distance instead of being uniform.
    Hierarchical,
}

impl BoundPolicy {
    /// The canonical sweep order for ablation harnesses.
    pub const ALL: [BoundPolicy; 3] = [
        BoundPolicy::Immediate,
        BoundPolicy::Periodic { every: 32 },
        BoundPolicy::Hierarchical,
    ];
}

impl fmt::Display for BoundPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundPolicy::Immediate => write!(f, "immediate"),
            BoundPolicy::Periodic { every } => write!(f, "periodic:{every}"),
            BoundPolicy::Hierarchical => write!(f, "hierarchical"),
        }
    }
}

impl FromStr for BoundPolicy {
    type Err = String;

    /// Parse `immediate`, `periodic[:k]` (default `k` = 32) or
    /// `hierarchical` — the `--bound-policy` argument of the bench bins.
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "immediate" => Ok(BoundPolicy::Immediate),
            "hierarchical" => Ok(BoundPolicy::Hierarchical),
            "periodic" => Ok(BoundPolicy::Periodic { every: 32 }),
            _ => match s.strip_prefix("periodic:") {
                Some(k) => {
                    let every: u32 = k.parse().map_err(|e| {
                        format!("bad periodic cadence {k:?} in bound policy {s:?}: {e}")
                    })?;
                    Ok(BoundPolicy::Periodic {
                        every: every.max(1),
                    })
                }
                None => Err(format!(
                    "unknown bound policy {s:?} (expected immediate, periodic[:k] \
                     or hierarchical)"
                )),
            },
        }
    }
}

/// Countdown gate for cached-read cadences — the `Periodic` refresh and
/// the hierarchical leader's mirror refresh. [`due`](RefreshGate::due)
/// returns `true` on the first call and then once every `every` calls, so
/// every backend shares one cadence semantics instead of hand-rolling the
/// countdown (and drifting by one, as copies do).
#[derive(Debug, Default)]
pub struct RefreshGate(Cell<u32>);

impl RefreshGate {
    pub fn new() -> Self {
        RefreshGate(Cell::new(0))
    }

    /// Should the caller refresh now? `true` once every `every` calls
    /// (`every` is clamped to ≥ 1; every call refreshes at 1).
    pub fn due(&self, every: u32) -> bool {
        let c = self.0.get();
        if c == 0 {
            self.0.set(every.max(1) - 1);
            true
        } else {
            self.0.set(c - 1);
            false
        }
    }
}

/// Hop profile of one bound delivery, in topology units. An executor
/// prices it: each intra-node hop is a coherence/level crossing
/// (`cross_level_ns`-class), the fabric hop — if any — is a
/// leader-to-leader message `fabric_ring` remote rings out
/// (`remote_latency × level_hop_factor^(ring−1)`-class).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundPath {
    /// Intra-node level crossings on the path (origin → leader plus
    /// leader → destination for cross-node deliveries; the direct
    /// shared-memory distance inside one node).
    pub intra_hops: usize,
    /// Remote ring rank of the leader-to-leader hop (`0` = no fabric hop,
    /// `1` = nearest remote ring).
    pub fabric_ring: usize,
}

/// The message bill of broadcasting one improvement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundFanout {
    /// Messages that cross the interconnect (the scalability-relevant
    /// volume the ablation harness reports).
    pub fabric_msgs: u64,
    /// Shared-memory deliveries (publish hop + per-node fan-out).
    pub intra_msgs: u64,
}

/// The node-leader broadcast tree of a [`MachineTopology`].
///
/// Each shared-memory node's **leader** is its first worker (the node is a
/// contiguous ID range, so `leader = node × node_size`). A worker that
/// improves the incumbent publishes to its leader through shared memory;
/// the leader exchanges the value with every other leader across the
/// `node_prefix` boundary, walking `MachineTopology::node_rings` nearest
/// ring first; each receiving leader fans out to its node's workers. The
/// value therefore reaches a destination after
/// [`path`](BroadcastTree::path) hops — more level crossings the further
/// the destination, which is what makes delivery delay grow with
/// [`MachineTopology::distance`].
#[derive(Clone, Debug)]
pub struct BroadcastTree {
    topo: MachineTopology,
}

impl BroadcastTree {
    pub fn new(topo: &MachineTopology) -> Self {
        BroadcastTree { topo: topo.clone() }
    }

    /// The machine this tree is derived from.
    pub fn topology(&self) -> &MachineTopology {
        &self.topo
    }

    /// The leader (first worker) of `w`'s shared-memory node.
    #[inline]
    pub fn leader_of(&self, w: usize) -> usize {
        self.topo.peers_of(w).start
    }

    /// Is `w` its node's leader?
    #[inline]
    pub fn is_leader(&self, w: usize) -> bool {
        self.leader_of(w) == w
    }

    /// Hop profile of a delivery spanning topological distance `d`
    /// (`0 ≤ d ≤ levels`). A function of the distance alone, so delivery
    /// delay is monotone in `distance()` under any monotone pricing:
    ///
    /// * `d = 0` — the submitter itself: no hops;
    /// * `d ≤ local_distance_max` — same node: `d` shared-memory level
    ///   crossings, no fabric hop;
    /// * otherwise — up to the origin's leader and down from the
    ///   destination's (`2 × local_distance_max` intra hops) around one
    ///   leader-to-leader fabric hop at ring `d − local_distance_max`.
    pub fn path_by_distance(&self, d: usize) -> BoundPath {
        debug_assert!(d <= self.topo.levels());
        let local = self.topo.local_distance_max();
        if d == 0 {
            BoundPath {
                intra_hops: 0,
                fabric_ring: 0,
            }
        } else if d <= local {
            BoundPath {
                intra_hops: d,
                fabric_ring: 0,
            }
        } else {
            BoundPath {
                intra_hops: 2 * local,
                fabric_ring: d - local,
            }
        }
    }

    /// Hop profile of a bound travelling from `origin` to `dest`.
    pub fn path(&self, origin: usize, dest: usize) -> BoundPath {
        self.path_by_distance(self.topo.distance(origin, dest))
    }

    /// Message bill of one hierarchical broadcast from `origin`: one
    /// fabric message per remote node leader (the per-ring sum over
    /// `node_rings`, i.e. `nodes − 1`) and one shared-memory delivery per
    /// non-originating worker inside each node.
    pub fn hierarchical_fanout(&self, origin: usize) -> BoundFanout {
        let fabric: u64 = self
            .topo
            .node_rings(self.leader_of(origin))
            .iter()
            .map(|ring| ring.len() as u64)
            .sum();
        let per_node = self.topo.node_size() as u64 - 1;
        BoundFanout {
            fabric_msgs: fabric,
            intra_msgs: self.topo.nodes() as u64 * per_node,
        }
    }

    /// Message bill of the flat eager broadcast (the `Immediate` pole):
    /// one direct message per other worker, fabric for everyone off the
    /// origin's node.
    pub fn eager_fanout(&self, origin: usize) -> BoundFanout {
        let total = self.topo.total_workers() as u64;
        let node = self.topo.peers_of(origin).len() as u64;
        BoundFanout {
            fabric_msgs: total - node,
            intra_msgs: node - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parsing_round_trips() {
        for p in BoundPolicy::ALL {
            assert_eq!(p.to_string().parse::<BoundPolicy>().unwrap(), p);
        }
        assert_eq!(
            "periodic".parse::<BoundPolicy>().unwrap(),
            BoundPolicy::Periodic { every: 32 }
        );
        assert_eq!(
            "periodic:7".parse::<BoundPolicy>().unwrap(),
            BoundPolicy::Periodic { every: 7 }
        );
        assert_eq!(
            "periodic:0".parse::<BoundPolicy>().unwrap(),
            BoundPolicy::Periodic { every: 1 },
            "zero cadence clamps to 1"
        );
        for bad in ["", "eager", "periodic:", "periodic:x", "Immediate"] {
            assert!(
                bad.parse::<BoundPolicy>().is_err(),
                "{bad:?} must not parse"
            );
        }
    }

    #[test]
    fn refresh_gate_fires_every_n_calls() {
        let g = RefreshGate::new();
        let fired: Vec<bool> = (0..9).map(|_| g.due(3)).collect();
        assert_eq!(
            fired,
            [true, false, false, true, false, false, true, false, false]
        );
        let g = RefreshGate::new();
        assert!((0..5).all(|_| g.due(1)), "cadence 1 refreshes every call");
        let g = RefreshGate::new();
        assert!(g.due(0), "zero clamps to 1");
        assert!(g.due(0));
    }

    #[test]
    fn leaders_are_first_workers_of_their_node() {
        let topo = MachineTopology::try_new(&[2, 2, 2], 1).unwrap(); // 2 nodes of 4
        let tree = BroadcastTree::new(&topo);
        for w in 0..topo.total_workers() {
            let leader = tree.leader_of(w);
            assert_eq!(topo.node_of(leader), topo.node_of(w));
            assert_eq!(leader % topo.node_size(), 0);
            assert_eq!(tree.is_leader(w), w == leader);
        }
    }

    #[test]
    fn paths_grow_with_distance() {
        // [clusters, nodes, sockets, cores] with node boundary at 2:
        // distances 1–2 intra-node, 3–4 over the fabric.
        let topo = MachineTopology::try_new(&[2, 2, 2, 2], 2).unwrap();
        let tree = BroadcastTree::new(&topo);
        assert_eq!(
            tree.path_by_distance(0),
            BoundPath {
                intra_hops: 0,
                fabric_ring: 0
            }
        );
        assert_eq!(
            tree.path_by_distance(2),
            BoundPath {
                intra_hops: 2,
                fabric_ring: 0
            }
        );
        assert_eq!(
            tree.path_by_distance(3),
            BoundPath {
                intra_hops: 4,
                fabric_ring: 1
            }
        );
        assert_eq!(
            tree.path_by_distance(4),
            BoundPath {
                intra_hops: 4,
                fabric_ring: 2
            }
        );
        assert_eq!(tree.path(0, 1).fabric_ring, 0, "same socket");
        assert_eq!(tree.path(0, 15).fabric_ring, 2, "other cluster");
    }

    #[test]
    fn hierarchical_fanout_beats_eager_on_clusters() {
        // The paper's testbed class: 128 nodes × 4 cores.
        let topo = MachineTopology::try_clustered(512, 4).unwrap();
        let tree = BroadcastTree::new(&topo);
        let h = tree.hierarchical_fanout(5);
        let e = tree.eager_fanout(5);
        assert_eq!(h.fabric_msgs, 127, "one message per remote leader");
        assert_eq!(e.fabric_msgs, 508, "one message per remote worker");
        assert_eq!(h.intra_msgs, 128 * 3);
        assert_eq!(e.intra_msgs, 3);
    }

    #[test]
    fn flat_machine_has_no_fabric_fanout() {
        let topo = MachineTopology::flat(8);
        let tree = BroadcastTree::new(&topo);
        let h = tree.hierarchical_fanout(0);
        assert_eq!(h.fabric_msgs, 0);
        assert_eq!(h.intra_msgs, 7);
        assert_eq!(tree.eager_fanout(0).fabric_msgs, 0);
        assert_eq!(tree.path(0, 7).fabric_ring, 0);
    }
}
