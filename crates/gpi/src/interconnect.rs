//! The DMA interconnect: latency/bandwidth model and traffic accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Cost model for crossing the interconnect. All costs in nanoseconds.
///
/// Remote operations *spin* for their modelled duration on the calling
/// worker, so wall-clock measurements of the solver exhibit the local vs.
/// remote asymmetry that shapes MaCS' hierarchical design. The default is
/// free (zero cost) so functional tests run at full speed; benchmarks use
/// [`LatencyModel::infiniband_ddr`], calibrated to the paper's testbed
/// class (InfiniBand DDR, ~2 µs small-message latency, ~1.5 GB/s).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// One-sided remote read: base latency.
    pub read_base_ns: u64,
    /// One-sided remote write: base latency charged to the poster when the
    /// write is synchronous (see `post_overhead_ns` for queued writes).
    pub write_base_ns: u64,
    /// Per-byte transfer cost (inverse bandwidth), in picoseconds to keep
    /// integer precision: 1000 ps/B ≙ 1 GB/s.
    pub byte_ps: u64,
    /// Remote atomic (CAS / fetch-add) round trip.
    pub atomic_ns: u64,
    /// CPU cost of posting a non-blocking operation to the queue (the DMA
    /// engine does the rest — this is all a queued one-sided write costs
    /// its poster).
    pub post_overhead_ns: u64,
}

impl LatencyModel {
    /// Free interconnect: every remote operation costs nothing (functional
    /// testing).
    pub const fn zero() -> Self {
        LatencyModel {
            read_base_ns: 0,
            write_base_ns: 0,
            byte_ps: 0,
            atomic_ns: 0,
            post_overhead_ns: 0,
        }
    }

    /// InfiniBand DDR-class interconnect (the paper's testbed fabric).
    pub const fn infiniband_ddr() -> Self {
        LatencyModel {
            read_base_ns: 2_000,
            write_base_ns: 1_500,
            byte_ps: 667, // ≈ 1.5 GB/s
            atomic_ns: 2_500,
            post_overhead_ns: 150,
        }
    }

    /// A deliberately slow fabric for stress-testing overlap and the
    /// dynamic polling policy.
    pub const fn slow_ethernet() -> Self {
        LatencyModel {
            read_base_ns: 30_000,
            write_base_ns: 25_000,
            byte_ps: 8_000,
            atomic_ns: 35_000,
            post_overhead_ns: 400,
        }
    }

    #[inline]
    fn transfer_ns(&self, bytes: usize) -> u64 {
        (self.byte_ps.saturating_mul(bytes as u64)) / 1000
    }

    #[inline]
    pub fn read_cost(&self, bytes: usize) -> Duration {
        Duration::from_nanos(self.read_base_ns + self.transfer_ns(bytes))
    }

    #[inline]
    pub fn write_cost(&self, bytes: usize) -> Duration {
        Duration::from_nanos(self.write_base_ns + self.transfer_ns(bytes))
    }

    #[inline]
    pub fn atomic_cost(&self) -> Duration {
        Duration::from_nanos(self.atomic_ns)
    }

    #[inline]
    pub fn post_cost(&self) -> Duration {
        Duration::from_nanos(self.post_overhead_ns)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::zero()
    }
}

/// Aggregate traffic counters (whole-run totals, relaxed).
#[derive(Debug, Default)]
pub struct TrafficCounters {
    pub remote_reads: AtomicU64,
    pub remote_writes: AtomicU64,
    pub remote_atomics: AtomicU64,
    pub bytes_read: AtomicU64,
    pub bytes_written: AtomicU64,
}

impl TrafficCounters {
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            remote_reads: self.remote_reads.load(Ordering::Relaxed),
            remote_writes: self.remote_writes.load(Ordering::Relaxed),
            remote_atomics: self.remote_atomics.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`TrafficCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficSnapshot {
    pub remote_reads: u64,
    pub remote_writes: u64,
    pub remote_atomics: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
}

/// The interconnect: charges modelled latencies and counts traffic.
#[derive(Debug, Default)]
pub struct Interconnect {
    pub model: LatencyModel,
    pub counters: TrafficCounters,
}

/// Busy-wait for `d` (sub-scheduler-tick delays cannot sleep).
#[inline]
fn spin_for(d: Duration) {
    if d.is_zero() {
        return;
    }
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

impl Interconnect {
    pub fn new(model: LatencyModel) -> Self {
        Interconnect {
            model,
            counters: TrafficCounters::default(),
        }
    }

    /// Charge a one-sided remote read of `bytes`.
    #[inline]
    pub fn charge_read(&self, bytes: usize) {
        self.counters.remote_reads.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_read
            .fetch_add(bytes as u64, Ordering::Relaxed);
        spin_for(self.model.read_cost(bytes));
    }

    /// Charge a synchronous one-sided remote write of `bytes`.
    #[inline]
    pub fn charge_write(&self, bytes: usize) {
        self.counters.remote_writes.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_written
            .fetch_add(bytes as u64, Ordering::Relaxed);
        spin_for(self.model.write_cost(bytes));
    }

    /// Charge a *queued* (non-blocking) one-sided write: the poster pays
    /// only the posting overhead; the DMA engine moves the data. Counted as
    /// a remote write for traffic purposes.
    #[inline]
    pub fn charge_queued_write(&self, bytes: usize) {
        self.counters.remote_writes.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_written
            .fetch_add(bytes as u64, Ordering::Relaxed);
        spin_for(self.model.post_cost());
    }

    /// Charge a remote atomic round trip.
    #[inline]
    pub fn charge_atomic(&self) {
        self.counters.remote_atomics.fetch_add(1, Ordering::Relaxed);
        spin_for(self.model.atomic_cost());
    }

    /// Spin until at least one read round-trip has elapsed since `since`
    /// (used by a thief waiting for a steal response, so the response can
    /// never appear faster than the fabric allows).
    #[inline]
    pub fn enforce_rtt_floor(&self, since: Instant, bytes: usize) {
        let floor = self.model.read_cost(bytes);
        let elapsed = since.elapsed();
        if elapsed < floor {
            spin_for(floor - elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_free_and_counts() {
        let ic = Interconnect::new(LatencyModel::zero());
        let t = Instant::now();
        for _ in 0..1000 {
            ic.charge_read(64);
            ic.charge_write(64);
            ic.charge_atomic();
        }
        assert!(t.elapsed() < Duration::from_millis(50));
        let s = ic.counters.snapshot();
        assert_eq!(s.remote_reads, 1000);
        assert_eq!(s.remote_writes, 1000);
        assert_eq!(s.remote_atomics, 1000);
        assert_eq!(s.bytes_read, 64_000);
    }

    #[test]
    fn latency_is_actually_charged() {
        let ic = Interconnect::new(LatencyModel {
            read_base_ns: 200_000,
            ..LatencyModel::zero()
        });
        let t = Instant::now();
        ic.charge_read(8);
        assert!(t.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn bandwidth_term_scales_with_bytes() {
        let m = LatencyModel {
            byte_ps: 1000, // 1 GB/s
            ..LatencyModel::zero()
        };
        assert_eq!(m.read_cost(1024), Duration::from_nanos(1024));
        assert_eq!(m.write_cost(0), Duration::from_nanos(0));
    }

    #[test]
    fn queued_write_charges_only_post_overhead() {
        let ic = Interconnect::new(LatencyModel {
            write_base_ns: 1_000_000,
            post_overhead_ns: 0,
            ..LatencyModel::zero()
        });
        let t = Instant::now();
        ic.charge_queued_write(4096);
        assert!(t.elapsed() < Duration::from_millis(100));
        assert_eq!(ic.counters.snapshot().bytes_written, 4096);
    }

    #[test]
    fn rtt_floor_waits_remaining_time() {
        let ic = Interconnect::new(LatencyModel {
            read_base_ns: 150_000,
            ..LatencyModel::zero()
        });
        let t0 = Instant::now();
        ic.enforce_rtt_floor(t0, 8);
        assert!(t0.elapsed() >= Duration::from_micros(150));
        // Already elapsed: no extra wait.
        let t1 = Instant::now() - Duration::from_millis(1);
        let before = Instant::now();
        ic.enforce_rtt_floor(t1, 8);
        assert!(before.elapsed() < Duration::from_micros(150));
    }
}
