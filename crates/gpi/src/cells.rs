//! A small register file in global memory.

use crate::interconnect::Interconnect;
use crate::segment::Segment;

/// Well-known registers shared by every worker of a run: the outstanding-
/// work counter for termination detection, the branch-and-bound incumbent,
/// and whatever else a computation needs. Conceptually these live in the
/// global-memory partition of node 0; workers on other nodes reach them
/// with remote atomics.
#[derive(Debug)]
pub struct GlobalCells {
    seg: Segment,
}

/// Register index of the termination (outstanding work) counter.
pub const CELL_OUTSTANDING: usize = 0;
/// Register index of the branch-and-bound incumbent (i64, `i64::MAX` = none).
pub const CELL_INCUMBENT: usize = 1;
/// Register index of the global solution counter.
pub const CELL_SOLUTIONS: usize = 2;
/// Register index of the cooperative-cancellation flag (non-zero = every
/// worker should discard its remaining work and terminate). In a
/// first-solution race this is the root *winner flag*.
pub const CELL_CANCEL: usize = 3;
/// Register index of the winner timestamp (i64 nanoseconds since the run
/// start, `i64::MAX` = no winner yet; the first winner `fetch_min`s its
/// time in, so concurrent solutions resolve to the earliest).
pub const CELL_WIN_NS: usize = 4;
/// First register index free for application use.
pub const CELL_USER: usize = 8;
/// Base of the per-node bound-mirror block (hierarchical bound
/// dissemination): register `CELL_NODE_BOUND_BASE + n` caches the global
/// incumbent for shared-memory node `n`. Conceptually each mirror lives in
/// node `n`'s own global-memory partition, so workers on `n` read it
/// locally while only the node leader pays the fabric to refresh it from
/// [`CELL_INCUMBENT`]. Size the register file with
/// [`GlobalCells::with_node_mirrors`].
pub const CELL_NODE_BOUND_BASE: usize = CELL_USER;

/// Register holding node `n`'s mirror of the incumbent.
#[inline]
pub const fn node_bound_cell(node: usize) -> usize {
    CELL_NODE_BOUND_BASE + node
}

/// Register holding node `n`'s mirror of the cancellation/winner flag
/// (first-solution races). The mirror block sits directly after the bound
/// mirrors, so its base depends on the machine's node count: like the
/// bound mirrors, each flag conceptually lives in node `n`'s own
/// partition — workers poll it with a local load, and only the node
/// leader pays the fabric to refresh it from [`CELL_CANCEL`].
#[inline]
pub const fn node_cancel_cell(node: usize, nodes: usize) -> usize {
    CELL_NODE_BOUND_BASE + nodes + node
}

impl GlobalCells {
    pub fn new(count: usize) -> Self {
        let seg = Segment::new(count.max(CELL_USER));
        GlobalCells { seg }
    }

    /// A register file of at least `min_cells` registers with one bound
    /// mirror and one cancel/winner mirror per shared-memory node, the
    /// bound cells (root and mirrors) initialised to "no incumbent"
    /// (`i64::MAX`), the winner cells to "no winner". This is how
    /// [`World`](crate::World) sizes its cells.
    pub fn with_node_mirrors(nodes: usize, min_cells: usize) -> Self {
        let cells = GlobalCells::new(min_cells.max(CELL_NODE_BOUND_BASE + 2 * nodes));
        cells.store_i64(CELL_INCUMBENT, i64::MAX);
        cells.store_i64(CELL_WIN_NS, i64::MAX);
        for n in 0..nodes {
            cells.store_i64(node_bound_cell(n), i64::MAX);
            cells.store(node_cancel_cell(n, nodes), 0);
        }
        cells
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.seg.len()
    }

    pub fn is_empty(&self) -> bool {
        self.seg.is_empty()
    }

    #[inline]
    pub fn load(&self, idx: usize) -> u64 {
        self.seg.load_notify(idx)
    }

    #[inline]
    pub fn store(&self, idx: usize, v: u64) {
        self.seg.store_notify(idx, v)
    }

    #[inline]
    pub fn load_i64(&self, idx: usize) -> i64 {
        self.seg.load_notify(idx) as i64
    }

    #[inline]
    pub fn store_i64(&self, idx: usize, v: i64) {
        self.seg.store_notify(idx, v as u64)
    }

    #[inline]
    pub fn fetch_add_i64(&self, idx: usize, delta: i64) -> i64 {
        self.seg.fetch_add_i64(idx, delta)
    }

    #[inline]
    pub fn fetch_add(&self, idx: usize, delta: u64) -> u64 {
        self.seg.fetch_add(idx, delta)
    }

    #[inline]
    pub fn fetch_min_i64(&self, idx: usize, v: i64) -> i64 {
        self.seg.fetch_min_i64(idx, v)
    }

    // Remote flavours: same operation, charged against the interconnect.

    #[inline]
    pub fn load_i64_remote(&self, ic: &Interconnect, idx: usize) -> i64 {
        ic.charge_read(8);
        self.load_i64(idx)
    }

    #[inline]
    pub fn fetch_add_i64_remote(&self, ic: &Interconnect, idx: usize, delta: i64) -> i64 {
        ic.charge_atomic();
        self.fetch_add_i64(idx, delta)
    }

    #[inline]
    pub fn fetch_min_i64_remote(&self, ic: &Interconnect, idx: usize, v: i64) -> i64 {
        ic.charge_atomic();
        self.fetch_min_i64(idx, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interconnect::LatencyModel;

    #[test]
    fn minimum_size_covers_reserved_cells() {
        let c = GlobalCells::new(0);
        assert!(c.len() >= CELL_USER);
    }

    #[test]
    fn node_mirrors_start_empty() {
        let c = GlobalCells::with_node_mirrors(3, 0);
        assert!(c.len() > node_cancel_cell(2, 3));
        assert_eq!(c.load_i64(CELL_INCUMBENT), i64::MAX);
        assert_eq!(c.load_i64(CELL_WIN_NS), i64::MAX);
        for n in 0..3 {
            assert_eq!(c.load_i64(node_bound_cell(n)), i64::MAX);
            assert_eq!(c.load(node_cancel_cell(n, 3)), 0);
        }
        assert!(GlobalCells::with_node_mirrors(1, 32).len() >= 32);
    }

    #[test]
    fn cancel_mirror_block_follows_bound_block() {
        // The two mirror blocks must never overlap, whatever the node
        // count.
        for nodes in 1..=5 {
            assert_eq!(node_cancel_cell(0, nodes), node_bound_cell(nodes - 1) + 1);
        }
    }

    #[test]
    fn signed_round_trip() {
        let c = GlobalCells::new(16);
        c.store_i64(CELL_INCUMBENT, i64::MAX);
        assert_eq!(c.load_i64(CELL_INCUMBENT), i64::MAX);
        c.fetch_min_i64(CELL_INCUMBENT, 123);
        assert_eq!(c.load_i64(CELL_INCUMBENT), 123);
        c.fetch_add_i64(CELL_OUTSTANDING, 5);
        c.fetch_add_i64(CELL_OUTSTANDING, -3);
        assert_eq!(c.load_i64(CELL_OUTSTANDING), 2);
    }

    #[test]
    fn remote_flavours_charge() {
        let c = GlobalCells::new(16);
        let ic = Interconnect::new(LatencyModel::zero());
        c.fetch_add_i64_remote(&ic, CELL_OUTSTANDING, 1);
        c.load_i64_remote(&ic, CELL_OUTSTANDING);
        c.fetch_min_i64_remote(&ic, CELL_INCUMBENT, 1);
        let s = ic.counters.snapshot();
        assert_eq!(s.remote_atomics, 2);
        assert_eq!(s.remote_reads, 1);
    }
}
