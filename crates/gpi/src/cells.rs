//! A small register file in global memory.

use crate::interconnect::Interconnect;
use crate::segment::Segment;

/// Well-known registers shared by every worker of a run: the outstanding-
/// work counter for termination detection, the branch-and-bound incumbent,
/// and whatever else a computation needs. Conceptually these live in the
/// global-memory partition of node 0; workers on other nodes reach them
/// with remote atomics.
#[derive(Debug)]
pub struct GlobalCells {
    seg: Segment,
}

/// Register index of the termination (outstanding work) counter.
pub const CELL_OUTSTANDING: usize = 0;
/// Register index of the branch-and-bound incumbent (i64, `i64::MAX` = none).
pub const CELL_INCUMBENT: usize = 1;
/// Register index of the global solution counter.
pub const CELL_SOLUTIONS: usize = 2;
/// Register index of the cooperative-cancellation flag (non-zero = every
/// worker should discard its remaining work and terminate). In a
/// first-solution race this is the root *winner flag*.
pub const CELL_CANCEL: usize = 3;
/// Register index of the winner timestamp (i64 nanoseconds since the run
/// start, `i64::MAX` = no winner yet; the first winner `fetch_min`s its
/// time in, so concurrent solutions resolve to the earliest).
pub const CELL_WIN_NS: usize = 4;
/// Register index of the worker-set *lease width* (multi-tenant service
/// runs): the number of workers — counted in the job's own dense worker
/// ids — currently leased to this computation. A worker whose id is `>=`
/// the width is **parked**: it stops expanding and stealing, publishes its
/// pool and serves thieves until the width grows back over it or the job
/// terminates. Single-tenant worlds never read this register.
pub const CELL_LEASE: usize = 5;
/// Register index of the parked-worker count (multi-tenant service runs):
/// a worker increments it when it parks (see [`CELL_LEASE`]) and
/// decrements it when the lease grows back over its id or the run ends.
/// The scheduler reads it as the shrink handshake — a lease shrink has
/// *taken effect* once this register reaches the number of out-of-lease
/// workers, i.e. once they have all published their pools and stopped
/// processing. Single-tenant worlds never touch this register.
pub const CELL_PARKED: usize = 6;
/// First register index free for application use.
pub const CELL_USER: usize = 8;
/// Base of the per-node bound-mirror block (hierarchical bound
/// dissemination): register `CELL_NODE_BOUND_BASE + n` caches the global
/// incumbent for shared-memory node `n`. Conceptually each mirror lives in
/// node `n`'s own global-memory partition, so workers on `n` read it
/// locally while only the node leader pays the fabric to refresh it from
/// [`CELL_INCUMBENT`]. Size the register file with
/// [`GlobalCells::with_node_mirrors`].
pub const CELL_NODE_BOUND_BASE: usize = CELL_USER;

/// Register holding node `n`'s mirror of the incumbent.
#[inline]
pub const fn node_bound_cell(node: usize) -> usize {
    CELL_NODE_BOUND_BASE + node
}

/// Register holding node `n`'s mirror of the cancellation/winner flag
/// (first-solution races). The mirror block sits directly after the bound
/// mirrors, so its base depends on the machine's node count: like the
/// bound mirrors, each flag conceptually lives in node `n`'s own
/// partition — workers poll it with a local load, and only the node
/// leader pays the fabric to refresh it from [`CELL_CANCEL`].
#[inline]
pub const fn node_cancel_cell(node: usize, nodes: usize) -> usize {
    CELL_NODE_BOUND_BASE + nodes + node
}

/// One job's window into a shared register file.
///
/// A multi-tenant service co-schedules several solve jobs over one
/// machine, and therefore over one global-memory register file. Every
/// register a job's workers touch — the termination counter, the
/// incumbent, the winner flag, the lease width, the per-node mirrors —
/// must be private to that job, or tenants read each other's state. A
/// `CellBlock` is that private window: a base offset plus a mirror
/// capacity, with the *same internal layout* as the classic single-job
/// register file (the root block at base 0 is bit-compatible with
/// [`GlobalCells::with_node_mirrors`]).
///
/// Crucially the node-mirror registers are **lease-relative**: a job
/// leased machine nodes `[7, 10)` addresses its mirrors as nodes `0..3`
/// *of its own block*. Indexing mirrors by *machine* node in a shared
/// file is exactly the cross-tenant leak the service layer must avoid:
/// when a lease shrinks and the freed node is re-leased to another job,
/// a machine-indexed mirror would hand the new tenant the old tenant's
/// bound/winner values (see the `lease_relative_mirrors_isolate_tenants`
/// test).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellBlock {
    base: usize,
    nodes: usize,
}

impl CellBlock {
    /// Registers reserved ahead of the mirror blocks (the well-known
    /// `CELL_*` indices).
    pub const HEADER: usize = CELL_USER;

    /// Total registers a block with `nodes` mirror pairs occupies.
    #[inline]
    pub const fn size(nodes: usize) -> usize {
        Self::HEADER + 2 * nodes
    }

    /// The classic single-job window at base 0 — the layout
    /// [`GlobalCells::with_node_mirrors`] builds and every pre-service
    /// world uses.
    #[inline]
    pub const fn root(nodes: usize) -> Self {
        CellBlock { base: 0, nodes }
    }

    /// The `job`-th of a run of equally-sized blocks starting at
    /// register 0 (how [`GlobalCells::with_job_blocks`] lays them out).
    #[inline]
    pub const fn for_job(job: usize, nodes: usize) -> Self {
        CellBlock {
            base: job * Self::size(nodes),
            nodes,
        }
    }

    /// Mirror capacity (in shared-memory nodes) of this block.
    #[inline]
    pub const fn mirror_nodes(&self) -> usize {
        self.nodes
    }

    /// First register past this block.
    #[inline]
    pub const fn end(&self) -> usize {
        self.base + Self::size(self.nodes)
    }

    #[inline]
    pub const fn outstanding(&self) -> usize {
        self.base + CELL_OUTSTANDING
    }

    #[inline]
    pub const fn incumbent(&self) -> usize {
        self.base + CELL_INCUMBENT
    }

    #[inline]
    pub const fn solutions(&self) -> usize {
        self.base + CELL_SOLUTIONS
    }

    #[inline]
    pub const fn cancel(&self) -> usize {
        self.base + CELL_CANCEL
    }

    #[inline]
    pub const fn win_ns(&self) -> usize {
        self.base + CELL_WIN_NS
    }

    #[inline]
    pub const fn lease(&self) -> usize {
        self.base + CELL_LEASE
    }

    #[inline]
    pub const fn parked(&self) -> usize {
        self.base + CELL_PARKED
    }

    /// The bound mirror of this job's node `node` — **lease-relative**:
    /// node 0 is the first node of the job's lease, wherever that lease
    /// sits on the machine.
    #[inline]
    pub fn node_bound(&self, node: usize) -> usize {
        debug_assert!(node < self.nodes, "mirror index beyond block capacity");
        self.base + CELL_NODE_BOUND_BASE + node
    }

    /// The cancel/winner mirror of this job's node `node`
    /// (lease-relative, directly after the bound mirrors).
    #[inline]
    pub fn node_cancel(&self, node: usize) -> usize {
        debug_assert!(node < self.nodes, "mirror index beyond block capacity");
        self.base + CELL_NODE_BOUND_BASE + self.nodes + node
    }

    /// Do two blocks overlap? (They never should — the allocator hands
    /// out disjoint windows.)
    pub fn overlaps(&self, other: &CellBlock) -> bool {
        self.base < other.end() && other.base < self.end()
    }
}

impl GlobalCells {
    pub fn new(count: usize) -> Self {
        let seg = Segment::new(count.max(CELL_USER));
        GlobalCells { seg }
    }

    /// A register file of at least `min_cells` registers with one bound
    /// mirror and one cancel/winner mirror per shared-memory node, the
    /// bound cells (root and mirrors) initialised to "no incumbent"
    /// (`i64::MAX`), the winner cells to "no winner". This is how
    /// [`World`](crate::World) sizes its cells.
    pub fn with_node_mirrors(nodes: usize, min_cells: usize) -> Self {
        let cells = GlobalCells::new(min_cells.max(CellBlock::size(nodes)));
        cells.reset_block(CellBlock::root(nodes), u64::MAX);
        cells
    }

    /// A register file holding `blocks` per-job windows of
    /// `nodes_per_block` mirror pairs each (see [`CellBlock`]), every
    /// block reset to its idle state. Multi-tenant services grab one
    /// block per co-scheduled job with [`CellBlock::for_job`].
    pub fn with_job_blocks(blocks: usize, nodes_per_block: usize) -> Self {
        let cells = GlobalCells::new(blocks.max(1) * CellBlock::size(nodes_per_block));
        for j in 0..blocks {
            cells.reset_block(CellBlock::for_job(j, nodes_per_block), u64::MAX);
        }
        cells
    }

    /// Re-initialise one job window for a fresh computation: termination
    /// counter and solution count to 0, incumbent and winner (root *and*
    /// every mirror) to their "none" sentinels, cancel flags cleared, and
    /// the lease register to `lease_workers`. Granting a recycled block
    /// without this reset is how one tenant's bound would leak into the
    /// next — the reset is part of the lease-grant protocol.
    pub fn reset_block(&self, block: CellBlock, lease_workers: u64) {
        assert!(
            block.end() <= self.len(),
            "cell block {block:?} beyond the register file ({} cells)",
            self.len()
        );
        self.store_i64(block.outstanding(), 0);
        self.store_i64(block.incumbent(), i64::MAX);
        self.store(block.solutions(), 0);
        self.store(block.cancel(), 0);
        self.store_i64(block.win_ns(), i64::MAX);
        self.store(block.lease(), lease_workers);
        self.store(block.parked(), 0);
        for n in 0..block.mirror_nodes() {
            self.store_i64(block.node_bound(n), i64::MAX);
            self.store(block.node_cancel(n), 0);
        }
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.seg.len()
    }

    pub fn is_empty(&self) -> bool {
        self.seg.is_empty()
    }

    #[inline]
    pub fn load(&self, idx: usize) -> u64 {
        self.seg.load_notify(idx)
    }

    #[inline]
    pub fn store(&self, idx: usize, v: u64) {
        self.seg.store_notify(idx, v)
    }

    #[inline]
    pub fn load_i64(&self, idx: usize) -> i64 {
        self.seg.load_notify(idx) as i64
    }

    #[inline]
    pub fn store_i64(&self, idx: usize, v: i64) {
        self.seg.store_notify(idx, v as u64)
    }

    #[inline]
    pub fn fetch_add_i64(&self, idx: usize, delta: i64) -> i64 {
        self.seg.fetch_add_i64(idx, delta)
    }

    #[inline]
    pub fn fetch_add(&self, idx: usize, delta: u64) -> u64 {
        self.seg.fetch_add(idx, delta)
    }

    #[inline]
    pub fn fetch_min_i64(&self, idx: usize, v: i64) -> i64 {
        self.seg.fetch_min_i64(idx, v)
    }

    // Remote flavours: same operation, charged against the interconnect.

    #[inline]
    pub fn load_i64_remote(&self, ic: &Interconnect, idx: usize) -> i64 {
        ic.charge_read(8);
        self.load_i64(idx)
    }

    #[inline]
    pub fn fetch_add_i64_remote(&self, ic: &Interconnect, idx: usize, delta: i64) -> i64 {
        ic.charge_atomic();
        self.fetch_add_i64(idx, delta)
    }

    #[inline]
    pub fn fetch_min_i64_remote(&self, ic: &Interconnect, idx: usize, v: i64) -> i64 {
        ic.charge_atomic();
        self.fetch_min_i64(idx, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interconnect::LatencyModel;

    #[test]
    fn minimum_size_covers_reserved_cells() {
        let c = GlobalCells::new(0);
        assert!(c.len() >= CELL_USER);
    }

    #[test]
    fn node_mirrors_start_empty() {
        let c = GlobalCells::with_node_mirrors(3, 0);
        assert!(c.len() > node_cancel_cell(2, 3));
        assert_eq!(c.load_i64(CELL_INCUMBENT), i64::MAX);
        assert_eq!(c.load_i64(CELL_WIN_NS), i64::MAX);
        for n in 0..3 {
            assert_eq!(c.load_i64(node_bound_cell(n)), i64::MAX);
            assert_eq!(c.load(node_cancel_cell(n, 3)), 0);
        }
        assert!(GlobalCells::with_node_mirrors(1, 32).len() >= 32);
    }

    #[test]
    fn cancel_mirror_block_follows_bound_block() {
        // The two mirror blocks must never overlap, whatever the node
        // count.
        for nodes in 1..=5 {
            assert_eq!(node_cancel_cell(0, nodes), node_bound_cell(nodes - 1) + 1);
        }
    }

    #[test]
    fn root_block_matches_legacy_layout() {
        // `CellBlock::root` must address exactly the registers the classic
        // constants name — the pre-service world layout is the job-0 block.
        for nodes in 1..=5 {
            let b = CellBlock::root(nodes);
            assert_eq!(b.outstanding(), CELL_OUTSTANDING);
            assert_eq!(b.incumbent(), CELL_INCUMBENT);
            assert_eq!(b.solutions(), CELL_SOLUTIONS);
            assert_eq!(b.cancel(), CELL_CANCEL);
            assert_eq!(b.win_ns(), CELL_WIN_NS);
            assert_eq!(b.lease(), CELL_LEASE);
            assert_eq!(b.parked(), CELL_PARKED);
            for n in 0..nodes {
                assert_eq!(b.node_bound(n), node_bound_cell(n));
                assert_eq!(b.node_cancel(n), node_cancel_cell(n, nodes));
            }
            assert_eq!(b.end(), CELL_NODE_BOUND_BASE + 2 * nodes);
        }
    }

    #[test]
    fn job_blocks_are_disjoint() {
        let blocks: Vec<CellBlock> = (0..4).map(|j| CellBlock::for_job(j, 3)).collect();
        for (i, a) in blocks.iter().enumerate() {
            assert!(a.overlaps(a));
            for b in &blocks[i + 1..] {
                assert!(!a.overlaps(b), "{a:?} overlaps {b:?}");
                assert!(!b.overlaps(a));
            }
        }
        // Adjacent blocks tile the file with no gap: the allocator can
        // size the segment as blocks * size.
        assert_eq!(blocks[0].end(), CellBlock::for_job(1, 3).outstanding());
    }

    #[test]
    fn lease_relative_mirrors_isolate_tenants() {
        // Two co-scheduled jobs whose leases both contain "their node 0"
        // — on a machine-indexed mirror scheme (the old `node_bound_cell`
        // global) the second tenant would read the first tenant's bound.
        // Lease-relative blocks keep the mirrors disjoint.
        let cells = GlobalCells::with_job_blocks(2, 2);
        let a = CellBlock::for_job(0, 2);
        let b = CellBlock::for_job(1, 2);

        // Tenant A publishes a tight bound into its node-0 mirror.
        cells.store_i64(a.node_bound(0), 42);
        cells.store(a.node_cancel(0), 1);

        // Tenant B's mirrors must still read idle.
        assert_eq!(cells.load_i64(b.node_bound(0)), i64::MAX);
        assert_eq!(cells.load(b.node_cancel(0)), 0);

        // Recycling A's block for a new job wipes the old tenant's state.
        cells.reset_block(a, 8);
        assert_eq!(cells.load_i64(a.node_bound(0)), i64::MAX);
        assert_eq!(cells.load(a.node_cancel(0)), 0);
        assert_eq!(cells.load(a.lease()), 8);
        // ... without touching B.
        assert_eq!(cells.load(b.lease()), u64::MAX);
    }

    #[test]
    fn signed_round_trip() {
        let c = GlobalCells::new(16);
        c.store_i64(CELL_INCUMBENT, i64::MAX);
        assert_eq!(c.load_i64(CELL_INCUMBENT), i64::MAX);
        c.fetch_min_i64(CELL_INCUMBENT, 123);
        assert_eq!(c.load_i64(CELL_INCUMBENT), 123);
        c.fetch_add_i64(CELL_OUTSTANDING, 5);
        c.fetch_add_i64(CELL_OUTSTANDING, -3);
        assert_eq!(c.load_i64(CELL_OUTSTANDING), 2);
    }

    #[test]
    fn remote_flavours_charge() {
        let c = GlobalCells::new(16);
        let ic = Interconnect::new(LatencyModel::zero());
        c.fetch_add_i64_remote(&ic, CELL_OUTSTANDING, 1);
        c.load_i64_remote(&ic, CELL_OUTSTANDING);
        c.fetch_min_i64_remote(&ic, CELL_INCUMBENT, 1);
        let s = ic.counters.snapshot();
        assert_eq!(s.remote_atomics, 2);
        assert_eq!(s.remote_reads, 1);
    }
}
