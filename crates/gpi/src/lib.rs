//! In-process simulation of **GPI** (Global address space Programming
//! Interface), the PGAS API MaCS is built on (paper §III).
//!
//! The real GPI runs on an RDMA cluster: the system is a set of *nodes*
//! (each a shared-memory multiprocessor running one thread per core), every
//! node exposes a partition of *global memory*, and threads access remote
//! partitions with **one-sided**, non-blocking read/write operations that
//! complete without involving the remote CPU.
//!
//! This crate reproduces that programming model inside one process:
//!
//! * [`MachineTopology`] (from `macs-topo`) — the N-level machine
//!   structure; [`Topology`] is the classic 2-level node/core alias
//!   (workers on the same node are "close"; others are "remote");
//! * [`Segment`] — a partition of global memory: a word array supporting
//!   one-sided reads, writes, and atomics, in *local* (plain shared-memory)
//!   and *remote* flavours, the latter charged against the interconnect
//!   model;
//! * [`Interconnect`] — the DMA interconnect: a latency/bandwidth model
//!   with traffic counters; remote operations spin for their modelled
//!   duration, so time-based measurements see realistic local/remote cost
//!   asymmetry (zero-latency by default for functional tests);
//! * [`GlobalCells`] — a tiny register file in global memory (termination
//!   counter, branch-and-bound incumbent, solution counter …);
//! * [`GpiBarrier`] — a sense-reversing barrier (GPI's collective);
//! * [`World`] — a bundle of all of the above for one run.
//!
//! What is simulated vs. real: memory accesses *are* real shared-memory
//! accesses (so all concurrency is genuine); only the *cost* of crossing
//! the interconnect is modelled, by spinning. One-sided transfers become
//! visible word-atomically but without a global order — exactly the
//! guarantee RDMA gives — so higher layers use explicit notification words
//! with acquire/release ordering, as real GPI applications do.

pub mod barrier;
pub mod cells;
pub mod interconnect;
pub mod segment;
pub mod topology;

pub use barrier::GpiBarrier;
pub use cells::{CellBlock, GlobalCells};
pub use interconnect::{Interconnect, LatencyModel, TrafficCounters};
pub use segment::Segment;
pub use topology::Topology;

// The N-level machine model this layer's `Topology` is a 2-level alias
// of; re-exported so runtime/sim/paccs share one set of topology types.
pub use macs_topo::{
    detect_machine, DetectedMachine, MachineTopology, PeerRing, ScanOrder, StealHistogram,
    TopoError, VictimOrder, MAX_LEVELS,
};

use std::sync::Arc;

/// Everything a set of workers needs to communicate: the topology, the
/// interconnect, a global register file and a barrier.
#[derive(Debug)]
pub struct World {
    pub topology: MachineTopology,
    pub interconnect: Interconnect,
    pub cells: Arc<GlobalCells>,
    /// This run's window into `cells` (see [`cells::CellBlock`]). For a
    /// classic single-job world this is the root block, so the well-known
    /// `CELL_*` indices keep working; a multi-tenant service hands each
    /// co-scheduled job its own block of a shared register file.
    pub block: CellBlock,
    /// True when this world runs under a worker-set lease: workers poll
    /// `block.lease()` and park themselves when the lease shrinks below
    /// their id. Single-job worlds skip that poll entirely.
    pub leased: bool,
    pub barrier: GpiBarrier,
    /// The run's epoch: every worker timestamps against this one instant,
    /// so cross-worker times (e.g. the first-solution winner time in
    /// [`cells::CELL_WIN_NS`]) are comparable.
    pub start: std::time::Instant,
}

impl World {
    /// Build a world with at least `cell_count` global registers. The
    /// register file always includes one incumbent mirror per
    /// shared-memory node (see [`cells::CELL_NODE_BOUND_BASE`]),
    /// initialised to "no incumbent", so hierarchical bound dissemination
    /// works on any world.
    pub fn new(
        topology: impl Into<MachineTopology>,
        latency: LatencyModel,
        cell_count: usize,
    ) -> Arc<Self> {
        let topology = topology.into();
        let total = topology.total_workers();
        let nodes = topology.nodes();
        let cells = Arc::new(GlobalCells::with_node_mirrors(nodes, cell_count));
        Arc::new(World {
            topology,
            interconnect: Interconnect::new(latency),
            cells,
            block: CellBlock::root(nodes),
            leased: false,
            barrier: GpiBarrier::new(total),
            start: std::time::Instant::now(),
        })
    }

    /// Build a *leased* world: a job-private view over a **shared**
    /// register file, windowed to `block`. `topology` is the lease
    /// sub-topology (the job's nodes renumbered from 0, inner shape
    /// preserved), so every distance/ring computation stays meaningful
    /// while the job's mirrors stay lease-relative inside its block.
    /// The block is reset for a fresh run with the lease width set to
    /// the sub-topology's full worker count.
    pub fn leased_on(
        topology: impl Into<MachineTopology>,
        latency: LatencyModel,
        cells: Arc<GlobalCells>,
        block: CellBlock,
    ) -> Arc<Self> {
        let topology = topology.into();
        let total = topology.total_workers();
        assert!(
            topology.nodes() <= block.mirror_nodes(),
            "lease sub-topology has more nodes than the cell block mirrors"
        );
        cells.reset_block(block, total as u64);
        Arc::new(World {
            topology,
            interconnect: Interconnect::new(latency),
            cells,
            block,
            leased: true,
            barrier: GpiBarrier::new(total),
            start: std::time::Instant::now(),
        })
    }

    /// Nanoseconds since the run's epoch, saturating at `i64::MAX` (the
    /// "no winner" sentinel of [`cells::CELL_WIN_NS`]).
    pub fn elapsed_ns(&self) -> i64 {
        i64::try_from(self.start.elapsed().as_nanos()).unwrap_or(i64::MAX - 1)
    }
}
