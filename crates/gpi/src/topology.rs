//! The hierarchical node/core structure of the machine.

use std::ops::Range;

/// A cluster topology: `nodes` shared-memory nodes of `cores_per_node`
/// workers each. The paper's testbed is 155 nodes × 4 cores (620 cores);
/// our experiments use the same two-level shape at whatever scale the host
/// allows, with worker IDs dense in `0..total_workers()` and node-major.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    pub nodes: usize,
    pub cores_per_node: usize,
}

impl Topology {
    pub fn new(nodes: usize, cores_per_node: usize) -> Self {
        assert!(nodes > 0 && cores_per_node > 0, "empty topology");
        Topology {
            nodes,
            cores_per_node,
        }
    }

    /// A single shared-memory machine with `n` workers.
    pub fn single_node(n: usize) -> Self {
        Topology::new(1, n)
    }

    /// Split `total` workers into nodes of (at most) `cores_per_node`,
    /// mirroring the paper's 4-cores-per-node cluster. `total` must be a
    /// multiple of `cores_per_node`.
    pub fn clustered(total: usize, cores_per_node: usize) -> Self {
        assert!(
            total.is_multiple_of(cores_per_node),
            "worker count {total} not a multiple of node size {cores_per_node}"
        );
        Topology::new(total / cores_per_node, cores_per_node)
    }

    #[inline]
    pub fn total_workers(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Node hosting worker `w`.
    #[inline]
    pub fn node_of(&self, w: usize) -> usize {
        debug_assert!(w < self.total_workers());
        w / self.cores_per_node
    }

    /// Workers co-located on node `n` (including any caller on that node).
    #[inline]
    pub fn workers_on(&self, n: usize) -> Range<usize> {
        debug_assert!(n < self.nodes);
        n * self.cores_per_node..(n + 1) * self.cores_per_node
    }

    /// Workers co-located with `w`, *including* `w` itself.
    #[inline]
    pub fn peers_of(&self, w: usize) -> Range<usize> {
        self.workers_on(self.node_of(w))
    }

    /// Are two workers on the same node (communicating via shared memory
    /// rather than the interconnect)?
    #[inline]
    pub fn is_local(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let t = Topology::clustered(512, 4);
        assert_eq!(t.nodes, 128);
        assert_eq!(t.total_workers(), 512);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(511), 127);
    }

    #[test]
    fn locality() {
        let t = Topology::new(2, 4);
        assert!(t.is_local(0, 3));
        assert!(!t.is_local(3, 4));
        assert_eq!(t.peers_of(5), 4..8);
        assert_eq!(t.workers_on(0), 0..4);
    }

    #[test]
    fn single_node_is_all_local() {
        let t = Topology::single_node(8);
        assert_eq!(t.nodes, 1);
        assert!(t.is_local(0, 7));
    }

    #[test]
    #[should_panic]
    fn clustered_requires_divisibility() {
        let _ = Topology::clustered(10, 4);
    }
}
