//! The classic two-level node/core view of the machine — now a thin alias
//! over [`macs_topo::MachineTopology`], kept for the common case and for
//! `Copy`-friendly configuration.
//!
//! The general N-level model (sockets inside nodes, nodes inside
//! clusters, distance-aware victim rings) lives in `macs-topo`; this type
//! describes the paper's original testbed shape — `nodes` shared-memory
//! nodes of `cores_per_node` workers — and converts losslessly into a
//! 2-level [`MachineTopology`] via [`Topology::machine`] or `Into`.

use std::ops::Range;

use macs_topo::{MachineTopology, TopoError};

/// A cluster topology: `nodes` shared-memory nodes of `cores_per_node`
/// workers each. The paper's testbed is 155 nodes × 4 cores (620 cores);
/// our experiments use the same two-level shape at whatever scale the host
/// allows, with worker IDs dense in `0..total_workers()` and node-major.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    pub nodes: usize,
    pub cores_per_node: usize,
}

impl Topology {
    /// Validated constructor: both extents must be non-zero.
    pub fn try_new(nodes: usize, cores_per_node: usize) -> Result<Self, TopoError> {
        // Borrow the N-level validation so the error taxonomy is shared.
        MachineTopology::try_two_level(nodes, cores_per_node)?;
        Ok(Topology {
            nodes,
            cores_per_node,
        })
    }

    pub fn new(nodes: usize, cores_per_node: usize) -> Self {
        Topology::try_new(nodes, cores_per_node).expect("empty topology")
    }

    /// A single shared-memory machine with `n` workers.
    pub fn single_node(n: usize) -> Self {
        Topology::new(1, n)
    }

    /// Split `total` workers into nodes of (at most) `cores_per_node`,
    /// mirroring the paper's 4-cores-per-node cluster. `total` must be a
    /// multiple of `cores_per_node`.
    pub fn try_clustered(total: usize, cores_per_node: usize) -> Result<Self, TopoError> {
        MachineTopology::try_clustered(total, cores_per_node)?;
        Ok(Topology {
            nodes: total / cores_per_node,
            cores_per_node,
        })
    }

    /// Panicking shorthand for [`Topology::try_clustered`].
    pub fn clustered(total: usize, cores_per_node: usize) -> Self {
        match Topology::try_clustered(total, cores_per_node) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// The equivalent 2-level [`MachineTopology`] (node boundary at the
    /// outer level).
    pub fn machine(&self) -> MachineTopology {
        MachineTopology::try_two_level(self.nodes, self.cores_per_node)
            .expect("Topology invariants already validated")
    }

    #[inline]
    pub fn total_workers(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Node hosting worker `w`.
    #[inline]
    pub fn node_of(&self, w: usize) -> usize {
        debug_assert!(w < self.total_workers());
        w / self.cores_per_node
    }

    /// Workers co-located on node `n` (including any caller on that node).
    #[inline]
    pub fn workers_on(&self, n: usize) -> Range<usize> {
        debug_assert!(n < self.nodes);
        n * self.cores_per_node..(n + 1) * self.cores_per_node
    }

    /// Workers co-located with `w`, *including* `w` itself.
    #[inline]
    pub fn peers_of(&self, w: usize) -> Range<usize> {
        self.workers_on(self.node_of(w))
    }

    /// Are two workers on the same node (communicating via shared memory
    /// rather than the interconnect)?
    #[inline]
    pub fn is_local(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

impl From<Topology> for MachineTopology {
    fn from(t: Topology) -> MachineTopology {
        t.machine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let t = Topology::clustered(512, 4);
        assert_eq!(t.nodes, 128);
        assert_eq!(t.total_workers(), 512);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(511), 127);
    }

    #[test]
    fn locality() {
        let t = Topology::new(2, 4);
        assert!(t.is_local(0, 3));
        assert!(!t.is_local(3, 4));
        assert_eq!(t.peers_of(5), 4..8);
        assert_eq!(t.workers_on(0), 0..4);
    }

    #[test]
    fn single_node_is_all_local() {
        let t = Topology::single_node(8);
        assert_eq!(t.nodes, 1);
        assert!(t.is_local(0, 7));
    }

    #[test]
    #[should_panic]
    fn clustered_requires_divisibility() {
        let _ = Topology::clustered(10, 4);
    }

    #[test]
    fn try_constructors_return_errors() {
        assert_eq!(
            Topology::try_clustered(10, 4),
            Err(TopoError::NotDivisible {
                total: 10,
                cores_per_node: 4
            })
        );
        assert!(Topology::try_new(0, 4).is_err());
        assert!(Topology::try_new(4, 0).is_err());
        assert!(Topology::try_clustered(12, 4).is_ok());
    }

    #[test]
    fn machine_conversion_agrees_on_all_queries() {
        let t = Topology::clustered(12, 4);
        let m: MachineTopology = t.into();
        assert_eq!(m.levels(), 2);
        assert_eq!(m.total_workers(), t.total_workers());
        assert_eq!(m.nodes(), t.nodes);
        for w in 0..t.total_workers() {
            assert_eq!(m.node_of(w), t.node_of(w));
            assert_eq!(m.peers_of(w), t.peers_of(w));
        }
        assert_eq!(m.is_local(0, 3), t.is_local(0, 3));
        assert_eq!(m.is_local(3, 4), t.is_local(3, 4));
    }
}
