//! A partition of global memory.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::interconnect::Interconnect;

/// A fixed-size word array in global memory, accessible by every worker.
///
/// Local accesses (same node, shared memory) use the `*_local` methods;
/// accesses from another node use the `*_remote` methods, which perform the
/// same memory operation after charging the [`Interconnect`]. Data words
/// move with `Relaxed` ordering — one-sided RDMA guarantees no ordering
/// either — so protocols built on a segment publish data with
/// [`Segment::store_notify`] / [`Segment::load_notify`] (release/acquire),
/// mirroring how GPI applications pair payload writes with notification
/// writes.
#[derive(Debug)]
pub struct Segment {
    words: Box<[AtomicU64]>,
}

impl Segment {
    /// Allocate a zeroed segment of `words` 64-bit words.
    pub fn new(words: usize) -> Self {
        let mut v = Vec::with_capacity(words);
        v.resize_with(words, || AtomicU64::new(0));
        Segment {
            words: v.into_boxed_slice(),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    // ----- local (shared-memory) access ------------------------------------

    /// Copy `dst.len()` words starting at `off` out of the segment.
    #[inline]
    pub fn read_local(&self, off: usize, dst: &mut [u64]) {
        for (i, d) in dst.iter_mut().enumerate() {
            *d = self.words[off + i].load(Ordering::Relaxed);
        }
    }

    /// Copy `src` into the segment at `off`.
    #[inline]
    pub fn write_local(&self, off: usize, src: &[u64]) {
        for (i, &s) in src.iter().enumerate() {
            self.words[off + i].store(s, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn load(&self, off: usize) -> u64 {
        self.words[off].load(Ordering::Relaxed)
    }

    #[inline]
    pub fn store(&self, off: usize, v: u64) {
        self.words[off].store(v, Ordering::Relaxed);
    }

    /// Acquire-load of a notification word: everything written before the
    /// matching [`Segment::store_notify`] is visible after this returns a
    /// matching value.
    #[inline]
    pub fn load_notify(&self, off: usize) -> u64 {
        self.words[off].load(Ordering::Acquire)
    }

    /// Release-store of a notification word (publishes preceding payload
    /// writes).
    #[inline]
    pub fn store_notify(&self, off: usize, v: u64) {
        self.words[off].store(v, Ordering::Release);
    }

    /// Compare-and-swap (acquire-release), local flavour.
    #[inline]
    pub fn cas(&self, off: usize, current: u64, new: u64) -> Result<u64, u64> {
        self.words[off].compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire)
    }

    #[inline]
    pub fn fetch_add(&self, off: usize, delta: u64) -> u64 {
        self.words[off].fetch_add(delta, Ordering::AcqRel)
    }

    /// Signed fetch-add on a cell interpreted as `i64`.
    #[inline]
    pub fn fetch_add_i64(&self, off: usize, delta: i64) -> i64 {
        self.words[off].fetch_add(delta as u64, Ordering::AcqRel) as i64
    }

    /// Atomically lower a cell interpreted as `i64` to `min(current, v)`;
    /// returns the previous value.
    pub fn fetch_min_i64(&self, off: usize, v: i64) -> i64 {
        let cell = &self.words[off];
        let mut cur = cell.load(Ordering::Acquire) as i64;
        while v < cur {
            match cell.compare_exchange_weak(
                cur as u64,
                v as u64,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return cur,
                Err(now) => cur = now as i64,
            }
        }
        cur
    }

    // ----- remote (one-sided, charged) access -------------------------------

    /// One-sided remote read (synchronous: the caller spins for the
    /// modelled latency, then sees the data).
    #[inline]
    pub fn read_remote(&self, ic: &Interconnect, off: usize, dst: &mut [u64]) {
        ic.charge_read(dst.len() * 8);
        self.read_local(off, dst);
    }

    /// One-sided remote write, synchronous flavour.
    #[inline]
    pub fn write_remote(&self, ic: &Interconnect, off: usize, src: &[u64]) {
        ic.charge_write(src.len() * 8);
        self.write_local(off, src);
    }

    /// One-sided remote write, *queued* flavour: the caller pays only the
    /// posting overhead and continues computing while the (simulated) DMA
    /// engine moves the data. The paper's victims use exactly this to
    /// overlap steal responses with their own work.
    #[inline]
    pub fn write_remote_queued(&self, ic: &Interconnect, off: usize, src: &[u64]) {
        ic.charge_queued_write(src.len() * 8);
        self.write_local(off, src);
    }

    #[inline]
    pub fn load_remote(&self, ic: &Interconnect, off: usize) -> u64 {
        ic.charge_read(8);
        self.load(off)
    }

    #[inline]
    pub fn load_notify_remote(&self, ic: &Interconnect, off: usize) -> u64 {
        ic.charge_read(8);
        self.load_notify(off)
    }

    #[inline]
    pub fn store_notify_remote(&self, ic: &Interconnect, off: usize, v: u64) {
        ic.charge_write(8);
        self.store_notify(off, v);
    }

    /// Remote CAS (GPI exposes atomics over the fabric).
    #[inline]
    pub fn cas_remote(
        &self,
        ic: &Interconnect,
        off: usize,
        current: u64,
        new: u64,
    ) -> Result<u64, u64> {
        ic.charge_atomic();
        self.cas(off, current, new)
    }

    #[inline]
    pub fn fetch_add_remote(&self, ic: &Interconnect, off: usize, delta: u64) -> u64 {
        ic.charge_atomic();
        self.fetch_add(off, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interconnect::LatencyModel;
    use std::sync::Arc;

    #[test]
    fn read_write_round_trip() {
        let s = Segment::new(16);
        s.write_local(3, &[7, 8, 9]);
        let mut buf = [0u64; 3];
        s.read_local(3, &mut buf);
        assert_eq!(buf, [7, 8, 9]);
        assert_eq!(s.load(4), 8);
    }

    #[test]
    fn remote_ops_count_traffic() {
        let s = Segment::new(8);
        let ic = Interconnect::new(LatencyModel::zero());
        s.write_remote(&ic, 0, &[1, 2]);
        let mut buf = [0u64; 2];
        s.read_remote(&ic, 0, &mut buf);
        assert_eq!(buf, [1, 2]);
        let snap = ic.counters.snapshot();
        assert_eq!(snap.remote_writes, 1);
        assert_eq!(snap.remote_reads, 1);
        assert_eq!(snap.bytes_written, 16);
    }

    #[test]
    fn cas_succeeds_once() {
        let s = Segment::new(1);
        assert_eq!(s.cas(0, 0, 42), Ok(0));
        assert_eq!(s.cas(0, 0, 43), Err(42));
        assert_eq!(s.load(0), 42);
    }

    #[test]
    fn fetch_min_is_monotone() {
        let s = Segment::new(1);
        s.store(0, i64::MAX as u64);
        assert_eq!(s.fetch_min_i64(0, 100), i64::MAX);
        assert_eq!(s.fetch_min_i64(0, 200), 100); // no effect
        assert_eq!(s.load(0) as i64, 100);
        assert_eq!(s.fetch_min_i64(0, -5), 100);
        assert_eq!(s.load(0) as i64, -5);
    }

    #[test]
    fn signed_fetch_add() {
        let s = Segment::new(1);
        s.fetch_add_i64(0, 10);
        s.fetch_add_i64(0, -25);
        assert_eq!(s.load(0) as i64, -15);
    }

    #[test]
    fn notify_publishes_payload_across_threads() {
        // Writer fills a payload then raises the flag; readers that observe
        // the flag must observe the payload (release/acquire pairing).
        let s = Arc::new(Segment::new(64));
        let writer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for round in 1..=1000u64 {
                    for i in 1..=8 {
                        s.store(i, round * 100 + i as u64);
                    }
                    s.store_notify(0, round);
                    while s.load_notify(0) == round {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        for round in 1..=1000u64 {
            while s.load_notify(0) != round {
                std::hint::spin_loop();
            }
            for i in 1..=8 {
                assert_eq!(s.load(i), round * 100 + i as u64);
            }
            s.store_notify(0, 0); // ack
        }
        writer.join().unwrap();
    }

    #[test]
    fn concurrent_fetch_add_is_exact() {
        let s = Arc::new(Segment::new(1));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        s.fetch_add(0, 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.load(0), 40_000);
    }
}
