//! A sense-reversing barrier (GPI's collective synchronisation).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A reusable barrier for a fixed set of participants. Implemented with a
/// central counter and a generation word (sense reversal), like the
/// fabric-level barrier GPI provides; workers spin rather than block, which
/// is appropriate for the short rendezvous at start/end of a solve (the
/// paper's "Barrier" state).
#[derive(Debug)]
pub struct GpiBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicU64,
}

impl GpiBarrier {
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0);
        GpiBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
        }
    }

    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Wait until all parties arrive. Returns `true` for exactly one caller
    /// per generation (the "leader", who may perform a serial action).
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.arrived.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::AcqRel);
            true
        } else {
            while self.generation.load(Ordering::Acquire) == gen {
                std::hint::spin_loop();
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_party_never_waits() {
        let b = GpiBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
    }

    #[test]
    fn all_threads_cross_together_many_generations() {
        const N: usize = 4;
        const ROUNDS: usize = 200;
        let barrier = Arc::new(GpiBarrier::new(N));
        let phase = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let phase = Arc::clone(&phase);
                std::thread::spawn(move || {
                    let mut leader_count = 0usize;
                    for round in 0..ROUNDS as u64 {
                        // Everybody must still observe the current phase.
                        assert_eq!(phase.load(Ordering::SeqCst), round);
                        if barrier.wait() {
                            leader_count += 1;
                            phase.store(round + 1, Ordering::SeqCst);
                        }
                        // Leader bumps the phase; a second barrier makes the
                        // bump visible to all before the next assert.
                        barrier.wait();
                    }
                    leader_count
                })
            })
            .collect();
        let total_leaders: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total_leaders, ROUNDS, "exactly one leader per generation");
    }
}
