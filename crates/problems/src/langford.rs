//! Langford pairings L(2, n) (satisfaction): arrange two copies of
//! `1..=n` in a row of `2n` so the two copies of `k` are exactly `k`
//! positions apart.

use macs_engine::{CompiledProblem, Model, Propag, Val};

/// Number of raw sequences (counting a pairing and its reversal
/// separately, i.e. 2 × OEIS A014552) for validation.
pub const LANGFORD_RAW: [(usize, u64); 5] = [(3, 2), (4, 2), (5, 0), (6, 0), (7, 52)];

/// Build L(2, n): variables `p1[k]`, `p2[k]` (positions of the first and
/// second copy of value `k+1`), with `p2[k] = p1[k] + k + 2` and all
/// positions distinct.
pub fn langford(n: usize) -> CompiledProblem {
    assert!(n >= 1);
    let positions = 2 * n;
    let mut m = Model::new(format!("langford-{n}"));
    let p1 = m.new_vars(n, 0, (positions - 1) as Val);
    let p2 = m.new_vars(n, 0, (positions - 1) as Val);
    for k in 0..n {
        // Two copies of value k+1 are separated by k+1 interior slots.
        m.post(Propag::EqOffset {
            x: p2[k],
            y: p1[k],
            c: k as i64 + 2,
        });
    }
    let mut all = p1;
    all.extend(p2);
    m.post(Propag::AllDiffVal { vars: all });
    m.compile()
}

/// Decode a solution into the row of values at each position.
pub fn decode(n: usize, assignment: &[Val]) -> Vec<u32> {
    let mut row = vec![0u32; 2 * n];
    for k in 0..n {
        row[assignment[k] as usize] = k as u32 + 1;
        row[assignment[n + k] as usize] = k as u32 + 1;
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use macs_engine::seq::{solve_seq, SeqOptions};

    #[test]
    fn counts_match_reference() {
        for &(n, expect) in &LANGFORD_RAW[..4] {
            let p = langford(n);
            let r = solve_seq(&p, &SeqOptions::default());
            assert_eq!(r.solutions, expect, "L(2,{n})");
        }
    }

    #[test]
    fn l23_solution_is_the_classic_sequence() {
        let p = langford(3);
        let r = solve_seq(&p, &SeqOptions::default());
        assert_eq!(r.solutions, 2);
        let rows: Vec<Vec<u32>> = r.kept.iter().map(|a| decode(3, a)).collect();
        assert!(rows.contains(&vec![2, 3, 1, 2, 1, 3]) || rows.contains(&vec![3, 1, 2, 1, 3, 2]));
        for row in rows {
            let mut rev = row.clone();
            rev.reverse();
            // Each solution's reversal is the other solution.
            assert!(row != rev);
        }
    }

    #[test]
    fn spacing_constraint_holds() {
        let p = langford(4);
        let r = solve_seq(&p, &SeqOptions::default());
        for a in &r.kept {
            for k in 0..4usize {
                assert_eq!(a[4 + k] as i64 - a[k] as i64, k as i64 + 2);
            }
        }
    }
}
