//! The Quadratic Assignment Problem (paper §VI: evaluated on QAPLIB's
//! `esc16e`).
//!
//! Variables `p[i]` give the location assigned to facility `i`; the
//! objective is `min Σᵢⱼ f[i][j] · d[p(i)][p(j)]`.
//!
//! ## Instance provenance
//!
//! The QAPLIB file format is parsed by [`QapInstance::parse`], so any real
//! QAPLIB instance can be solved from disk. The original `esc16e` data file
//! is not redistributed here; [`QapInstance::esc16_like`] builds an
//! instance of the same *family* (Eschermann–Wunderlich 16-facility
//! hypercube instances): the distance matrix is the Hamming distance
//! between the 4-bit location codes — exactly esc16's — and the flow matrix
//! is sparse, symmetric, small-integer, zero-diagonal, generated from a
//! fixed seed. This preserves what matters for solver behaviour (the
//! hypercube distance structure and sparse flows that shape the B&B tree);
//! see DESIGN.md for the substitution note.

use std::sync::Arc;

use macs_engine::state::{Failed, PropState};

/// The embedded QAPLIB-format text of the repo's `esc16e` instance
/// (regenerate with `REGEN_QAP_DATA=1 cargo test -p macs-problems
/// regen_embedded_esc16e`).
pub const ESC16E_DAT: &str = include_str!("data/esc16e.dat");
use macs_engine::{bits, CompiledProblem, CostEval, Model, Propag, StoreView, Val, VarId};

/// A QAP instance: `n` facilities/locations, flow and distance matrices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QapInstance {
    pub name: String,
    pub n: usize,
    /// Flow between facilities, row-major `n × n`.
    pub flow: Vec<i64>,
    /// Distance between locations, row-major `n × n`.
    pub dist: Vec<i64>,
}

impl QapInstance {
    #[inline]
    pub fn f(&self, i: usize, j: usize) -> i64 {
        self.flow[i * self.n + j]
    }

    #[inline]
    pub fn d(&self, a: usize, b: usize) -> i64 {
        self.dist[a * self.n + b]
    }

    /// Cost of a complete assignment `p` (facility → location).
    pub fn cost(&self, p: &[Val]) -> i64 {
        let n = self.n;
        let mut c = 0i64;
        for i in 0..n {
            for j in 0..n {
                c += self.f(i, j) * self.d(p[i] as usize, p[j] as usize);
            }
        }
        c
    }

    /// Parse the QAPLIB text format: `n`, then the two `n × n` matrices
    /// (whitespace-separated integers; QAPLIB lists A then B with objective
    /// `Σ a[i][j]·b[p(i)][p(j)]`, i.e. A = flows, B = distances).
    pub fn parse(name: &str, text: &str) -> Result<Self, String> {
        let mut it = text.split_whitespace().map(|t| {
            t.parse::<i64>()
                .map_err(|e| format!("bad integer {t:?}: {e}"))
        });
        let n = it.next().ok_or("empty file")?? as usize;
        if n == 0 || n > 64 {
            return Err(format!("unsupported size n={n}"));
        }
        let mut read_matrix = |what: &str| -> Result<Vec<i64>, String> {
            let mut m = Vec::with_capacity(n * n);
            for k in 0..n * n {
                m.push(it.next().ok_or_else(|| {
                    format!("{what} matrix truncated at element {k} (need {})", n * n)
                })??);
            }
            Ok(m)
        };
        let flow = read_matrix("flow")?;
        let dist = read_matrix("distance")?;
        Ok(QapInstance {
            name: name.to_string(),
            n,
            flow,
            dist,
        })
    }

    /// Serialise in QAPLIB format.
    pub fn to_qaplib(&self) -> String {
        let mut s = format!("{}\n\n", self.n);
        for m in [&self.flow, &self.dist] {
            for r in 0..self.n {
                let row: Vec<String> = (0..self.n).map(|c| m[r * self.n + c].to_string()).collect();
                s.push_str(&row.join(" "));
                s.push('\n');
            }
            s.push('\n');
        }
        s
    }

    /// An `esc16`-family instance: 16 locations on a 4-cube (Hamming
    /// distances) and a sparse symmetric flow matrix from a fixed seed.
    pub fn esc16_like(seed: u64) -> Self {
        let n = 16;
        let mut dist = vec![0i64; n * n];
        for a in 0..n {
            for b in 0..n {
                dist[a * n + b] = ((a ^ b) as u32).count_ones() as i64;
            }
        }
        // SplitMix64 stream for the flows.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x0BAD_5EED_CAFE_F00D;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut flow = vec![0i64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                // ~25% of pairs carry a small flow, like the esc family.
                let r = next();
                let v = if r % 4 == 0 { (r >> 8) % 6 + 1 } else { 0 } as i64;
                flow[i * n + j] = v;
                flow[j * n + i] = v;
            }
        }
        QapInstance {
            name: format!("esc16-sim-{seed}"),
            n,
            flow,
            dist,
        }
    }

    /// A hypercube-flavoured instance of any size `n ≤ 16`: locations are
    /// the first `n` vertices of the 4-cube (Hamming distances), flows are
    /// the leading `n × n` block of the esc16-style sparse flow matrix.
    /// Useful for scaling the B&B tree between the 8- and 16-facility
    /// extremes.
    pub fn hypercube_like(n: usize, seed: u64) -> Self {
        assert!((2..=16).contains(&n));
        let big = QapInstance::esc16_like(seed);
        let mut dist = vec![0i64; n * n];
        let mut flow = vec![0i64; n * n];
        for a in 0..n {
            for b in 0..n {
                dist[a * n + b] = ((a ^ b) as u32).count_ones() as i64;
                flow[a * n + b] = big.flow[a * 16 + b];
            }
        }
        QapInstance {
            name: format!("cube{n}-sim-{seed}"),
            n,
            flow,
            dist,
        }
    }

    /// The embedded `esc16e` stand-in, loaded through the QAPLIB parser
    /// from the in-repo data file `data/esc16e.dat`.
    ///
    /// The file holds a fixed instance of the esc16 family (see
    /// [`QapInstance::esc16_like`] for the construction and the crate
    /// docs for the provenance note: the original QAPLIB file is not
    /// redistributed, but any genuine `esc16e.dat` drops into the same
    /// loader). Benchmarks route through this function so the whole
    /// parse-from-text path is exercised, exactly as a downloaded QAPLIB
    /// instance would be.
    pub fn esc16e() -> Self {
        QapInstance::parse("esc16e", ESC16E_DAT).expect("embedded esc16e data must parse")
    }

    /// The leading `n × n` sub-instance (facilities and locations
    /// `0..n`): hypercube distances and the matching flow block.
    /// `sub_instance(self.n)` is the identity; smaller `n` scales the B&B
    /// tree down for quick benchmark modes.
    pub fn sub_instance(&self, n: usize) -> Self {
        assert!(n >= 2 && n <= self.n, "sub-instance size {n} out of range");
        if n == self.n {
            return self.clone();
        }
        let mut flow = vec![0i64; n * n];
        let mut dist = vec![0i64; n * n];
        for a in 0..n {
            for b in 0..n {
                flow[a * n + b] = self.f(a, b);
                dist[a * n + b] = self.d(a, b);
            }
        }
        QapInstance {
            name: format!("{}[{n}]", self.name),
            n,
            flow,
            dist,
        }
    }

    /// A smaller hypercube-flavoured instance (8 locations on a 3-cube) for
    /// tests and quick experiments.
    pub fn cube8_like(seed: u64) -> Self {
        let mut big = QapInstance::esc16_like(seed);
        let n = 8;
        let mut dist = vec![0i64; n * n];
        for a in 0..n {
            for b in 0..n {
                dist[a * n + b] = ((a ^ b) as u32).count_ones() as i64;
            }
        }
        let mut flow = vec![0i64; n * n];
        for i in 0..n {
            for j in 0..n {
                flow[i * n + j] = big.flow[i * 16 + j];
            }
        }
        big.name = format!("cube8-sim-{seed}");
        big.n = n;
        big.flow = flow;
        big.dist = dist;
        big
    }
}

/// Branch-and-bound lower bound for the QAP (a Gilmore–Lawler-style
/// decomposition): exact terms for assigned pairs, domain-minimised terms
/// when one side is assigned, and the global minimum off-diagonal distance
/// for unassigned pairs. Monotone in domain shrinkage by construction.
#[derive(Debug)]
pub struct QapBound {
    inst: QapInstance,
    vars: Vec<VarId>,
    min_offdiag: i64,
}

impl QapBound {
    pub fn new(inst: QapInstance, vars: Vec<VarId>) -> Self {
        let n = inst.n;
        let mut min_offdiag = i64::MAX;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    min_offdiag = min_offdiag.min(inst.d(a, b));
                }
            }
        }
        QapBound {
            inst,
            vars,
            min_offdiag: min_offdiag.max(0),
        }
    }
}

impl CostEval for QapBound {
    fn lower_bound(&self, view: StoreView<'_>) -> i64 {
        let n = self.inst.n;
        let mut lb = 0i64;
        for i in 0..n {
            let di = view.dom(self.vars[i]);
            let vi = bits::singleton(di);
            for j in 0..n {
                if i == j {
                    continue;
                }
                let f = self.inst.f(i, j);
                if f == 0 {
                    continue;
                }
                let dj = view.dom(self.vars[j]);
                let vj = bits::singleton(dj);
                let term = match (vi, vj) {
                    (Some(a), Some(b)) => self.inst.d(a as usize, b as usize),
                    (Some(a), None) => {
                        // Cheapest location still open to facility j.
                        let mut best = i64::MAX;
                        for b in bits::iter(dj) {
                            if b != a {
                                best = best.min(self.inst.d(a as usize, b as usize));
                            }
                        }
                        if best == i64::MAX {
                            return i64::MAX; // only the same location left: dead
                        }
                        best
                    }
                    (None, Some(b)) => {
                        let mut best = i64::MAX;
                        for a in bits::iter(di) {
                            if a != b {
                                best = best.min(self.inst.d(a as usize, b as usize));
                            }
                        }
                        if best == i64::MAX {
                            return i64::MAX;
                        }
                        best
                    }
                    (None, None) => self.min_offdiag,
                };
                lb += f * term;
            }
        }
        lb
    }

    fn eval(&self, assignment: &[Val]) -> i64 {
        // The model's variables are the first n; auxiliary variables (none
        // today) would follow them.
        let p: Vec<Val> = self.vars.iter().map(|&v| assignment[v]).collect();
        self.inst.cost(&p)
    }

    fn vars(&self) -> Vec<VarId> {
        self.vars.clone()
    }

    fn prune(&self, st: &mut PropState<'_>, incumbent: i64) -> Result<(), Failed> {
        // Fail-only pruning: compare the lower bound against the incumbent.
        let view = StoreView::new(st.layout(), st.store_words());
        if self.lower_bound(view) >= incumbent {
            Err(Failed)
        } else {
            Ok(())
        }
    }
}

/// Build the CP model for a QAP instance: a permutation of locations with
/// the quadratic objective under branch and bound.
pub fn qap_model(inst: &QapInstance) -> CompiledProblem {
    let n = inst.n;
    let mut m = Model::new(inst.name.clone());
    let p = m.new_vars(n, 0, (n - 1) as Val);
    m.post(Propag::AllDiffVal { vars: p.clone() });
    m.minimize(Arc::new(QapBound::new(inst.clone(), p)));
    m.compile()
}

#[cfg(test)]
mod tests {
    use super::*;
    use macs_engine::seq::{solve_seq, SeqOptions};

    /// Brute-force optimum by permutation enumeration (n ≤ 8).
    fn brute_force(inst: &QapInstance) -> i64 {
        fn perms(
            n: usize,
            cur: &mut Vec<Val>,
            used: &mut Vec<bool>,
            best: &mut i64,
            inst: &QapInstance,
        ) {
            if cur.len() == n {
                *best = (*best).min(inst.cost(cur));
                return;
            }
            for v in 0..n {
                if !used[v] {
                    used[v] = true;
                    cur.push(v as Val);
                    perms(n, cur, used, best, inst);
                    cur.pop();
                    used[v] = false;
                }
            }
        }
        let mut best = i64::MAX;
        perms(
            inst.n,
            &mut Vec::new(),
            &mut vec![false; inst.n],
            &mut best,
            inst,
        );
        best
    }

    fn tiny(n: usize) -> QapInstance {
        // Deterministic small dense instance.
        let mut flow = vec![0i64; n * n];
        let mut dist = vec![0i64; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    flow[i * n + j] = ((i * 3 + j * 5) % 7) as i64;
                    dist[i * n + j] = ((i + j) % 5 + 1) as i64;
                }
            }
        }
        QapInstance {
            name: format!("tiny{n}"),
            n,
            flow,
            dist,
        }
    }

    /// Regenerates `src/data/esc16e.dat` from the generator — the
    /// provenance tool behind the embedded instance. Inert unless
    /// `REGEN_QAP_DATA=1`.
    #[test]
    fn regen_embedded_esc16e() {
        if std::env::var("REGEN_QAP_DATA").is_err() {
            return;
        }
        let inst = QapInstance::esc16_like(0xE5C16E);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/src/data/esc16e.dat");
        std::fs::write(path, inst.to_qaplib()).expect("write esc16e.dat");
    }

    #[test]
    fn embedded_esc16e_loads_through_the_parser() {
        let inst = QapInstance::esc16e();
        assert_eq!(inst.n, 16);
        assert_eq!(inst.name, "esc16e");
        // Provenance lock: the data file is exactly the generator output.
        let gen = QapInstance::esc16_like(0xE5C16E);
        assert_eq!(inst.flow, gen.flow);
        assert_eq!(inst.dist, gen.dist);
        // Hypercube distances, symmetric sparse flows — the esc16 shape.
        assert_eq!(inst.d(0, 15), 4);
        for i in 0..16 {
            assert_eq!(inst.f(i, i), 0);
        }
    }

    #[test]
    fn sub_instance_takes_the_leading_block() {
        let full = QapInstance::esc16e();
        let sub = full.sub_instance(8);
        assert_eq!(sub.n, 8);
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(sub.f(a, b), full.f(a, b));
                assert_eq!(sub.d(a, b), full.d(a, b));
            }
        }
        assert_eq!(full.sub_instance(16).flow, full.flow, "identity at n = 16");
        // Solvable end to end at a small size.
        let prob = qap_model(&full.sub_instance(5));
        let r = solve_seq(&prob, &SeqOptions::default());
        assert!(r.best_cost.is_some());
    }

    #[test]
    fn parser_round_trips() {
        let inst = QapInstance::esc16_like(7);
        let text = inst.to_qaplib();
        let back = QapInstance::parse(&inst.name, &text).unwrap();
        assert_eq!(back.n, 16);
        assert_eq!(back.flow, inst.flow);
        assert_eq!(back.dist, inst.dist);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(QapInstance::parse("x", "").is_err());
        assert!(QapInstance::parse("x", "3 1 2").is_err());
        assert!(QapInstance::parse("x", "2 1 2 3 oops 1 2 3 4").is_err());
    }

    #[test]
    fn esc16_distances_are_hypercube() {
        let inst = QapInstance::esc16_like(1);
        assert_eq!(inst.d(0, 15), 4);
        assert_eq!(inst.d(5, 5), 0);
        assert_eq!(inst.d(0b0011, 0b0101), 2);
        // Symmetric, zero diagonal flows.
        for i in 0..16 {
            assert_eq!(inst.f(i, i), 0);
            for j in 0..16 {
                assert_eq!(inst.f(i, j), inst.f(j, i));
            }
        }
    }

    #[test]
    fn solver_matches_brute_force_on_small_instances() {
        for n in [4usize, 5, 6] {
            let inst = tiny(n);
            let expect = brute_force(&inst);
            let prob = qap_model(&inst);
            let r = solve_seq(&prob, &SeqOptions::default());
            assert_eq!(r.best_cost, Some(expect), "qap tiny{n}");
            let p = r.best_assignment.unwrap();
            assert_eq!(inst.cost(&p), expect);
        }
    }

    #[test]
    fn cube8_matches_brute_force() {
        let inst = QapInstance::cube8_like(3);
        let expect = brute_force(&inst);
        let prob = qap_model(&inst);
        let r = solve_seq(&prob, &SeqOptions::default());
        assert_eq!(r.best_cost, Some(expect));
    }

    #[test]
    fn lower_bound_is_sound_at_the_root() {
        let inst = tiny(5);
        let prob = qap_model(&inst);
        let bound = QapBound::new(inst.clone(), (0..5).collect());
        let root_lb = bound.lower_bound(StoreView::new(&prob.layout, prob.root.as_words()));
        assert!(
            root_lb <= brute_force(&inst),
            "root LB must not exceed optimum"
        );
    }
}
