//! The N-Queens problem (paper §VI: "Although simple, the N-Queens is
//! compute intensive and a typical problem used for benchmarks").
//!
//! Variables `q[i]` give the row of the queen in column `i`; no two queens
//! share a row or a diagonal.

use macs_engine::{CompiledProblem, Model, Propag, Val};

/// Constraint formulation of the queens model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueensModel {
    /// Pairwise disequalities on rows and both diagonals (weak propagation,
    /// large trees — the behaviour matching the paper's node counts).
    #[default]
    Pairwise,
    /// Three alldifferent constraints over rows and shifted diagonals
    /// (value consistency; smaller trees).
    AllDiff,
}

/// Build the `n`-queens problem.
pub fn queens(n: usize, model: QueensModel) -> CompiledProblem {
    assert!(n >= 1, "queens needs at least one column");
    let mut m = Model::new(format!("queens-{n}"));
    let q = m.new_vars(n, 0, (n - 1) as Val);
    match model {
        QueensModel::Pairwise => {
            for i in 0..n {
                for j in (i + 1)..n {
                    let d = (j - i) as i64;
                    m.post(Propag::NeqOffset {
                        x: q[i],
                        y: q[j],
                        c: 0,
                    });
                    m.post(Propag::NeqOffset {
                        x: q[i],
                        y: q[j],
                        c: d,
                    });
                    m.post(Propag::NeqOffset {
                        x: q[i],
                        y: q[j],
                        c: -d,
                    });
                }
            }
        }
        QueensModel::AllDiff => {
            // Rows.
            m.post(Propag::AllDiffVal { vars: q.clone() });
            // Diagonals via auxiliary shifted variables d1[i] = q[i] + i and
            // d2[i] = q[i] − i + (n−1) (kept non-negative).
            let d1 = m.new_vars(n, 0, (2 * n - 2) as Val);
            let d2 = m.new_vars(n, 0, (2 * n - 2) as Val);
            for i in 0..n {
                m.post(Propag::EqOffset {
                    x: d1[i],
                    y: q[i],
                    c: i as i64,
                });
                m.post(Propag::EqOffset {
                    x: d2[i],
                    y: q[i],
                    c: (n - 1 - i) as i64,
                });
            }
            m.post(Propag::AllDiffVal { vars: d1 });
            m.post(Propag::AllDiffVal { vars: d2 });
        }
    }
    m.compile()
}

/// Known solution counts (OEIS A000170) for validation.
pub const QUEENS_SOLUTIONS: [(usize, u64); 10] = [
    (4, 2),
    (5, 10),
    (6, 4),
    (7, 40),
    (8, 92),
    (9, 352),
    (10, 724),
    (11, 2680),
    (12, 14200),
    (13, 73712),
];

#[cfg(test)]
mod tests {
    use super::*;
    use macs_engine::seq::{solve_seq, SeqOptions};

    #[test]
    fn pairwise_counts_match_oeis() {
        for &(n, expect) in QUEENS_SOLUTIONS.iter().take(6) {
            let p = queens(n, QueensModel::Pairwise);
            let r = solve_seq(&p, &SeqOptions::default());
            assert_eq!(r.solutions, expect, "queens-{n}");
        }
    }

    #[test]
    fn alldiff_model_agrees_with_pairwise() {
        for n in [5usize, 6, 7, 8] {
            let a = solve_seq(&queens(n, QueensModel::Pairwise), &SeqOptions::default());
            let b = solve_seq(&queens(n, QueensModel::AllDiff), &SeqOptions::default());
            assert_eq!(a.solutions, b.solutions, "queens-{n}");
            // Stronger propagation must not enlarge the tree.
            assert!(b.nodes <= a.nodes, "queens-{n}: {} > {}", b.nodes, a.nodes);
        }
    }

    #[test]
    fn seventeen_queens_store_size_matches_paper() {
        let p = queens(17, QueensModel::Pairwise);
        assert_eq!(p.layout.cells_bytes(), 136, "the paper's 136-byte store");
    }

    #[test]
    fn solutions_place_no_attacking_queens() {
        let p = queens(7, QueensModel::Pairwise);
        let r = solve_seq(&p, &SeqOptions::default());
        for sol in &r.kept {
            for i in 0..7 {
                for j in (i + 1)..7 {
                    assert_ne!(sol[i], sol[j]);
                    assert_ne!(
                        (sol[i] as i64 - sol[j] as i64).abs(),
                        (j - i) as i64,
                        "diagonal attack in {sol:?}"
                    );
                }
            }
        }
    }
}
