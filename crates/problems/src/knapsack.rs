//! 0/1 knapsack (optimisation): select items maximising value within a
//! weight budget. Modelled as minimisation of the *forgone* value, since
//! MaCS objectives minimise.

use macs_engine::{
    BranchKind, Brancher, CompiledProblem, Model, Propag, Val, ValSelect, VarSelect,
};

/// One knapsack item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KnapsackItem {
    pub weight: i64,
    pub value: i64,
}

/// Build the knapsack problem: variables `x[i] ∈ {0,1}`; variable `n` is
/// the forgone value `Σv − Σ vᵢxᵢ` (minimised). The achieved value is
/// `total_value − best_cost`.
pub fn knapsack(items: &[KnapsackItem], capacity: i64) -> CompiledProblem {
    assert!(!items.is_empty());
    let total_value: i64 = items.iter().map(|it| it.value).sum();
    assert!(items.iter().all(|it| it.weight >= 0 && it.value >= 0));

    let mut m = Model::new(format!("knapsack-{}", items.len()));
    let xs = m.new_vars(items.len(), 0, 1);
    let forgone = m.new_var(0, total_value.max(1) as Val);

    // Σ wᵢxᵢ ≤ capacity
    let weight_terms: Vec<(i64, usize)> = items
        .iter()
        .zip(&xs)
        .map(|(it, &x)| (it.weight, x))
        .collect();
    m.post(Propag::LinearLe {
        terms: weight_terms,
        k: capacity,
    });

    // Σ vᵢxᵢ + forgone = total_value
    let mut value_terms: Vec<(i64, usize)> = items
        .iter()
        .zip(&xs)
        .map(|(it, &x)| (it.value, x))
        .collect();
    value_terms.push((1, forgone));
    m.post(Propag::LinearEq {
        terms: value_terms,
        k: total_value,
    });

    m.minimize_var(forgone);
    // Take-the-item-first ordering gives good incumbents early.
    m.branching(Brancher::new(
        VarSelect::InputOrder,
        ValSelect::Max,
        BranchKind::Eager,
    ));
    m.compile()
}

/// Dynamic-programming oracle: the optimal achievable value.
pub fn knapsack_dp(items: &[KnapsackItem], capacity: i64) -> i64 {
    let cap = capacity.max(0) as usize;
    let mut best = vec![0i64; cap + 1];
    for it in items {
        let w = it.weight as usize;
        if w > cap {
            continue;
        }
        for c in (w..=cap).rev() {
            best[c] = best[c].max(best[c - w] + it.value);
        }
    }
    best[cap]
}

#[cfg(test)]
mod tests {
    use super::*;
    use macs_engine::seq::{solve_seq, SeqOptions};

    fn items(seed: u64, n: usize) -> Vec<KnapsackItem> {
        let mut s = seed;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as i64
        };
        (0..n)
            .map(|_| KnapsackItem {
                weight: next() % 20 + 1,
                value: next() % 30 + 1,
            })
            .collect()
    }

    #[test]
    fn matches_dp_oracle() {
        for seed in [1u64, 2, 3] {
            let its = items(seed, 12);
            let cap = 40;
            let expect = knapsack_dp(&its, cap);
            let total: i64 = its.iter().map(|i| i.value).sum();
            let prob = knapsack(&its, cap);
            let r = solve_seq(&prob, &SeqOptions::default());
            let achieved = total - r.best_cost.expect("feasible: empty set always fits");
            assert_eq!(achieved, expect, "seed {seed}");
        }
    }

    #[test]
    fn solution_respects_capacity() {
        let its = items(7, 10);
        let cap = 35;
        let prob = knapsack(&its, cap);
        let r = solve_seq(&prob, &SeqOptions::default());
        let a = r.best_assignment.unwrap();
        let weight: i64 = its
            .iter()
            .zip(&a)
            .map(|(it, &x)| it.weight * x as i64)
            .sum();
        assert!(weight <= cap);
    }

    #[test]
    fn zero_capacity_takes_nothing() {
        let its = items(9, 6);
        let total: i64 = its.iter().map(|i| i.value).sum();
        let prob = knapsack(&its, 0);
        let r = solve_seq(&prob, &SeqOptions::default());
        assert_eq!(r.best_cost, Some(total), "everything forgone");
    }
}
