//! Graph colouring — the third workload family (after N-Queens
//! satisfaction and QAP optimisation) and the canonical *race* workload:
//! deciding k-colourability is exactly the satisfiability question a
//! first-solution race answers, and iterating k gives the chromatic
//! number.
//!
//! Instances come from a subset of the DIMACS `.col` format (`c` comment
//! lines, one `p edge <vertices> <edges>` line, `e <u> <v>` edge lines,
//! 1-based vertices — the subset every DIMACS colouring benchmark file
//! uses). Three instances are embedded:
//!
//! | instance | vertices | edges | χ | origin |
//! |---|---|---|---|---|
//! | `myciel3` | 11 | 20 | 4 | Mycielski(C₅) — the Grötzsch graph |
//! | `myciel4` | 23 | 71 | 5 | Mycielski(myciel3) |
//! | `queen5_5` | 25 | 160 | 5 | attacking pairs on a 5×5 queens board |
//!
//! The Mycielski instances ship as literal `.col` text (exercising the
//! parser); the queen graph is generated. Mycielski graphs stay
//! triangle-free while their chromatic number grows — colouring them is
//! propagation-resistant, so the search actually branches; queen graphs
//! are clique-dense (every row is a 5-clique), the opposite regime.
//!
//! The model assigns one variable per vertex (domain `0..k`) with a
//! disequality per edge, vertices ordered **highest degree first** (the
//! classic largest-first heuristic: constrained vertices early, so
//! conflicts surface near the root) under input-order branching.

use macs_engine::{CompiledProblem, Model, Propag, SearchMode, Val};

/// `myciel3.col` — Mycielski(C₅), 11 vertices, 20 edges, χ = 4.
pub const MYCIEL3_COL: &str = include_str!("data/myciel3.col");

/// `myciel4.col` — Mycielski(myciel3), 23 vertices, 71 edges, χ = 5.
pub const MYCIEL4_COL: &str = include_str!("data/myciel4.col");

/// An undirected graph to colour (0-based vertices, deduplicated edges).
#[derive(Clone, Debug)]
pub struct ColoringInstance {
    pub name: String,
    /// Number of vertices.
    pub n: usize,
    /// Edges as `(u, v)` with `u < v`.
    pub edges: Vec<(usize, usize)>,
}

impl ColoringInstance {
    /// Parse the DIMACS `.col` subset: `c` comments, `p edge n m`,
    /// `e u v` (1-based endpoints). Self-loops are rejected; duplicate
    /// edges are merged.
    pub fn parse(name: impl Into<String>, text: &str) -> Result<Self, String> {
        let name = name.into();
        let mut n: Option<usize> = None;
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            let mut parts = line.split_whitespace();
            match parts.next() {
                None | Some("c") => continue,
                Some("p") => {
                    if n.is_some() {
                        return Err(format!("{name}: duplicate p line at line {}", lineno + 1));
                    }
                    let kind = parts.next().unwrap_or("");
                    if kind != "edge" && kind != "col" {
                        return Err(format!(
                            "{name}: unsupported problem kind {kind:?} at line {} (expected `p edge`)",
                            lineno + 1
                        ));
                    }
                    let nv: usize = parts.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                        format!("{name}: bad vertex count at line {}", lineno + 1)
                    })?;
                    if nv == 0 {
                        return Err(format!("{name}: empty graph"));
                    }
                    n = Some(nv);
                }
                Some("e") => {
                    let n = n.ok_or_else(|| {
                        format!("{name}: edge before the p line at line {}", lineno + 1)
                    })?;
                    let mut endpoint = || -> Result<usize, String> {
                        let v: usize = parts
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| format!("{name}: bad edge at line {}", lineno + 1))?;
                        if v == 0 || v > n {
                            return Err(format!(
                                "{name}: vertex {v} out of 1..={n} at line {}",
                                lineno + 1
                            ));
                        }
                        Ok(v - 1)
                    };
                    let (u, v) = (endpoint()?, endpoint()?);
                    if u == v {
                        return Err(format!("{name}: self-loop at line {}", lineno + 1));
                    }
                    edges.push((u.min(v), u.max(v)));
                }
                Some(other) => {
                    return Err(format!(
                        "{name}: unknown line kind {other:?} at line {}",
                        lineno + 1
                    ))
                }
            }
        }
        let n = n.ok_or_else(|| format!("{name}: no p line"))?;
        edges.sort_unstable();
        edges.dedup();
        Ok(ColoringInstance { name, n, edges })
    }

    /// The embedded Grötzsch graph (χ = 4).
    pub fn myciel3() -> Self {
        ColoringInstance::parse("myciel3", MYCIEL3_COL).expect("embedded myciel3 parses")
    }

    /// The embedded Mycielski-4 graph (χ = 5).
    pub fn myciel4() -> Self {
        ColoringInstance::parse("myciel4", MYCIEL4_COL).expect("embedded myciel4 parses")
    }

    /// The 5×5 queen graph (χ = 5): vertices are board squares, edges the
    /// attacking pairs (row, column, both diagonals).
    pub fn queen5_5() -> Self {
        let side = 5usize;
        let mut edges = Vec::new();
        for a in 0..side * side {
            for b in (a + 1)..side * side {
                let (r1, c1) = (a / side, a % side);
                let (r2, c2) = (b / side, b % side);
                if r1 == r2 || c1 == c2 || r1.abs_diff(r2) == c1.abs_diff(c2) {
                    edges.push((a, b));
                }
            }
        }
        ColoringInstance {
            name: "queen5_5".into(),
            n: side * side,
            edges,
        }
    }

    /// Per-vertex degrees.
    pub fn degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            d[u] += 1;
            d[v] += 1;
        }
        d
    }

    /// Vertices ordered highest degree first (ties by index) — the
    /// branching order of [`coloring_model`].
    pub fn degree_order(&self) -> Vec<usize> {
        let d = self.degrees();
        let mut order: Vec<usize> = (0..self.n).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(d[v]), v));
        order
    }

    /// Is `colors` (one colour per vertex, in *instance* vertex order) a
    /// proper colouring?
    pub fn is_proper(&self, colors: &[Val]) -> bool {
        colors.len() == self.n && self.edges.iter().all(|&(u, v)| colors[u] != colors[v])
    }
}

/// Build the k-colourability model of `inst`: variable `i` is the colour
/// of the i-th vertex in [`ColoringInstance::degree_order`] (largest
/// degree first), input-order branching, one disequality per edge. The
/// solution count equals the chromatic polynomial P(G, k); zero solutions
/// means k < χ(G).
pub fn coloring_model(inst: &ColoringInstance, k: usize) -> CompiledProblem {
    assert!(k >= 1, "need at least one colour");
    let mut m = Model::new(format!("{}-k{k}", inst.name));
    let vars = m.new_vars(inst.n, 0, (k - 1) as Val);
    // Degree-ordered branching: permute vertices so input-order branching
    // visits the most constrained vertex first.
    let order = inst.degree_order();
    let mut var_of = vec![0usize; inst.n];
    for (slot, &vertex) in order.iter().enumerate() {
        var_of[vertex] = slot;
    }
    for &(u, v) in &inst.edges {
        m.post(Propag::NeqOffset {
            x: vars[var_of[u]],
            y: vars[var_of[v]],
            c: 0,
        });
    }
    m.branching(macs_engine::Brancher::new(
        macs_engine::VarSelect::InputOrder,
        macs_engine::ValSelect::Min,
        macs_engine::BranchKind::Eager,
    ));
    m.compile()
}

/// The chromatic number of `inst`, proved by the sequential oracle: the
/// smallest `k ≤ max_k` whose k-colourability model is satisfiable (each
/// probe is a sequential first-solution run — the single-worker face of
/// the race). `None` if `max_k` colours do not suffice.
pub fn chromatic_number(inst: &ColoringInstance, max_k: usize) -> Option<usize> {
    for k in 1..=max_k {
        let prob = coloring_model(inst, k);
        let opts = macs_engine::seq::SeqOptions {
            mode: SearchMode::FirstSolution,
            ..Default::default()
        };
        if macs_engine::seq::solve_seq(&prob, &opts).solutions > 0 {
            return Some(k);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use macs_engine::seq::{solve_seq, SeqOptions};

    #[test]
    fn parser_reads_the_embedded_instances() {
        let g = ColoringInstance::myciel3();
        assert_eq!((g.n, g.edges.len()), (11, 20));
        let g = ColoringInstance::myciel4();
        assert_eq!((g.n, g.edges.len()), (23, 71));
        let q = ColoringInstance::queen5_5();
        assert_eq!((q.n, q.edges.len()), (25, 160));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for (bad, why) in [
            ("e 1 2\n", "edge before p"),
            ("p edge 0 0\n", "empty graph"),
            ("p edge 3 1\ne 1 4\n", "vertex out of range"),
            ("p edge 3 1\ne 2 2\n", "self-loop"),
            ("p edge 3 1\np edge 3 1\n", "duplicate p"),
            ("p matrix 3 1\n", "unsupported kind"),
            ("q 1 2\n", "unknown line"),
            ("c only comments\n", "no p line"),
        ] {
            assert!(ColoringInstance::parse("bad", bad).is_err(), "{why}");
        }
        // Duplicate edges merge; `p col` is accepted as an alias.
        let g = ColoringInstance::parse("dup", "p col 3 2\ne 1 2\ne 2 1\n").unwrap();
        assert_eq!(g.edges, vec![(0, 1)]);
    }

    #[test]
    fn groetzsch_chromatic_number_is_four() {
        let g = ColoringInstance::myciel3();
        assert_eq!(chromatic_number(&g, 6), Some(4));
        // And the count at χ matches the chromatic polynomial P(G, 4).
        let r = solve_seq(&coloring_model(&g, 4), &SeqOptions::default());
        assert_eq!(r.solutions, 12480);
        // One colour short: unsatisfiable.
        let r = solve_seq(&coloring_model(&g, 3), &SeqOptions::default());
        assert_eq!(r.solutions, 0);
    }

    #[test]
    fn queen_graph_has_exactly_240_five_colourings() {
        let q = ColoringInstance::queen5_5();
        let r = solve_seq(&coloring_model(&q, 5), &SeqOptions::default());
        assert_eq!(r.solutions, 240);
        for a in &r.kept {
            // The model permutes vertices (degree order); check through
            // the model's own constraints.
            assert!(coloring_model(&q, 5).check_assignment(a));
        }
    }

    #[test]
    fn myciel4_needs_five_colours() {
        let g = ColoringInstance::myciel4();
        assert_eq!(chromatic_number(&g, 6), Some(5));
        assert!(chromatic_number(&g, 4).is_none());
    }

    #[test]
    fn degree_order_puts_heaviest_first() {
        let g = ColoringInstance::myciel3();
        let order = g.degree_order();
        let d = g.degrees();
        for w in order.windows(2) {
            assert!(d[w[0]] >= d[w[1]]);
        }
        // The Grötzsch apex (vertex 11, degree 5... actually the apex has
        // degree 5 and the shadows 4): the max-degree vertex leads.
        assert_eq!(d[order[0]], *d.iter().max().unwrap());
    }

    #[test]
    fn proper_colouring_check_agrees_with_the_model() {
        let g = ColoringInstance::myciel3();
        let prob = coloring_model(&g, 4);
        let r = solve_seq(&prob, &SeqOptions::first_solution());
        let a = r.best_assignment.unwrap();
        // Map model variables (degree order) back to instance vertices.
        let order = g.degree_order();
        let mut colors = vec![0 as Val; g.n];
        for (slot, &vertex) in order.iter().enumerate() {
            colors[vertex] = a[slot];
        }
        assert!(g.is_proper(&colors));
        assert!(!g.is_proper(&vec![0; g.n]), "monochrome is improper");
    }
}
