//! Golomb ruler (optimisation): place `n` marks so that all pairwise
//! differences are distinct, minimising the ruler length.
//!
//! A classic CP optimisation benchmark with a highly unbalanced B&B tree —
//! a good complement to the QAP for exercising bound dissemination.

use macs_engine::{
    BranchKind, Brancher, CompiledProblem, Model, Propag, Val, ValSelect, VarSelect,
};

/// Known optimal lengths (OEIS A003022) for validation.
pub const GOLOMB_OPTIMAL: [(usize, i64); 7] =
    [(2, 1), (3, 3), (4, 6), (5, 11), (6, 17), (7, 25), (8, 34)];

/// Build the `n`-mark Golomb ruler problem with ruler length at most
/// `max_len` (pass e.g. `n * n` for a safe bound).
pub fn golomb_ruler(n: usize, max_len: u32) -> CompiledProblem {
    assert!(n >= 2);
    let mut m = Model::new(format!("golomb-{n}"));
    // First mark pinned at 0; the rest range over the ruler.
    let mut marks = vec![m.new_var(0, 0)];
    marks.extend((1..n).map(|_| m.new_var(0, max_len as Val)));

    // Marks strictly increasing.
    for w in marks.windows(2) {
        // m[i] ≤ m[i+1] − 1
        m.post(Propag::LeOffset {
            x: w[0],
            y: w[1],
            c: -1,
        });
    }

    // Difference variables d_{ij} = m[j] − m[i], all distinct.
    let mut diffs = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let d = m.new_var(1, max_len as Val);
            m.post(Propag::LinearEq {
                terms: vec![(1, marks[j]), (-1, marks[i]), (-1, d)],
                k: 0,
            });
            diffs.push(d);
        }
    }
    m.post(Propag::AllDiffVal {
        vars: diffs.clone(),
    });

    // Symmetry breaking: the first difference is smaller than the last.
    let first = diffs[0];
    let last = *diffs.last().unwrap();
    if n > 2 {
        m.post(Propag::LeOffset {
            x: first,
            y: last,
            c: -1,
        });
    }

    m.minimize_var(marks[n - 1]);
    m.branching(Brancher::new(
        VarSelect::InputOrder,
        ValSelect::Min,
        BranchKind::Eager,
    ));
    m.compile()
}

#[cfg(test)]
mod tests {
    use super::*;
    use macs_engine::seq::{solve_seq, SeqOptions};

    #[test]
    fn optimal_lengths_match_known_values() {
        for &(n, expect) in GOLOMB_OPTIMAL.iter().take(5) {
            let p = golomb_ruler(n, (n * n) as u32);
            let r = solve_seq(&p, &SeqOptions::default());
            assert_eq!(r.best_cost, Some(expect), "golomb-{n}");
        }
    }

    #[test]
    fn optimal_ruler_is_valid() {
        let n = 5;
        let p = golomb_ruler(n, 25);
        let r = solve_seq(&p, &SeqOptions::default());
        let a = r.best_assignment.unwrap();
        let marks: Vec<u32> = a[..n].to_vec();
        assert_eq!(marks[0], 0);
        let mut diffs = std::collections::HashSet::new();
        for i in 0..n {
            for j in (i + 1)..n {
                assert!(marks[j] > marks[i], "marks must increase");
                assert!(diffs.insert(marks[j] - marks[i]), "duplicate difference");
            }
        }
        assert_eq!(*marks.last().unwrap() as i64, 11);
    }

    #[test]
    fn six_marks() {
        let p = golomb_ruler(6, 30);
        let r = solve_seq(&p, &SeqOptions::default());
        assert_eq!(r.best_cost, Some(17));
    }
}
