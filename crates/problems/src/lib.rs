//! Problem model library for MaCS.
//!
//! The paper evaluates a satisfaction problem (N-Queens, §VI) and an
//! optimisation problem (QAP on the QAPLIB instance `esc16e`, §VI), and
//! states that "the behaviour observed in these two examples is well
//! transported for other problems of the same classes". This crate builds
//! those two models plus four more of both classes for exactly that wider
//! exercise:
//!
//! * [`queens()`] — N-Queens (satisfaction; pairwise or alldifferent model);
//! * [`qap`] — Quadratic Assignment Problem with a QAPLIB-format parser,
//!   an embedded `esc16`-class instance, and a branch-and-bound lower
//!   bound;
//! * [`coloring`] — graph k-colouring with a DIMACS-subset `.col` parser,
//!   embedded Mycielski/queen-graph instances and degree-ordered
//!   branching (the first-solution-race workload);
//! * [`golomb`] — Golomb ruler (optimisation);
//! * [`magic`] — magic squares (satisfaction);
//! * [`langford()`] — Langford pairings L(2, n) (satisfaction);
//! * [`knapsack()`] — 0/1 knapsack (optimisation).

pub mod coloring;
pub mod golomb;
pub mod knapsack;
pub mod langford;
pub mod magic;
pub mod qap;
pub mod queens;

pub use coloring::{chromatic_number, coloring_model, ColoringInstance};
pub use golomb::golomb_ruler;
pub use knapsack::{knapsack, KnapsackItem};
pub use langford::langford;
pub use magic::magic_square;
pub use qap::{qap_model, QapInstance};
pub use queens::{queens, QueensModel};
