//! Magic squares (satisfaction): fill an `n × n` grid with `1..=n²`, each
//! once, so every row, column and main diagonal sums to `n(n²+1)/2`.

use macs_engine::{
    BranchKind, Brancher, CompiledProblem, Model, Propag, Val, ValSelect, VarSelect,
};

/// The magic constant for order `n`.
pub fn magic_constant(n: usize) -> i64 {
    let n = n as i64;
    n * (n * n + 1) / 2
}

/// Build the order-`n` magic square problem. Cell `(r, c)` is variable
/// `r * n + c` with values `1..=n²`.
pub fn magic_square(n: usize) -> CompiledProblem {
    assert!(n >= 1);
    let mut m = Model::new(format!("magic-{n}"));
    let cells = m.new_vars(n * n, 1, (n * n) as Val);
    m.post(Propag::AllDiffVal {
        vars: cells.clone(),
    });
    let k = magic_constant(n);
    for r in 0..n {
        let terms: Vec<(i64, usize)> = (0..n).map(|c| (1i64, cells[r * n + c])).collect();
        m.post(Propag::LinearEq { terms, k });
    }
    for c in 0..n {
        let terms: Vec<(i64, usize)> = (0..n).map(|r| (1i64, cells[r * n + c])).collect();
        m.post(Propag::LinearEq { terms, k });
    }
    let diag: Vec<(i64, usize)> = (0..n).map(|i| (1i64, cells[i * n + i])).collect();
    m.post(Propag::LinearEq { terms: diag, k });
    let anti: Vec<(i64, usize)> = (0..n).map(|i| (1i64, cells[i * n + (n - 1 - i)])).collect();
    m.post(Propag::LinearEq { terms: anti, k });

    m.branching(Brancher::new(
        VarSelect::FirstFail,
        ValSelect::Min,
        BranchKind::Eager,
    ));
    m.compile()
}

#[cfg(test)]
mod tests {
    use super::*;
    use macs_engine::seq::{solve_seq, SeqOptions};

    #[test]
    fn magic_constants() {
        assert_eq!(magic_constant(3), 15);
        assert_eq!(magic_constant(4), 34);
        assert_eq!(magic_constant(5), 65);
    }

    #[test]
    fn order_three_has_eight_squares() {
        // The unique 3×3 magic square up to the 8 symmetries.
        let p = magic_square(3);
        let r = solve_seq(&p, &SeqOptions::default());
        assert_eq!(r.solutions, 8);
        for sol in &r.kept {
            let vals: Vec<i64> = sol.iter().map(|&v| v as i64).collect();
            for row in 0..3 {
                assert_eq!(vals[row * 3] + vals[row * 3 + 1] + vals[row * 3 + 2], 15);
            }
            for col in 0..3 {
                assert_eq!(vals[col] + vals[3 + col] + vals[6 + col], 15);
            }
            assert_eq!(vals[0] + vals[4] + vals[8], 15);
            assert_eq!(vals[2] + vals[4] + vals[6], 15);
        }
    }

    #[test]
    fn order_one_and_two() {
        let p1 = magic_square(1);
        assert_eq!(solve_seq(&p1, &SeqOptions::default()).solutions, 1);
        let p2 = magic_square(2);
        assert_eq!(solve_seq(&p2, &SeqOptions::default()).solutions, 0);
    }
}
