//! High-level solving API.

use std::time::Duration;

use macs_domain::Val;
use macs_engine::CompiledProblem;
use macs_runtime::{run_parallel, RunReport, RuntimeConfig};
use macs_search::SearchMode;

use crate::processor::{CpOutput, CpProcessor};

/// Configuration of a parallel solve: the runtime (topology, stealing,
/// polling, release, bound dissemination) plus solver-level options.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    pub runtime: RuntimeConfig,
    /// Keep at most this many concrete solutions per worker (counting is
    /// unaffected).
    pub keep_solutions: usize,
    /// Exhaustive search, or a first-solution race (satisfaction problems;
    /// the winner flag spreads hierarchically — see
    /// [`macs_search::mode`]).
    pub mode: SearchMode,
}

impl SolverConfig {
    /// `n` workers on a single shared-memory node.
    pub fn with_workers(n: usize) -> Self {
        SolverConfig {
            runtime: RuntimeConfig::single_node(n),
            keep_solutions: 16,
            mode: SearchMode::Exhaustive,
        }
    }

    /// The paper's cluster shape: `total` workers in nodes of
    /// `cores_per_node`.
    pub fn clustered(total: usize, cores_per_node: usize) -> Self {
        SolverConfig {
            runtime: RuntimeConfig::clustered(total, cores_per_node),
            ..SolverConfig::with_workers(1)
        }
    }

    /// An N-level machine shape (see
    /// [`RuntimeConfig::hierarchical`]), e.g. `&[2, 2, 4]` with
    /// `node_prefix = 1` for 2 nodes × 2 sockets × 4 cores.
    pub fn hierarchical(
        shape: &[usize],
        node_prefix: usize,
    ) -> Result<Self, macs_runtime::TopoError> {
        Ok(SolverConfig {
            runtime: RuntimeConfig::hierarchical(shape, node_prefix)?,
            ..SolverConfig::with_workers(1)
        })
    }

    /// Builder-style mode switch.
    pub fn with_mode(mut self, mode: SearchMode) -> Self {
        self.mode = mode;
        self
    }
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig::with_workers(1)
    }
}

/// Result of a parallel solve.
#[derive(Debug)]
pub struct SolveOutcome {
    /// Solutions found. For optimisation problems this counts *improving*
    /// solutions (each strictly better than the incumbent at the time).
    pub solutions: u64,
    /// Total stores processed across all workers (the paper's "Total
    /// Nodes").
    pub nodes: u64,
    /// Optimal cost (optimisation problems; `None` if unsatisfiable or a
    /// satisfaction problem).
    pub best_cost: Option<i64>,
    /// An optimal (or sample) assignment.
    pub best_assignment: Option<Vec<Val>>,
    /// Collected sample solutions.
    pub kept: Vec<Vec<Val>>,
    /// First-solution races: wall time from run start to the winning
    /// solution (`None` otherwise).
    pub first_solution: Option<Duration>,
    /// First-solution races: nodes whose expansion started after the win
    /// — the measurable dissemination overhead of the race.
    pub nodes_after_win: u64,
    /// Full runtime report (worker states, steal statistics, traffic).
    pub report: RunReport<CpOutput>,
}

/// Solve `prob` on the MaCS runtime according to `cfg`.
pub fn solve_parallel(prob: &CompiledProblem, cfg: &SolverConfig) -> SolveOutcome {
    // Arm the runtime's winner-flag machinery to match the processors'
    // search mode (one knob for callers, kept in step here).
    let mut runtime = cfg.runtime.clone();
    runtime.mode = cfg.mode;
    let report = run_parallel(
        &runtime,
        prob.layout.store_words(),
        &[CpProcessor::root_item(prob)],
        |_worker| CpProcessor::new(prob, cfg.keep_solutions, cfg.mode),
    );

    let solutions: u64 = report.outputs.iter().map(|o| o.solutions).sum();
    let nodes: u64 = report.outputs.iter().map(|o| o.nodes).sum();

    let mut best_cost = None;
    let mut best_assignment = None;
    if prob.objective.is_some() && report.incumbent != i64::MAX {
        best_cost = Some(report.incumbent);
        // The worker whose submission set the final incumbent recorded the
        // matching assignment.
        for o in &report.outputs {
            if let Some((c, a)) = &o.best {
                if *c == report.incumbent {
                    best_assignment = Some(a.clone());
                    break;
                }
            }
        }
    }

    let mut kept: Vec<Vec<Val>> = Vec::new();
    for o in &report.outputs {
        for a in &o.kept {
            if kept.len() >= cfg.keep_solutions {
                break;
            }
            kept.push(a.clone());
        }
    }
    if best_assignment.is_none() {
        best_assignment = kept.first().cloned();
    }

    SolveOutcome {
        solutions,
        nodes,
        best_cost,
        best_assignment,
        kept,
        first_solution: report.first_solution,
        nodes_after_win: report.nodes_after_win(),
        report,
    }
}

/// Builder-style front end over [`solve_parallel`].
#[derive(Clone, Debug, Default)]
pub struct Solver {
    cfg: SolverConfig,
}

impl Solver {
    pub fn new(cfg: SolverConfig) -> Self {
        Solver { cfg }
    }

    /// Access the configuration for tweaking.
    pub fn config_mut(&mut self) -> &mut SolverConfig {
        &mut self.cfg
    }

    pub fn solve(&self, prob: &CompiledProblem) -> SolveOutcome {
        solve_parallel(prob, &self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macs_engine::seq::{solve_seq, SeqOptions};
    use macs_engine::{Model, Propag, Val};

    fn queens(n: usize) -> CompiledProblem {
        let mut m = Model::new(format!("queens-{n}"));
        let q = m.new_vars(n, 0, (n - 1) as Val);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = (j - i) as i64;
                m.post(Propag::NeqOffset {
                    x: q[i],
                    y: q[j],
                    c: 0,
                });
                m.post(Propag::NeqOffset {
                    x: q[i],
                    y: q[j],
                    c: d,
                });
                m.post(Propag::NeqOffset {
                    x: q[i],
                    y: q[j],
                    c: -d,
                });
            }
        }
        m.compile()
    }

    /// Minimise total "cost" x+2y subject to x+y ≥ 5, via a linear model.
    fn small_opt() -> CompiledProblem {
        let mut m = Model::new("opt");
        let x = m.new_var(0, 9);
        let y = m.new_var(0, 9);
        let cost = m.new_var(0, 30);
        m.post(Propag::LinearLe {
            terms: vec![(-1, x), (-1, y)],
            k: -5,
        });
        m.post(Propag::LinearEq {
            terms: vec![(1, x), (2, y), (-1, cost)],
            k: 0,
        });
        m.minimize_var(cost);
        m.compile()
    }

    #[test]
    fn parallel_counts_match_sequential_across_topologies() {
        for n in [6usize, 7, 8] {
            let prob = queens(n);
            let seq = solve_seq(&prob, &SeqOptions::default());
            for cfg in [
                SolverConfig::with_workers(1),
                SolverConfig::with_workers(4),
                SolverConfig::clustered(4, 2),
                SolverConfig::clustered(6, 2),
            ] {
                let out = solve_parallel(&prob, &cfg);
                assert_eq!(
                    out.solutions, seq.solutions,
                    "queens-{n} {:?}",
                    cfg.runtime.topology
                );
            }
        }
    }

    #[test]
    fn parallel_optimum_matches_sequential() {
        let prob = small_opt();
        let seq = solve_seq(&prob, &SeqOptions::default());
        assert_eq!(seq.best_cost, Some(5)); // x=5, y=0
        for workers in [1, 2, 4] {
            let out = solve_parallel(&prob, &SolverConfig::with_workers(workers));
            assert_eq!(out.best_cost, Some(5));
            let a = out.best_assignment.as_ref().unwrap();
            assert!(prob.check_assignment(a));
            assert_eq!(a[2] as i64, 5);
        }
    }

    #[test]
    fn first_solution_race_returns_a_valid_solution() {
        let prob = queens(8);
        let cfg = SolverConfig::with_workers(2).with_mode(macs_search::SearchMode::FirstSolution);
        let out = solve_parallel(&prob, &cfg);
        assert!(out.solutions >= 1);
        let a = out.best_assignment.as_ref().expect("one solution kept");
        assert!(prob.check_assignment(a));
        // Early cut: far fewer nodes than the full 8-queens enumeration.
        let full = solve_seq(&prob, &SeqOptions::default());
        assert!(out.nodes < full.nodes);
        assert!(out.first_solution.is_some(), "winner time recorded");
        assert!(out.first_solution.unwrap() <= out.report.wall);
    }

    #[test]
    fn race_on_a_hierarchical_machine_accounts_for_abandoned_work() {
        let prob = queens(9);
        let cfg = SolverConfig::hierarchical(&[2, 2, 2], 1)
            .unwrap()
            .with_mode(macs_search::SearchMode::FirstSolution);
        let out = solve_parallel(&prob, &cfg);
        assert!(out.solutions >= 1);
        assert!(prob.check_assignment(out.best_assignment.as_ref().unwrap()));
        // The race terminated early: processed + abandoned stays below the
        // full enumeration's node count.
        let full = solve_seq(&prob, &SeqOptions::default());
        assert!(out.nodes + out.report.abandoned_items() < full.nodes);
    }

    #[test]
    fn unsat_problem_reports_zero() {
        let prob = queens(3);
        let out = solve_parallel(&prob, &SolverConfig::with_workers(3));
        assert_eq!(out.solutions, 0);
        assert!(out.best_assignment.is_none());
        assert_eq!(out.best_cost, None);
    }

    #[test]
    fn hierarchical_solve_exercises_remote_path() {
        let prob = queens(9);
        let cfg = SolverConfig::clustered(4, 2);
        let out = solve_parallel(&prob, &cfg);
        let seq = solve_seq(&prob, &SeqOptions::default());
        assert_eq!(out.solutions, seq.solutions);
        // Not guaranteed every run steals remotely, but traffic must exist
        // (metadata scans at minimum).
        assert!(out.report.traffic.remote_reads > 0);
    }

    #[test]
    fn phase_split_is_recorded() {
        let prob = queens(8);
        let out = solve_parallel(&prob, &SolverConfig::with_workers(2));
        let phase = out
            .report
            .workers
            .iter()
            .fold(std::time::Duration::ZERO, |acc, w| {
                acc + w.phase.propagate + w.phase.split
            });
        assert!(phase > std::time::Duration::ZERO);
    }
}
