//! **MaCS** — the parallel complete constraint solver (paper §IV).
//!
//! This crate plugs the CP kernel (`macs-engine`) into the hierarchical
//! work-stealing runtime (`macs-runtime`): a [`CpProcessor`] executes the
//! three-step solving procedure — **propagation** to fixpoint,
//! **splitting** into child stores, and (in the runtime) **restoring** a
//! new store — while the runtime moves stores between workers' pools to
//! keep the computation balanced.
//!
//! The public entry point is [`solve_parallel`] (plus the [`Solver`]
//! builder); the sequential reference solver is re-exported as
//! [`solve_seq`] for baselines and oracles.
//!
//! ```
//! use macs_core::{Solver, SolverConfig};
//! use macs_engine::{Model, Propag};
//!
//! // x + y = 7, x ≠ y, two workers on one node.
//! let mut m = Model::new("demo");
//! let x = m.new_var(0, 9);
//! let y = m.new_var(0, 9);
//! m.post(Propag::LinearEq { terms: vec![(1, x), (1, y)], k: 7 });
//! m.post(Propag::NeqOffset { x, y, c: 0 });
//! let prob = m.compile();
//! let out = Solver::new(SolverConfig::with_workers(2)).solve(&prob);
//! assert_eq!(out.solutions, 8);
//! ```

pub mod processor;
pub mod solve;

pub use processor::{CpOutput, CpProcessor};
pub use solve::{solve_parallel, SolveOutcome, Solver, SolverConfig};

pub use macs_engine::seq::{solve_seq, SeqOptions, SeqResult};
pub use macs_engine::{CompiledProblem, Model};
pub use macs_runtime::{RunReport, RuntimeConfig};
pub use macs_search::SearchMode;
