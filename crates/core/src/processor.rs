//! The CP work-item processor: one store in, zero or more child stores out.
//!
//! This is a thin adapter between the runtime's [`Processor`] contract and
//! the shared [`SearchKernel`] — all propagate/branch/split logic lives in
//! `macs-search`; this type only decides what to do with each
//! [`StepOutcome`] (count, keep, cancel) and routes the runtime's
//! incumbent into the kernel.

use macs_domain::Val;
use macs_engine::CompiledProblem;
use macs_runtime::{ProcCtx, Processor, Step};
use macs_search::{SearchKernel, SearchMode, StepOutcome};

/// Per-worker results of a constraint solve.
#[derive(Clone, Debug, Default)]
pub struct CpOutput {
    /// Solutions found by this worker (for optimisation: solutions that
    /// improved the incumbent known to this worker at the time).
    pub solutions: u64,
    /// Stores processed by this worker.
    pub nodes: u64,
    /// Individual propagator executions.
    pub prop_runs: u64,
    /// Best (cost, assignment) this worker saw (optimisation).
    pub best: Option<(i64, Vec<Val>)>,
    /// Up to `keep_solutions` assignments (satisfaction).
    pub kept: Vec<Vec<Val>>,
}

/// The MaCS worker's inner cycle as a runtime [`Processor`]: drive the
/// shared search kernel, push all children but the first and continue with
/// the first in place.
pub struct CpProcessor<'a> {
    kernel: SearchKernel<'a>,
    out: CpOutput,
    keep_solutions: usize,
    /// Under [`SearchMode::FirstSolution`] (satisfaction only) the first
    /// solution requests global cancellation — the executor's winner flag
    /// does the rest.
    mode: SearchMode,
}

impl<'a> CpProcessor<'a> {
    pub fn new(prob: &'a CompiledProblem, keep_solutions: usize, mode: SearchMode) -> Self {
        CpProcessor {
            kernel: SearchKernel::new(prob),
            out: CpOutput::default(),
            keep_solutions,
            mode,
        }
    }

    /// The root work item for this problem (the compiled root store).
    pub fn root_item(prob: &CompiledProblem) -> Vec<u64> {
        SearchKernel::root_item(prob)
    }
}

impl Processor for CpProcessor<'_> {
    type Output = CpOutput;

    fn process(&mut self, buf: &mut [u64], ctx: &mut ProcCtx<'_>) -> Step {
        self.out.nodes += 1;
        let step = match self.kernel.step(buf, ctx.incumbent) {
            StepOutcome::Failed => Step::Leaf,
            StepOutcome::Solution(sol) => {
                match sol.cost {
                    Some(cost) => {
                        // Improving solutions only (the kernel re-checked
                        // against the incumbent atomically).
                        if sol.improved {
                            self.out.solutions += 1;
                            ctx.solution();
                            self.out.best = Some((cost, sol.assignment));
                        }
                    }
                    None => {
                        self.out.solutions += 1;
                        ctx.solution();
                        if self.out.kept.len() < self.keep_solutions {
                            self.out.kept.push(sol.assignment);
                        }
                        if self.mode.is_race() {
                            ctx.cancel();
                        }
                    }
                }
                Step::Leaf
            }
            StepOutcome::Children(_) => {
                // Continue depth-first with the first child; push the rest
                // in reverse so the owner pops them in exploration order
                // (thieves take from the opposite end — the oldest, largest
                // sub-problems).
                self.kernel.continue_with_first(buf, |c| ctx.push(c));
                Step::Continue
            }
        };
        let t = self.kernel.take_timers();
        ctx.phase.propagate += t.propagate;
        ctx.phase.split += t.split;
        step
    }

    fn finish(mut self) -> CpOutput {
        self.out.prop_runs = self.kernel.prop_runs();
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macs_engine::{Model, Propag};
    use macs_runtime::{run_parallel, RuntimeConfig};

    fn tiny_problem() -> CompiledProblem {
        // x, y ∈ 0..=3, x ≠ y: 12 solutions.
        let mut m = Model::new("tiny");
        let x = m.new_var(0, 3);
        let y = m.new_var(0, 3);
        m.post(Propag::NeqOffset { x, y, c: 0 });
        m.compile()
    }

    #[test]
    fn processor_counts_solutions() {
        let prob = tiny_problem();
        let cfg = RuntimeConfig::single_node(1);
        let report = run_parallel(
            &cfg,
            prob.layout.store_words(),
            &[CpProcessor::root_item(&prob)],
            |_| CpProcessor::new(&prob, 100, SearchMode::Exhaustive),
        );
        let sols: u64 = report.outputs.iter().map(|o| o.solutions).sum();
        assert_eq!(sols, 12);
        let kept: usize = report.outputs.iter().map(|o| o.kept.len()).sum();
        assert_eq!(kept, 12);
        for o in &report.outputs {
            for a in &o.kept {
                assert!(prob.check_assignment(a));
            }
        }
    }

    #[test]
    fn first_solution_race_cancels_early() {
        let prob = tiny_problem();
        let cfg = RuntimeConfig::single_node(2);
        let report = run_parallel(
            &cfg,
            prob.layout.store_words(),
            &[CpProcessor::root_item(&prob)],
            |_| CpProcessor::new(&prob, 4, SearchMode::FirstSolution),
        );
        let sols: u64 = report.outputs.iter().map(|o| o.solutions).sum();
        assert!(sols >= 1, "at least one solution before cancel");
        assert!(sols < 12, "cancellation must cut the enumeration short");
        assert!(report.first_solution.is_some(), "winner time recorded");
    }
}
