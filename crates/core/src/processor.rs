//! The CP work-item processor: one store in, zero or more child stores out.

use macs_domain::{Store, StoreView, Val};
use macs_engine::{CompiledProblem, Engine, PropOutcome, ScheduleSeed};
use macs_runtime::stats::timed;
use macs_runtime::{ProcCtx, Processor, Step};

/// Per-worker results of a constraint solve.
#[derive(Clone, Debug, Default)]
pub struct CpOutput {
    /// Solutions found by this worker (for optimisation: solutions that
    /// improved the incumbent known to this worker at the time).
    pub solutions: u64,
    /// Stores processed by this worker.
    pub nodes: u64,
    /// Individual propagator executions.
    pub prop_runs: u64,
    /// Best (cost, assignment) this worker saw (optimisation).
    pub best: Option<(i64, Vec<Val>)>,
    /// Up to `keep_solutions` assignments (satisfaction).
    pub kept: Vec<Vec<Val>>,
}

/// The MaCS worker's inner cycle as a runtime [`Processor`]: propagate the
/// store, and either fail (leaf), emit a solution (leaf), or split —
/// pushing all children but the first and continuing with the first in
/// place.
pub struct CpProcessor<'a> {
    prob: &'a CompiledProblem,
    engine: Engine,
    /// Scratch buffer used by the brancher to build children.
    scratch: Vec<u64>,
    /// Children of the current split, in exploration order.
    children: Vec<Vec<u64>>,
    out: CpOutput,
    keep_solutions: usize,
    /// Stop after the first solution (satisfaction only): request global
    /// cancellation once a solution is found.
    first_only: bool,
}

impl<'a> CpProcessor<'a> {
    pub fn new(prob: &'a CompiledProblem, keep_solutions: usize, first_only: bool) -> Self {
        CpProcessor {
            prob,
            engine: Engine::new(prob),
            scratch: vec![0u64; prob.layout.store_words()],
            children: Vec::new(),
            out: CpOutput::default(),
            keep_solutions,
            first_only,
        }
    }

    /// The root work item for this problem (the compiled root store).
    pub fn root_item(prob: &CompiledProblem) -> Vec<u64> {
        prob.root.as_words().to_vec()
    }
}

impl Processor for CpProcessor<'_> {
    type Output = CpOutput;

    fn process(&mut self, buf: &mut [u64], ctx: &mut ProcCtx<'_>) -> Step {
        let prob = self.prob;
        let layout = &prob.layout;
        self.out.nodes += 1;

        // The branch-and-bound bound in force for this store.
        let incumbent = if prob.objective.is_some() {
            ctx.incumbent.get()
        } else {
            i64::MAX
        };

        // Stores created by a split carry their branch variable in the
        // header; anything else (root, stolen stores of unknown history)
        // gets a full reschedule.
        let seed = match Store::from_words(layout, buf).branch_var() {
            Some(v) => ScheduleSeed::Var(v),
            None => ScheduleSeed::All,
        };

        // --- step 1: propagation ------------------------------------------
        let outcome = timed(&mut ctx.phase.propagate, || {
            self.engine.propagate(prob, buf, incumbent, seed)
        });
        if outcome == PropOutcome::Failed {
            return Step::Leaf;
        }

        // --- step 2: splitting (or a solution) -----------------------------
        let var = timed(&mut ctx.phase.split, || {
            prob.brancher.choose_var(layout, buf)
        });
        let Some(var) = var else {
            // All variables assigned: a solution.
            let view = StoreView::new(layout, buf);
            let assignment = view.assignment().expect("complete assignment");
            match prob.objective.cost(view) {
                Some(cost) => {
                    // Improving solutions only (the incumbent may have moved
                    // since propagation; `submit` re-checks atomically).
                    if ctx.incumbent.submit(cost) {
                        self.out.solutions += 1;
                        ctx.solution();
                        self.out.best = Some((cost, assignment));
                    }
                }
                None => {
                    self.out.solutions += 1;
                    ctx.solution();
                    if self.out.kept.len() < self.keep_solutions {
                        self.out.kept.push(assignment);
                    }
                    if self.first_only {
                        ctx.cancel();
                    }
                }
            }
            return Step::Leaf;
        };

        let n = timed(&mut ctx.phase.split, || {
            self.children.clear();
            let children = &mut self.children;
            let count = prob.brancher.split(
                prob,
                buf,
                &mut self.scratch,
                |c| children.push(c.to_vec()),
                var,
            );
            // Stamp the bound in force into the children (diagnostics).
            for c in children.iter_mut() {
                c[1] = incumbent as u64;
            }
            count
        });
        debug_assert!(n >= 1);

        // Continue depth-first with the first child; push the rest in
        // reverse so the owner pops them in exploration order (thieves take
        // from the opposite end — the oldest, largest sub-problems).
        buf.copy_from_slice(&self.children[0]);
        for c in self.children[1..].iter().rev() {
            ctx.push(c);
        }
        Step::Continue
    }

    fn finish(mut self) -> CpOutput {
        self.out.prop_runs = self.engine.runs;
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macs_engine::{Model, Propag};
    use macs_runtime::{run_parallel, RuntimeConfig};

    fn tiny_problem() -> CompiledProblem {
        // x, y ∈ 0..=3, x ≠ y: 12 solutions.
        let mut m = Model::new("tiny");
        let x = m.new_var(0, 3);
        let y = m.new_var(0, 3);
        m.post(Propag::NeqOffset { x, y, c: 0 });
        m.compile()
    }

    #[test]
    fn processor_counts_solutions() {
        let prob = tiny_problem();
        let cfg = RuntimeConfig::single_node(1);
        let report = run_parallel(
            &cfg,
            prob.layout.store_words(),
            &[CpProcessor::root_item(&prob)],
            |_| CpProcessor::new(&prob, 100, false),
        );
        let sols: u64 = report.outputs.iter().map(|o| o.solutions).sum();
        assert_eq!(sols, 12);
        let kept: usize = report.outputs.iter().map(|o| o.kept.len()).sum();
        assert_eq!(kept, 12);
        for o in &report.outputs {
            for a in &o.kept {
                assert!(prob.check_assignment(a));
            }
        }
    }

    #[test]
    fn first_only_cancels_early() {
        let prob = tiny_problem();
        let cfg = RuntimeConfig::single_node(2);
        let report = run_parallel(
            &cfg,
            prob.layout.store_words(),
            &[CpProcessor::root_item(&prob)],
            |_| CpProcessor::new(&prob, 4, true),
        );
        let sols: u64 = report.outputs.iter().map(|o| o.solutions).sum();
        assert!(sols >= 1, "at least one solution before cancel");
        assert!(sols < 12, "cancellation must cut the enumeration short");
    }
}
