//! Multi-tenant solve service: a job scheduler with worker leases above
//! the MaCS runtime and simulator.
//!
//! The paper's runtime solves one problem on the whole machine. This
//! crate turns that machine into a *service*: N concurrent solve jobs
//! from different tenants share one
//! [`MachineTopology`](macs_topo::MachineTopology), each holding a contiguous,
//! node-aligned **worker-set lease** that can grow and shrink as load
//! changes, behind admission control and a bounded request queue.
//!
//! The layering mirrors the rest of the repo:
//!
//! * [`lease`] — the lease ledger (contiguous node-aligned first-fit)
//!   and the [`LeasePolicy`] knob (`static[:N]` vs
//!   `queue-depth[:MIN,MAX]`);
//! * [`workload`] — seeded open-loop trace generation: Poisson
//!   arrivals, log-normal service classes drawn from the problem zoo;
//! * [`sched`] — the backend-independent [`SchedCore`] state machine
//!   and the [`JobScheduler`] trait, with job-conservation and
//!   lease-disjointness invariants rechecked at every transition;
//! * [`sim_backend`] — the scheduler as a discrete-event source: each
//!   job's solve is itself simulated, bit-deterministically, and
//!   resizes rescale the job fluidly in worker-ns;
//! * [`threaded_backend`] — the same decisions executed on real
//!   threads: each job runs in a [`macs_gpi::World`] windowed onto a
//!   shared cell file, and lease changes park/unpark live workers
//!   through the GPI lease/parked cells;
//! * [`job`] / [`report`] — per-job records, the sequential oracle and
//!   the service-level metrics (throughput, sojourn percentiles, queue
//!   depth, rejection rate, cross-tenant fairness).

pub mod job;
pub mod lease;
pub mod report;
pub mod sched;
pub mod sim_backend;
pub mod threaded_backend;
pub mod workload;

pub use job::{JobAnswer, JobSpec, Oracle};
pub use lease::{Lease, LeaseLedger, LeasePolicy};
pub use report::{JobRecord, ServiceReport};
pub use sched::{Action, JobScheduler, SchedCore, ServiceConfig};
pub use sim_backend::SimBackend;
pub use threaded_backend::ThreadedBackend;
pub use workload::{generate, WorkloadConfig, CLASS_NAMES, NUM_CLASSES};
