//! The backend-independent scheduler core.
//!
//! Everything a scheduler *decides* — admission, queueing, lease grants,
//! shrinks and regrows — lives here as a deterministic state machine;
//! the two backends only differ in how they *execute* the resulting
//! [`Action`]s (virtual events vs. real threads parking on GPI cells).
//! Because the decisions are shared, a scheduling bug shows up
//! identically in the bit-deterministic simulator, where the property
//! suite can pin it.

use std::collections::{BTreeMap, VecDeque};

use macs_topo::MachineTopology;

use crate::job::JobSpec;
use crate::lease::{Lease, LeaseLedger, LeasePolicy};
use crate::report::ServiceReport;

/// Static shape of the service: the machine, the admission bound and the
/// lease policy.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Shared-memory nodes in the machine.
    pub nodes: usize,
    /// Workers per node (leases are node-aligned, so this is the lease
    /// granularity in workers).
    pub cores_per_node: usize,
    /// Admission control: arrivals beyond this many waiting jobs are
    /// rejected outright (bounded request queue).
    pub queue_cap: usize,
    /// Lease sizing policy.
    pub policy: LeasePolicy,
    /// Cost model for the simulator backend's inner per-job runs (the
    /// virtual worker-ns every bill is denominated in). Load a
    /// calibrated model here and the BENCH_9-style sojourn numbers
    /// become predictions instead of internally-consistent fictions.
    pub cost_model: macs_sim::CostModel,
}

impl ServiceConfig {
    pub fn new(nodes: usize, cores_per_node: usize) -> Self {
        ServiceConfig {
            nodes,
            cores_per_node,
            queue_cap: 16,
            policy: LeasePolicy::Static { nodes: 1 },
            cost_model: macs_sim::CostModel::default(),
        }
    }

    pub fn total_workers(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// The whole machine as a two-level topology (what a single-tenant
    /// run would use; leases hand out sub-ranges of it).
    pub fn machine(&self) -> MachineTopology {
        MachineTopology::try_new(&[self.nodes, self.cores_per_node], 1)
            .expect("service machine shape")
    }

    /// The sub-topology of one lease: its nodes renumbered from zero,
    /// inner shape preserved.
    pub fn lease_topology(&self, lease: &Lease) -> MachineTopology {
        MachineTopology::try_new(&[lease.nodes, self.cores_per_node], 1)
            .expect("lease sub-topology shape")
    }
}

/// What the core tells a backend to do. Backends apply actions in order;
/// the core has already updated its own books.
#[derive(Clone, Debug)]
pub enum Action {
    /// Queue full — bounce the job.
    Reject(JobSpec),
    /// Dispatch `job` onto `lease` now.
    Start { job: JobSpec, lease: Lease },
    /// Narrow a running job's lease (preempting its trailing nodes).
    /// `lease` is the post-shrink state.
    Shrink { lease: Lease },
    /// Widen a running job's lease back over freed nodes. `lease` is the
    /// post-grow state.
    Grow { lease: Lease },
}

/// Monotone job-flow counters; their conservation law is the suite's
/// first invariant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    pub submitted: u64,
    pub rejected: u64,
    pub completed: u64,
}

/// The deterministic scheduler state machine.
#[derive(Clone, Debug)]
pub struct SchedCore {
    cfg: ServiceConfig,
    ledger: LeaseLedger,
    queue: VecDeque<JobSpec>,
    /// Running jobs and their *current* leases (updated on resize).
    running: BTreeMap<u64, Lease>,
    pub counters: Counters,
    pub max_queue_depth: usize,
    /// Invariant violations observed so far (empty on a correct core —
    /// the checks run after every transition, not just at drain).
    pub violations: Vec<String>,
}

impl SchedCore {
    pub fn new(cfg: ServiceConfig) -> Self {
        let ledger = LeaseLedger::new(cfg.nodes, cfg.cores_per_node);
        SchedCore {
            cfg,
            ledger,
            queue: VecDeque::new(),
            running: BTreeMap::new(),
            counters: Counters::default(),
            max_queue_depth: 0,
            violations: Vec::new(),
        }
    }

    pub fn cfg(&self) -> &ServiceConfig {
        &self.cfg
    }

    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    pub fn lease_of(&self, job: u64) -> Option<&Lease> {
        self.running.get(&job)
    }

    /// True once every submitted job is accounted for and nothing is
    /// queued or running.
    pub fn drained(&self) -> bool {
        self.queue.is_empty() && self.running.is_empty()
    }

    /// A job arrives: admit or reject, then dispatch whatever now fits.
    pub fn arrive(&mut self, job: JobSpec) -> Vec<Action> {
        let mut out = Vec::new();
        self.counters.submitted += 1;
        if self.queue.len() >= self.cfg.queue_cap {
            self.counters.rejected += 1;
            out.push(Action::Reject(job));
        } else {
            self.queue.push_back(job);
            self.max_queue_depth = self.max_queue_depth.max(self.queue.len());
        }
        self.dispatch(&mut out);
        self.check();
        out
    }

    /// A running job finished: free its lease, dispatch from the queue,
    /// and regrow survivors if the queue drained.
    pub fn complete(&mut self, job: u64) -> Vec<Action> {
        let mut out = Vec::new();
        self.counters.completed += 1;
        if self.running.remove(&job).is_none() {
            self.violations
                .push(format!("completion for job {job} which was not running"));
        }
        self.ledger.free(job);
        self.dispatch(&mut out);
        self.regrow(&mut out);
        self.check();
        out
    }

    /// Drain the queue head-first: claim a lease as wide as the policy
    /// grants (narrower if the machine is fragmented), and under an
    /// elastic policy shrink the widest running job when the machine is
    /// full with work still waiting. Each shrink frees at least one node,
    /// so the loop always terminates.
    fn dispatch(&mut self, out: &mut Vec<Action>) {
        while let Some(head) = self.queue.front().copied() {
            let want = self.cfg.policy.grant(self.queue.len()).min(self.cfg.nodes);
            let granted = (1..=want).rev().find_map(|w| self.ledger.claim(head.id, w));
            if let Some(lease) = granted {
                self.queue.pop_front();
                self.running.insert(head.id, lease);
                out.push(Action::Start { job: head, lease });
                continue;
            }
            let Some(floor) = self.cfg.policy.shrink_floor() else {
                break;
            };
            // Widest running job above the floor; ties broken towards the
            // oldest job (BTreeMap order makes this deterministic).
            let victim = self
                .running
                .values()
                .filter(|l| l.nodes > floor)
                .max_by_key(|l| (l.nodes, std::cmp::Reverse(l.job)))
                .copied();
            let Some(v) = victim else {
                break;
            };
            let shrunk = self.ledger.shrink(&v, (v.nodes / 2).max(floor));
            self.running.insert(shrunk.job, shrunk);
            out.push(Action::Shrink { lease: shrunk });
        }
    }

    /// Queue empty under an elastic policy: let shrunken jobs grow back
    /// over their own freed nodes (never past the original grant, never
    /// into another tenant's lease).
    fn regrow(&mut self, out: &mut Vec<Action>) {
        if self.cfg.policy.shrink_floor().is_none() || !self.queue.is_empty() {
            return;
        }
        let jobs: Vec<u64> = self.running.keys().copied().collect();
        for job in jobs {
            let l = self.running[&job];
            if l.nodes < l.max_nodes {
                let grown = self.ledger.grow(&l, l.max_nodes);
                if grown.nodes != l.nodes {
                    self.running.insert(job, grown);
                    out.push(Action::Grow { lease: grown });
                }
            }
        }
    }

    /// Recheck every scheduler invariant; failures are recorded, not
    /// panicked, so a property suite can surface all of them at once.
    pub fn check(&mut self) {
        let c = self.counters;
        let accounted =
            c.rejected + c.completed + self.queue.len() as u64 + self.running.len() as u64;
        if c.submitted != accounted {
            self.violations.push(format!(
                "job conservation broken: submitted {} != rejected {} + completed {} + queued {} + running {}",
                c.submitted,
                c.rejected,
                c.completed,
                self.queue.len(),
                self.running.len()
            ));
        }
        let leases: Vec<Lease> = self.running.values().copied().collect();
        if let Err(e) = self.ledger.check_disjoint(&leases) {
            self.violations.push(e);
        }
        let held: usize = leases.iter().map(|l| l.nodes).sum();
        if held + self.ledger.free_nodes() != self.cfg.nodes {
            self.violations.push(format!(
                "ledger drift: {held} held + {} free != {} machine nodes",
                self.ledger.free_nodes(),
                self.cfg.nodes
            ));
        }
    }
}

/// One scheduler, two executions: the threaded runtime (leases park and
/// unpark real workers through their job's GPI cell block) and the
/// discrete-event simulator (leases rescale a fluid job in worker-ns,
/// bit-deterministically).
pub trait JobScheduler {
    fn backend_name(&self) -> &'static str;

    /// Run the whole trace to drain and report.
    fn serve(&mut self, cfg: &ServiceConfig, trace: &[JobSpec]) -> ServiceReport;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u64) -> JobSpec {
        JobSpec {
            id,
            tenant: id as usize % 2,
            class: 0,
            arrival_ns: id * 10,
            seed: id | 1,
        }
    }

    fn cfg(policy: LeasePolicy) -> ServiceConfig {
        ServiceConfig {
            nodes: 4,
            cores_per_node: 2,
            queue_cap: 2,
            policy,
            cost_model: Default::default(),
        }
    }

    #[test]
    fn static_policy_queues_and_rejects_at_the_cap() {
        let mut core = SchedCore::new(cfg(LeasePolicy::Static { nodes: 2 }));
        // Two jobs fill the machine (2 + 2 nodes), two more queue, the
        // fifth bounces off the cap.
        let mut starts = 0;
        let mut rejects = 0;
        for id in 0..5 {
            for a in core.arrive(spec(id)) {
                match a {
                    Action::Start { .. } => starts += 1,
                    Action::Reject(_) => rejects += 1,
                    other => panic!("static policy resized: {other:?}"),
                }
            }
        }
        assert_eq!((starts, rejects), (2, 1));
        assert_eq!(core.queue_depth(), 2);
        assert!(core.violations.is_empty(), "{:?}", core.violations);
        // Completions drain the queue in arrival order.
        let acts = core.complete(0);
        assert!(matches!(
            acts[..],
            [Action::Start {
                job: JobSpec { id: 2, .. },
                ..
            }]
        ));
        for id in [1, 2, 3, 4] {
            core.complete(id);
        }
        // Job 4 was rejected, so completing it breaks conservation — the
        // core must notice.
        assert!(!core.violations.is_empty());
    }

    #[test]
    fn queue_depth_policy_shrinks_to_admit_and_regrows_on_drain() {
        let mut core = SchedCore::new(cfg(LeasePolicy::QueueDepth { min: 1, max: 4 }));
        // First arrival gets the whole machine.
        let acts = core.arrive(spec(0));
        assert!(
            matches!(&acts[..], [Action::Start { lease, .. }] if lease.nodes == 4),
            "{acts:?}"
        );
        // Second arrival: machine full, job 0 shrinks, job 1 starts.
        let acts = core.arrive(spec(1));
        let mut saw_shrink = false;
        let mut saw_start = false;
        for a in &acts {
            match a {
                Action::Shrink { lease } => {
                    assert_eq!(lease.job, 0);
                    assert!(lease.nodes < 4);
                    saw_shrink = true;
                }
                Action::Start { job, .. } => {
                    assert_eq!(job.id, 1);
                    saw_start = true;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_shrink && saw_start, "{acts:?}");
        assert!(core.violations.is_empty(), "{:?}", core.violations);
        // Job 1 finishes with an empty queue: job 0 grows back.
        let acts = core.complete(1);
        assert!(
            acts.iter().any(|a| matches!(a, Action::Grow { lease }
                if lease.job == 0 && lease.nodes == 4)),
            "{acts:?}"
        );
        core.complete(0);
        assert!(core.drained());
        assert!(core.violations.is_empty(), "{:?}", core.violations);
    }
}
