//! Job identity and the sequential oracle.
//!
//! Every job the service runs is also solvable by the single-threaded
//! engine, and its class's sequential answer is a pure function of the
//! instance — so the oracle is computed once per class and every
//! completed job is checked against it. Enumeration classes must agree
//! on the solution count, optimisation classes on the best cost; a
//! scheduler that loses work items, cancels the wrong job or crosses two
//! tenants' cell blocks fails this check before any statistical metric
//! moves.

use macs_engine::seq::{solve_seq, SeqOptions};
use macs_engine::CompiledProblem;

use crate::workload::{build_class, class_is_optimisation, CLASS_NAMES, NUM_CLASSES};

/// One job of the open-loop trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobSpec {
    pub id: u64,
    pub tenant: usize,
    /// Index into the service-class table (see [`crate::workload`]).
    pub class: usize,
    /// Virtual arrival instant (nanoseconds from trace start).
    pub arrival_ns: u64,
    /// Per-job solver seed (victim selection inside the job's lease).
    pub seed: u64,
}

/// What a finished job reported — the slice of the solve the oracle can
/// check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobAnswer {
    pub solutions: u64,
    pub nodes: u64,
    pub best_cost: Option<i64>,
}

/// Per-class sequential reference answers, computed lazily and cached —
/// the trace may hold hundreds of jobs but only [`NUM_CLASSES`] distinct
/// instances.
pub struct Oracle {
    answers: [Option<JobAnswer>; NUM_CLASSES],
    problems: [Option<CompiledProblem>; NUM_CLASSES],
}

impl Default for Oracle {
    fn default() -> Self {
        Oracle::new()
    }
}

impl Oracle {
    pub fn new() -> Self {
        Oracle {
            answers: [None; NUM_CLASSES],
            problems: [const { None }; NUM_CLASSES],
        }
    }

    /// The compiled problem for `class` (built once, then shared).
    pub fn problem(&mut self, class: usize) -> &CompiledProblem {
        self.problems[class].get_or_insert_with(|| build_class(class))
    }

    /// The sequential answer for `class` (solved once, then cached).
    pub fn answer(&mut self, class: usize) -> JobAnswer {
        if let Some(a) = self.answers[class] {
            return a;
        }
        let seq = {
            let prob = self.problem(class);
            solve_seq(prob, &SeqOptions::default())
        };
        let a = JobAnswer {
            solutions: seq.solutions,
            nodes: seq.nodes,
            best_cost: seq.best_cost,
        };
        self.answers[class] = Some(a);
        a
    }

    /// Check a completed job's answer against the class oracle.
    /// Optimisation classes must reproduce the optimal cost; enumeration
    /// classes the exact solution count. (Node counts legitimately differ
    /// in parallel branch-and-bound — a better-travelled incumbent prunes
    /// differently — so they are reported but not gated.)
    pub fn verify(&mut self, class: usize, got: &JobAnswer) -> Result<(), String> {
        let want = self.answer(class);
        if class_is_optimisation(class) {
            if got.best_cost != want.best_cost {
                return Err(format!(
                    "class {}: best cost {:?} != sequential optimum {:?}",
                    CLASS_NAMES[class], got.best_cost, want.best_cost
                ));
            }
        } else if got.solutions != want.solutions {
            return Err(format!(
                "class {}: {} solutions != sequential count {}",
                CLASS_NAMES[class], got.solutions, want.solutions
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_caches_and_detects_divergence() {
        let mut oracle = Oracle::new();
        let want = oracle.answer(0);
        assert_eq!(want.solutions, 92, "queens-8 has 92 solutions");
        // Cached: same answer, no recompute drift.
        assert_eq!(oracle.answer(0), want);
        assert!(oracle.verify(0, &want).is_ok());
        let wrong = JobAnswer {
            solutions: want.solutions + 1,
            ..want
        };
        assert!(oracle.verify(0, &wrong).is_err());
    }

    #[test]
    fn optimisation_oracle_gates_on_cost_not_nodes() {
        let mut oracle = Oracle::new();
        let want = oracle.answer(1);
        assert!(want.best_cost.is_some(), "golomb-7 is an optimisation");
        let other_nodes = JobAnswer {
            nodes: want.nodes * 2,
            ..want
        };
        assert!(oracle.verify(1, &other_nodes).is_ok());
        let wrong_cost = JobAnswer {
            best_cost: want.best_cost.map(|c| c + 1),
            ..want
        };
        assert!(oracle.verify(1, &wrong_cost).is_err());
    }
}
