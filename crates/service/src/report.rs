//! Service-level metrics: what a multi-tenant solve service is judged
//! by, computed identically for both backends.

use crate::job::JobAnswer;

/// The full life of one job as the service saw it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobRecord {
    pub id: u64,
    pub tenant: usize,
    pub class: usize,
    /// Virtual (sim) or scaled-wall (threaded) instants, nanoseconds.
    pub arrival_ns: u64,
    pub start_ns: u64,
    pub finish_ns: u64,
    /// True if admission control bounced the job (queue full). Rejected
    /// jobs carry no timing beyond `arrival_ns` and no answer.
    pub rejected: bool,
    /// Nodes granted at dispatch.
    pub lease_nodes: usize,
    /// Workers granted at dispatch.
    pub workers: usize,
    /// Lease resizes applied while running (shrinks + grows).
    pub resizes: u32,
    /// Worker-nanoseconds consumed: the integral of lease width over the
    /// job's run — the fairness axis (a tenant's bill).
    pub worker_ns: u64,
    /// The checkable slice of the solve.
    pub answer: JobAnswer,
    /// Simulator backend: the inner [`macs_sim::SimReport::digest`] of
    /// the job's own run, folded into the service digest so same-seed
    /// service runs are pinned all the way down to each job's event
    /// trace. Zero on the threaded backend (wall time is not
    /// reproducible).
    pub sim_digest: u64,
}

impl JobRecord {
    /// Queueing delay: dispatch minus arrival.
    pub fn wait_ns(&self) -> u64 {
        self.start_ns.saturating_sub(self.arrival_ns)
    }

    /// Sojourn time: completion minus arrival (what a tenant feels).
    pub fn sojourn_ns(&self) -> u64 {
        self.finish_ns.saturating_sub(self.arrival_ns)
    }
}

/// Everything one service run produced.
#[derive(Clone, Debug, Default)]
pub struct ServiceReport {
    /// Which backend produced this ("sim" or "threaded").
    pub backend: &'static str,
    /// One record per job of the trace, in job-id order (rejected jobs
    /// included).
    pub records: Vec<JobRecord>,
    /// Tenants the workload was generated for.
    pub tenants: usize,
    /// Deepest the request queue ever got.
    pub max_queue_depth: usize,
    /// Arrival of the first job to completion of the last (ns).
    pub makespan_ns: u64,
    /// Scheduler-invariant violations (job conservation, lease
    /// disjointness, ledger drift). Always empty on a correct scheduler;
    /// the property suite asserts exactly that.
    pub violations: Vec<String>,
}

impl ServiceReport {
    pub fn completed(&self) -> u64 {
        self.records.iter().filter(|r| !r.rejected).count() as u64
    }

    pub fn rejected(&self) -> u64 {
        self.records.iter().filter(|r| r.rejected).count() as u64
    }

    pub fn rejection_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.rejected() as f64 / self.records.len() as f64
    }

    /// Completed jobs per (virtual or scaled-wall) second.
    pub fn throughput_per_sec(&self) -> f64 {
        self.completed() as f64 / (self.makespan_ns.max(1) as f64 / 1e9)
    }

    /// Sojourn-time percentile over completed jobs (`p` in 0..=100, e.g.
    /// 50, 99, 99.9). Nearest-rank on the sorted sample; 0 if nothing
    /// completed.
    pub fn sojourn_percentile_ns(&self, p: f64) -> u64 {
        let mut s: Vec<u64> = self
            .records
            .iter()
            .filter(|r| !r.rejected)
            .map(|r| r.sojourn_ns())
            .collect();
        if s.is_empty() {
            return 0;
        }
        s.sort_unstable();
        let rank = ((p / 100.0) * s.len() as f64).ceil() as usize;
        s[rank.clamp(1, s.len()) - 1]
    }

    /// Worker-nanoseconds billed per tenant (fairness axis).
    pub fn tenant_worker_ns(&self) -> Vec<u64> {
        let mut per = vec![0u64; self.tenants];
        for r in &self.records {
            if !r.rejected && r.tenant < per.len() {
                per[r.tenant] += r.worker_ns;
            }
        }
        per
    }

    /// Max/min worker-seconds across tenants that completed work — 1.0 is
    /// perfectly fair; `f64::INFINITY` means a tenant was starved to
    /// zero while another ran.
    pub fn fairness_ratio(&self) -> f64 {
        let active: Vec<u64> = self
            .tenant_worker_ns()
            .into_iter()
            .filter(|&ns| ns > 0)
            .collect();
        let served_tenants: std::collections::BTreeSet<usize> = self
            .records
            .iter()
            .filter(|r| !r.rejected)
            .map(|r| r.tenant)
            .collect();
        if served_tenants.len() > active.len() {
            return f64::INFINITY;
        }
        match (active.iter().max(), active.iter().min()) {
            (Some(&max), Some(&min)) if min > 0 => max as f64 / min as f64,
            _ => 1.0,
        }
    }

    /// FNV-1a fold of every deterministic field: counters, per-job
    /// timings, answers and inner sim digests. Two same-seed simulator
    /// service runs must agree bit for bit (the threaded backend's wall
    /// times make its digest a label, not a pin).
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(self.records.len() as u64);
        mix(self.tenants as u64);
        mix(self.max_queue_depth as u64);
        mix(self.makespan_ns);
        mix(self.violations.len() as u64);
        for r in &self.records {
            mix(r.id);
            mix(r.tenant as u64);
            mix(r.class as u64);
            mix(r.arrival_ns);
            mix(r.start_ns);
            mix(r.finish_ns);
            mix(r.rejected as u64);
            mix(r.lease_nodes as u64);
            mix(r.workers as u64);
            mix(r.resizes as u64);
            mix(r.worker_ns);
            mix(r.answer.solutions);
            mix(r.answer.nodes);
            mix(r.answer.best_cost.map(|c| c as u64 ^ 1).unwrap_or(0));
            mix(r.sim_digest);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, tenant: usize, arrival: u64, finish: u64, worker_ns: u64) -> JobRecord {
        JobRecord {
            id,
            tenant,
            class: 0,
            arrival_ns: arrival,
            start_ns: arrival,
            finish_ns: finish,
            rejected: false,
            lease_nodes: 1,
            workers: 4,
            resizes: 0,
            worker_ns,
            answer: JobAnswer::default(),
            sim_digest: 0,
        }
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut report = ServiceReport {
            tenants: 2,
            makespan_ns: 1_000_000_000,
            ..Default::default()
        };
        for i in 0..100u64 {
            report.records.push(rec(i, 0, 0, (i + 1) * 10, 1));
        }
        assert_eq!(report.sojourn_percentile_ns(50.0), 500);
        assert_eq!(report.sojourn_percentile_ns(99.0), 990);
        assert_eq!(report.sojourn_percentile_ns(99.9), 1000);
        assert_eq!(report.completed(), 100);
        assert!((report.throughput_per_sec() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fairness_flags_starved_tenants() {
        let mut report = ServiceReport {
            tenants: 2,
            ..Default::default()
        };
        report.records.push(rec(0, 0, 0, 10, 300));
        report.records.push(rec(1, 1, 0, 10, 100));
        assert!((report.fairness_ratio() - 3.0).abs() < 1e-9);
        // A completed job billed zero worker-ns = starvation signal.
        report.records.push(rec(2, 1, 0, 10, 0));
        assert!((report.fairness_ratio() - 3.0).abs() < 1e-9);
        let mut starved = ServiceReport {
            tenants: 2,
            ..Default::default()
        };
        starved.records.push(rec(0, 0, 0, 10, 300));
        starved.records.push(rec(1, 1, 0, 10, 0));
        assert!(starved.fairness_ratio().is_infinite());
    }

    #[test]
    fn digest_moves_with_any_field() {
        let base = ServiceReport {
            tenants: 1,
            records: vec![rec(0, 0, 5, 50, 7)],
            ..Default::default()
        };
        let mut other = base.clone();
        other.records[0].worker_ns += 1;
        assert_ne!(base.digest(), other.digest());
        let mut other = base.clone();
        other.records[0].answer.solutions = 3;
        assert_ne!(base.digest(), other.digest());
    }
}
