//! Open-loop workload generation: Poisson arrivals over a log-normal
//! service-size mix drawn from the repo's problem zoo.
//!
//! The trace is generated up front from one seed, so both backends (and
//! any two same-seed runs) see the identical sequence of jobs — the
//! scheduler, not the workload, is the thing under test. Arrivals are
//! open-loop: inter-arrival gaps are exponential and independent of
//! service completions, so queue growth under overload is visible
//! instead of self-throttled.

use macs_engine::CompiledProblem;
use macs_problems::{
    coloring_model, golomb_ruler, qap_model, queens, ColoringInstance, QapInstance, QueensModel,
};
use macs_search::SearchMode;

use crate::job::JobSpec;

/// The service classes, smallest expected work first. Class identity maps
/// a log-normal service-size draw onto a concrete instance, so the mix is
/// dominated by small jobs with a heavy tail of big ones — the shape an
/// open service actually sees.
pub const CLASS_NAMES: [&str; 4] = ["queens-8", "golomb-7", "myciel3-k4", "esc16e-9"];

/// Number of service classes.
pub const NUM_CLASSES: usize = CLASS_NAMES.len();

/// Compile the instance behind class `c`. Callers cache the result — one
/// compiled problem serves every job of the class (stores are copied per
/// run, the compiled model is immutable).
pub fn build_class(c: usize) -> CompiledProblem {
    match c {
        0 => queens(8, QueensModel::Pairwise),
        1 => golomb_ruler(7, 25),
        2 => coloring_model(&ColoringInstance::myciel3(), 4),
        3 => qap_model(&QapInstance::esc16e().sub_instance(9)),
        _ => panic!("no service class {c}"),
    }
}

/// Search mode for class `c`: enumeration classes run exhaustive,
/// optimisation classes run branch-and-bound (also exhaustive — the mode
/// split only matters for first-solution races, which the service does
/// not schedule because their oracle is not a scalar).
pub fn class_mode(_c: usize) -> SearchMode {
    SearchMode::Exhaustive
}

/// True if class `c` is an optimisation instance (oracle = best cost)
/// rather than an enumeration (oracle = solution count).
pub fn class_is_optimisation(c: usize) -> bool {
    matches!(c, 1 | 3)
}

/// Open-loop trace parameters.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Jobs in the trace.
    pub jobs: usize,
    /// Tenants sharing the service (round-robin-free: drawn uniformly).
    pub tenants: usize,
    /// Mean inter-arrival gap in virtual nanoseconds (Poisson process).
    pub mean_interarrival_ns: u64,
    /// Trace seed: arrivals, class draws and tenant draws all derive from
    /// it, as do the per-job solver seeds.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            jobs: 32,
            tenants: 4,
            mean_interarrival_ns: 200_000,
            seed: 0x5EED_CAFE,
        }
    }
}

/// SplitMix64 — the repo's standard cheap deterministic generator.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in (0, 1] — never 0, so `ln` is safe.
    pub fn next_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// Standard normal via Box–Muller.
    pub fn next_normal(&mut self) -> f64 {
        let u1 = self.next_unit();
        let u2 = self.next_unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Generate the trace: exponential inter-arrival gaps, log-normal
/// service-size draws bucketed into the class table (small classes
/// common, the big QAP tail rare), uniform tenant assignment, and one
/// derived solver seed per job.
pub fn generate(cfg: &WorkloadConfig) -> Vec<JobSpec> {
    assert!(cfg.tenants > 0, "need at least one tenant");
    let mut rng = SplitMix64(cfg.seed ^ 0x0A02_BDBF_7BB3_C0A7);
    let mut t = 0u64;
    let mut trace = Vec::with_capacity(cfg.jobs);
    for id in 0..cfg.jobs as u64 {
        let gap = -rng.next_unit().ln() * cfg.mean_interarrival_ns as f64;
        t = t.saturating_add(gap as u64);
        // Log-normal(0, 1) service size; the bucket thresholds put
        // roughly 36/30/26/8 percent of jobs in the four classes.
        let size = rng.next_normal().exp();
        let class = if size < 0.7 {
            0
        } else if size < 1.5 {
            1
        } else if size < 4.0 {
            2
        } else {
            3
        };
        let tenant = (rng.next_u64() % cfg.tenants as u64) as usize;
        let seed = rng.next_u64() | 1;
        trace.push(JobSpec {
            id,
            tenant,
            class,
            arrival_ns: t,
            seed,
        });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            jobs: 200,
            tenants: 8,
            mean_interarrival_ns: 1_000,
            seed,
        }
    }

    #[test]
    fn same_seed_same_trace_different_seed_different_trace() {
        let a = generate(&cfg(1));
        let b = generate(&cfg(1));
        let c = generate(&cfg(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_monotone_and_classes_cover_the_table() {
        let trace = generate(&cfg(0x1234));
        let mut seen = [false; NUM_CLASSES];
        for w in trace.windows(2) {
            assert!(w[0].arrival_ns <= w[1].arrival_ns);
        }
        for j in &trace {
            assert!(j.class < NUM_CLASSES);
            assert!(j.tenant < 8);
            seen[j.class] = true;
        }
        assert!(seen.iter().all(|&s| s), "200 draws should hit every class");
    }

    #[test]
    fn class_table_is_consistent() {
        for (c, name) in CLASS_NAMES.iter().enumerate() {
            let prob = build_class(c);
            assert!(prob.layout.store_words() > 0);
            assert_eq!(
                class_is_optimisation(c),
                prob.objective.is_some(),
                "class {c} ({name}) optimisation flag must match its model",
            );
        }
    }
}
