//! The threaded execution of the service: real workers, real leases.
//!
//! All co-scheduled jobs share **one** [`GlobalCells`] register file.
//! Each job gets a [`CellBlock`] window (its own termination counter,
//! incumbent, cancel flag and per-node mirrors) plus a [`World`] over its
//! lease *sub-topology*, so a job's workers see a machine that starts at
//! node 0 no matter where the lease physically sits — tenant isolation
//! is the block windowing, checked by the gpi layer's tests.
//!
//! Lease changes go through the block's lease cell: a shrink writes the
//! new width and then waits on the parked-count handshake (each worker
//! whose id falls outside the width publishes its pool, hands back its
//! in-flight item and announces itself in [`CellBlock::parked`]), so by
//! the time the scheduler reuses the freed nodes the old tenant has
//! actually stopped computing on them. A grow just writes the wider
//! width back; parked workers notice and rejoin on their own.

use std::collections::HashMap;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use macs_core::CpProcessor;
use macs_engine::CompiledProblem;
use macs_gpi::{CellBlock, GlobalCells, LatencyModel, World};
use macs_runtime::{run_parallel_on, RuntimeConfig};

use crate::job::{JobAnswer, JobSpec};
use crate::report::{JobRecord, ServiceReport};
use crate::sched::{Action, JobScheduler, SchedCore, ServiceConfig};
use crate::workload::{build_class, class_is_optimisation, class_mode, NUM_CLASSES};

/// A running job as the scheduler thread sees it.
struct ActiveJob {
    slot: usize,
    block: CellBlock,
    /// Workers of the original grant (the world's thread count; shrinks
    /// park a suffix of them, grows un-park — the count never rises).
    grant_workers: u64,
    /// Current lease width in workers.
    width: u64,
    /// Wall instant of the last width change (worker-ns billing).
    since: Instant,
    billed_worker_ns: u64,
    resizes: u32,
    handle: std::thread::JoinHandle<()>,
}

/// The threaded backend. `time_scale` compresses the trace's virtual
/// arrival times into wall time (wall gap = virtual gap ÷ scale); a
/// large scale releases the trace as fast as the scheduler can drain
/// it, which is what the tests use — wall timings on a shared host are
/// measurements, not pins (the simulator backend is the pinned one).
#[derive(Clone, Copy, Debug)]
pub struct ThreadedBackend {
    pub time_scale: u64,
}

impl Default for ThreadedBackend {
    fn default() -> Self {
        ThreadedBackend { time_scale: 1 }
    }
}

/// Everything the scheduler thread mutates while executing actions —
/// one place, so the arrival path and the completion path apply
/// decisions identically.
struct Exec<'a> {
    cfg: &'a ServiceConfig,
    cells: Arc<GlobalCells>,
    free_slots: Vec<usize>,
    problems: [Option<Arc<CompiledProblem>>; NUM_CLASSES],
    tx: mpsc::Sender<(u64, JobAnswer)>,
    records: Vec<JobRecord>,
    index_of: HashMap<u64, usize>,
    active: HashMap<u64, ActiveJob>,
    t0: Instant,
    makespan: u64,
}

impl Exec<'_> {
    fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    fn problem(&mut self, class: usize) -> Arc<CompiledProblem> {
        self.problems[class]
            .get_or_insert_with(|| Arc::new(build_class(class)))
            .clone()
    }

    fn apply(&mut self, core: &mut SchedCore, actions: Vec<Action>) {
        for action in actions {
            let now = self.now_ns();
            match action {
                Action::Reject(job) => {
                    let rec = &mut self.records[self.index_of[&job.id]];
                    rec.rejected = true;
                    rec.start_ns = now;
                    rec.finish_ns = now;
                }
                Action::Start { job, lease } => self.start(job, lease, now),
                Action::Shrink { lease } | Action::Grow { lease } => {
                    self.resize(core, lease.job, lease.workers() as u64)
                }
            }
        }
    }

    fn start(&mut self, job: JobSpec, lease: crate::lease::Lease, now: u64) {
        let slot = self.free_slots.pop().expect("a free cell block per node");
        let block = CellBlock::for_job(slot, self.cfg.nodes);
        let topo = self.cfg.lease_topology(&lease);
        let world = World::leased_on(
            topo.clone(),
            LatencyModel::zero(),
            self.cells.clone(),
            block,
        );
        let rt = RuntimeConfig {
            topology: topo,
            seed: job.seed,
            mode: class_mode(job.class),
            ..RuntimeConfig::default()
        };
        let prob = self.problem(job.class);
        let tx = self.tx.clone();
        let optimisation = class_is_optimisation(job.class);
        let job_id = job.id;
        let handle = std::thread::spawn(move || {
            let report = run_parallel_on(
                &world,
                &rt,
                prob.layout.store_words(),
                &[CpProcessor::root_item(&prob)],
                |_| CpProcessor::new(&prob, 1, rt.mode),
            );
            let answer = JobAnswer {
                solutions: report.outputs.iter().map(|o| o.solutions).sum(),
                nodes: report.outputs.iter().map(|o| o.nodes).sum(),
                best_cost: (optimisation && report.incumbent != i64::MAX)
                    .then_some(report.incumbent),
            };
            // A dead receiver just means the service tore down early.
            let _ = tx.send((job_id, answer));
        });
        let rec = &mut self.records[self.index_of[&job.id]];
        rec.start_ns = now;
        rec.lease_nodes = lease.nodes;
        rec.workers = lease.workers();
        self.active.insert(
            job.id,
            ActiveJob {
                slot,
                block,
                grant_workers: lease.workers() as u64,
                width: lease.workers() as u64,
                since: Instant::now(),
                billed_worker_ns: 0,
                resizes: 0,
                handle,
            },
        );
    }

    /// Resize a running job's lease through its lease cell. Shrinks wait
    /// (bounded) for the parked-count handshake: the capacity is only
    /// considered released once the displaced workers have stopped
    /// processing. A job racing its own completion may never park, so
    /// termination also satisfies the wait.
    fn resize(&mut self, core: &mut SchedCore, job: u64, new_workers: u64) {
        let Some(a) = self.active.get_mut(&job) else {
            core.violations
                .push(format!("resize for job {job} which is not running"));
            return;
        };
        let new_width = new_workers.min(a.grant_workers);
        a.billed_worker_ns += (a.since.elapsed().as_nanos() as u64).saturating_mul(a.width);
        a.since = Instant::now();
        let shrinking = new_width < a.width;
        a.width = new_width;
        a.resizes += 1;
        self.cells.store(a.block.lease(), new_width);
        if shrinking {
            let expect = (a.grant_workers - new_width) as i64;
            let deadline = Instant::now() + Duration::from_millis(200);
            while Instant::now() < deadline {
                if self.cells.load_i64(a.block.parked()) >= expect
                    || self.cells.load_i64(a.block.outstanding()) == 0
                {
                    break;
                }
                std::thread::yield_now();
            }
        }
    }

    /// A job's worker threads finished: close its record, recycle its
    /// slot, and run whatever the core decides next (dispatches,
    /// regrows) through the same apply path.
    fn complete(&mut self, core: &mut SchedCore, job_id: u64, answer: JobAnswer) {
        let now = self.now_ns();
        let a = self
            .active
            .remove(&job_id)
            .expect("completion from an active job");
        a.handle.join().expect("job thread panicked");
        self.free_slots.push(a.slot);
        let rec = &mut self.records[self.index_of[&job_id]];
        rec.finish_ns = now;
        rec.answer = answer;
        rec.resizes = a.resizes;
        rec.worker_ns =
            a.billed_worker_ns + (a.since.elapsed().as_nanos() as u64).saturating_mul(a.width);
        self.makespan = self.makespan.max(now);
        let follow = core.complete(job_id);
        self.apply(core, follow);
    }
}

impl JobScheduler for ThreadedBackend {
    fn backend_name(&self) -> &'static str {
        "threaded"
    }

    fn serve(&mut self, cfg: &ServiceConfig, trace: &[JobSpec]) -> ServiceReport {
        // One block per machine node: leases are node-aligned, so at
        // most `nodes` jobs run concurrently; every block mirrors the
        // full node count so any lease width fits any slot.
        let cells = Arc::new(GlobalCells::with_job_blocks(cfg.nodes, cfg.nodes));
        let (tx, rx) = mpsc::channel::<(u64, JobAnswer)>();
        let mut core = SchedCore::new(cfg.clone());
        let scale = self.time_scale.max(1);
        let mut exec = Exec {
            cfg,
            cells,
            free_slots: (0..cfg.nodes).rev().collect(),
            problems: [const { None }; NUM_CLASSES],
            tx,
            records: trace
                .iter()
                .map(|j| JobRecord {
                    id: j.id,
                    tenant: j.tenant,
                    class: j.class,
                    // Records live in the wall time base: the arrival is
                    // the instant the trace made the job *due*.
                    arrival_ns: j.arrival_ns / scale,
                    start_ns: 0,
                    finish_ns: 0,
                    rejected: false,
                    lease_nodes: 0,
                    workers: 0,
                    resizes: 0,
                    worker_ns: 0,
                    answer: JobAnswer::default(),
                    sim_digest: 0,
                })
                .collect(),
            index_of: trace.iter().enumerate().map(|(i, j)| (j.id, i)).collect(),
            active: HashMap::new(),
            t0: Instant::now(),
            makespan: 0,
        };
        let mut next = 0usize; // next trace index to deliver

        loop {
            // Deliver every arrival that is due.
            let now = exec.now_ns();
            while next < trace.len() && trace[next].arrival_ns / scale <= now {
                let acts = core.arrive(trace[next]);
                exec.apply(&mut core, acts);
                next += 1;
            }
            if next >= trace.len() && exec.active.is_empty() {
                break;
            }

            // Sleep until the next arrival is due or a completion lands.
            let wait = if next < trace.len() {
                let due = trace[next].arrival_ns / scale;
                Duration::from_nanos(due.saturating_sub(exec.now_ns()).max(1))
            } else {
                Duration::from_millis(50)
            };
            match rx.recv_timeout(wait) {
                Ok((job_id, answer)) => exec.complete(&mut core, job_id, answer),
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("scheduler holds a sender")
                }
            }
        }

        if !core.drained() {
            core.violations.push(format!(
                "trace ended with {} queued and {} running jobs",
                core.queue_depth(),
                core.running_count()
            ));
        }
        core.check();
        ServiceReport {
            backend: self.backend_name(),
            records: exec.records,
            tenants: trace.iter().map(|j| j.tenant + 1).max().unwrap_or(0),
            max_queue_depth: core.max_queue_depth,
            makespan_ns: exec.makespan,
            violations: core.violations,
        }
    }
}
