//! Worker-set leases: contiguous, node-aligned slices of the machine.
//!
//! A lease is the unit the scheduler hands a job: a run of whole
//! shared-memory nodes, never a fraction of one, so every job's workers
//! share their node-local mirrors and victim rings without crossing a
//! tenant boundary. Leases are contiguous in node id so the sub-topology
//! handed to the runtime keeps a meaningful distance metric, and so a
//! shrunken lease can later grow back over its own trailing nodes without
//! fragmenting the ledger.

use std::fmt;
use std::str::FromStr;

/// One job's slice of the machine: nodes `first_node .. first_node +
/// nodes`, each contributing `cores_per_node` workers. `max_nodes` is the
/// original grant — a lease may shrink below it and later grow back, but
/// never beyond (the threaded backend sizes the job's world, and thus its
/// OS threads, at the grant).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lease {
    pub job: u64,
    pub first_node: usize,
    pub nodes: usize,
    pub max_nodes: usize,
    pub cores_per_node: usize,
}

impl Lease {
    /// Workers currently inside the lease.
    pub fn workers(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Workers of the original grant (the job's thread count).
    pub fn max_workers(&self) -> usize {
        self.max_nodes * self.cores_per_node
    }

    /// Machine node ids this lease currently occupies.
    pub fn node_range(&self) -> std::ops::Range<usize> {
        self.first_node..self.first_node + self.nodes
    }

    /// True if two leases share a machine node.
    pub fn overlaps(&self, other: &Lease) -> bool {
        self.first_node < other.first_node + other.nodes
            && other.first_node < self.first_node + self.nodes
    }
}

/// Per-node ownership ledger. Claims are first-fit over contiguous free
/// runs; shrink releases a lease's trailing nodes, grow reclaims them if
/// still free. Every mutation rechecks the one invariant that matters:
/// no machine node is ever owned by two jobs.
#[derive(Clone, Debug)]
pub struct LeaseLedger {
    /// `owner[n]` = job currently holding machine node `n`.
    owner: Vec<Option<u64>>,
    cores_per_node: usize,
}

impl LeaseLedger {
    pub fn new(total_nodes: usize, cores_per_node: usize) -> Self {
        assert!(total_nodes > 0 && cores_per_node > 0);
        LeaseLedger {
            owner: vec![None; total_nodes],
            cores_per_node,
        }
    }

    pub fn total_nodes(&self) -> usize {
        self.owner.len()
    }

    pub fn free_nodes(&self) -> usize {
        self.owner.iter().filter(|o| o.is_none()).count()
    }

    /// Longest contiguous free run (the widest claim that can succeed).
    pub fn largest_free_run(&self) -> usize {
        let mut best = 0;
        let mut run = 0;
        for o in &self.owner {
            if o.is_none() {
                run += 1;
                best = best.max(run);
            } else {
                run = 0;
            }
        }
        best
    }

    /// First-fit claim of `nodes` contiguous free nodes for `job`.
    pub fn claim(&mut self, job: u64, nodes: usize) -> Option<Lease> {
        if nodes == 0 || nodes > self.owner.len() {
            return None;
        }
        let mut start = 0;
        while start + nodes <= self.owner.len() {
            match self.owner[start..start + nodes]
                .iter()
                .position(|o| o.is_some())
            {
                Some(p) => start += p + 1,
                None => {
                    for o in &mut self.owner[start..start + nodes] {
                        *o = Some(job);
                    }
                    return Some(Lease {
                        job,
                        first_node: start,
                        nodes,
                        max_nodes: nodes,
                        cores_per_node: self.cores_per_node,
                    });
                }
            }
        }
        None
    }

    /// Release every node `job` holds.
    pub fn free(&mut self, job: u64) {
        for o in &mut self.owner {
            if *o == Some(job) {
                *o = None;
            }
        }
    }

    /// Shrink `lease` to `new_nodes`, releasing its trailing nodes.
    /// Returns the updated lease; `new_nodes` must be `1..=lease.nodes`.
    pub fn shrink(&mut self, lease: &Lease, new_nodes: usize) -> Lease {
        assert!(new_nodes >= 1 && new_nodes <= lease.nodes, "bad shrink");
        for n in lease.first_node + new_nodes..lease.first_node + lease.nodes {
            debug_assert_eq!(self.owner[n], Some(lease.job));
            self.owner[n] = None;
        }
        Lease {
            nodes: new_nodes,
            ..*lease
        }
    }

    /// Grow `lease` back toward `new_nodes` by reclaiming its own trailing
    /// nodes. Only nodes still free are reclaimed, and never past the
    /// original grant; the achieved width is returned.
    pub fn grow(&mut self, lease: &Lease, new_nodes: usize) -> Lease {
        let want = new_nodes.min(lease.max_nodes);
        let mut nodes = lease.nodes;
        while nodes < want {
            let n = lease.first_node + nodes;
            if self.owner[n].is_some() {
                break;
            }
            self.owner[n] = Some(lease.job);
            nodes += 1;
        }
        Lease { nodes, ..*lease }
    }

    /// Panic message if two jobs own one node (structurally impossible
    /// with `Option<u64>` owners — kept as the ledger's self-check that
    /// a set of leases handed out is mutually disjoint).
    pub fn check_disjoint(&self, leases: &[Lease]) -> Result<(), String> {
        for (i, a) in leases.iter().enumerate() {
            for b in &leases[i + 1..] {
                if a.overlaps(b) {
                    return Err(format!(
                        "leases overlap: job {} [{:?}] vs job {} [{:?}]",
                        a.job,
                        a.node_range(),
                        b.job,
                        b.node_range()
                    ));
                }
            }
            for n in a.node_range() {
                if self.owner[n] != Some(a.job) {
                    return Err(format!(
                        "ledger out of sync: node {n} owned by {:?}, lease says job {}",
                        self.owner[n], a.job
                    ));
                }
            }
        }
        Ok(())
    }
}

/// How wide a lease the scheduler grants, and whether running jobs are
/// resized as load changes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeasePolicy {
    /// Every job gets exactly `nodes` nodes and keeps them until it
    /// finishes. No resizes: the queue absorbs all load variation.
    Static { nodes: usize },
    /// Grant width follows the queue: an empty queue grants `max` nodes,
    /// a deep queue narrows grants toward `min`, and when the machine is
    /// full with work still queued, the widest running job is shrunk to
    /// admit the head of the queue. When the queue drains, running jobs
    /// grow back over their own freed nodes.
    QueueDepth { min: usize, max: usize },
}

impl LeasePolicy {
    /// Nodes to request for the next dispatch given the current queue
    /// depth (the dispatching job included).
    pub fn grant(&self, queue_depth: usize) -> usize {
        match *self {
            LeasePolicy::Static { nodes } => nodes,
            LeasePolicy::QueueDepth { min, max } => {
                // Halve the grant per queued job beyond the first:
                // depth 1 -> max, 2 -> max/2, 3 -> max/4 ... floor min.
                let d = queue_depth.saturating_sub(1).min(63) as u32;
                (max >> d).max(min)
            }
        }
    }

    /// Narrowest width a running job may be shrunk to (`None` = never
    /// shrink).
    pub fn shrink_floor(&self) -> Option<usize> {
        match *self {
            LeasePolicy::Static { .. } => None,
            LeasePolicy::QueueDepth { min, .. } => Some(min),
        }
    }
}

impl fmt::Display for LeasePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LeasePolicy::Static { nodes } => write!(f, "static:{nodes}"),
            LeasePolicy::QueueDepth { min, max } => write!(f, "queue-depth:{min},{max}"),
        }
    }
}

impl FromStr for LeasePolicy {
    type Err = String;

    /// `static[:N]` or `queue-depth[:MIN,MAX]` (defaults: `static:1`,
    /// `queue-depth:1,4`).
    fn from_str(s: &str) -> Result<Self, String> {
        let (head, args) = match s.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (s, None),
        };
        match head {
            "static" => {
                let nodes = match args {
                    None => 1,
                    Some(a) => a
                        .parse::<usize>()
                        .map_err(|_| format!("bad static width {a:?}"))?,
                };
                if nodes == 0 {
                    return Err("static lease width must be >= 1".into());
                }
                Ok(LeasePolicy::Static { nodes })
            }
            "queue-depth" => {
                let (min, max) = match args {
                    None => (1, 4),
                    Some(a) => {
                        let (lo, hi) = a
                            .split_once(',')
                            .ok_or_else(|| format!("expected MIN,MAX, got {a:?}"))?;
                        (
                            lo.parse::<usize>()
                                .map_err(|_| format!("bad min width {lo:?}"))?,
                            hi.parse::<usize>()
                                .map_err(|_| format!("bad max width {hi:?}"))?,
                        )
                    }
                };
                if min == 0 || max < min {
                    return Err(format!("need 1 <= min <= max, got {min},{max}"));
                }
                Ok(LeasePolicy::QueueDepth { min, max })
            }
            other => Err(format!(
                "unknown lease policy {other:?} (want static[:N] or queue-depth[:MIN,MAX])"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fit_claims_are_disjoint_and_contiguous() {
        let mut ledger = LeaseLedger::new(8, 4);
        let a = ledger.claim(1, 3).unwrap();
        let b = ledger.claim(2, 2).unwrap();
        let c = ledger.claim(3, 3).unwrap();
        assert_eq!((a.first_node, a.nodes), (0, 3));
        assert_eq!((b.first_node, b.nodes), (3, 2));
        assert_eq!((c.first_node, c.nodes), (5, 3));
        assert!(ledger.claim(4, 1).is_none());
        ledger.check_disjoint(&[a, b, c]).unwrap();
        assert_eq!(a.workers(), 12);
    }

    #[test]
    fn free_reopens_the_hole_and_claim_reuses_it() {
        let mut ledger = LeaseLedger::new(6, 2);
        let a = ledger.claim(1, 2).unwrap();
        let _b = ledger.claim(2, 4).unwrap();
        ledger.free(a.job);
        assert_eq!(ledger.free_nodes(), 2);
        let c = ledger.claim(3, 2).unwrap();
        assert_eq!(c.first_node, 0);
        assert!(ledger.claim(4, 1).is_none());
    }

    #[test]
    fn shrink_frees_trailing_nodes_and_grow_reclaims_them() {
        let mut ledger = LeaseLedger::new(8, 4);
        let a = ledger.claim(1, 6).unwrap();
        let a = ledger.shrink(&a, 2);
        assert_eq!(a.nodes, 2);
        assert_eq!(a.max_nodes, 6);
        assert_eq!(ledger.free_nodes(), 6);
        // A second tenant takes part of the freed run ...
        let b = ledger.claim(2, 3).unwrap();
        assert_eq!(b.first_node, 2);
        // ... so the regrow stops at the tenant boundary.
        let a = ledger.grow(&a, 6);
        assert_eq!(a.nodes, 2);
        ledger.free(b.job);
        let a = ledger.grow(&a, 6);
        assert_eq!(a.nodes, 6);
        // Never past the original grant.
        let a = ledger.grow(&a, 99);
        assert_eq!(a.nodes, 6);
        ledger.check_disjoint(&[a]).unwrap();
    }

    #[test]
    fn policy_parsing_round_trips() {
        for s in ["static:1", "static:4", "queue-depth:1,4", "queue-depth:2,8"] {
            let p: LeasePolicy = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
        assert_eq!(
            "static".parse::<LeasePolicy>().unwrap(),
            LeasePolicy::Static { nodes: 1 }
        );
        assert_eq!(
            "queue-depth".parse::<LeasePolicy>().unwrap(),
            LeasePolicy::QueueDepth { min: 1, max: 4 }
        );
        assert!("static:0".parse::<LeasePolicy>().is_err());
        assert!("queue-depth:3,2".parse::<LeasePolicy>().is_err());
        assert!("fair-share".parse::<LeasePolicy>().is_err());
    }

    #[test]
    fn queue_depth_grant_narrows_with_load() {
        let p = LeasePolicy::QueueDepth { min: 1, max: 8 };
        assert_eq!(p.grant(0), 8);
        assert_eq!(p.grant(1), 8);
        assert_eq!(p.grant(2), 4);
        assert_eq!(p.grant(3), 2);
        assert_eq!(p.grant(4), 1);
        assert_eq!(p.grant(100), 1);
        let s = LeasePolicy::Static { nodes: 2 };
        assert_eq!(s.grant(0), 2);
        assert_eq!(s.grant(100), 2);
        assert_eq!(s.shrink_floor(), None);
        assert_eq!(p.shrink_floor(), Some(1));
    }
}
