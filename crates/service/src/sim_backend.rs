//! The simulator execution of the service: a nested discrete-event
//! simulation, bit-deterministic end to end.
//!
//! The outer DES replays the arrival trace against [`SchedCore`]. When a
//! job starts, its *entire solve* is simulated inline by the engine-level
//! simulator at the granted lease width — that inner run fixes both the
//! job's answer (solutions / best cost, checkable against the sequential
//! oracle) and its total work in **worker-nanoseconds** (`makespan ×
//! width`). While the job runs, that work drains at a rate equal to its
//! current lease width; a shrink or grow rescales the drain rate
//! fluidly, with the completion event superseded by epoch (the classic
//! malleable-task model — re-simulating mid-run at the new width would
//! cost another full inner run per resize for no extra fidelity at the
//! service level). Outer events are keyed `(time, sequence)`, so the
//! event order — and with it every timestamp, counter and digest — is a
//! pure function of the trace.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use macs_core::CpProcessor;
use macs_engine::CompiledProblem;
use macs_sim::{simulate_macs, SimConfig};

use crate::job::{JobAnswer, JobSpec};
use crate::report::{JobRecord, ServiceReport};
use crate::sched::{Action, JobScheduler, SchedCore, ServiceConfig};
use crate::workload::{build_class, class_is_optimisation, class_mode, NUM_CLASSES};

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// Index into the trace.
    Arrive(u32),
    /// Epoch-guarded completion: stale epochs (superseded by a resize)
    /// are ignored.
    Done { job: u64, epoch: u32 },
}

/// Fluid state of one running job.
#[derive(Clone, Copy, Debug)]
struct RunState {
    /// Worker-ns of solve work still to drain.
    remaining: u64,
    /// Current drain rate (lease width in workers).
    width: u64,
    /// Instant of the last remaining/width update.
    since_ns: u64,
    epoch: u32,
    /// Worker-ns already drained (the tenant's bill so far).
    billed: u64,
}

/// The simulator backend. Inner per-job runs use the service config's
/// cost model (default, or a calibrated one loaded via
/// `ServiceConfig::cost_model`); `seed` perturbs only the *service* (it
/// is XORed into each job's own seed), so two backends serving the same
/// trace still solve identical instances.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimBackend {
    pub seed: u64,
}

impl SimBackend {
    /// Run one job's whole solve at `workers` wide; returns the answer
    /// and the total work in worker-ns, plus the inner report digest.
    fn solve_job(
        &self,
        cfg: &ServiceConfig,
        prob: &CompiledProblem,
        job: &JobSpec,
        lease_nodes: usize,
    ) -> (JobAnswer, u64, u64) {
        let topo = macs_topo::MachineTopology::try_new(&[lease_nodes, cfg.cores_per_node], 1)
            .expect("lease sub-topology");
        let mut sim = SimConfig::new(topo).with_cost_model(cfg.cost_model);
        sim.seed = job.seed ^ self.seed;
        let mode = class_mode(job.class);
        let report = simulate_macs(
            &sim,
            prob.layout.store_words(),
            &[prob.root.as_words().to_vec()],
            |_| CpProcessor::new(prob, 1, mode),
        );
        let answer = JobAnswer {
            solutions: report.total_solutions(),
            nodes: report.total_items(),
            best_cost: (class_is_optimisation(job.class) && report.incumbent != i64::MAX)
                .then_some(report.incumbent),
        };
        let workers = (lease_nodes * cfg.cores_per_node) as u64;
        // At least one worker-ns, so a degenerate instant solve still
        // schedules a completion strictly after its start.
        let work = report.makespan_ns.saturating_mul(workers).max(1);
        (answer, work, report.digest())
    }
}

impl JobScheduler for SimBackend {
    fn backend_name(&self) -> &'static str {
        "sim"
    }

    fn serve(&mut self, cfg: &ServiceConfig, trace: &[JobSpec]) -> ServiceReport {
        let mut core = SchedCore::new(cfg.clone());
        let mut problems: [Option<CompiledProblem>; NUM_CLASSES] = [const { None }; NUM_CLASSES];
        let mut heap: BinaryHeap<Reverse<(u64, u64, Ev)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |heap: &mut BinaryHeap<_>, t: u64, ev: Ev| {
            heap.push(Reverse((t, seq, ev)));
            seq += 1;
        };
        for (i, job) in trace.iter().enumerate() {
            push(&mut heap, job.arrival_ns, Ev::Arrive(i as u32));
        }

        let mut records: Vec<JobRecord> = trace
            .iter()
            .map(|j| JobRecord {
                id: j.id,
                tenant: j.tenant,
                class: j.class,
                arrival_ns: j.arrival_ns,
                start_ns: 0,
                finish_ns: 0,
                rejected: false,
                lease_nodes: 0,
                workers: 0,
                resizes: 0,
                worker_ns: 0,
                answer: JobAnswer::default(),
                sim_digest: 0,
            })
            .collect();
        let index_of: HashMap<u64, usize> =
            trace.iter().enumerate().map(|(i, j)| (j.id, i)).collect();
        let mut run: HashMap<u64, RunState> = HashMap::new();
        let mut makespan = 0u64;

        while let Some(Reverse((now, _, ev))) = heap.pop() {
            let actions = match ev {
                Ev::Arrive(i) => core.arrive(trace[i as usize]),
                Ev::Done { job, epoch } => {
                    let Some(state) = run.get(&job) else { continue };
                    if state.epoch != epoch {
                        continue; // superseded by a resize
                    }
                    let state = run.remove(&job).unwrap();
                    let rec = &mut records[index_of[&job]];
                    rec.finish_ns = now;
                    rec.worker_ns = state.billed + state.remaining;
                    makespan = makespan.max(now);
                    core.complete(job)
                }
            };
            for action in actions {
                match action {
                    Action::Reject(job) => {
                        let rec = &mut records[index_of[&job.id]];
                        rec.rejected = true;
                        rec.start_ns = now;
                        rec.finish_ns = now;
                    }
                    Action::Start { job, lease } => {
                        let prob =
                            problems[job.class].get_or_insert_with(|| build_class(job.class));
                        let (answer, work, digest) = self.solve_job(cfg, prob, &job, lease.nodes);
                        let width = lease.workers() as u64;
                        run.insert(
                            job.id,
                            RunState {
                                remaining: work,
                                width,
                                since_ns: now,
                                epoch: 0,
                                billed: 0,
                            },
                        );
                        let rec = &mut records[index_of[&job.id]];
                        rec.start_ns = now;
                        rec.lease_nodes = lease.nodes;
                        rec.workers = width as usize;
                        rec.answer = answer;
                        rec.sim_digest = digest;
                        let done = now + work.div_ceil(width);
                        push(
                            &mut heap,
                            done,
                            Ev::Done {
                                job: job.id,
                                epoch: 0,
                            },
                        );
                    }
                    Action::Shrink { lease } | Action::Grow { lease } => {
                        let Some(state) = run.get_mut(&lease.job) else {
                            core.violations
                                .push(format!("resize for job {} not running", lease.job));
                            continue;
                        };
                        // Drain the elapsed interval at the old width,
                        // then rebase at the new one.
                        let drained = (now - state.since_ns).saturating_mul(state.width);
                        let drained = drained.min(state.remaining);
                        state.remaining -= drained;
                        state.billed += drained;
                        state.width = (lease.workers() as u64).max(1);
                        state.since_ns = now;
                        state.epoch += 1;
                        let rec = &mut records[index_of[&lease.job]];
                        rec.resizes += 1;
                        let done = now + state.remaining.div_ceil(state.width);
                        push(
                            &mut heap,
                            done,
                            Ev::Done {
                                job: lease.job,
                                epoch: state.epoch,
                            },
                        );
                    }
                }
            }
        }

        if !core.drained() {
            core.violations.push(format!(
                "trace ended with {} queued and {} running jobs",
                core.queue_depth(),
                core.running_count()
            ));
        }
        core.check();
        ServiceReport {
            backend: self.backend_name(),
            records,
            tenants: trace.iter().map(|j| j.tenant + 1).max().unwrap_or(0),
            max_queue_depth: core.max_queue_depth,
            makespan_ns: makespan,
            violations: core.violations,
        }
    }
}
