//! End-to-end smoke: both backends serve a small open-loop trace to
//! drain, with clean invariants and oracle-true answers.

use macs_service::{
    generate, JobScheduler, LeasePolicy, Oracle, ServiceConfig, SimBackend, ThreadedBackend,
    WorkloadConfig,
};

fn small_cfg(policy: LeasePolicy) -> ServiceConfig {
    ServiceConfig {
        nodes: 4,
        cores_per_node: 2,
        queue_cap: 8,
        policy,
        cost_model: Default::default(),
    }
}

fn small_trace(seed: u64) -> Vec<macs_service::JobSpec> {
    generate(&WorkloadConfig {
        jobs: 12,
        tenants: 3,
        mean_interarrival_ns: 50_000,
        seed,
    })
}

#[test]
fn sim_backend_serves_to_drain_with_oracle_true_answers() {
    let trace = small_trace(0xABCD);
    for policy in [
        LeasePolicy::Static { nodes: 2 },
        LeasePolicy::QueueDepth { min: 1, max: 4 },
    ] {
        let report = SimBackend::default().serve(&small_cfg(policy), &trace);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.completed() + report.rejected(), trace.len() as u64);
        let mut oracle = Oracle::new();
        for rec in report.records.iter().filter(|r| !r.rejected) {
            oracle
                .verify(rec.class, &rec.answer)
                .unwrap_or_else(|e| panic!("{policy:?} job {}: {e}", rec.id));
            assert!(rec.finish_ns >= rec.start_ns && rec.start_ns >= rec.arrival_ns);
            assert!(rec.worker_ns > 0);
        }
    }
}

#[test]
fn threaded_backend_serves_to_drain_with_oracle_true_answers() {
    let trace = small_trace(0x1357);
    for policy in [
        LeasePolicy::Static { nodes: 2 },
        LeasePolicy::QueueDepth { min: 1, max: 4 },
    ] {
        // Large scale: arrivals land as fast as the scheduler loops.
        let mut backend = ThreadedBackend {
            time_scale: 1 << 20,
        };
        let report = backend.serve(&small_cfg(policy), &trace);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.completed() + report.rejected(), trace.len() as u64);
        let mut oracle = Oracle::new();
        for rec in report.records.iter().filter(|r| !r.rejected) {
            oracle
                .verify(rec.class, &rec.answer)
                .unwrap_or_else(|e| panic!("{policy:?} job {}: {e}", rec.id));
        }
    }
}
