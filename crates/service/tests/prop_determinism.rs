//! Same-seed determinism of the *service* simulator, pinned by digest.
//!
//! The outer DES keys events `(time, sequence)` and every inner solve is
//! itself the bit-deterministic engine simulator, so two same-seed
//! service runs must agree on every timestamp, every lease decision,
//! every resize, every answer and every inner event trace —
//! [`ServiceReport::digest`] folds all of it. One cell per scale point,
//! under the elastic policy so resize scheduling is covered too.

use macs_service::{
    generate, JobScheduler, LeasePolicy, ServiceConfig, ServiceReport, SimBackend, WorkloadConfig,
};

/// (nodes, cores_per_node): 64 and 512 simulated cores.
const SCALE_POINTS: [(usize, usize); 2] = [(16, 4), (128, 4)];

fn serve(nodes: usize, cores: usize, seed: u64) -> ServiceReport {
    let trace = generate(&WorkloadConfig {
        jobs: 24,
        tenants: 8,
        mean_interarrival_ns: 20_000,
        seed,
    });
    let cfg = ServiceConfig {
        nodes,
        cores_per_node: cores,
        queue_cap: 8,
        policy: LeasePolicy::QueueDepth { min: 1, max: 8 },
        cost_model: Default::default(),
    };
    SimBackend::default().serve(&cfg, &trace)
}

#[test]
fn same_seed_service_runs_are_digest_identical_at_both_scale_points() {
    for (nodes, cores) in SCALE_POINTS {
        let a = serve(nodes, cores, 0x5EED);
        let b = serve(nodes, cores, 0x5EED);
        let cell = format!("{}x{} cores", nodes, cores);
        assert!(a.violations.is_empty(), "{cell}: {:?}", a.violations);
        assert_eq!(a.digest(), b.digest(), "{cell}: service digest diverged");
        // Spot checks behind the digest, for readable failures.
        assert_eq!(a.makespan_ns, b.makespan_ns, "{cell}");
        assert_eq!(a.max_queue_depth, b.max_queue_depth, "{cell}");
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra, rb, "{cell}: job {} record diverged", ra.id);
        }
    }
}

#[test]
fn different_seeds_and_scales_actually_move_the_digest() {
    let base = serve(16, 4, 0x5EED);
    assert_ne!(
        base.digest(),
        serve(16, 4, 0xD00D).digest(),
        "trace seed must reach the digest"
    );
    assert_ne!(
        base.digest(),
        serve(128, 4, 0x5EED).digest(),
        "machine scale must reach the digest"
    );
    // The digest is a pin, not a constant: resizes really happened in
    // the elastic cells it covers.
    assert!(
        base.records
            .iter()
            .any(|r| r.resizes > 0 || r.lease_nodes > 1),
        "determinism cells should exercise lease sizing"
    );
}
