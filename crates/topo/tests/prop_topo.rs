//! Seeded randomised tests (in-repo proptest substitute) for the topology
//! index math: coordinate/ID roundtrips, distance metric laws, ring
//! partitions and node bookkeeping across random level shapes, including
//! degenerate 1-level and deep 4-level machines.

use macs_topo::{MachineTopology, VictimOrder, MAX_LEVELS};

/// SplitMix64 — the same deterministic stream the runtime uses.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// A random machine: 1–4 levels, extents 1–5 (extent-1 levels exercise
/// empty rings), random node prefix.
fn random_topo(rng: &mut Rng) -> MachineTopology {
    let levels = 1 + rng.below(4);
    let shape: Vec<usize> = (0..levels).map(|_| 1 + rng.below(5)).collect();
    let node_prefix = rng.below(levels + 1);
    MachineTopology::try_new(&shape, node_prefix).unwrap()
}

#[test]
fn coords_roundtrip_and_group_math() {
    let mut rng = Rng(0xC0047);
    for _ in 0..200 {
        let t = random_topo(&mut rng);
        let total: usize = t.shape().iter().product();
        assert_eq!(t.total_workers(), total);
        for _ in 0..32 {
            let w = rng.below(total);
            let c = t.coords(w);
            assert_eq!(c.len(), t.levels());
            for (l, &cl) in c.iter().enumerate() {
                assert!(cl < t.shape()[l], "coord within extent");
                assert_eq!(t.coord(w, l), cl);
            }
            assert_eq!(t.worker_at(&c), w, "coords → id roundtrip");
            for p in 0..=t.levels() {
                let r = t.group_range(w, p);
                assert!(r.contains(&w), "group range contains its member");
                assert_eq!(r.len(), t.group_size(p));
                assert_eq!(r.start / t.group_size(p), t.group_index(w, p));
            }
        }
    }
}

#[test]
fn distance_metric_laws() {
    let mut rng = Rng(0xD157);
    for _ in 0..200 {
        let t = random_topo(&mut rng);
        let total = t.total_workers();
        for _ in 0..48 {
            let a = rng.below(total);
            let b = rng.below(total);
            let d = t.distance(a, b);
            assert_eq!(d, t.distance(b, a), "symmetry");
            assert_eq!(d == 0, a == b, "identity");
            assert!(d <= t.levels(), "bounded by depth");
            // Definitional check against coordinates: levels − common
            // prefix length.
            let (ca, cb) = (t.coords(a), t.coords(b));
            let common = ca.iter().zip(&cb).take_while(|(x, y)| x == y).count();
            assert_eq!(d, t.levels() - common);
            // Locality ⇔ distance within the node.
            assert_eq!(t.is_local(a, b), d <= t.local_distance_max());
            // Triangle inequality under the ultrametric (max) form.
            let c = rng.below(total);
            assert!(t.distance(a, c) <= d.max(t.distance(b, c)), "ultrametric");
        }
    }
}

#[test]
fn rings_partition_and_match_distances() {
    let mut rng = Rng(0x417);
    for _ in 0..120 {
        let t = random_topo(&mut rng);
        let total = t.total_workers();
        let w = rng.below(total);
        let rings = t.rings(w);
        assert_eq!(rings.len(), t.levels());
        let mut seen = vec![0u32; total];
        seen[w] += 1;
        for (i, ring) in rings.iter().enumerate() {
            assert_eq!(ring.len(), t.peers_at(w, i + 1).len());
            for &p in ring {
                assert_eq!(t.distance(w, p), i + 1, "ring index = distance");
                seen[p] += 1;
            }
        }
        assert!(
            seen.iter().all(|&s| s == 1),
            "rings + self partition 0..total exactly once"
        );
    }
}

#[test]
fn node_bookkeeping_is_consistent() {
    let mut rng = Rng(0x20DE);
    for _ in 0..120 {
        let t = random_topo(&mut rng);
        let total = t.total_workers();
        assert_eq!(t.nodes() * t.node_size(), total);
        for _ in 0..24 {
            let w = rng.below(total);
            let n = t.node_of(w);
            assert!(n < t.nodes());
            assert!(t.workers_on(n).contains(&w), "workers_on(node_of(w)) ∋ w");
            assert_eq!(t.peers_of(w), t.workers_on(n));
            for p in t.peers_of(w) {
                assert!(t.is_local(w, p));
                assert_eq!(t.node_of(p), n);
            }
        }
        // Remote node rings cover every other node exactly once, at the
        // right distance.
        let w = rng.below(total);
        let mut node_seen = vec![0u32; t.nodes()];
        node_seen[t.node_of(w)] += 1;
        for (i, ring) in t.node_rings(w).iter().enumerate() {
            let d = t.local_distance_max() + 1 + i;
            for &n in ring {
                node_seen[n] += 1;
                let first = t.workers_on(n).start;
                assert_eq!(t.distance(w, first), d, "node ring distance");
                assert!(!t.is_local(w, first));
            }
        }
        assert!(
            node_seen.iter().all(|&s| s == 1),
            "node rings partition the remote nodes"
        );
    }
}

#[test]
fn degenerate_shapes() {
    // 1-level, 1 worker: no rings, no peers, no distance.
    let t = MachineTopology::flat(1);
    assert_eq!(t.total_workers(), 1);
    assert_eq!(t.rings(0), vec![Vec::<usize>::new()]);
    assert!(t.node_rings(0).is_empty());

    // All-extent-1 deep machine: one worker, every ring empty.
    let t = MachineTopology::try_new(&[1, 1, 1, 1], 2).unwrap();
    assert_eq!(t.total_workers(), 1);
    assert!(t.rings(0).iter().all(|r| r.is_empty()));

    // node_prefix == levels: every worker is its own node.
    let t = MachineTopology::try_new(&[3, 2], 2).unwrap();
    assert_eq!(t.nodes(), 6);
    assert_eq!(t.node_size(), 1);
    assert!(!t.is_local(0, 1));
    assert_eq!(t.local_distance_max(), 0);
    assert_eq!(t.peers_of(4).len(), 1);

    // Deepest allowed machine builds.
    let t = MachineTopology::try_new(&[2; MAX_LEVELS], 3).unwrap();
    assert_eq!(t.total_workers(), 256);
    assert_eq!(t.distance(0, 255), MAX_LEVELS);
}

#[test]
fn victim_order_ranks_are_lawful_on_random_machines() {
    let mut rng = Rng(0x5BEEF);
    for _ in 0..80 {
        let t = random_topo(&mut rng);
        let total = t.total_workers();
        if total < 2 {
            continue;
        }
        let me = rng.below(total);
        let mut vo = VictimOrder::new(&t, me);
        let rings = t.rings(me);

        // A pick never returns me, and always a worker with surplus.
        let loaded: Vec<u64> = (0..total).map(|_| rng.next() % 3).collect();
        let pick = vo.pick_first(&rings, |n| rng.below(n), |w| loaded[w]);
        if let Some((v, d)) = pick {
            assert_ne!(v, me);
            assert!(loaded[v] > 0);
            assert_eq!(t.distance(me, v), d);
            // Nothing with surplus sits strictly nearer.
            for (u, &l) in loaded.iter().enumerate() {
                if u != me && l > 0 {
                    assert!(t.distance(me, u) >= d, "nearer loaded victim missed");
                }
            }
            vo.record_success(&t, v);
            assert_eq!(vo.affinity_at(d), Some(v));
            // Affinity victim is ranked first within its ring.
            let order: Vec<usize> = vo.ring_order(&rings[d - 1], d, rng.below(total)).collect();
            assert_eq!(order.first(), Some(&v));
            vo.record_failure(&t, v);
            assert_eq!(vo.affinity_at(d), None);
        } else {
            assert!(
                (0..total).all(|w| w == me || loaded[w] == 0),
                "pick_first must find any loaded victim"
            );
        }

        // pick_max picks the max of the nearest non-empty ring.
        if let Some((v, d)) = vo.pick_max(&rings, |w| loaded[w]) {
            assert!(loaded[v] > 0);
            for &u in &rings[d - 1] {
                assert!(loaded[u] <= loaded[v], "not the ring maximum");
            }
        }
    }
}
