//! The sysfs parser against committed fixture trees (correct shapes,
//! hyperthread dedup, typed errors on malformed/missing entries — never a
//! panic) plus a seeded property test that `detect`-built machines
//! satisfy the same index-math invariants `prop_topo` pins for
//! hand-declared shapes.

use std::path::{Path, PathBuf};

use macs_topo::detect::write_fixture_tree;
use macs_topo::{detect_machine_at, MachineTopology, TopoError};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn two_socket_four_core_detects_two_levels() {
    let m = detect_machine_at(&fixture("two_socket")).unwrap();
    assert_eq!(m.topo.shape(), &[2, 4]);
    assert_eq!(m.topo.node_prefix(), 0, "one host = one shared-memory node");
    assert_eq!(m.cpus, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    // Same-socket steals are distance 1, cross-socket distance 2.
    assert_eq!(m.topo.distance(0, 1), 1);
    assert_eq!(m.topo.distance(0, 4), 2);
    assert!(m.topo.is_local(0, 4), "still shared memory");
}

#[test]
fn single_package_detects_flat() {
    let m = detect_machine_at(&fixture("flat_one")).unwrap();
    assert_eq!(m.topo.shape(), &[4], "extent-1 levels are elided");
    assert_eq!(m.topo.max_distance(), 1);
    assert_eq!(m.cpus, vec![0, 1, 2, 3]);
}

#[test]
fn hyperthread_siblings_dedup_to_physical_cores() {
    // 8 CPUs, but 2 packages × 2 cores × 2 threads: 4 workers, each
    // pinned to the lowest-numbered sibling.
    let m = detect_machine_at(&fixture("hyperthread")).unwrap();
    assert_eq!(m.topo.shape(), &[2, 2]);
    assert_eq!(m.cpus, vec![0, 1, 2, 3]);
}

#[test]
fn numa_nodes_become_the_outer_level() {
    // 2 NUMA domains × 1 package × 4 cores: the package level (extent 1)
    // is elided, the NUMA split survives as the outer level.
    let m = detect_machine_at(&fixture("numa")).unwrap();
    assert_eq!(m.topo.shape(), &[2, 4]);
    assert_eq!(m.topo.distance(0, 4), 2, "cross-NUMA is the far ring");
}

#[test]
fn malformed_and_missing_files_are_typed_errors() {
    match detect_machine_at(&fixture("malformed")) {
        Err(TopoError::SysfsParse { value, .. }) => assert_eq!(value, "banana"),
        other => panic!("expected SysfsParse, got {other:?}"),
    }
    assert!(matches!(
        detect_machine_at(&fixture("missing")),
        Err(TopoError::SysfsRead { .. })
    ));
    assert!(matches!(
        detect_machine_at(&fixture("empty")),
        Err(TopoError::NoCpus)
    ));
    assert!(matches!(
        detect_machine_at(&fixture("irregular")),
        Err(TopoError::IrregularLayout { .. })
    ));
    // A root that simply isn't a sysfs tree (the non-Linux / masked-/sys
    // case) is an error too, not a panic.
    assert!(matches!(
        detect_machine_at(Path::new("/definitely/not/sysfs")),
        Err(TopoError::SysfsRead { .. })
    ));
}

/// SplitMix64 — the same deterministic stream the other property suites
/// use.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Shapes built by `detect` from random synthetic sysfs trees satisfy
/// the `prop_topo` index-math invariants: coords roundtrip, distance is
/// the ultrametric prefix measure, rings partition the machine.
#[test]
fn detected_shapes_satisfy_index_math_invariants() {
    let base = std::env::temp_dir().join(format!("macs-detect-prop-{}", std::process::id()));
    let mut rng = Rng(0xDE7EC7);
    for case in 0..40 {
        let numa = 1 + rng.below(3);
        let packages = 1 + rng.below(3);
        let cores = 1 + rng.below(4);
        let threads = 1 + rng.below(2);
        let root = base.join(format!("case{case}"));
        write_fixture_tree(&root, numa, packages, cores, threads).unwrap();
        let m = detect_machine_at(&root).unwrap();
        std::fs::remove_dir_all(&root).ok();

        let total = numa * packages * cores;
        let t = &m.topo;
        assert_eq!(t.total_workers(), total, "one worker per physical core");
        assert_eq!(m.cpus.len(), total);
        // Outer levels of extent 1 are elided; only the innermost (cores
        // per package) may legitimately be 1.
        let outer = &t.shape()[..t.levels() - 1];
        assert!(outer.iter().all(|&e| e > 1), "elided extent-1 outer level");
        assert_eq!(t.nodes(), 1);

        // prop_topo invariants on the detected shape.
        for _ in 0..32 {
            let a = rng.below(total);
            let b = rng.below(total);
            let c = t.coords(a);
            assert_eq!(t.worker_at(&c), a, "coords → id roundtrip");
            let d = t.distance(a, b);
            assert_eq!(d, t.distance(b, a), "symmetry");
            assert_eq!(d == 0, a == b, "identity");
            let common = c
                .iter()
                .zip(t.coords(b).iter())
                .take_while(|(x, y)| x == y)
                .count();
            assert_eq!(d, t.levels() - common, "definitional distance");
        }
        let w = rng.below(total);
        let mut seen = vec![0u32; total];
        seen[w] += 1;
        for (i, ring) in t.rings(w).iter().enumerate() {
            for &p in ring {
                assert_eq!(t.distance(w, p), i + 1, "ring index = distance");
                seen[p] += 1;
            }
        }
        assert!(seen.iter().all(|&s| s == 1), "rings partition the machine");

        // The CPU map is strictly increasing within a package: dense
        // worker order follows (numa, package, core) order.
        for pair in m.cpus.windows(2) {
            assert_ne!(pair[0], pair[1], "no CPU pinned twice");
        }
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn detect_convenience_always_yields_a_machine() {
    let t = MachineTopology::detect();
    assert!(t.total_workers() >= 1);
}
