//! The N-level machine model: shapes, coordinates, distances, rings.

use std::fmt;
use std::ops::Range;

/// Upper bound on topology depth. Eight levels is already far deeper than
/// any machine hierarchy in the paper's class (core → socket → node →
/// rack → cluster is five); the bound keeps per-distance arrays fixed-size
/// in the hot stats paths.
pub const MAX_LEVELS: usize = 8;

/// Why a shape cannot describe a machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopoError {
    /// A topology needs at least one level.
    EmptyShape,
    /// A level with zero members makes every group below it empty.
    ZeroExtent { level: usize },
    /// More than [`MAX_LEVELS`] levels.
    TooManyLevels { got: usize },
    /// The worker count overflows `usize` (or is absurdly large).
    TooManyWorkers,
    /// `node_prefix` must be at most the number of levels.
    NodePrefixOutOfRange { node_prefix: usize, levels: usize },
    /// `clustered(total, cores_per_node)` needs `total` divisible by the
    /// node size.
    NotDivisible { total: usize, cores_per_node: usize },
    /// Topology detection could not read a sysfs file or directory.
    SysfsRead { path: String },
    /// Topology detection read a sysfs file it could not make sense of.
    SysfsParse { path: String, value: String },
    /// The detected core layout is not a uniform mixed-radix shape
    /// (e.g. sockets with differing core counts).
    IrregularLayout { detail: String },
    /// The sysfs tree lists no CPUs at all.
    NoCpus,
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoError::EmptyShape => write!(f, "topology shape is empty (need >= 1 level)"),
            TopoError::ZeroExtent { level } => {
                write!(f, "topology level {level} has zero members")
            }
            TopoError::TooManyLevels { got } => {
                write!(f, "topology has {got} levels (maximum {MAX_LEVELS})")
            }
            TopoError::TooManyWorkers => write!(f, "topology worker count overflows"),
            TopoError::NodePrefixOutOfRange {
                node_prefix,
                levels,
            } => write!(
                f,
                "node prefix {node_prefix} out of range for a {levels}-level shape"
            ),
            TopoError::NotDivisible {
                total,
                cores_per_node,
            } => write!(
                f,
                "worker count {total} not a multiple of node size {cores_per_node}"
            ),
            TopoError::SysfsRead { path } => write!(f, "cannot read sysfs entry {path}"),
            TopoError::SysfsParse { path, value } => {
                write!(f, "cannot parse sysfs entry {path}: {value:?}")
            }
            TopoError::IrregularLayout { detail } => {
                write!(f, "machine layout is not mixed-radix: {detail}")
            }
            TopoError::NoCpus => write!(f, "sysfs tree lists no CPUs"),
        }
    }
}

impl std::error::Error for TopoError {}

/// An N-level machine: a mixed-radix shape (outermost level first) with
/// dense worker IDs and a designated shared-memory (`node`) boundary.
///
/// See the crate docs for the level model and the distance metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineTopology {
    /// Extent of each level, outermost first.
    shape: Vec<usize>,
    /// The outermost `node_prefix` levels identify a shared-memory node.
    node_prefix: usize,
    /// `sizes[p]` = workers per group with a fixed `p`-long coordinate
    /// prefix; `sizes[0] == total`, `sizes[levels] == 1`.
    sizes: Vec<usize>,
}

impl MachineTopology {
    /// Build a machine from its level shape (outermost first) and the
    /// number of outer levels that identify a shared-memory node.
    pub fn try_new(shape: &[usize], node_prefix: usize) -> Result<Self, TopoError> {
        if shape.is_empty() {
            return Err(TopoError::EmptyShape);
        }
        if shape.len() > MAX_LEVELS {
            return Err(TopoError::TooManyLevels { got: shape.len() });
        }
        if let Some(level) = shape.iter().position(|&e| e == 0) {
            return Err(TopoError::ZeroExtent { level });
        }
        if node_prefix > shape.len() {
            return Err(TopoError::NodePrefixOutOfRange {
                node_prefix,
                levels: shape.len(),
            });
        }
        // Suffix products: sizes[p] = Π shape[p..].
        let mut sizes = vec![1usize; shape.len() + 1];
        for p in (0..shape.len()).rev() {
            sizes[p] = sizes[p + 1]
                .checked_mul(shape[p])
                .ok_or(TopoError::TooManyWorkers)?;
        }
        Ok(MachineTopology {
            shape: shape.to_vec(),
            node_prefix,
            sizes,
        })
    }

    /// One flat shared-memory machine of `n` workers (1 level, everything
    /// local).
    pub fn flat(n: usize) -> Self {
        MachineTopology::try_new(&[n], 0).expect("flat topology")
    }

    /// The classic 2-level cluster: `nodes` shared-memory nodes of
    /// `cores_per_node` workers.
    pub fn try_two_level(nodes: usize, cores_per_node: usize) -> Result<Self, TopoError> {
        MachineTopology::try_new(&[nodes, cores_per_node], 1)
    }

    /// Split `total` workers into 2-level nodes of `cores_per_node`.
    pub fn try_clustered(total: usize, cores_per_node: usize) -> Result<Self, TopoError> {
        if cores_per_node == 0 {
            return Err(TopoError::ZeroExtent { level: 1 });
        }
        if total == 0 {
            return Err(TopoError::ZeroExtent { level: 0 });
        }
        if !total.is_multiple_of(cores_per_node) {
            return Err(TopoError::NotDivisible {
                total,
                cores_per_node,
            });
        }
        MachineTopology::try_two_level(total / cores_per_node, cores_per_node)
    }

    // ----- shape accessors --------------------------------------------------

    #[inline]
    pub fn levels(&self) -> usize {
        self.shape.len()
    }

    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    #[inline]
    pub fn node_prefix(&self) -> usize {
        self.node_prefix
    }

    #[inline]
    pub fn total_workers(&self) -> usize {
        self.sizes[0]
    }

    /// The maximum possible distance between two workers (= levels).
    #[inline]
    pub fn max_distance(&self) -> usize {
        self.levels()
    }

    /// Distances `1..=local_distance_max()` stay inside one shared-memory
    /// node; larger ones cross the interconnect.
    #[inline]
    pub fn local_distance_max(&self) -> usize {
        self.levels() - self.node_prefix
    }

    /// Workers per group with a `p`-long coordinate prefix.
    #[inline]
    pub fn group_size(&self, prefix_len: usize) -> usize {
        self.sizes[prefix_len]
    }

    /// Flattened index of `w`'s group at prefix length `p` (0 = the whole
    /// machine).
    #[inline]
    pub fn group_index(&self, w: usize, prefix_len: usize) -> usize {
        debug_assert!(w < self.total_workers());
        w / self.sizes[prefix_len]
    }

    /// The contiguous worker range sharing `w`'s `p`-long prefix
    /// (including `w`).
    #[inline]
    pub fn group_range(&self, w: usize, prefix_len: usize) -> Range<usize> {
        let size = self.sizes[prefix_len];
        let start = (w / size) * size;
        start..start + size
    }

    /// Coordinate of `w` at one level (0 = outermost).
    #[inline]
    pub fn coord(&self, w: usize, level: usize) -> usize {
        debug_assert!(w < self.total_workers());
        (w / self.sizes[level + 1]) % self.shape[level]
    }

    /// All coordinates of `w`, outermost first.
    pub fn coords(&self, w: usize) -> Vec<usize> {
        (0..self.levels()).map(|l| self.coord(w, l)).collect()
    }

    /// Worker ID from coordinates (outermost first). Inverse of
    /// [`coords`](Self::coords).
    pub fn worker_at(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.levels());
        coords
            .iter()
            .zip(self.sizes[1..].iter())
            .map(|(&c, &s)| c * s)
            .sum()
    }

    // ----- the distance metric ----------------------------------------------

    /// Topological distance: the number of levels (from the innermost)
    /// separating `a` and `b` from their lowest common ancestor. `0` iff
    /// `a == b`; at most [`levels`](Self::levels).
    #[inline]
    pub fn distance(&self, a: usize, b: usize) -> usize {
        debug_assert!(a < self.total_workers() && b < self.total_workers());
        // First level (outermost-first) whose group differs; ≤ MAX_LEVELS
        // iterations.
        for q in 0..self.levels() {
            if a / self.sizes[q + 1] != b / self.sizes[q + 1] {
                return self.levels() - q;
            }
        }
        0
    }

    /// Are `a` and `b` in the same shared-memory node?
    #[inline]
    pub fn is_local(&self, a: usize, b: usize) -> bool {
        a / self.sizes[self.node_prefix] == b / self.sizes[self.node_prefix]
    }

    // ----- node (shared-memory domain) view ---------------------------------

    /// Number of shared-memory nodes.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.total_workers() / self.sizes[self.node_prefix]
    }

    /// Workers per node.
    #[inline]
    pub fn node_size(&self) -> usize {
        self.sizes[self.node_prefix]
    }

    /// Node hosting worker `w`.
    #[inline]
    pub fn node_of(&self, w: usize) -> usize {
        self.group_index(w, self.node_prefix)
    }

    /// Workers on node `n` (contiguous, including any caller on `n`).
    #[inline]
    pub fn workers_on(&self, n: usize) -> Range<usize> {
        debug_assert!(n < self.nodes());
        let size = self.node_size();
        n * size..(n + 1) * size
    }

    /// Workers co-located with `w`, *including* `w` itself.
    #[inline]
    pub fn peers_of(&self, w: usize) -> Range<usize> {
        self.group_range(w, self.node_prefix)
    }

    // ----- rings ------------------------------------------------------------

    /// The ring of workers at distance exactly `d` from `w`
    /// (`1 <= d <= levels`): the group at prefix `levels - d` minus the
    /// group at prefix `levels - d + 1`, i.e. two contiguous ID ranges.
    pub fn peers_at(&self, w: usize, d: usize) -> PeerRing {
        debug_assert!(d >= 1 && d <= self.levels());
        let outer = self.group_range(w, self.levels() - d);
        let inner = self.group_range(w, self.levels() - d + 1);
        PeerRing {
            before: outer.start..inner.start,
            after: inner.end..outer.end,
        }
    }

    /// Per-distance victim rings for `w`, nearest first: element `i` holds
    /// the workers at distance `i + 1`, in ID order. Rings partition
    /// `0..total \ {w}`; empty rings (levels of extent 1) are kept so ring
    /// index and distance stay aligned.
    pub fn rings(&self, w: usize) -> Vec<Vec<usize>> {
        (1..=self.levels())
            .map(|d| self.peers_at(w, d).collect())
            .collect()
    }

    /// Remote *nodes* grouped by their distance from `w`, nearest ring
    /// first. Element `i` holds the nodes whose workers are at distance
    /// `local_distance_max() + 1 + i` from `w`. Every worker of a node is
    /// equidistant from `w` (they differ from `w` above the node
    /// boundary), so "node distance" is well defined.
    pub fn node_rings(&self, w: usize) -> Vec<Vec<usize>> {
        let node_size = self.node_size();
        (self.local_distance_max() + 1..=self.levels())
            .map(|d| {
                let ring = self.peers_at(w, d);
                let (before, after) = (ring.before, ring.after);
                before
                    .step_by(node_size.max(1))
                    .chain(after.step_by(node_size.max(1)))
                    .map(|first| first / node_size)
                    .collect()
            })
            .collect()
    }

    /// The ring of remote *nodes* at worker distance exactly `d` from `w`
    /// (`local_distance_max() < d <= levels`), as an O(1) view — the
    /// node-ID image of [`peers_at`](Self::peers_at). Above the node
    /// boundary every group is a whole number of nodes, so the two worker
    /// ranges map to two node ranges.
    pub fn node_ring_at(&self, w: usize, d: usize) -> NodeRing {
        debug_assert!(d > self.local_distance_max() && d <= self.levels());
        let ns = self.node_size().max(1);
        let ring = self.peers_at(w, d);
        NodeRing {
            before: ring.before.start / ns..ring.before.end / ns,
            after: ring.after.start / ns..ring.after.end / ns,
        }
    }
}

impl fmt::Display for MachineTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dims: Vec<String> = self.shape.iter().map(|e| e.to_string()).collect();
        write!(f, "{}", dims.join("x"))?;
        write!(f, " (node prefix {})", self.node_prefix)
    }
}

/// Iterator over a distance ring: the two contiguous ID ranges on either
/// side of the excluded inner group.
#[derive(Clone, Debug)]
pub struct PeerRing {
    pub(crate) before: Range<usize>,
    pub(crate) after: Range<usize>,
}

impl PeerRing {
    /// The ring `range \ {hole}`: every worker in a contiguous range
    /// except one. This is the *flat* local scan — all co-located peers
    /// of `hole` in one ring — expressed without materialising it.
    pub fn hole(range: Range<usize>, hole: usize) -> PeerRing {
        debug_assert!(range.contains(&hole));
        PeerRing {
            before: range.start..hole,
            after: hole + 1..range.end,
        }
    }

    /// Number of workers in the ring.
    pub fn len(&self) -> usize {
        (self.before.end - self.before.start) + (self.after.end - self.after.start)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th member of the ring (ID order), for rotation-based scans
    /// without materialising the ring.
    pub fn get(&self, i: usize) -> usize {
        let nb = self.before.end - self.before.start;
        if i < nb {
            self.before.start + i
        } else {
            self.after.start + (i - nb)
        }
    }

    /// O(1) membership test.
    pub fn contains(&self, w: usize) -> bool {
        self.before.contains(&w) || self.after.contains(&w)
    }
}

impl Iterator for PeerRing {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        self.before.next().or_else(|| self.after.next())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for PeerRing {}

/// O(1) view of a ring of remote *node* IDs: like [`PeerRing`], two
/// contiguous ranges on either side of the excluded inner group.
#[derive(Clone, Debug)]
pub struct NodeRing {
    pub(crate) before: Range<usize>,
    pub(crate) after: Range<usize>,
}

impl NodeRing {
    /// The ring `range \ {hole}` over node IDs: the flat remote scan
    /// (every node but the caller's own) without materialising it.
    pub fn hole(range: Range<usize>, hole: usize) -> NodeRing {
        debug_assert!(range.contains(&hole));
        NodeRing {
            before: range.start..hole,
            after: hole + 1..range.end,
        }
    }

    /// Number of nodes in the ring.
    pub fn len(&self) -> usize {
        (self.before.end - self.before.start) + (self.after.end - self.after.start)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th node of the ring (ID order).
    pub fn get(&self, i: usize) -> usize {
        let nb = self.before.end - self.before.start;
        if i < nb {
            self.before.start + i
        } else {
            self.after.start + (i - nb)
        }
    }

    /// O(1) membership test.
    pub fn contains(&self, n: usize) -> bool {
        self.before.contains(&n) || self.after.contains(&n)
    }
}

impl Iterator for NodeRing {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        self.before.next().or_else(|| self.after.next())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for NodeRing {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let t = MachineTopology::try_clustered(512, 4).unwrap();
        assert_eq!(t.levels(), 2);
        assert_eq!(t.nodes(), 128);
        assert_eq!(t.total_workers(), 512);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(511), 127);
    }

    #[test]
    fn four_level_distances() {
        // [clusters, nodes, sockets, cores] = [2, 2, 2, 2]; nodes are the
        // outer two levels.
        let t = MachineTopology::try_new(&[2, 2, 2, 2], 2).unwrap();
        assert_eq!(t.total_workers(), 16);
        assert_eq!(t.distance(0, 0), 0);
        assert_eq!(t.distance(0, 1), 1, "same socket");
        assert_eq!(t.distance(0, 2), 2, "other socket, same node");
        assert_eq!(t.distance(0, 4), 3, "other node, same cluster");
        assert_eq!(t.distance(0, 8), 4, "other cluster");
        assert_eq!(t.local_distance_max(), 2);
        assert!(t.is_local(0, 3));
        assert!(!t.is_local(0, 4));
        assert_eq!(t.nodes(), 4);
        assert_eq!(t.node_size(), 4);
    }

    #[test]
    fn rings_partition_the_machine() {
        let t = MachineTopology::try_new(&[2, 3, 2], 1).unwrap();
        for w in 0..t.total_workers() {
            let mut seen = vec![false; t.total_workers()];
            seen[w] = true;
            for d in 1..=t.levels() {
                for p in t.peers_at(w, d) {
                    assert_eq!(t.distance(w, p), d);
                    assert!(!seen[p], "worker {p} appears in two rings");
                    seen[p] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "rings must cover everyone");
        }
    }

    #[test]
    fn node_rings_list_remote_nodes_by_distance() {
        let t = MachineTopology::try_new(&[4, 2], 1).unwrap(); // 4 nodes of 2
        let rings = t.node_rings(0);
        assert_eq!(rings.len(), 1, "one level above the node = one ring");
        assert_eq!(rings[0], vec![1, 2, 3]);

        let t = MachineTopology::try_new(&[2, 2, 2], 2).unwrap(); // clusters of nodes
        let rings = t.node_rings(0);
        assert_eq!(rings, vec![vec![1], vec![2, 3]]);
    }

    #[test]
    fn flat_machine_is_all_local() {
        let t = MachineTopology::flat(8);
        assert_eq!(t.nodes(), 1);
        assert!(t.is_local(0, 7));
        assert_eq!(t.distance(0, 7), 1);
        assert_eq!(t.local_distance_max(), 1);
        assert!(t.node_rings(0).is_empty());
    }

    #[test]
    fn coords_roundtrip() {
        let t = MachineTopology::try_new(&[3, 2, 4], 1).unwrap();
        for w in 0..t.total_workers() {
            assert_eq!(t.worker_at(&t.coords(w)), w);
        }
        assert_eq!(t.coords(13), vec![1, 1, 1]); // 13 = 1*8 + 1*4 + 1
    }

    #[test]
    fn constructor_errors_are_descriptive() {
        assert_eq!(MachineTopology::try_new(&[], 0), Err(TopoError::EmptyShape));
        assert_eq!(
            MachineTopology::try_new(&[2, 0, 2], 1),
            Err(TopoError::ZeroExtent { level: 1 })
        );
        assert_eq!(
            MachineTopology::try_new(&[2; 9], 1),
            Err(TopoError::TooManyLevels { got: 9 })
        );
        assert_eq!(
            MachineTopology::try_new(&[2, 2], 3),
            Err(TopoError::NodePrefixOutOfRange {
                node_prefix: 3,
                levels: 2
            })
        );
        assert_eq!(
            MachineTopology::try_clustered(10, 4),
            Err(TopoError::NotDivisible {
                total: 10,
                cores_per_node: 4
            })
        );
        let msg = MachineTopology::try_clustered(10, 4)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("10") && msg.contains("4"), "{msg}");
    }

    #[test]
    fn node_ring_at_matches_node_rings() {
        for (shape, prefix) in [
            (vec![4usize, 2], 1usize),
            (vec![2, 2, 2], 2),
            (vec![3, 2, 4, 2], 2),
            (vec![2, 3, 2, 2, 2], 3),
        ] {
            let t = MachineTopology::try_new(&shape, prefix).unwrap();
            for w in (0..t.total_workers()).step_by(3) {
                let eager = t.node_rings(w);
                for (i, ring) in eager.iter().enumerate() {
                    let d = t.local_distance_max() + 1 + i;
                    let view = t.node_ring_at(w, d);
                    assert_eq!(view.len(), ring.len());
                    let got: Vec<usize> = view.clone().collect();
                    assert_eq!(&got, ring, "w={w} d={d}");
                    for (k, &n) in ring.iter().enumerate() {
                        assert_eq!(view.get(k), n);
                        assert!(view.contains(n));
                    }
                    assert!(!view.contains(t.node_of(w)));
                }
            }
        }
    }

    #[test]
    fn hole_rings_skip_exactly_the_hole() {
        let peers = PeerRing::hole(4..9, 6);
        assert_eq!(peers.clone().collect::<Vec<_>>(), vec![4, 5, 7, 8]);
        assert_eq!(peers.len(), 4);
        assert!(peers.contains(5) && !peers.contains(6));
        assert_eq!(peers.get(2), 7);
        let nodes = NodeRing::hole(0..4, 0);
        assert_eq!(nodes.clone().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(!nodes.contains(0));
    }

    #[test]
    fn ring_get_matches_iteration() {
        let t = MachineTopology::try_new(&[2, 2, 2], 1).unwrap();
        for d in 1..=3 {
            let ring = t.peers_at(5, d);
            let n = ring.len();
            let by_iter: Vec<usize> = ring.clone().collect();
            let by_get: Vec<usize> = (0..n).map(|i| ring.get(i)).collect();
            assert_eq!(by_iter, by_get);
        }
    }
}
