//! Topology discovery: parse Linux sysfs into a [`MachineTopology`].
//!
//! Every shape in this codebase so far was hand-declared. This module
//! reads the machine the process is actually running on —
//! `/sys/devices/system/cpu/cpu*/topology/{physical_package_id,core_id}`
//! for the package/core layout and `/sys/devices/system/node/node*` for
//! the NUMA domains — and builds the mixed-radix shape the rest of the
//! stack already understands, plus the worker → OS-CPU map that thread
//! pinning and the `calibrate` harness need.
//!
//! The parser takes the sysfs *root* as a parameter so committed fixture
//! trees exercise every path offline (see `crates/topo/tests/`); the
//! real entry points pass `/sys`. All failures are typed [`TopoError`]s —
//! a malformed or missing file can never panic — and the convenience
//! [`MachineTopology::detect`] falls back to a flat shape when sysfs is
//! absent or unparseable (non-Linux hosts, containers with a masked
//! `/sys`).
//!
//! Conventions:
//!
//! * **Hyperthread siblings are deduplicated**: one worker per *physical*
//!   core (same `(package, core_id)` pair), pinned to the lowest-numbered
//!   sibling CPU. The paper's model — and every cost in the simulator —
//!   is per core, not per hardware thread.
//! * **The whole host is one shared-memory node** (`node_prefix = 0`):
//!   NUMA domains and packages become *levels* of the shape, so
//!   `distance()` separates same-package from cross-package from
//!   cross-NUMA steals, but nothing on one host crosses the GPI fabric.
//! * Levels of extent 1 are elided (a 1-package 8-core laptop detects as
//!   the flat shape `[8]`, not `[1, 1, 8]`).

use std::fs;
use std::path::{Path, PathBuf};

use crate::machine::{MachineTopology, TopoError};

/// A detected machine: the shape plus the worker → OS-CPU assignment
/// (worker `w` runs on CPU `cpus[w]`, the lowest-numbered hyperthread
/// sibling of its physical core).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetectedMachine {
    pub topo: MachineTopology,
    pub cpus: Vec<u32>,
}

impl DetectedMachine {
    /// The fallback when sysfs is unavailable: a flat shape of
    /// `std::thread::available_parallelism()` workers (1 if even that is
    /// unknown) with the identity CPU map.
    pub fn flat_fallback() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        DetectedMachine {
            topo: MachineTopology::flat(n),
            cpus: (0..n as u32).collect(),
        }
    }
}

/// Detect the host machine from `/sys`. Errors are typed; callers who
/// just want *a* shape use [`MachineTopology::detect`] instead.
pub fn detect_machine() -> Result<DetectedMachine, TopoError> {
    detect_machine_at(Path::new("/sys"))
}

/// Detect a machine from a sysfs tree rooted at `root` (the testable
/// entry point: fixture trees stand in for `/sys`).
pub fn detect_machine_at(root: &Path) -> Result<DetectedMachine, TopoError> {
    let cpu_dir = root.join("devices/system/cpu");
    let cpu_ids = numbered_entries(&cpu_dir, "cpu")?;
    if cpu_ids.is_empty() {
        return Err(TopoError::NoCpus);
    }

    // NUMA domains, if the tree has any: CPU → node from each node's
    // cpulist. Memory-only nodes (empty cpulist) are skipped.
    let node_of_cpu = numa_map(root)?;

    // One worker per physical core: dedup hyperthread siblings by
    // (package, core_id), keeping the lowest-numbered CPU.
    // (numa, package, core_id) -> representative cpu
    let mut cores: Vec<(u32, i64, i64, u32)> = Vec::new();
    for &cpu in &cpu_ids {
        let topo = cpu_dir.join(format!("cpu{cpu}/topology"));
        let pkg = read_id(&topo.join("physical_package_id"))?;
        let core = read_id(&topo.join("core_id"))?;
        let numa = match &node_of_cpu {
            Some(map) => *map.iter().find(|(c, _)| *c == cpu).map(|(_, n)| n).ok_or(
                TopoError::SysfsParse {
                    path: format!("{}/devices/system/node", root.display()),
                    value: format!("cpu{cpu} missing from every node's cpulist"),
                },
            )?,
            None => 0,
        };
        match cores
            .iter_mut()
            .find(|(n, p, c, _)| *n == numa && *p == pkg && *c == core)
        {
            Some(entry) => entry.3 = entry.3.min(cpu),
            None => cores.push((numa, pkg, core, cpu)),
        }
    }

    // Dense worker IDs follow (numa, package, core) order, which is the
    // mixed-radix digit order of the shape built below.
    cores.sort_unstable();

    // Regularity: every NUMA domain holds the same number of packages,
    // every package the same number of cores — otherwise the mixed-radix
    // shape cannot describe the machine.
    let numa_count = count_distinct(cores.iter().map(|c| c.0));
    let mut pkgs_per_numa = Vec::new();
    let mut cores_per_pkg = Vec::new();
    {
        let mut i = 0;
        while i < cores.len() {
            let numa = cores[i].0;
            let mut pkgs = 0usize;
            while i < cores.len() && cores[i].0 == numa {
                let pkg = cores[i].1;
                let mut n = 0usize;
                while i < cores.len() && cores[i].0 == numa && cores[i].1 == pkg {
                    n += 1;
                    i += 1;
                }
                cores_per_pkg.push(n);
                pkgs += 1;
            }
            pkgs_per_numa.push(pkgs);
        }
    }
    if pkgs_per_numa.iter().any(|&p| p != pkgs_per_numa[0]) {
        return Err(TopoError::IrregularLayout {
            detail: format!("packages per NUMA node differ: {pkgs_per_numa:?}"),
        });
    }
    if cores_per_pkg.iter().any(|&c| c != cores_per_pkg[0]) {
        return Err(TopoError::IrregularLayout {
            detail: format!("cores per package differ: {cores_per_pkg:?}"),
        });
    }

    // Shape levels outermost-first, extent-1 levels elided; the whole
    // host is one shared-memory node (`node_prefix = 0`).
    let mut shape = Vec::new();
    if numa_count > 1 {
        shape.push(numa_count);
    }
    if pkgs_per_numa[0] > 1 {
        shape.push(pkgs_per_numa[0]);
    }
    shape.push(cores_per_pkg[0]);
    let topo = MachineTopology::try_new(&shape, 0)?;
    debug_assert_eq!(topo.total_workers(), cores.len());
    Ok(DetectedMachine {
        topo,
        cpus: cores.into_iter().map(|c| c.3).collect(),
    })
}

impl MachineTopology {
    /// The host machine's shape, or the flat fallback when sysfs is
    /// unavailable or unparseable. Never fails; use
    /// [`detect_machine`] to see *why* detection fell back, and for the
    /// worker → CPU map.
    pub fn detect() -> MachineTopology {
        detect_machine()
            .map(|d| d.topo)
            .unwrap_or_else(|_| DetectedMachine::flat_fallback().topo)
    }
}

/// Numeric suffixes of `prefix<N>` entries under `dir`, sorted. A missing
/// directory is a [`TopoError::SysfsRead`].
fn numbered_entries(dir: &Path, prefix: &str) -> Result<Vec<u32>, TopoError> {
    let entries = fs::read_dir(dir).map_err(|_| TopoError::SysfsRead {
        path: dir.display().to_string(),
    })?;
    let mut ids = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(rest) = name.to_str().and_then(|n| n.strip_prefix(prefix)) else {
            continue;
        };
        if !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(id) = rest.parse() {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

/// `(cpu, numa node)` pairs from `devices/system/node/node*/cpulist`, or
/// `None` when the tree has no node directory at all (no NUMA
/// information — treat as one domain).
#[allow(clippy::type_complexity)]
fn numa_map(root: &Path) -> Result<Option<Vec<(u32, u32)>>, TopoError> {
    let node_dir = root.join("devices/system/node");
    if !node_dir.is_dir() {
        return Ok(None);
    }
    let nodes = numbered_entries(&node_dir, "node")?;
    if nodes.is_empty() {
        return Ok(None);
    }
    let mut map = Vec::new();
    for node in nodes {
        let path = node_dir.join(format!("node{node}/cpulist"));
        let list = read_trim(&path)?;
        for cpu in parse_cpulist(&list, &path)? {
            map.push((cpu, node));
        }
    }
    Ok(Some(map))
}

/// Parse a sysfs cpulist (`0-3,8,10-11`); empty lists are legal
/// (memory-only NUMA nodes).
fn parse_cpulist(list: &str, path: &Path) -> Result<Vec<u32>, TopoError> {
    let bad = |value: &str| TopoError::SysfsParse {
        path: path.display().to_string(),
        value: value.to_string(),
    };
    let mut cpus = Vec::new();
    for tok in list.split(',') {
        let tok = tok.trim();
        if tok.is_empty() {
            continue;
        }
        match tok.split_once('-') {
            Some((a, b)) => {
                let a: u32 = a.trim().parse().map_err(|_| bad(tok))?;
                let b: u32 = b.trim().parse().map_err(|_| bad(tok))?;
                if a > b {
                    return Err(bad(tok));
                }
                cpus.extend(a..=b);
            }
            None => cpus.push(tok.parse().map_err(|_| bad(tok))?),
        }
    }
    Ok(cpus)
}

fn read_trim(path: &Path) -> Result<String, TopoError> {
    fs::read_to_string(path)
        .map(|s| s.trim().to_string())
        .map_err(|_| TopoError::SysfsRead {
            path: path.display().to_string(),
        })
}

/// A topology id file: non-negative integer (sysfs reports `-1` for
/// "unknown", which detection treats as unparseable — the caller falls
/// back to the flat shape).
fn read_id(path: &Path) -> Result<i64, TopoError> {
    let v = read_trim(path)?;
    let id: i64 = v.parse().map_err(|_| TopoError::SysfsParse {
        path: path.display().to_string(),
        value: v.clone(),
    })?;
    if id < 0 {
        return Err(TopoError::SysfsParse {
            path: path.display().to_string(),
            value: v,
        });
    }
    Ok(id)
}

fn count_distinct(it: impl Iterator<Item = u32>) -> usize {
    let mut seen: Vec<u32> = it.collect();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// Build a synthetic sysfs tree describing `numa × packages × cores`
/// physical cores with `threads` hyperthread siblings each, under
/// `root`. Sibling CPUs are enumerated the way Linux does: all first
/// threads, then all second threads. Used by the fixture/property tests
/// and usable by downstream harnesses to fabricate machines.
pub fn write_fixture_tree(
    root: &Path,
    numa: usize,
    packages: usize,
    cores: usize,
    threads: usize,
) -> std::io::Result<PathBuf> {
    let cpu_dir = root.join("devices/system/cpu");
    let phys = numa * packages * cores;
    for t in 0..threads.max(1) {
        for p in 0..numa * packages {
            for c in 0..cores {
                let cpu = t * phys + p * cores + c;
                let topo = cpu_dir.join(format!("cpu{cpu}/topology"));
                fs::create_dir_all(&topo)?;
                fs::write(topo.join("physical_package_id"), format!("{p}\n"))?;
                fs::write(topo.join("core_id"), format!("{c}\n"))?;
            }
        }
    }
    if numa > 1 {
        let per_numa = packages * cores;
        for n in 0..numa {
            let dir = root.join(format!("devices/system/node/node{n}"));
            fs::create_dir_all(&dir)?;
            let mut ranges: Vec<String> =
                vec![format!("{}-{}", n * per_numa, (n + 1) * per_numa - 1)];
            for t in 1..threads {
                ranges.push(format!(
                    "{}-{}",
                    t * phys + n * per_numa,
                    t * phys + (n + 1) * per_numa - 1
                ));
            }
            fs::write(dir.join("cpulist"), format!("{}\n", ranges.join(",")))?;
        }
    }
    Ok(root.to_path_buf())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpulist_parses_ranges_and_singles() {
        let p = Path::new("x");
        assert_eq!(
            parse_cpulist("0-3,8,10-11", p).unwrap(),
            vec![0, 1, 2, 3, 8, 10, 11]
        );
        assert_eq!(parse_cpulist("", p).unwrap(), Vec::<u32>::new());
        assert_eq!(parse_cpulist("5", p).unwrap(), vec![5]);
        assert!(parse_cpulist("3-1", p).is_err());
        assert!(parse_cpulist("a-b", p).is_err());
    }

    #[test]
    fn fallback_is_flat_with_identity_map() {
        let d = DetectedMachine::flat_fallback();
        assert_eq!(d.topo.levels(), 1);
        assert_eq!(d.topo.nodes(), 1);
        assert_eq!(d.cpus.len(), d.topo.total_workers());
        assert_eq!(d.cpus.first(), Some(&0));
    }

    #[test]
    fn detect_never_panics() {
        // Whatever the host looks like, detect() hands back *a* machine.
        let t = MachineTopology::detect();
        assert!(t.total_workers() >= 1);
        assert_eq!(t.nodes(), 1, "one host = one shared-memory node");
    }
}
