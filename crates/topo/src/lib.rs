//! **`macs-topo`** — the machine-topology subsystem: an N-level model of a
//! hierarchical multiprocessor and the distance-aware victim-ordering
//! machinery built on it.
//!
//! # The level model
//!
//! A [`MachineTopology`] is a mixed-radix shape, outermost level first —
//! e.g. `[clusters, nodes, sockets, cores]` — with **dense worker IDs**:
//! worker `w`'s coordinates are the digits of `w` in that radix, so all
//! workers sharing a coordinate prefix occupy one *contiguous* ID range.
//! The paper's testbed (155 nodes × 4 cores) is the 2-level shape
//! `[155, 4]`; a flat shared-memory machine is the 1-level shape `[n]`.
//!
//! The **`node_prefix`** marks the shared-memory boundary: the outermost
//! `node_prefix` levels identify a *node* (one shared-memory domain, one
//! GPI rank). Workers whose coordinates agree on that prefix communicate
//! through shared memory; everyone else is reached over the interconnect.
//! For `[clusters, nodes, sockets, cores]` the prefix is 2; for `[n]` it
//! is 0 (everything local).
//!
//! # The distance metric
//!
//! `distance(a, b)` is the number of levels, counted from the innermost,
//! that must be ascended to reach a common ancestor — equivalently
//! `levels − |common coordinate prefix|`:
//!
//! * `0` — the same worker;
//! * `1` — siblings at the innermost level (same socket);
//! * …
//! * `levels` — different at the outermost level (other cluster).
//!
//! Distances `1..=levels − node_prefix` are **intra-node** (shared
//! memory); larger distances cross the fabric, and each additional level
//! is a slower hop. [`MachineTopology::peers_at`] iterates the ring of
//! workers at an exact distance; rings partition the machine, so scanning
//! rings in increasing distance visits every potential victim exactly
//! once, nearest first — the level-by-level victim order (socket before
//! node before cluster) that the paper's hierarchy argument calls for.
//!
//! # Victim ordering
//!
//! [`VictimOrder`] ranks steal candidates by (topological distance,
//! last-successful-steal affinity, surplus estimate): rings are scanned
//! nearest-first, within a ring the last victim that yielded work is
//! retried before anyone else, and the caller breaks remaining ties with
//! its surplus estimates (greedy first-hit or max-surplus).
//! [`StealHistogram`] records how many steals travelled each distance —
//! the observability half of the distance story.
//!
//! # Worked example
//!
//! Two nodes × two sockets × two cores (`node_prefix = 1`: the outermost
//! level is the shared-memory boundary). Worker 5's coordinates are the
//! digits of 5 in the mixed radix `[2, 2, 2]` — node 1, socket 0,
//! core 1:
//!
//! ```
//! use macs_topo::MachineTopology;
//!
//! let t = MachineTopology::try_new(&[2, 2, 2], 1)?;
//! assert_eq!(t.total_workers(), 8);
//! assert_eq!(t.coords(5), vec![1, 0, 1]);
//!
//! // Distance = levels up to the common ancestor (0 = same worker).
//! assert_eq!(t.distance(5, 4), 1); // same socket
//! assert_eq!(t.distance(5, 6), 2); // other socket, same node
//! assert_eq!(t.distance(5, 0), 3); // other node — crosses the fabric
//! assert_eq!(t.local_distance_max(), 2); // distances 1..=2 are in-node
//!
//! // Rings partition everyone else, nearest first: scan them in order
//! // and you have the level-by-level victim order.
//! assert_eq!(t.rings(5), vec![
//!     vec![4],          // distance 1: socket sibling
//!     vec![6, 7],       // distance 2: other socket of node 1
//!     vec![0, 1, 2, 3], // distance 3: node 0, over the interconnect
//! ]);
//!
//! // Remote *nodes* by distance — the broadcast/steal tree across the
//! // node_prefix boundary.
//! assert_eq!(t.node_rings(5), vec![vec![0]]);
//! # Ok::<(), macs_topo::TopoError>(())
//! ```

pub mod detect;
pub mod histogram;
pub mod machine;
pub mod victim;

pub use detect::{detect_machine, detect_machine_at, DetectedMachine};
pub use histogram::StealHistogram;
pub use machine::{MachineTopology, NodeRing, PeerRing, TopoError, MAX_LEVELS};
pub use victim::{Ring, ScanOrder, VictimOrder};
