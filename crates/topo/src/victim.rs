//! Distance-aware victim ordering with last-steal affinity.

use crate::machine::{MachineTopology, NodeRing, PeerRing};

/// An indexable set of victim candidates (worker or node IDs). The
/// ordering machinery is generic over this so callers can scan either a
/// materialised `Vec<usize>` (the threaded runtime, where rings are built
/// once per OS thread) or an O(1) range view like [`PeerRing`] /
/// [`NodeRing`] (the simulator, where materialising per-worker rings
/// would cost O(workers²) memory at 10⁵+ simulated cores).
pub trait Ring {
    fn len(&self) -> usize;
    /// The `i`-th member in ID order (`i < len()`).
    fn get(&self, i: usize) -> usize;
    fn contains(&self, v: usize) -> bool;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Ring for [usize] {
    fn len(&self) -> usize {
        <[usize]>::len(self)
    }
    fn get(&self, i: usize) -> usize {
        self[i]
    }
    fn contains(&self, v: usize) -> bool {
        <[usize]>::contains(self, &v)
    }
}

impl Ring for Vec<usize> {
    fn len(&self) -> usize {
        self.as_slice().len()
    }
    fn get(&self, i: usize) -> usize {
        self[i]
    }
    fn contains(&self, v: usize) -> bool {
        Ring::contains(self.as_slice(), v)
    }
}

impl Ring for PeerRing {
    fn len(&self) -> usize {
        PeerRing::len(self)
    }
    fn get(&self, i: usize) -> usize {
        PeerRing::get(self, i)
    }
    fn contains(&self, v: usize) -> bool {
        PeerRing::contains(self, v)
    }
}

impl Ring for NodeRing {
    fn len(&self) -> usize {
        NodeRing::len(self)
    }
    fn get(&self, i: usize) -> usize {
        NodeRing::get(self, i)
    }
    fn contains(&self, v: usize) -> bool {
        NodeRing::contains(self, v)
    }
}

/// How a thief orders its candidate victims.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScanOrder {
    /// Level-by-level: all victims at distance 1 (same socket) before
    /// distance 2 (same node) before distance 3 (same cluster) …, with
    /// last-successful-steal affinity inside each ring.
    #[default]
    DistanceAware,
    /// The original flat scan: every co-located peer is equivalent, every
    /// remote node is equivalent — distance is only local vs. remote.
    Flat,
}

impl ScanOrder {
    /// Build one thief's victim rings: local co-located workers (nearest
    /// level first) and remote *nodes* by distance ring. The flat scan
    /// collapses each side into a single ring (or none, when the machine
    /// has no remote nodes). Shared by the threaded runtime and the
    /// simulator so both model the same machine.
    pub fn victim_rings(
        &self,
        topo: &MachineTopology,
        w: usize,
    ) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
        match self {
            ScanOrder::DistanceAware => {
                let local = (1..=topo.local_distance_max())
                    .map(|d| topo.peers_at(w, d).collect())
                    .collect();
                (local, topo.node_rings(w))
            }
            ScanOrder::Flat => {
                let local = vec![topo.peers_of(w).filter(|&p| p != w).collect()];
                let me = topo.node_of(w);
                let remote: Vec<usize> = (0..topo.nodes()).filter(|&n| n != me).collect();
                let remote = if remote.is_empty() {
                    Vec::new()
                } else {
                    vec![remote]
                };
                (local, remote)
            }
        }
    }
}

/// Per-thief victim-ranking state: for each distance ring, the last victim
/// that yielded work (*affinity*). A thief that just stole successfully
/// from `v` retries `v` first next time it reaches `v`'s ring — stolen
/// subtrees keep producing work, and going back to a warm victim skips the
/// scan and (for remote rings) the failed-request round trip.
///
/// Ranking is (distance, affinity, surplus): rings nearest-first, affinity
/// before the rest of a ring, and the caller's surplus estimates break
/// the remaining ties.
#[derive(Clone, Debug)]
pub struct VictimOrder {
    me: usize,
    /// `affinity[d - 1]` = last successful victim at distance `d`.
    affinity: Vec<Option<usize>>,
}

impl VictimOrder {
    pub fn new(topo: &MachineTopology, me: usize) -> Self {
        VictimOrder {
            me,
            affinity: vec![None; topo.max_distance()],
        }
    }

    #[inline]
    pub fn me(&self) -> usize {
        self.me
    }

    /// The warm victim for distance `d`, if any.
    #[inline]
    pub fn affinity_at(&self, d: usize) -> Option<usize> {
        self.affinity.get(d.wrapping_sub(1)).copied().flatten()
    }

    /// Record a successful steal from `victim`.
    pub fn record_success(&mut self, topo: &MachineTopology, victim: usize) {
        let d = topo.distance(self.me, victim);
        if d >= 1 {
            self.affinity[d - 1] = Some(victim);
        }
    }

    /// Record a failed steal from `victim`: drop the affinity if it
    /// pointed there (a drained victim must not be pinned).
    pub fn record_failure(&mut self, topo: &MachineTopology, victim: usize) {
        let d = topo.distance(self.me, victim);
        if d >= 1 && self.affinity[d - 1] == Some(victim) {
            self.affinity[d - 1] = None;
        }
    }

    /// Rank one ring of candidates: affinity first, then the ring rotated
    /// by `rot` (the caller passes a random rotation to avoid convoys),
    /// affinity not repeated. Returns candidates paired with distance `d`.
    pub fn ring_order<'a, R: Ring + ?Sized>(
        &self,
        ring: &'a R,
        d: usize,
        rot: usize,
    ) -> impl Iterator<Item = usize> + 'a {
        let warm = self.affinity_at(d).filter(|&w| ring.contains(w));
        let n = ring.len();
        warm.into_iter().chain(
            (0..n)
                .map(move |k| ring.get((rot + k) % n.max(1)))
                .filter(move |&v| Some(v) != warm),
        )
    }

    /// Greedy pick over ordered rings: the first candidate (nearest ring,
    /// affinity first) whose `surplus` estimate is non-zero. `rot_for`
    /// supplies the scan start for a ring of the given length (draw it
    /// uniformly per ring — a shared rotation reduced mod ring length
    /// would bias the start). Returns `(victim, distance)`.
    pub fn pick_first(
        &self,
        rings: &[Vec<usize>],
        mut rot_for: impl FnMut(usize) -> usize,
        mut surplus: impl FnMut(usize) -> u64,
    ) -> Option<(usize, usize)> {
        for (i, ring) in rings.iter().enumerate() {
            let d = i + 1;
            let rot = rot_for(ring.len().max(1));
            if let Some(v) = self.ring_order(ring, d, rot).find(|&v| surplus(v) > 0) {
                return Some((v, d));
            }
        }
        None
    }

    /// Repeat-free probe order over one ring of remote *nodes*: the node
    /// hosting this ring's affinity victim first, then the ring rotated
    /// by `rot` with the warm node not repeated. Taking `k` candidates
    /// from this probes `k` distinct nodes — a duplicate random draw can
    /// never burn an attempt.
    pub fn node_probe_order<'a, R: Ring + ?Sized>(
        &self,
        topo: &MachineTopology,
        ring: &'a R,
        d: usize,
        rot: usize,
    ) -> impl Iterator<Item = usize> + 'a {
        let warm = self
            .affinity_at(d)
            .map(|w| topo.node_of(w))
            .filter(|&n| ring.contains(n));
        let n = ring.len();
        warm.into_iter().chain(
            (0..n)
                .map(move |k| ring.get((rot + k) % n.max(1)))
                .filter(move |&v| Some(v) != warm),
        )
    }

    /// Max-surplus pick: inspect every candidate of the nearest non-empty
    /// ring (by surplus) and take the largest; only if a whole ring is dry
    /// move one ring out. Returns `(victim, distance)`.
    pub fn pick_max(
        &self,
        rings: &[Vec<usize>],
        mut surplus: impl FnMut(usize) -> u64,
    ) -> Option<(usize, usize)> {
        for (i, ring) in rings.iter().enumerate() {
            let d = i + 1;
            let warm = self.affinity_at(d);
            let best = ring
                .iter()
                .map(|&v| (surplus(v), Some(v) == warm, v))
                .filter(|&(s, _, _)| s > 0)
                // Affinity breaks surplus ties.
                .max_by_key(|&(s, warm, _)| (s, warm));
            if let Some((_, _, v)) = best {
                return Some((v, d));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> MachineTopology {
        // [nodes, sockets, cores] = [2, 2, 2]: worker 0's rings are
        // d=1 {1}, d=2 {2, 3}, d=3 {4..8}.
        MachineTopology::try_new(&[2, 2, 2], 1).unwrap()
    }

    #[test]
    fn affinity_tracks_success_and_failure() {
        let t = topo();
        let mut vo = VictimOrder::new(&t, 0);
        assert_eq!(vo.affinity_at(2), None);
        vo.record_success(&t, 3);
        assert_eq!(vo.affinity_at(2), Some(3));
        assert_eq!(vo.affinity_at(1), None, "other rings untouched");
        vo.record_failure(&t, 2);
        assert_eq!(vo.affinity_at(2), Some(3), "failure elsewhere keeps it");
        vo.record_failure(&t, 3);
        assert_eq!(vo.affinity_at(2), None, "failure on the warm victim clears");
    }

    #[test]
    fn ring_order_puts_affinity_first_without_repeats() {
        let t = topo();
        let mut vo = VictimOrder::new(&t, 0);
        vo.record_success(&t, 6);
        let ring: Vec<usize> = t.peers_at(0, 3).collect();
        let order: Vec<usize> = vo.ring_order(&ring, 3, 1).collect();
        assert_eq!(order[0], 6);
        assert_eq!(order.len(), ring.len());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, ring);
    }

    #[test]
    fn pick_first_prefers_near_rings() {
        let t = topo();
        let vo = VictimOrder::new(&t, 0);
        let rings = t.rings(0);
        // Everyone has surplus: nearest ring wins.
        let (v, d) = vo.pick_first(&rings, |_| 0, |_| 1).unwrap();
        assert_eq!((v, d), (1, 1));
        // Only a far worker has surplus.
        let (v, d) = vo.pick_first(&rings, |_| 0, |w| (w == 5) as u64).unwrap();
        assert_eq!((v, d), (5, 3));
        assert!(vo.pick_first(&rings, |_| 0, |_| 0).is_none());
    }

    #[test]
    fn node_probe_order_is_repeat_free_and_warm_first() {
        let t = MachineTopology::try_new(&[2, 2, 2], 2).unwrap(); // 4 nodes of 2
        let mut vo = VictimOrder::new(&t, 0);
        let ring: Vec<usize> = t.node_rings(0)[1].clone(); // nodes {2, 3}
        assert_eq!(ring, vec![2, 3]);
        vo.record_success(&t, 6); // worker 6 lives on node 3, distance 3
        for rot in 0..4 {
            let order: Vec<usize> = vo.node_probe_order(&t, &ring, 3, rot).collect();
            assert_eq!(order[0], 3, "warm node first");
            assert_eq!(order.len(), ring.len(), "every node exactly once");
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, ring);
        }
    }

    #[test]
    fn ring_order_agrees_across_ring_representations() {
        let t = MachineTopology::try_new(&[2, 2, 2, 2], 2).unwrap();
        let mut vo = VictimOrder::new(&t, 3);
        vo.record_success(&t, 9);
        for d in 1..=t.levels() {
            let view = t.peers_at(3, d);
            let slice: Vec<usize> = view.clone().collect();
            for rot in 0..=slice.len() {
                let by_view: Vec<usize> = vo.ring_order(&view, d, rot).collect();
                let by_slice: Vec<usize> = vo.ring_order(slice.as_slice(), d, rot).collect();
                assert_eq!(by_view, by_slice, "d={d} rot={rot}");
            }
        }
        // Node probes too, against the eager node rings.
        for (i, ring) in t.node_rings(3).iter().enumerate() {
            let d = t.local_distance_max() + 1 + i;
            let view = t.node_ring_at(3, d);
            let by_view: Vec<usize> = vo.node_probe_order(&t, &view, d, 1).collect();
            let by_slice: Vec<usize> = vo.node_probe_order(&t, ring.as_slice(), d, 1).collect();
            assert_eq!(by_view, by_slice);
        }
    }

    #[test]
    fn victim_rings_match_scan_order() {
        let t = topo();
        let (local, remote) = ScanOrder::DistanceAware.victim_rings(&t, 0);
        assert_eq!(local, vec![vec![1], vec![2, 3]]);
        assert_eq!(remote, vec![vec![1]]);
        let (local, remote) = ScanOrder::Flat.victim_rings(&t, 0);
        assert_eq!(local, vec![vec![1, 2, 3]]);
        assert_eq!(remote, vec![vec![1]]);
        // No remote nodes → no remote rings under either order.
        let flat1 = MachineTopology::flat(4);
        assert!(ScanOrder::Flat.victim_rings(&flat1, 0).1.is_empty());
        assert!(ScanOrder::DistanceAware
            .victim_rings(&flat1, 0)
            .1
            .is_empty());
    }

    #[test]
    fn pick_max_takes_largest_in_nearest_nonempty_ring() {
        let t = topo();
        let vo = VictimOrder::new(&t, 0);
        let rings = t.rings(0);
        // Ring d=2 has {2: 5 items, 3: 9 items}; ring d=3 has huge surplus
        // but must not be reached.
        let surplus = |w: usize| match w {
            2 => 5,
            3 => 9,
            4..=7 => 100,
            _ => 0,
        };
        let (v, d) = vo.pick_max(&rings, surplus).unwrap();
        assert_eq!((v, d), (3, 2));
    }
}
