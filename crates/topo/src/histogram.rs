//! Steals-by-distance accounting.

use std::fmt;

use crate::machine::MAX_LEVELS;

/// A histogram of steal events by topological distance (0 is unused —
/// nobody steals from themselves — but kept so `counts[d]` indexes
/// directly by distance).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StealHistogram {
    pub counts: [u64; MAX_LEVELS + 1],
}

impl StealHistogram {
    pub fn new() -> Self {
        StealHistogram::default()
    }

    #[inline]
    pub fn record(&mut self, distance: usize) {
        self.counts[distance.min(MAX_LEVELS)] += 1;
    }

    pub fn merge(&mut self, other: &StealHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(distance, count)` for every non-zero bucket, nearest first.
    pub fn buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(d, &c)| (d, c))
    }

    /// Render as `d1:123 d2:45 …` with per-bucket percentages.
    pub fn display(&self) -> String {
        let total = self.total();
        if total == 0 {
            return "(no steals)".into();
        }
        self.buckets()
            .map(|(d, c)| format!("d{d}:{c} ({:.1}%)", 100.0 * c as f64 / total as f64))
            .collect::<Vec<_>>()
            .join("  ")
    }
}

impl fmt::Display for StealHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_merge_and_display() {
        let mut h = StealHistogram::new();
        h.record(1);
        h.record(1);
        h.record(3);
        let mut g = StealHistogram::new();
        g.record(2);
        h.merge(&g);
        assert_eq!(h.total(), 4);
        assert_eq!(
            h.buckets().collect::<Vec<_>>(),
            vec![(1, 2), (2, 1), (3, 1)]
        );
        let s = h.to_string();
        assert!(s.contains("d1:2") && s.contains("50.0%"), "{s}");
        assert_eq!(StealHistogram::new().to_string(), "(no steals)");
    }

    #[test]
    fn out_of_range_distances_clamp() {
        let mut h = StealHistogram::new();
        h.record(99);
        assert_eq!(h.counts[MAX_LEVELS], 1);
    }
}
