//! The MaCS **worker pool**: a split private/shared work queue placed in
//! GPI global memory (paper §IV, Fig. 2).
//!
//! Each worker owns one [`SplitPool`]. The pool is a ring of fixed-size
//! slots (one work item — a store — per slot) addressed by three monotone
//! positions:
//!
//! ```text
//!        tail              split              head
//!         │    shared        │     private     │
//!         ▼  (stealable)     ▼  (owner only)   ▼
//!   ──────┼──────────────────┼─────────────────┼──────
//! ```
//!
//! * the **private region** `[split, head)` is manipulated *only by the
//!   owner*, so push/pop touch nothing but the head pointer — "without
//!   mutual exclusion or conditional statements", as the paper puts it;
//! * the **shared region** `[tail, split)` is visible to thieves;
//! * **release** moves `split` towards `head` (sharing the oldest private
//!   work), **reacquire** moves it back towards `tail`, and a **steal**
//!   advances `tail` (taking the oldest shared work — the largest
//!   sub-trees);
//! * the remote-steal mailbox (`REQ`/`RESP` words) lives in the pool
//!   metadata, so a thief on another node can *read* a pool's state and
//!   *post* a request with one-sided operations only, and a victim can
//!   write stolen work **in place, directly to the head of the thief's
//!   pool** — the paper's zero-copy response.
//!
//! # Lock-freedom
//!
//! The pool is lock-free: there is no mutex anywhere on it. `tail` and
//! `split` are packed into **one** 64-bit word (`tail` low, `split` high),
//! so every mutation of a shared-region boundary — release, reacquire,
//! steal — is a single compare-and-swap on that word and the
//! reacquire-vs-steal race (both shrinking the shared region from opposite
//! ends) cannot double-grant a slot: whichever CAS lands second observes a
//! changed word and retries. The owner's push/pop path touches only `head`
//! (plain load + release store; no CAS, no fences beyond the store) —
//! matching the paper's "no mutual exclusion" owner path. A thief copies
//! the candidate slots into a private buffer *before* its CAS and delivers
//! them only on success: once `tail` has moved past a slot the owner may
//! reuse it, so reading after the claim would race the owner's next push.
//! The full happens-before argument is spelled out in ARCHITECTURE.md.
//!
//! Positions are monotone and must stay below `2^32` over a pool's
//! lifetime (4.3 G items per worker pool per run) so that the packed
//! halves never wrap; `push` carries a debug assertion.
//!
//! The slots and metadata live in a [`Segment`], i.e. in simulated GPI
//! global memory; all remote accesses go through the [`Interconnect`] cost
//! model.

use macs_gpi::{Interconnect, Segment};

mod locked;
pub use locked::LockedPool;

/// Metadata word offsets inside the pool segment.
const META_HEAD: usize = 0;
/// Packed `tail` (low 32 bits) | `split` (high 32 bits).
const META_TS: usize = 1;
const META_REQ: usize = 3;
const META_RESP: usize = 4;
/// First slot word.
const META_WORDS: usize = 8;

/// `RESP` value meaning "no response yet".
pub const RESP_PENDING: u64 = 0;
/// `RESP` value meaning "steal failed, no work".
pub const RESP_FAIL: u64 = u64::MAX;

#[inline]
const fn pack(tail: u64, split: u64) -> u64 {
    tail | (split << 32)
}

#[inline]
const fn unpack(ts: u64) -> (u64, u64) {
    (ts & 0xffff_ffff, ts >> 32)
}

/// A snapshot of a pool's pointers and request word.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolMeta {
    pub head: u64,
    pub split: u64,
    pub tail: u64,
    pub req: u64,
}

impl PoolMeta {
    #[inline]
    pub fn private_len(&self) -> u64 {
        self.head - self.split
    }

    #[inline]
    pub fn shared_len(&self) -> u64 {
        self.split - self.tail
    }

    #[inline]
    pub fn len(&self) -> u64 {
        self.head - self.tail
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }
}

/// The split private/shared work pool of one worker (lock-free).
#[derive(Debug)]
pub struct SplitPool {
    seg: Segment,
    capacity: u64,
    mask: u64,
    slot_words: usize,
}

impl SplitPool {
    /// A pool of at least `capacity` slots of `slot_words` words each
    /// (capacity is rounded up to a power of two).
    pub fn new(capacity: usize, slot_words: usize) -> Self {
        assert!(capacity > 0 && slot_words > 0);
        let capacity = capacity.next_power_of_two() as u64;
        assert!(
            capacity < u32::MAX as u64,
            "capacity must fit the packed positions"
        );
        let seg = Segment::new(META_WORDS + capacity as usize * slot_words);
        SplitPool {
            seg,
            capacity,
            mask: capacity - 1,
            slot_words,
        }
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    #[inline]
    pub fn slot_words(&self) -> usize {
        self.slot_words
    }

    #[inline]
    fn slot_off(&self, pos: u64) -> usize {
        META_WORDS + (pos & self.mask) as usize * self.slot_words
    }

    // ----- pointer accessors ------------------------------------------------

    #[inline]
    fn head(&self) -> u64 {
        self.seg.load_notify(META_HEAD)
    }

    /// Acquire-load of the packed `(tail, split)` word: a matching
    /// release-CAS (the owner's `release`) publishes the slot contents of
    /// everything it shared.
    #[inline]
    fn ts(&self) -> (u64, u64) {
        unpack(self.seg.load_notify(META_TS))
    }

    /// Snapshot the pool pointers (local shared-memory read; `tail`/`split`
    /// are mutually consistent because they live in one word, `head` may be
    /// momentarily newer — callers use the snapshot for heuristics and the
    /// CAS protocol re-validates for correctness-critical decisions).
    pub fn meta(&self) -> PoolMeta {
        let (tail, split) = self.ts();
        PoolMeta {
            head: self.head(),
            split,
            tail,
            req: self.seg.load_notify(META_REQ),
        }
    }

    /// Snapshot the pool pointers from another node: a one-sided read of
    /// the metadata words, charged to the interconnect. This is how a
    /// remote thief inspects victims "without disturbing" them.
    pub fn meta_remote(&self, ic: &Interconnect) -> PoolMeta {
        ic.charge_read(4 * 8);
        self.meta()
    }

    /// Number of stealable items (cheap, may be momentarily stale).
    #[inline]
    pub fn shared_len(&self) -> u64 {
        let (tail, split) = self.ts();
        split - tail
    }

    /// Number of owner-private items.
    #[inline]
    pub fn private_len(&self) -> u64 {
        let m = self.meta();
        m.head.saturating_sub(m.split)
    }

    /// Total items in the pool.
    #[inline]
    pub fn len(&self) -> u64 {
        let m = self.meta();
        m.head.saturating_sub(m.tail)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // ----- owner operations (no CAS, no lock) --------------------------------

    /// Push one item at the head (owner only). Returns `false` if the ring
    /// is full; the caller keeps the item (the runtime spills to a local
    /// overflow stack).
    ///
    /// A momentarily stale `tail` is conservative (`≤` the true tail), so
    /// the capacity check can refuse a push that would have fit but never
    /// admits one that would overwrite an unstolen slot.
    pub fn push(&self, item: &[u64]) -> bool {
        debug_assert_eq!(item.len(), self.slot_words);
        let head = self.head();
        debug_assert!(head < u32::MAX as u64, "pool position budget exhausted");
        let (tail, _) = self.ts();
        if head - tail >= self.capacity {
            return false;
        }
        self.seg.write_local(self.slot_off(head), item);
        // Publishing through head is enough for the owner; thieves only see
        // items after `release` publishes them through the packed word.
        self.seg.store_notify(META_HEAD, head + 1);
        true
    }

    /// Pop the newest private item into `dst` (owner only, CAS-free:
    /// `split` is written only by the owner itself, so the private region
    /// cannot shrink under it).
    pub fn pop_private(&self, dst: &mut [u64]) -> bool {
        debug_assert_eq!(dst.len(), self.slot_words);
        let head = self.head();
        let (_, split) = self.ts();
        if head == split {
            return false;
        }
        self.seg.read_local(self.slot_off(head - 1), dst);
        self.seg.store_notify(META_HEAD, head - 1);
        true
    }

    // ----- split management (owner, CAS) -----------------------------------

    /// Share up to `k` of the oldest private items: move `split` towards
    /// `head`. Returns how many items became shared. This is the paper's
    /// *release* operation, whose frequency ("work release interval") is
    /// the main tuning knob behind the MaCS(best) results.
    ///
    /// The release-ordered CAS publishes the slot contents written by the
    /// owner's preceding pushes; a thief's acquire-load of the packed word
    /// therefore sees complete items.
    pub fn release(&self, k: u64) -> u64 {
        loop {
            let ts = self.seg.load_notify(META_TS);
            let (tail, split) = unpack(ts);
            let head = self.head();
            let m = k.min(head - split);
            if m == 0 {
                return 0;
            }
            if self.seg.cas(META_TS, ts, pack(tail, split + m)).is_ok() {
                return m;
            }
            // A thief moved tail concurrently; retry against the new word.
            std::hint::spin_loop();
        }
    }

    /// Take back up to `k` of the newest shared items: move `split` towards
    /// `tail`. Returns how many items became private again. Serialised
    /// against concurrent steals by the CAS on the packed word: a steal
    /// that claimed these slots first changes the word and this CAS
    /// retries against the smaller shared region.
    pub fn reacquire(&self, k: u64) -> u64 {
        loop {
            let ts = self.seg.load_notify(META_TS);
            let (tail, split) = unpack(ts);
            let m = k.min(split - tail);
            if m == 0 {
                return 0;
            }
            if self.seg.cas(META_TS, ts, pack(tail, split - m)).is_ok() {
                return m;
            }
            std::hint::spin_loop();
        }
    }

    // ----- stealing (thief side, CAS) ---------------------------------------

    /// Steal up to `max` of the *oldest* shared items, feeding each to
    /// `sink`. Returns the number stolen (0 = failed steal). Local thieves
    /// call this directly; victims call it on their own pool to reserve
    /// work for a remote thief.
    ///
    /// The slots are copied out *before* the claiming CAS: once `tail`
    /// moves, the owner's capacity check may admit pushes that reuse the
    /// ring positions, so a post-claim read could tear. A failed CAS
    /// discards the buffered copy and retries (nothing was claimed). The
    /// copy cannot be stale on success: any overwrite of `[tail, tail+m)`
    /// requires `tail` to advance first, which makes the CAS fail.
    pub fn steal(&self, max: u64, mut sink: impl FnMut(&[u64])) -> u64 {
        if max == 0 {
            return 0;
        }
        let mut buf: Vec<u64> = Vec::new();
        loop {
            let ts = self.seg.load_notify(META_TS);
            let (tail, split) = unpack(ts);
            let m = max.min(split - tail);
            if m == 0 {
                return 0;
            }
            buf.resize(m as usize * self.slot_words, 0);
            for i in 0..m {
                let off = (i as usize) * self.slot_words;
                self.seg.read_local(
                    self.slot_off(tail + i),
                    &mut buf[off..off + self.slot_words],
                );
            }
            if self.seg.cas(META_TS, ts, pack(tail + m, split)).is_ok() {
                for chunk in buf.chunks_exact(self.slot_words) {
                    sink(chunk);
                }
                return m;
            }
            std::hint::spin_loop();
        }
    }

    /// Steal up to half of the shared region (at least one item), the
    /// standard steal granularity.
    pub fn steal_half(&self, sink: impl FnMut(&[u64])) -> u64 {
        let shared = self.shared_len();
        if shared == 0 {
            return 0;
        }
        self.steal(shared.div_ceil(2), sink)
    }

    // ----- remote-steal mailbox -------------------------------------------------

    /// Thief side: try to claim the victim's request slot with a one-sided
    /// CAS (`0 → thief_id + 1`). At most one remote request can be pending
    /// per victim; a second thief's CAS fails and it looks elsewhere.
    pub fn try_post_request_remote(&self, ic: &Interconnect, thief_id: usize) -> bool {
        self.seg
            .cas_remote(ic, META_REQ, 0, thief_id as u64 + 1)
            .is_ok()
    }

    /// Victim side: the pending remote request, if any (polled in the main
    /// work loop).
    #[inline]
    pub fn pending_request(&self) -> Option<usize> {
        match self.seg.load_notify(META_REQ) {
            0 => None,
            id1 => Some(id1 as usize - 1),
        }
    }

    /// Victim side: clear the request slot after serving it.
    #[inline]
    pub fn clear_request(&self) {
        self.seg.store_notify(META_REQ, 0);
    }

    /// Thief side: poll the response word of *this* (own) pool.
    #[inline]
    pub fn response(&self) -> u64 {
        self.seg.load_notify(META_RESP)
    }

    /// Thief side: reset the response word before posting a request.
    #[inline]
    pub fn reset_response(&self) {
        self.seg.store_notify(META_RESP, RESP_PENDING);
    }

    /// Victim side: write the response word of the thief's pool (one-sided,
    /// release-ordered so the in-place slot writes below are published).
    pub fn write_response_remote(&self, ic: &Interconnect, resp: u64) {
        ic.charge_write(8);
        self.seg.store_notify(META_RESP, resp);
    }

    /// Victim side: write `items` (a flat array of `n × slot_words` words)
    /// in place at positions `[pos, pos + n)` of the thief's ring — the
    /// paper's zero-copy write "directly to the head of the thief's pool".
    /// Queued (non-blocking) flavour: the victim pays only posting
    /// overhead.
    pub fn write_slots_remote(&self, ic: &Interconnect, pos: u64, items: &[u64]) {
        debug_assert_eq!(items.len() % self.slot_words, 0);
        ic.charge_queued_write(items.len() * 8);
        for (i, chunk) in items.chunks_exact(self.slot_words).enumerate() {
            self.seg.write_local(self.slot_off(pos + i as u64), chunk);
        }
    }

    /// Thief side: after a successful response of `n` items written in
    /// place at the head, adopt them (owner-only head bump).
    pub fn adopt_written(&self, n: u64) {
        let head = self.head();
        self.seg.store_notify(META_HEAD, head + n);
    }

    /// Read one slot by absolute position (diagnostics / tests).
    pub fn read_slot(&self, pos: u64, dst: &mut [u64]) {
        self.seg.read_local(self.slot_off(pos), dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macs_gpi::LatencyModel;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn item(v: u64, words: usize) -> Vec<u64> {
        let mut it = vec![0u64; words];
        it[0] = v;
        it[words - 1] = v ^ 0xdead_beef;
        it
    }

    #[test]
    fn push_pop_lifo() {
        let p = SplitPool::new(8, 3);
        assert!(p.push(&item(1, 3)));
        assert!(p.push(&item(2, 3)));
        let mut buf = vec![0u64; 3];
        assert!(p.pop_private(&mut buf));
        assert_eq!(buf, item(2, 3));
        assert!(p.pop_private(&mut buf));
        assert_eq!(buf, item(1, 3));
        assert!(!p.pop_private(&mut buf));
    }

    #[test]
    fn capacity_is_enforced() {
        let p = SplitPool::new(4, 1);
        for i in 0..4 {
            assert!(p.push(&[i]));
        }
        assert!(!p.push(&[99]));
        let mut buf = [0u64];
        assert!(p.pop_private(&mut buf));
        assert!(p.push(&[100]));
    }

    #[test]
    fn private_items_are_not_stealable() {
        let p = SplitPool::new(8, 1);
        p.push(&[1]);
        p.push(&[2]);
        assert_eq!(p.private_len(), 2);
        assert_eq!(p.shared_len(), 0);
        let mut got = vec![];
        assert_eq!(p.steal(10, |s| got.push(s[0])), 0);
        assert!(got.is_empty());
    }

    #[test]
    fn release_then_steal_takes_oldest() {
        let p = SplitPool::new(8, 1);
        for i in 1..=4 {
            p.push(&[i]);
        }
        assert_eq!(p.release(2), 2);
        assert_eq!(p.shared_len(), 2);
        assert_eq!(p.private_len(), 2);
        let mut got = vec![];
        assert_eq!(p.steal(10, |s| got.push(s[0])), 2);
        assert_eq!(got, vec![1, 2], "steal takes the oldest items");
        // Owner still pops its private items LIFO.
        let mut buf = [0u64];
        assert!(p.pop_private(&mut buf));
        assert_eq!(buf[0], 4);
    }

    #[test]
    fn reacquire_restores_private_work() {
        let p = SplitPool::new(8, 1);
        for i in 1..=4 {
            p.push(&[i]);
        }
        p.release(4);
        assert_eq!(p.private_len(), 0);
        assert_eq!(p.reacquire(3), 3);
        assert_eq!(p.private_len(), 3);
        assert_eq!(p.shared_len(), 1);
        // Pop order after reacquire is still newest-first.
        let mut buf = [0u64];
        assert!(p.pop_private(&mut buf));
        assert_eq!(buf[0], 4);
    }

    #[test]
    fn release_more_than_private_is_clamped() {
        let p = SplitPool::new(8, 1);
        p.push(&[1]);
        assert_eq!(p.release(100), 1);
        assert_eq!(p.release(100), 0);
        assert_eq!(p.reacquire(100), 1);
        assert_eq!(p.reacquire(100), 0);
    }

    #[test]
    fn steal_half_rounds_up() {
        let p = SplitPool::new(16, 1);
        for i in 0..5 {
            p.push(&[i]);
        }
        p.release(5);
        let mut got = vec![];
        assert_eq!(p.steal_half(|s| got.push(s[0])), 3);
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(p.shared_len(), 2);
    }

    #[test]
    fn ring_wraparound_preserves_items() {
        let p = SplitPool::new(4, 2);
        let mut buf = vec![0u64; 2];
        // Cycle many times through a capacity-4 ring.
        for round in 0..50u64 {
            for i in 0..3 {
                assert!(p.push(&item(round * 10 + i, 2)));
            }
            for i in (0..3).rev() {
                assert!(p.pop_private(&mut buf));
                assert_eq!(buf, item(round * 10 + i, 2));
            }
        }
    }

    #[test]
    fn request_mailbox_single_claim() {
        let p = SplitPool::new(4, 1);
        let ic = Interconnect::new(LatencyModel::zero());
        assert!(p.try_post_request_remote(&ic, 7));
        assert!(!p.try_post_request_remote(&ic, 9));
        assert_eq!(p.pending_request(), Some(7));
        p.clear_request();
        assert_eq!(p.pending_request(), None);
        assert!(p.try_post_request_remote(&ic, 9));
        assert_eq!(p.pending_request(), Some(9));
    }

    #[test]
    fn remote_in_place_write_protocol() {
        // Victim writes two items at the thief's head, then the response;
        // thief adopts and pops them.
        let thief = SplitPool::new(8, 2);
        let ic = Interconnect::new(LatencyModel::zero());
        thief.reset_response();
        let head = thief.meta().head;
        let flat: Vec<u64> = [item(41, 2), item(42, 2)].concat();
        thief.write_slots_remote(&ic, head, &flat);
        thief.write_response_remote(&ic, 2);
        assert_eq!(thief.response(), 2);
        thief.adopt_written(2);
        assert_eq!(thief.private_len(), 2);
        let mut buf = vec![0u64; 2];
        assert!(thief.pop_private(&mut buf));
        assert_eq!(buf, item(42, 2));
        assert!(thief.pop_private(&mut buf));
        assert_eq!(buf, item(41, 2));
    }

    #[test]
    fn reacquire_races_steal_without_duplication() {
        // One owner repeatedly releases then immediately reacquires while a
        // thief hammers steal: every item must surface exactly once.
        const ITEMS: u64 = 30_000;
        let p = Arc::new(SplitPool::new(256, 1));
        let stolen_sum = Arc::new(AtomicU64::new(0));
        let stolen_cnt = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicU64::new(0));
        let thief = {
            let p = Arc::clone(&p);
            let sum = Arc::clone(&stolen_sum);
            let cnt = Arc::clone(&stolen_cnt);
            let done = Arc::clone(&done);
            std::thread::spawn(move || loop {
                let n = p.steal(3, |s| {
                    sum.fetch_add(s[0], Ordering::Relaxed);
                    cnt.fetch_add(1, Ordering::Relaxed);
                });
                if n == 0 && done.load(Ordering::Acquire) == 1 && p.shared_len() == 0 {
                    break;
                }
                std::hint::spin_loop();
            })
        };
        let mut buf = [0u64];
        let (mut sum, mut cnt) = (0u64, 0u64);
        let mut next = 0u64;
        while next < ITEMS {
            while next < ITEMS && p.push(&[next]) {
                next += 1;
            }
            // Churn the split from both sides to race the thief's CAS.
            p.release(8);
            p.reacquire(4);
            while p.pop_private(&mut buf) {
                sum += buf[0];
                cnt += 1;
            }
        }
        p.release(u64::MAX);
        done.store(1, Ordering::Release);
        thief.join().unwrap();
        while p.steal(64, |s| {
            sum += s[0];
            cnt += 1;
        }) > 0
        {}
        assert_eq!(cnt + stolen_cnt.load(Ordering::Relaxed), ITEMS);
        assert_eq!(
            sum + stolen_sum.load(Ordering::Relaxed),
            ITEMS * (ITEMS - 1) / 2
        );
    }

    #[test]
    fn concurrent_stealing_conserves_items() {
        // One owner pushes and releases; three thieves steal; every item
        // must be seen exactly once across owner pops + steals.
        const ITEMS: u64 = 20_000;
        let p = Arc::new(SplitPool::new(1024, 2));
        let seen_sum = Arc::new(AtomicU64::new(0));
        let seen_count = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicU64::new(0));

        let thieves: Vec<_> = (0..3)
            .map(|_| {
                let p = Arc::clone(&p);
                let sum = Arc::clone(&seen_sum);
                let cnt = Arc::clone(&seen_count);
                let done = Arc::clone(&done);
                std::thread::spawn(move || loop {
                    let n = p.steal(4, |s| {
                        assert_eq!(s[1], s[0] ^ 0xdead_beef, "torn item");
                        sum.fetch_add(s[0], Ordering::Relaxed);
                        cnt.fetch_add(1, Ordering::Relaxed);
                    });
                    if n == 0 && done.load(Ordering::Acquire) == 1 && p.shared_len() == 0 {
                        break;
                    }
                    std::hint::spin_loop();
                })
            })
            .collect();

        let mut buf = vec![0u64; 2];
        let mut pushed = 0u64;
        while pushed < ITEMS {
            // Push a burst, share some of it, pop a little back.
            for _ in 0..8 {
                if pushed < ITEMS && p.push(&item(pushed, 2)) {
                    pushed += 1;
                }
            }
            p.release(6);
            if p.pop_private(&mut buf) {
                assert_eq!(buf[1], buf[0] ^ 0xdead_beef);
                seen_sum.fetch_add(buf[0], Ordering::Relaxed);
                seen_count.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Drain what is left: share everything, then pop the remainder as a
        // thief would (owner may also steal from its own pool).
        p.release(u64::MAX);
        done.store(1, Ordering::Release);
        for t in thieves {
            t.join().unwrap();
        }
        while p.steal(64, |s| {
            seen_sum.fetch_add(s[0], Ordering::Relaxed);
            seen_count.fetch_add(1, Ordering::Relaxed);
        }) > 0
        {}

        assert_eq!(seen_count.load(Ordering::Relaxed), ITEMS);
        assert_eq!(seen_sum.load(Ordering::Relaxed), ITEMS * (ITEMS - 1) / 2);
    }
}
