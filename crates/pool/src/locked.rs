//! The pre-lock-free pool, kept verbatim as a benchmark baseline.
//!
//! [`LockedPool`] is the mutex-guarded split pool this crate shipped before
//! the lock-free rewrite: the owner path is already fence-free, but every
//! `release` / `reacquire` / `steal` serialises on one `std::sync::Mutex`.
//! `perf_record` measures steal latency against it so the lock-free win (and
//! any regression) stays visible in the BENCH trajectory; it is not used on
//! any solving path.

use std::sync::{Mutex, MutexGuard};

use macs_gpi::Segment;

use crate::PoolMeta;

const META_HEAD: usize = 0;
const META_SPLIT: usize = 1;
const META_TAIL: usize = 2;
const META_WORDS: usize = 8;

/// The mutex-guarded split pool (benchmark baseline only).
#[derive(Debug)]
pub struct LockedPool {
    seg: Segment,
    lock: Mutex<()>,
    capacity: u64,
    mask: u64,
    slot_words: usize,
}

impl LockedPool {
    /// A pool of at least `capacity` slots of `slot_words` words each.
    pub fn new(capacity: usize, slot_words: usize) -> Self {
        assert!(capacity > 0 && slot_words > 0);
        let capacity = capacity.next_power_of_two() as u64;
        let seg = Segment::new(META_WORDS + capacity as usize * slot_words);
        LockedPool {
            seg,
            lock: Mutex::new(()),
            capacity,
            mask: capacity - 1,
            slot_words,
        }
    }

    #[inline]
    fn slot_off(&self, pos: u64) -> usize {
        META_WORDS + (pos & self.mask) as usize * self.slot_words
    }

    #[inline]
    fn head(&self) -> u64 {
        self.seg.load_notify(META_HEAD)
    }

    #[inline]
    fn split(&self) -> u64 {
        self.seg.load_notify(META_SPLIT)
    }

    #[inline]
    fn tail(&self) -> u64 {
        self.seg.load_notify(META_TAIL)
    }

    pub fn meta(&self) -> PoolMeta {
        PoolMeta {
            head: self.head(),
            split: self.split(),
            tail: self.tail(),
            req: 0,
        }
    }

    #[inline]
    pub fn shared_len(&self) -> u64 {
        let m = self.meta();
        m.split.saturating_sub(m.tail)
    }

    #[inline]
    pub fn private_len(&self) -> u64 {
        let m = self.meta();
        m.head.saturating_sub(m.split)
    }

    /// Push one item at the head (owner only, lock-free as before).
    pub fn push(&self, item: &[u64]) -> bool {
        debug_assert_eq!(item.len(), self.slot_words);
        let head = self.head();
        let tail = self.tail(); // stale tail is conservative (≤ actual)
        if head - tail >= self.capacity {
            return false;
        }
        self.seg.write_local(self.slot_off(head), item);
        self.seg.store_notify(META_HEAD, head + 1);
        true
    }

    /// Pop the newest private item into `dst` (owner only).
    pub fn pop_private(&self, dst: &mut [u64]) -> bool {
        debug_assert_eq!(dst.len(), self.slot_words);
        let head = self.head();
        let split = self.split();
        if head == split {
            return false;
        }
        self.seg.read_local(self.slot_off(head - 1), dst);
        self.seg.store_notify(META_HEAD, head - 1);
        true
    }

    /// Share up to `k` of the oldest private items (under the lock).
    pub fn release(&self, k: u64) -> u64 {
        let _g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        let head = self.head();
        let split = self.split();
        let m = k.min(head - split);
        if m > 0 {
            self.seg.store_notify(META_SPLIT, split + m);
        }
        m
    }

    /// Take back up to `k` of the newest shared items (under the lock).
    pub fn reacquire(&self, k: u64) -> u64 {
        let _g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        let split = self.split();
        let tail = self.tail();
        let m = k.min(split - tail);
        if m > 0 {
            self.seg.store_notify(META_SPLIT, split - m);
        }
        m
    }

    /// Steal up to `max` of the oldest shared items (under the lock).
    pub fn steal(&self, max: u64, mut sink: impl FnMut(&[u64])) -> u64 {
        if max == 0 {
            return 0;
        }
        let _g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        self.steal_locked(max, &mut sink, &_g)
    }

    fn steal_locked(
        &self,
        max: u64,
        sink: &mut impl FnMut(&[u64]),
        _g: &MutexGuard<'_, ()>,
    ) -> u64 {
        let split = self.split();
        let tail = self.tail();
        let avail = split - tail;
        let m = max.min(avail);
        if m == 0 {
            return 0;
        }
        let mut buf = vec![0u64; self.slot_words];
        for i in 0..m {
            self.seg.read_local(self.slot_off(tail + i), &mut buf);
            sink(&buf);
        }
        self.seg.store_notify(META_TAIL, tail + m);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locked_pool_round_trip() {
        let p = LockedPool::new(8, 1);
        for i in 1..=4 {
            assert!(p.push(&[i]));
        }
        assert_eq!(p.release(2), 2);
        let mut got = vec![];
        assert_eq!(p.steal(10, |s| got.push(s[0])), 2);
        assert_eq!(got, vec![1, 2]);
        assert_eq!(p.reacquire(5), 0);
        let mut buf = [0u64];
        assert!(p.pop_private(&mut buf));
        assert_eq!(buf[0], 4);
        assert_eq!(p.private_len(), 1);
        assert_eq!(p.shared_len(), 0);
    }
}
