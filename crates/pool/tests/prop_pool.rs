//! Property tests: the split pool against a reference model.
//!
//! The reference is a `VecDeque` plus a split index; every sequence of
//! owner/thief operations must leave the pool and the model in agreement.

use macs_pool::SplitPool;
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Clone, Debug)]
enum Op {
    Push(u64),
    PopPrivate,
    Release(u64),
    Reacquire(u64),
    Steal(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..1_000_000u64).prop_map(Op::Push),
        2 => Just(Op::PopPrivate),
        2 => (1..5u64).prop_map(Op::Release),
        1 => (1..5u64).prop_map(Op::Reacquire),
        2 => (1..4u64).prop_map(Op::Steal),
    ]
}

/// Reference model: items in order tail→head, with a split index.
#[derive(Default)]
struct Model {
    items: VecDeque<u64>, // front = tail side, back = head side
    split: usize,         // first private index
    capacity: usize,
}

impl Model {
    fn push(&mut self, v: u64) -> bool {
        if self.items.len() >= self.capacity {
            return false;
        }
        self.items.push_back(v);
        true
    }

    fn pop_private(&mut self) -> Option<u64> {
        if self.items.len() > self.split {
            self.items.pop_back()
        } else {
            None
        }
    }

    fn release(&mut self, k: u64) -> u64 {
        let m = (k as usize).min(self.items.len() - self.split);
        self.split += m;
        m as u64
    }

    fn reacquire(&mut self, k: u64) -> u64 {
        let m = (k as usize).min(self.split);
        self.split -= m;
        m as u64
    }

    fn steal(&mut self, max: u64) -> Vec<u64> {
        let m = (max as usize).min(self.split);
        let mut out = Vec::with_capacity(m);
        for _ in 0..m {
            out.push(self.items.pop_front().unwrap());
            self.split -= 1;
        }
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn pool_matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let cap = 16usize;
        let pool = SplitPool::new(cap, 1);
        let mut model = Model { capacity: pool.capacity(), ..Default::default() };
        let mut buf = [0u64];

        for op in ops {
            match op {
                Op::Push(v) => {
                    let a = pool.push(&[v]);
                    let b = model.push(v);
                    prop_assert_eq!(a, b, "push accept/reject must agree");
                }
                Op::PopPrivate => {
                    let got = pool.pop_private(&mut buf).then_some(buf[0]);
                    prop_assert_eq!(got, model.pop_private());
                }
                Op::Release(k) => {
                    prop_assert_eq!(pool.release(k), model.release(k));
                }
                Op::Reacquire(k) => {
                    prop_assert_eq!(pool.reacquire(k), model.reacquire(k));
                }
                Op::Steal(max) => {
                    let mut got = Vec::new();
                    pool.steal(max, |s| got.push(s[0]));
                    prop_assert_eq!(got, model.steal(max));
                }
            }
            prop_assert_eq!(pool.private_len() as usize, model.items.len() - model.split);
            prop_assert_eq!(pool.shared_len() as usize, model.split);
            prop_assert_eq!(pool.len() as usize, model.items.len());
        }

        // Drain and compare the full remaining contents.
        let mut rest = Vec::new();
        pool.steal(u64::MAX, |s| rest.push(s[0]));
        while pool.pop_private(&mut buf) {
            rest.push(buf[0]);
        }
        let mut expect: Vec<u64> = model.steal(u64::MAX);
        while let Some(v) = model.pop_private() {
            expect.push(v);
        }
        prop_assert_eq!(rest, expect);
    }
}
