//! Randomised model tests: the split pool against a reference model.
//!
//! The reference is a `VecDeque` plus a split index; every sequence of
//! owner/thief operations must leave the pool and the model in agreement.
//! Deterministic seeded random cases (no external property-testing
//! dependency in this build environment).

use macs_pool::SplitPool;
use std::collections::VecDeque;

#[derive(Clone, Debug)]
enum Op {
    Push(u64),
    PopPrivate,
    Release(u64),
    Reacquire(u64),
    Steal(u64),
}

/// Inline SplitMix64 — keeps the test crate dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }

    /// Weighted op mix matching the original strategy:
    /// push 3 : pop 2 : release 2 : reacquire 1 : steal 2.
    fn op(&mut self) -> Op {
        match self.below(10) {
            0..=2 => Op::Push(self.below(1_000_000)),
            3..=4 => Op::PopPrivate,
            5..=6 => Op::Release(1 + self.below(4)),
            7 => Op::Reacquire(1 + self.below(4)),
            _ => Op::Steal(1 + self.below(3)),
        }
    }
}

/// Reference model: items in order tail→head, with a split index.
#[derive(Default)]
struct Model {
    items: VecDeque<u64>, // front = tail side, back = head side
    split: usize,         // first private index
    capacity: usize,
}

impl Model {
    fn push(&mut self, v: u64) -> bool {
        if self.items.len() >= self.capacity {
            return false;
        }
        self.items.push_back(v);
        true
    }

    fn pop_private(&mut self) -> Option<u64> {
        if self.items.len() > self.split {
            self.items.pop_back()
        } else {
            None
        }
    }

    fn release(&mut self, k: u64) -> u64 {
        let m = (k as usize).min(self.items.len() - self.split);
        self.split += m;
        m as u64
    }

    fn reacquire(&mut self, k: u64) -> u64 {
        let m = (k as usize).min(self.split);
        self.split -= m;
        m as u64
    }

    fn steal(&mut self, max: u64) -> Vec<u64> {
        let m = (max as usize).min(self.split);
        let mut out = Vec::with_capacity(m);
        for _ in 0..m {
            out.push(self.items.pop_front().unwrap());
            self.split -= 1;
        }
        out
    }
}

#[test]
fn pool_matches_reference_model() {
    for case in 0..256u64 {
        let mut rng = Rng(0x9001 ^ case.wrapping_mul(0x9E37_79B9));
        let n_ops = 1 + rng.below(199);

        let cap = 16usize;
        let pool = SplitPool::new(cap, 1);
        let mut model = Model {
            capacity: pool.capacity(),
            ..Default::default()
        };
        let mut buf = [0u64];

        for step in 0..n_ops {
            let op = rng.op();
            match op {
                Op::Push(v) => {
                    let a = pool.push(&[v]);
                    let b = model.push(v);
                    assert_eq!(
                        a, b,
                        "case {case} step {step}: push accept/reject must agree"
                    );
                }
                Op::PopPrivate => {
                    let got = pool.pop_private(&mut buf).then_some(buf[0]);
                    assert_eq!(got, model.pop_private(), "case {case} step {step}");
                }
                Op::Release(k) => {
                    assert_eq!(pool.release(k), model.release(k), "case {case} step {step}");
                }
                Op::Reacquire(k) => {
                    assert_eq!(
                        pool.reacquire(k),
                        model.reacquire(k),
                        "case {case} step {step}"
                    );
                }
                Op::Steal(max) => {
                    let mut got = Vec::new();
                    pool.steal(max, |s| got.push(s[0]));
                    assert_eq!(got, model.steal(max), "case {case} step {step}");
                }
            }
            assert_eq!(
                pool.private_len() as usize,
                model.items.len() - model.split,
                "case {case} step {step}"
            );
            assert_eq!(
                pool.shared_len() as usize,
                model.split,
                "case {case} step {step}"
            );
            assert_eq!(
                pool.len() as usize,
                model.items.len(),
                "case {case} step {step}"
            );
        }

        // Drain and compare the full remaining contents.
        let mut rest = Vec::new();
        pool.steal(u64::MAX, |s| rest.push(s[0]));
        while pool.pop_private(&mut buf) {
            rest.push(buf[0]);
        }
        let mut expect: Vec<u64> = model.steal(u64::MAX);
        while let Some(v) = model.pop_private() {
            expect.push(v);
        }
        assert_eq!(rest, expect, "case {case}: residual contents");
    }
}
