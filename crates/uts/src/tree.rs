//! UTS tree generation and its [`Processor`] for the MaCS runtime.

use macs_runtime::{run_parallel, ProcCtx, Processor, RunReport, RuntimeConfig, Step};

use crate::sha1::{child_descriptor, root_descriptor};

/// Work-item width: `[depth, desc₀, desc₁, desc₂]` (20 descriptor bytes in
/// two and a half words; the upper half of word 3 is zero).
pub const SLOT_WORDS: usize = 4;

/// How a geometric (GEO) tree's expected branching factor evolves with
/// depth — the UTS paper's *shape laws* (Olivier et al., LCPC'06 call
/// them linear, fixed and cyclic shape functions). All three draw the
/// actual child count from a geometric distribution whose mean is the
/// law's `b(depth)`; they differ only in that mean.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GeoLaw {
    /// `b(d) = b0 · (1 − d / gen_mx)`: branching shrinks linearly to zero
    /// at `gen_mx` — bushy near the root, thin leaves (the original shape
    /// this crate shipped with).
    #[default]
    Linear,
    /// `b(d) = b0` for `d < gen_mx`, then 0: constant expected branching
    /// with a hard depth cutoff — balanced in expectation, so load
    /// imbalance comes purely from the geometric draw's variance.
    Fixed,
    /// `b(d) = b0^sin(2π·d / gen_mx)`, cut off at depth `5·gen_mx`: the
    /// mean oscillates between `1/b0` and `b0`, so the tree repeatedly
    /// almost dies out and then re-explodes — long thin spines with
    /// bursts, the most adversarial of the laws for a load balancer.
    Cyclic,
}

impl GeoLaw {
    /// Expected branching factor at `depth`; `None` past the cutoff.
    fn mean(self, b0: f64, gen_mx: u32, depth: u64) -> Option<f64> {
        match self {
            GeoLaw::Linear => {
                if depth >= gen_mx as u64 {
                    return None;
                }
                let b = b0 * (1.0 - depth as f64 / gen_mx as f64);
                (b > 0.0).then_some(b)
            }
            GeoLaw::Fixed => (depth < gen_mx as u64).then_some(b0),
            GeoLaw::Cyclic => {
                if depth >= 5 * gen_mx as u64 {
                    return None;
                }
                let phase = 2.0 * std::f64::consts::PI * depth as f64 / gen_mx as f64;
                Some(b0.powf(phase.sin()))
            }
        }
    }
}

impl std::fmt::Display for GeoLaw {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeoLaw::Linear => f.write_str("linear"),
            GeoLaw::Fixed => f.write_str("fixed"),
            GeoLaw::Cyclic => f.write_str("cyclic"),
        }
    }
}

impl std::str::FromStr for GeoLaw {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "linear" => Ok(GeoLaw::Linear),
            "fixed" => Ok(GeoLaw::Fixed),
            "cyclic" => Ok(GeoLaw::Cyclic),
            other => Err(format!(
                "unknown geometric law {other:?}: expected linear, fixed or cyclic"
            )),
        }
    }
}

/// The published UTS tree shapes.
#[derive(Clone, Copy, Debug)]
pub enum TreeShape {
    /// Geometric branching under one of the [`GeoLaw`] shape functions
    /// (UTS "GEO" trees): expected branching `b0` at the root, evolving
    /// with depth according to `law`, bounded by `gen_mx`.
    Geometric { b0: f64, gen_mx: u32, law: GeoLaw },
    /// Binomial: the root has exactly `root_children` children; every other
    /// node has `m` children with probability `q`, none otherwise (UTS
    /// "BIN" trees; critical when `m·q ≈ 1`).
    Binomial { root_children: u32, m: u32, q: f64 },
}

impl TreeShape {
    /// A small linear-law geometric tree (tens of thousands of nodes),
    /// quick enough for tests.
    pub fn small_geo() -> Self {
        TreeShape::geo(GeoLaw::Linear, 3.0, 8)
    }

    /// A geometric tree under `law`.
    pub fn geo(law: GeoLaw, b0: f64, gen_mx: u32) -> Self {
        TreeShape::Geometric { b0, gen_mx, law }
    }

    /// A medium, highly unbalanced binomial tree (near-critical `m·q`).
    pub fn medium_bin(seedish: u32) -> Self {
        TreeShape::Binomial {
            root_children: 100 + seedish % 20,
            m: 4,
            q: 0.249,
        }
    }

    /// Number of children of a node at `depth` with descriptor `desc`.
    pub fn num_children(&self, depth: u64, desc: &[u8; 20]) -> u32 {
        // Uniform v ∈ (0,1) from the first 8 descriptor bytes.
        let raw = u64::from_le_bytes(desc[..8].try_into().unwrap());
        let v = ((raw >> 11) as f64 + 1.0) / (1u64 << 53) as f64; // (0, 1]
        match *self {
            TreeShape::Geometric { b0, gen_mx, law } => {
                let Some(b) = law.mean(b0, gen_mx, depth) else {
                    return 0;
                };
                // Geometric with mean b: m = ⌊ln v / ln(b/(1+b))⌋.
                let p = b / (1.0 + b);
                (v.ln() / p.ln()).floor() as u32
            }
            TreeShape::Binomial {
                root_children,
                m,
                q,
            } => {
                if depth == 0 {
                    root_children
                } else if v < q {
                    m
                } else {
                    0
                }
            }
        }
    }
}

/// Aggregate statistics of one UTS traversal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TreeStats {
    pub nodes: u64,
    pub leaves: u64,
    pub max_depth: u64,
    /// Order-independent fingerprint (wrapping sum over descriptor words)
    /// proving every node was visited exactly once.
    pub checksum: u64,
}

impl TreeStats {
    fn absorb(&mut self, depth: u64, desc: &[u8; 20], is_leaf: bool) {
        self.nodes += 1;
        if is_leaf {
            self.leaves += 1;
        }
        self.max_depth = self.max_depth.max(depth);
        self.checksum = self
            .checksum
            .wrapping_add(u64::from_le_bytes(desc[..8].try_into().unwrap()) ^ depth);
    }

    /// Combine two workers' traversal statistics.
    pub fn merge(mut self, o: &TreeStats) -> TreeStats {
        self.nodes += o.nodes;
        self.leaves += o.leaves;
        self.max_depth = self.max_depth.max(o.max_depth);
        self.checksum = self.checksum.wrapping_add(o.checksum);
        self
    }
}

fn encode(depth: u64, desc: &[u8; 20]) -> [u64; SLOT_WORDS] {
    let mut item = [0u64; SLOT_WORDS];
    item[0] = depth;
    item[1] = u64::from_le_bytes(desc[0..8].try_into().unwrap());
    item[2] = u64::from_le_bytes(desc[8..16].try_into().unwrap());
    item[3] = u32::from_le_bytes(desc[16..20].try_into().unwrap()) as u64;
    item
}

fn decode(buf: &[u64]) -> (u64, [u8; 20]) {
    let mut desc = [0u8; 20];
    desc[0..8].copy_from_slice(&buf[1].to_le_bytes());
    desc[8..16].copy_from_slice(&buf[2].to_le_bytes());
    desc[16..20].copy_from_slice(&(buf[3] as u32).to_le_bytes());
    (buf[0], desc)
}

/// UTS node expansion as a runtime [`Processor`].
pub struct UtsProcessor {
    shape: TreeShape,
    stats: TreeStats,
}

impl UtsProcessor {
    pub fn new(shape: TreeShape) -> Self {
        UtsProcessor {
            shape,
            stats: TreeStats::default(),
        }
    }

    /// Root work item for `seed`.
    pub fn root_item(seed: u32) -> Vec<u64> {
        encode(0, &root_descriptor(seed)).to_vec()
    }
}

impl Processor for UtsProcessor {
    type Output = TreeStats;

    fn process(&mut self, buf: &mut [u64], ctx: &mut ProcCtx<'_>) -> Step {
        let (depth, desc) = decode(buf);
        let n = self.shape.num_children(depth, &desc);
        self.stats.absorb(depth, &desc, n == 0);
        if n == 0 {
            return Step::Leaf;
        }
        for i in 1..n {
            let child = child_descriptor(&desc, i);
            ctx.push(&encode(depth + 1, &child));
        }
        let first = child_descriptor(&desc, 0);
        buf.copy_from_slice(&encode(depth + 1, &first));
        Step::Continue
    }

    fn finish(self) -> TreeStats {
        self.stats
    }
}

/// Sequential UTS traversal (oracle and T(1) baseline).
pub fn uts_sequential(shape: TreeShape, seed: u32) -> TreeStats {
    let mut stats = TreeStats::default();
    let mut stack: Vec<(u64, [u8; 20])> = vec![(0, root_descriptor(seed))];
    while let Some((depth, desc)) = stack.pop() {
        let n = shape.num_children(depth, &desc);
        stats.absorb(depth, &desc, n == 0);
        for i in 0..n {
            stack.push((depth + 1, child_descriptor(&desc, i)));
        }
    }
    stats
}

/// Parallel UTS on the MaCS runtime. Returns the merged tree statistics and
/// the full runtime report.
pub fn uts_parallel(
    shape: TreeShape,
    seed: u32,
    cfg: &RuntimeConfig,
) -> (TreeStats, RunReport<TreeStats>) {
    let report = run_parallel(cfg, SLOT_WORDS, &[UtsProcessor::root_item(seed)], |_w| {
        UtsProcessor::new(shape)
    });
    let stats = report
        .outputs
        .iter()
        .fold(TreeStats::default(), |acc, s| acc.merge(s));
    (stats, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let desc = root_descriptor(7);
        let item = encode(13, &desc);
        let (depth, back) = decode(&item);
        assert_eq!(depth, 13);
        assert_eq!(back, desc);
    }

    #[test]
    fn sequential_is_deterministic() {
        let shape = TreeShape::small_geo();
        let a = uts_sequential(shape, 19);
        let b = uts_sequential(shape, 19);
        assert_eq!(a, b);
        assert!(a.nodes > 100, "non-trivial tree, got {}", a.nodes);
        let c = uts_sequential(shape, 20);
        assert_ne!(a.checksum, c.checksum, "different seed, different tree");
    }

    #[test]
    fn geometric_depth_is_bounded() {
        let shape = TreeShape::geo(GeoLaw::Linear, 3.0, 6);
        let s = uts_sequential(shape, 5);
        assert!(s.max_depth <= 6);
        let s = uts_sequential(TreeShape::geo(GeoLaw::Fixed, 2.0, 7), 5);
        assert!(s.max_depth <= 7);
        let s = uts_sequential(TreeShape::geo(GeoLaw::Cyclic, 2.0, 5), 5);
        assert!(s.max_depth <= 25, "cyclic cutoff at 5·gen_mx");
    }

    #[test]
    fn geo_laws_shape_the_mean_branching() {
        // Linear decays to zero, fixed stays put, cyclic oscillates.
        assert_eq!(GeoLaw::Linear.mean(4.0, 8, 4), Some(2.0));
        assert_eq!(GeoLaw::Linear.mean(4.0, 8, 8), None);
        assert_eq!(GeoLaw::Fixed.mean(4.0, 8, 7), Some(4.0));
        assert_eq!(GeoLaw::Fixed.mean(4.0, 8, 8), None);
        let up = GeoLaw::Cyclic.mean(4.0, 8, 2).unwrap(); // sin = 1
        let down = GeoLaw::Cyclic.mean(4.0, 8, 6).unwrap(); // sin = −1
        assert!((up - 4.0).abs() < 1e-9, "{up}");
        assert!((down - 0.25).abs() < 1e-9, "{down}");
        assert_eq!(GeoLaw::Cyclic.mean(4.0, 8, 40), None, "cutoff");
        // The law names parse back (bench flags).
        for law in [GeoLaw::Linear, GeoLaw::Fixed, GeoLaw::Cyclic] {
            assert_eq!(law.to_string().parse::<GeoLaw>().unwrap(), law);
        }
        assert!("spiral".parse::<GeoLaw>().is_err());
    }

    #[test]
    fn all_geo_laws_conserve_the_tree_in_parallel() {
        // A cyclic tree's root has expected branching 1 (sin 0), so some
        // seeds die immediately: scan for a seed with a non-trivial tree
        // (the shape is still fully deterministic per seed).
        for (law, b0, gen_mx) in [(GeoLaw::Fixed, 2.0, 7), (GeoLaw::Cyclic, 3.0, 4)] {
            let shape = TreeShape::geo(law, b0, gen_mx);
            let (seed, expect) = (1u32..64)
                .map(|s| (s, uts_sequential(shape, s)))
                .find(|(_, st)| st.nodes > 50 && st.nodes < 2_000_000)
                .unwrap_or_else(|| panic!("{law}: no non-trivial seed in 1..64"));
            let (got, _) = uts_parallel(shape, seed, &RuntimeConfig::clustered(4, 2));
            assert_eq!(got, expect, "{law} law must be conserved (seed {seed})");
        }
    }

    #[test]
    fn binomial_root_has_fixed_degree() {
        let shape = TreeShape::Binomial {
            root_children: 10,
            m: 2,
            q: 0.1, // subcritical: dies out fast
        };
        let s = uts_sequential(shape, 1);
        assert!(s.nodes >= 11, "root + its children at least");
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let shape = TreeShape::small_geo();
        let expect = uts_sequential(shape, 99);
        for cfg in [
            RuntimeConfig::single_node(1),
            RuntimeConfig::single_node(4),
            RuntimeConfig::clustered(4, 2),
        ] {
            let (got, report) = uts_parallel(shape, 99, &cfg);
            assert_eq!(got.nodes, expect.nodes);
            assert_eq!(got.leaves, expect.leaves);
            assert_eq!(got.max_depth, expect.max_depth);
            assert_eq!(got.checksum, expect.checksum, "every node exactly once");
            assert_eq!(report.total_items(), expect.nodes);
        }
    }

    #[test]
    fn unbalanced_binomial_parallel_is_conserved() {
        let shape = TreeShape::medium_bin(3);
        let expect = uts_sequential(shape, 3);
        assert!(expect.nodes > 1_000, "tree too small: {}", expect.nodes);
        let (got, report) = uts_parallel(shape, 3, &RuntimeConfig::clustered(4, 2));
        assert_eq!(got, expect);
        let (ls, _, rs, _) = report.steal_totals();
        assert!(ls + rs > 0, "unbalanced tree must trigger stealing");
    }
}
