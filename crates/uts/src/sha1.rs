//! SHA-1 (RFC 3174) — the UTS node-descriptor generator.
//!
//! UTS needs SHA-1 as a *splittable deterministic RNG*, not for security;
//! this is a straightforward, dependency-free implementation validated
//! against the RFC test vectors.

/// Compute the SHA-1 digest of `data`.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

    // Padded message: data ‖ 0x80 ‖ zeros ‖ 64-bit bit length.
    let bit_len = (data.len() as u64) * 8;
    let mut msg = Vec::with_capacity(data.len() + 72);
    msg.extend_from_slice(data);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 80];
    for block in msg.chunks_exact(64) {
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }

    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// The UTS child-derivation step: `SHA1(parent descriptor ‖ child index)`.
pub fn child_descriptor(parent: &[u8; 20], index: u32) -> [u8; 20] {
    let mut buf = [0u8; 24];
    buf[..20].copy_from_slice(parent);
    buf[20..].copy_from_slice(&index.to_le_bytes());
    sha1(&buf)
}

/// The UTS root descriptor for a given seed.
pub fn root_descriptor(seed: u32) -> [u8; 20] {
    sha1(&seed.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8; 20]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc3174_test_vectors() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        // Exactly one block of 'a' × 64 exercises the two-block padding path.
        assert_eq!(
            hex(&sha1(&[b'a'; 64])),
            "0098ba824b5c16427bd7a1122a5a442a25ec644d"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha1(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn child_derivation_is_stable_and_distinct() {
        let root = root_descriptor(42);
        let c0 = child_descriptor(&root, 0);
        let c1 = child_descriptor(&root, 1);
        assert_ne!(c0, c1);
        assert_eq!(c0, child_descriptor(&root, 0), "deterministic");
        assert_ne!(root_descriptor(42), root_descriptor(43));
    }
}
