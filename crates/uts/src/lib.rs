//! The **Unbalanced Tree Search** (UTS) benchmark on the MaCS runtime.
//!
//! MaCS' pool and load-balancing scheme come directly from the authors'
//! earlier GPI implementation of UTS (paper §IV/V, reference \[1\]): "we
//! wanted to leverage our previous work with UTS and general parallel tree
//! search … the worker pool uses the same data structure used in that
//! work". Running UTS through the very same [`macs_runtime`] machinery
//! demonstrates the paper's claim that the load balancer is orthogonal to
//! the problem being solved.
//!
//! UTS (Olivier et al., LCPC'06) generates an implicit tree whose shape is
//! cryptographically determined: each node owns a 20-byte SHA-1 descriptor,
//! child `i`'s descriptor is `SHA1(parent ‖ i)`, and the number of children
//! follows a geometric or binomial law derived from the descriptor. Tree
//! size and shape are therefore reproducible to the node, while being
//! unpredictable — the canonical stress test for dynamic load balancing.
//! SHA-1 is implemented in-crate ([`sha1`]) to keep the dependency set to
//! the approved list.

pub mod sha1;
pub mod tree;

pub use tree::{
    uts_parallel, uts_sequential, GeoLaw, TreeShape, TreeStats, UtsProcessor, SLOT_WORDS,
};
