//! Distributed, controller-free termination detection.
//!
//! MaCS has no controller process (its departure from PaCCS), so nobody
//! "collects idleness". Instead a single global counter tracks the number
//! of **outstanding work items** anywhere in the system — in a pool, in a
//! worker's hands, or in flight inside a steal response:
//!
//! * the counter starts at the number of root items;
//! * a worker **increments it before pushing** each child (so a child can
//!   never be observed — let alone finished — before it is counted);
//! * finishing an item (leaf) decrements it;
//! * *transfers never touch it* (a stolen item stays outstanding), so
//!   in-flight steals cannot be lost.
//!
//! Because increments happen before the work exists and decrements after it
//! is gone, the counter is always ≥ the true number of outstanding items,
//! and it reads 0 **exactly** when the computation is finished. Once 0 it
//! can never grow again (only live work creates work), so `outstanding == 0`
//! is a stable termination signal every worker can poll independently.
//!
//! Decrements are batched per worker (they only make the counter
//! over-approximate, which is safe) and flushed before any idle check.

use macs_gpi::cells::CELL_OUTSTANDING;
use macs_gpi::{GlobalCells, Interconnect};

/// Per-worker handle on the global outstanding-work counter.
pub struct TermHandle<'a> {
    cells: &'a GlobalCells,
    ic: &'a Interconnect,
    /// Register holding this run's counter ([`CELL_OUTSTANDING`] for a
    /// classic single-job run; a job-block offset in multi-tenant runs, so
    /// co-scheduled jobs terminate independently).
    cell: usize,
    /// Workers off node 0 pay the interconnect for counter RMWs.
    remote: bool,
    /// Locally batched (negative) delta not yet applied globally.
    pending: i64,
    batch: i64,
}

impl<'a> TermHandle<'a> {
    pub fn new(cells: &'a GlobalCells, ic: &'a Interconnect, remote: bool, batch: u32) -> Self {
        Self::new_at(cells, ic, remote, batch, CELL_OUTSTANDING)
    }

    /// A handle on the counter in register `cell` instead of the root
    /// [`CELL_OUTSTANDING`].
    pub fn new_at(
        cells: &'a GlobalCells,
        ic: &'a Interconnect,
        remote: bool,
        batch: u32,
        cell: usize,
    ) -> Self {
        TermHandle {
            cells,
            ic,
            cell,
            remote,
            pending: 0,
            batch: -(batch.max(1) as i64),
        }
    }

    /// Count `n` new work items **before** they are published.
    #[inline]
    pub fn add(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        if self.remote {
            self.cells
                .fetch_add_i64_remote(self.ic, self.cell, n as i64);
        } else {
            self.cells.fetch_add_i64(self.cell, n as i64);
        }
    }

    /// Record one finished item (batched).
    #[inline]
    pub fn finish_one(&mut self) {
        self.pending -= 1;
        if self.pending <= self.batch {
            self.flush();
        }
    }

    /// Apply any batched decrements globally.
    pub fn flush(&mut self) {
        if self.pending != 0 {
            if self.remote {
                self.cells
                    .fetch_add_i64_remote(self.ic, self.cell, self.pending);
            } else {
                self.cells.fetch_add_i64(self.cell, self.pending);
            }
            self.pending = 0;
        }
    }

    /// Is the computation over? Only meaningful after [`Self::flush`].
    #[inline]
    pub fn finished(&self) -> bool {
        debug_assert_eq!(self.pending, 0, "flush before checking termination");
        self.cells.load_i64(self.cell) == 0
    }

    /// Current global value (diagnostics).
    pub fn outstanding(&self) -> i64 {
        self.cells.load_i64(self.cell)
    }
}

/// Initialise the counter for a run with `roots` initial items.
pub fn init_outstanding(cells: &GlobalCells, roots: u64) {
    init_outstanding_at(cells, CELL_OUTSTANDING, roots);
}

/// Initialise the counter in register `cell` (job-block runs).
pub fn init_outstanding_at(cells: &GlobalCells, cell: usize, roots: u64) {
    cells.store_i64(cell, roots as i64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use macs_gpi::LatencyModel;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn counter_life_cycle() {
        let cells = GlobalCells::new(8);
        let ic = Interconnect::new(LatencyModel::zero());
        init_outstanding(&cells, 1);
        let mut h = TermHandle::new(&cells, &ic, false, 4);
        h.add(3); // split into 3 pushed children (parent continues)
        h.finish_one(); // leaf
        h.flush();
        assert_eq!(h.outstanding(), 3);
        assert!(!h.finished());
        for _ in 0..3 {
            h.finish_one();
        }
        h.flush();
        assert!(h.finished());
    }

    #[test]
    fn batching_only_overapproximates() {
        let cells = GlobalCells::new(8);
        let ic = Interconnect::new(LatencyModel::zero());
        init_outstanding(&cells, 10);
        let mut h = TermHandle::new(&cells, &ic, false, 64);
        for _ in 0..9 {
            h.finish_one();
        }
        // Batch not yet flushed: the counter still shows 10 (≥ truth = 1).
        assert_eq!(h.outstanding(), 10);
        h.flush();
        assert_eq!(h.outstanding(), 1);
    }

    #[test]
    fn counter_never_dips_to_zero_while_work_exists() {
        // Phase 1: every worker churns (add 2, finish 2) while keeping its
        // own root outstanding, so the true count stays ≥ 4 and the watcher
        // must never observe 0. Phase 2 (after the watcher is stopped):
        // roots are drained and the counter must end at exactly 0.
        const WORKERS: usize = 4;
        let cells = Arc::new(GlobalCells::new(8));
        let ic = Arc::new(Interconnect::new(LatencyModel::zero()));
        init_outstanding(&cells, WORKERS as u64);
        let sampling = Arc::new(AtomicBool::new(true));
        let phase = Arc::new(std::sync::Barrier::new(WORKERS + 1));

        let watcher = {
            let cells = Arc::clone(&cells);
            let sampling = Arc::clone(&sampling);
            std::thread::spawn(move || {
                let mut zero_early = false;
                while sampling.load(Ordering::Acquire) {
                    if cells.load_i64(CELL_OUTSTANDING) == 0 {
                        zero_early = true;
                    }
                }
                zero_early
            })
        };

        let workers: Vec<_> = (0..WORKERS)
            .map(|_| {
                let cells = Arc::clone(&cells);
                let ic = Arc::clone(&ic);
                let phase = Arc::clone(&phase);
                std::thread::spawn(move || {
                    let mut h = TermHandle::new(&cells, &ic, false, 8);
                    for _ in 0..20_000 {
                        h.add(2); // split: children counted before publishing
                        h.finish_one();
                        h.finish_one();
                    }
                    h.flush();
                    phase.wait(); // end of churn
                    phase.wait(); // watcher stopped; drain the root
                    h.finish_one();
                    h.flush();
                })
            })
            .collect();

        phase.wait(); // all workers churned; their roots are still live
        sampling.store(false, Ordering::Release);
        let zero_early = watcher.join().unwrap();
        phase.wait(); // let workers drain
        for w in workers {
            w.join().unwrap();
        }
        assert!(!zero_early, "counter must not hit zero while work remains");
        assert_eq!(cells.load_i64(CELL_OUTSTANDING), 0);
    }
}
