//! The work-item processor abstraction.
//!
//! A processor consumes one fixed-size work item and produces zero or more
//! children. The contract mirrors the MaCS worker's inner cycle: process
//! the current store; either it is a leaf (failed / solution) and the
//! worker *restores* a new one, or it splits — the processor pushes all
//! children but the first into the pool and **continues with the first in
//! place** (depth-first, no pool round-trip for the leftmost child).

use crate::stats::PhaseTimers;

/// Outcome of processing one work item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// The item is exhausted (failed, solution, or fully delegated): the
    /// buffer content is dead and the worker must restore.
    Leaf,
    /// The buffer now holds the next item to process (the first child);
    /// any remaining children were pushed via [`ProcCtx::push`].
    Continue,
}

/// Access to the branch-and-bound incumbent (global best objective value).
/// Implementations decide how fresh the value is (see
/// [`BoundPolicy`](crate::config::BoundPolicy)).
pub trait Incumbent {
    /// Current (possibly cached) exclusive upper bound; `i64::MAX` if none.
    fn get(&self) -> i64;
    /// Offer a better value; returns `true` if it improved the global
    /// incumbent.
    fn submit(&self, value: i64) -> bool;
}

/// Any runtime incumbent doubles as the search kernel's bound source, so
/// processors can hand `ProcCtx::incumbent` straight to
/// [`SearchKernel::step`](macs_search::SearchKernel::step).
impl macs_search::IncumbentSource for dyn Incumbent + '_ {
    fn bound(&self) -> i64 {
        self.get()
    }
    fn offer(&self, cost: i64) -> bool {
        self.submit(cost)
    }
}

/// A no-op incumbent for satisfaction problems and tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoIncumbent;

impl Incumbent for NoIncumbent {
    fn get(&self) -> i64 {
        i64::MAX
    }
    fn submit(&self, _value: i64) -> bool {
        false
    }
}

/// Everything a processor may touch while processing one item. The runtime
/// implements the sink side (pool pushes, counters); processors see only
/// this narrow interface, keeping them executor-agnostic (the discrete-
/// event simulator drives the same processors in virtual time).
pub struct ProcCtx<'a> {
    pub worker_id: usize,
    pub node_id: usize,
    /// Solve-phase accumulators (propagate/split/restore split of §VI).
    pub phase: &'a mut PhaseTimers,
    /// Branch-and-bound incumbent access.
    pub incumbent: &'a dyn Incumbent,
    pub(crate) sink: &'a mut dyn WorkSink,
}

impl<'a> ProcCtx<'a> {
    /// Build a context around a custom sink (used by alternative executors
    /// such as the discrete-event simulator; the threaded runtime builds
    /// its own).
    pub fn new(
        worker_id: usize,
        node_id: usize,
        phase: &'a mut PhaseTimers,
        incumbent: &'a dyn Incumbent,
        sink: &'a mut dyn WorkSink,
    ) -> Self {
        ProcCtx {
            worker_id,
            node_id,
            phase,
            incumbent,
            sink,
        }
    }
}

impl ProcCtx<'_> {
    /// Push a child work item (it becomes stealable after a future
    /// release).
    #[inline]
    pub fn push(&mut self, item: &[u64]) {
        self.sink.push(item);
    }

    /// Report a solution (counted in worker stats; optimisation processors
    /// additionally submit the cost through [`ProcCtx::incumbent`]).
    #[inline]
    pub fn solution(&mut self) {
        self.sink.solution();
    }

    /// Request cooperative cancellation of the whole run: every worker
    /// discards its remaining work and the run terminates. Used for
    /// first-solution satisfaction searches.
    #[inline]
    pub fn cancel(&mut self) {
        self.sink.cancel();
    }
}

/// Executor-side sink behind [`ProcCtx`]: receives the children a
/// processor emits. The threaded runtime routes pushes into the worker's
/// split pool; the simulator routes them into a virtual pool.
pub trait WorkSink {
    fn push(&mut self, item: &[u64]);
    fn solution(&mut self);
    fn cancel(&mut self);
}

/// Turns work items into children. One processor instance per worker.
pub trait Processor: Send {
    /// Per-worker result merged into the run report.
    type Output: Send;

    /// Process the item in `buf` (exactly `slot_words` long).
    fn process(&mut self, buf: &mut [u64], ctx: &mut ProcCtx<'_>) -> Step;

    /// Consume the processor at the end of the run.
    fn finish(self) -> Self::Output;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CollectSink {
        pushed: Vec<Vec<u64>>,
        solutions: u64,
    }

    impl WorkSink for CollectSink {
        fn push(&mut self, item: &[u64]) {
            self.pushed.push(item.to_vec());
        }
        fn solution(&mut self) {
            self.solutions += 1;
        }
        fn cancel(&mut self) {}
    }

    #[test]
    fn ctx_routes_to_sink() {
        let mut sink = CollectSink {
            pushed: vec![],
            solutions: 0,
        };
        let mut phase = PhaseTimers::default();
        let mut ctx = ProcCtx {
            worker_id: 3,
            node_id: 0,
            phase: &mut phase,
            incumbent: &NoIncumbent,
            sink: &mut sink,
        };
        ctx.push(&[1, 2]);
        ctx.push(&[3, 4]);
        ctx.solution();
        assert_eq!(ctx.incumbent.get(), i64::MAX);
        assert_eq!(sink.pushed, vec![vec![1, 2], vec![3, 4]]);
        assert_eq!(sink.solutions, 1);
    }
}
