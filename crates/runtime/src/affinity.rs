//! Opt-in thread→CPU pinning for the threaded runtime.
//!
//! Calibration (and any threaded run whose numbers are meant to describe
//! *this* machine) needs each worker bound to the core it claims to
//! model — otherwise the scheduler can migrate a "cross-socket" thief
//! onto its victim's socket mid-measurement and the latencies stop
//! meaning anything. On Linux this is one `sched_setaffinity` call with
//! a single-CPU mask; the workspace builds offline with no libc crate,
//! so the syscall wrapper is declared directly (std already links libc,
//! the symbol resolves at link time). Everywhere else pinning is a
//! graceful no-op that reports failure instead of lying.

#[cfg(target_os = "linux")]
mod imp {
    // sched_setaffinity(2): pid 0 = the calling thread. The mask is an
    // opaque byte array from the kernel's point of view; 128 bytes =
    // 1024 CPUs, comfortably past any machine this crate will meet.
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u8) -> i32;
    }

    pub fn pin_current_thread(cpu: u32) -> bool {
        const MASK_BYTES: usize = 128;
        let cpu = cpu as usize;
        if cpu >= MASK_BYTES * 8 {
            return false;
        }
        let mut mask = [0u8; MASK_BYTES];
        mask[cpu / 8] = 1 << (cpu % 8);
        // SAFETY: the mask outlives the call and the length matches.
        unsafe { sched_setaffinity(0, MASK_BYTES, mask.as_ptr()) == 0 }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    pub fn pin_current_thread(_cpu: u32) -> bool {
        false
    }
}

/// Pin the calling thread to OS CPU `cpu`. Returns `true` on success;
/// `false` on non-Linux hosts, out-of-range CPUs, or a rejected syscall
/// (e.g. a cgroup cpuset that excludes the CPU) — callers treat failure
/// as "run unpinned", never as an error.
pub fn pin_current_thread(cpu: u32) -> bool {
    imp::pin_current_thread(cpu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_cpu0_succeeds_on_linux_and_noops_elsewhere() {
        let ok = pin_current_thread(0);
        if cfg!(target_os = "linux") {
            // CPU 0 exists on every Linux box this test will run on.
            assert!(ok, "pinning to CPU 0 must succeed on Linux");
        } else {
            assert!(!ok, "non-Linux pinning is a reported no-op");
        }
    }

    #[test]
    fn out_of_range_cpu_is_rejected_not_ub() {
        assert!(!pin_current_thread(u32::MAX));
        assert!(!pin_current_thread(1024));
    }

    #[test]
    fn pinned_thread_still_runs() {
        // Pin inside a scratch thread so the test runner's thread is
        // left untouched, then prove the thread still schedules.
        let got = std::thread::spawn(|| {
            pin_current_thread(0);
            21 * 2
        })
        .join()
        .unwrap();
        assert_eq!(got, 42);
    }
}
