//! Runtime configuration: topology, stealing heuristics, polling and
//! release policies.

use macs_gpi::{LatencyModel, MachineTopology, ScanOrder, TopoError, Topology};
pub use macs_search::{BoundPolicy, ChunkPolicy, SearchMode};

/// Local-steal victim selection (paper §V, "Local Work Stealing"):
/// MaCS ships a cheap *greedy* variant and a better-informed but costlier
/// *max steal* variant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VictimSelect {
    /// "the first victim found with available work is chosen" (scan starts
    /// at a random peer to avoid convoys).
    #[default]
    Greedy,
    /// "the thief checks all n−1 possible victims and chooses the one with
    /// the largest shared region".
    MaxSteal,
}

/// How often a worker checks its request mailbox (paper §V, "dynamic
/// polling strategy"). Intervals are counted in processed work items.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PollPolicy {
    /// Poll every `n` items.
    Fixed(u32),
    /// Start at `min`; a poll that finds no request doubles the interval
    /// (up to `max`), a poll that finds one halves it (down to `min`) —
    /// "if the poll fails, the polling interval grows …; if a poll
    /// succeeds, the opposite happens".
    Dynamic { min: u32, max: u32 },
}

impl Default for PollPolicy {
    fn default() -> Self {
        // The ceiling must stay low enough that a waiting thief is served
        // within a few node-processing times, or "Wait remote" — negligible
        // in the paper's Fig. 3/5 — starts to dominate at scale.
        PollPolicy::Dynamic { min: 2, max: 64 }
    }
}

impl PollPolicy {
    pub fn initial(&self) -> u32 {
        match *self {
            PollPolicy::Fixed(n) => n.max(1),
            PollPolicy::Dynamic { min, .. } => min.max(1),
        }
    }

    /// Next interval after a poll that found (`hit = true`) or did not find
    /// a pending request.
    pub fn next(&self, current: u32, hit: bool) -> u32 {
        match *self {
            PollPolicy::Fixed(n) => n.max(1),
            PollPolicy::Dynamic { min, max } => {
                let min = min.max(1);
                if hit {
                    (current / 2).max(min)
                } else {
                    current.saturating_mul(2).min(max.max(min))
                }
            }
        }
    }
}

/// When and how much private work a worker publishes into the shared region
/// of its pool. The *interval* is the paper's "work release interval" — the
/// knob that turns MaCS(default) into MaCS(best) on N-Queens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReleasePolicy {
    /// Attempt a release every `interval` processed items (1 = the paper's
    /// eager default).
    pub interval: u32,
    /// Never share below this many private items (keeps the owner fed).
    pub min_private: u64,
    /// Only lock and move the split pointer when the shared region has
    /// fewer items than this (avoids extraneous releases).
    pub share_target: u64,
}

impl Default for ReleasePolicy {
    fn default() -> Self {
        // The paper's default: release on *every* work-loop iteration,
        // unconditionally — the "extraneous" release operations whose cost
        // §VI identifies as the limiter on N-Queens scalability.
        ReleasePolicy {
            interval: 1,
            min_private: 2,
            share_target: u64::MAX,
        }
    }
}

impl ReleasePolicy {
    /// The tuned variant the paper calls MaCS(best): "simply based on the
    /// reduction of the number of (extraneous) release operations" — an
    /// order of magnitude fewer release operations.
    pub fn tuned() -> Self {
        ReleasePolicy {
            interval: 32,
            min_private: 2,
            share_target: u64::MAX,
        }
    }

    /// A demand-driven variant (only lock when the shared region runs
    /// low) for ablation studies.
    pub fn demand_driven(interval: u32) -> Self {
        ReleasePolicy {
            interval,
            min_private: 2,
            share_target: 4,
        }
    }
}

/// The threaded runtime's default bound-dissemination policy (paper §VI
/// discussion and future work: "a more efficient dissemination of the
/// bound value could potentially mitigate that growth"). `Immediate` pays
/// an interconnect read per item off node 0; `Periodic` trades staleness
/// for fewer reads; `Hierarchical` routes through per-node mirror cells
/// refreshed by node leaders (see
/// [`macs_search::bounds`] and the `GlobalIncumbent`
/// in [`worker`](crate::worker)).
pub fn default_bound_policy() -> BoundPolicy {
    BoundPolicy::Periodic { every: 32 }
}

/// Where the initial work item(s) go.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SeedMode {
    /// All roots to worker 0 (the paper's setup: one worker "initiates the
    /// search" and everyone else steals their way in).
    #[default]
    WorkerZero,
    /// Round-robin across workers (useful for multi-root workloads).
    RoundRobin,
}

/// Complete configuration of a parallel run.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// The machine's level structure; stealing inside a node is
    /// shared-memory, across nodes it pays the interconnect, and victim
    /// scans walk the levels nearest-first (see `scan_order`).
    pub topology: MachineTopology,
    /// Interconnect cost model.
    pub latency: LatencyModel,
    /// Victim ordering: level-by-level (socket before node before
    /// cluster, with last-steal affinity) or the original flat scan.
    pub scan_order: ScanOrder,
    /// Maximum number of victim pools contributing chunks to one remote
    /// steal response (1 = the original single-chunk reply). The
    /// response's total size stays capped at `max_steal_chunk`; batching
    /// means several co-located pools may *fill* that cap together, so a
    /// thief's round trip delivers full value instead of one pool's thin
    /// chunk. Under [`ChunkPolicy::Adaptive`] this is only the starting
    /// point — each victim's reply-thinness EWMA takes over.
    pub response_batch: u32,
    /// Slots per worker pool (rounded up to a power of two).
    pub pool_capacity: usize,
    pub release: ReleasePolicy,
    pub victim_select: VictimSelect,
    pub poll: PollPolicy,
    /// Upper bound on items moved by one steal (local or remote). This is
    /// the *static* reference cap; `chunk_policy` maps it and the steal's
    /// topological distance to the effective per-steal cap.
    pub max_steal_chunk: u64,
    /// Steal-chunk granularity: a flat cap (`Static`, the original
    /// behaviour), a distance-scaled reservation (small same-socket
    /// chunks, up to `factor ×` for cross-cluster steals), or `Adaptive`,
    /// which also tunes `response_batch` online from reply thinness. See
    /// [`ChunkPolicy`].
    pub chunk_policy: ChunkPolicy,
    /// Remote victim *nodes* examined per remote-steal round.
    pub remote_node_attempts: u32,
    /// When incumbent improvements reach other workers (see
    /// [`BoundPolicy`]). The default is `Periodic { every: 32 }` — the
    /// cheap cadence the pre-hierarchical runtime shipped with.
    pub bound_policy: BoundPolicy,
    /// Arms the first-solution race machinery: under
    /// [`SearchMode::FirstSolution`] workers poll their node's winner
    /// mirror (leaders refreshing it from the root flag over the fabric)
    /// and record the per-item timestamps behind `nodes_after_win`.
    /// Under the default `Exhaustive` the runtime keeps the original
    /// flat, uncharged poll of the root cancel flag — generic processors
    /// may still cancel, but no race metrics are paid for. Keep this in
    /// step with the processor's own mode (the solver front ends do).
    pub mode: SearchMode,
    pub seed_mode: SeedMode,
    /// PRNG seed (victim selection, backoff jitter).
    pub seed: u64,
    /// Negative termination-counter deltas are flushed at this batch size.
    pub term_flush_batch: u32,
    /// Charge interconnect latency for termination-counter updates from
    /// non-zero nodes. Off by default: real MaCS amortises termination
    /// bookkeeping asynchronously, so charging a synchronous fabric round
    /// trip per push would overstate that cost by orders of magnitude.
    pub charge_termination: bool,
    /// Pin each worker thread to one OS CPU (`sched_setaffinity`; a
    /// graceful no-op off-Linux). Off by default — calibration and the
    /// `calibration_gate` turn it on so threaded latencies describe the
    /// cores they claim.
    pub pin_threads: bool,
    /// Worker → OS CPU map used when `pin_threads` is set: worker `w`
    /// pins to `cpu_map[w]` (typically
    /// [`DetectedMachine::cpus`](macs_gpi::DetectedMachine), which skips
    /// hyperthread siblings). `None` = identity (worker `w` → CPU `w`).
    pub cpu_map: Option<Vec<u32>>,
}

impl RuntimeConfig {
    /// A sensible default for `workers` workers on one shared-memory node.
    pub fn single_node(workers: usize) -> Self {
        RuntimeConfig {
            topology: Topology::single_node(workers).into(),
            ..Default::default()
        }
    }

    /// The paper's cluster shape: nodes of 4 cores.
    pub fn clustered(total_workers: usize, cores_per_node: usize) -> Self {
        RuntimeConfig {
            topology: Topology::clustered(total_workers, cores_per_node).into(),
            ..Default::default()
        }
    }

    /// An N-level machine, e.g. `&[2, 2, 4]` with `node_prefix = 1` for
    /// 2 nodes of 2 sockets of 4 cores. Shape errors propagate instead of
    /// panicking.
    pub fn hierarchical(shape: &[usize], node_prefix: usize) -> Result<Self, TopoError> {
        Ok(RuntimeConfig {
            topology: MachineTopology::try_new(shape, node_prefix)?,
            ..Default::default()
        })
    }

    pub fn workers(&self) -> usize {
        self.topology.total_workers()
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            topology: MachineTopology::flat(1),
            latency: LatencyModel::zero(),
            scan_order: ScanOrder::default(),
            response_batch: 2,
            pool_capacity: 4096,
            release: ReleasePolicy::default(),
            victim_select: VictimSelect::default(),
            poll: PollPolicy::default(),
            max_steal_chunk: 16,
            chunk_policy: ChunkPolicy::default(),
            remote_node_attempts: 2,
            bound_policy: default_bound_policy(),
            mode: SearchMode::Exhaustive,
            seed_mode: SeedMode::default(),
            seed: 0x5EED,
            term_flush_batch: 64,
            charge_termination: false,
            pin_threads: false,
            cpu_map: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_poll_interval_adapts() {
        let p = PollPolicy::Dynamic { min: 2, max: 64 };
        assert_eq!(p.initial(), 2);
        let mut cur = p.initial();
        for _ in 0..10 {
            cur = p.next(cur, false);
        }
        assert_eq!(cur, 64, "misses saturate at max");
        cur = p.next(cur, true);
        assert_eq!(cur, 32);
        for _ in 0..10 {
            cur = p.next(cur, true);
        }
        assert_eq!(cur, 2, "hits saturate at min");
    }

    #[test]
    fn fixed_poll_interval_is_constant() {
        let p = PollPolicy::Fixed(8);
        assert_eq!(p.next(8, true), 8);
        assert_eq!(p.next(8, false), 8);
        assert_eq!(PollPolicy::Fixed(0).initial(), 1, "zero clamps to 1");
    }

    #[test]
    fn tuned_release_is_rarer_than_default() {
        assert!(ReleasePolicy::tuned().interval > ReleasePolicy::default().interval);
    }

    #[test]
    fn config_shapes() {
        let c = RuntimeConfig::clustered(8, 4);
        assert_eq!(c.topology.nodes(), 2);
        assert_eq!(c.workers(), 8);
        let s = RuntimeConfig::single_node(3);
        assert_eq!(s.topology.nodes(), 1);
        let h = RuntimeConfig::hierarchical(&[2, 2, 2], 1).unwrap();
        assert_eq!(h.workers(), 8);
        assert_eq!(h.topology.nodes(), 2);
        assert_eq!(h.topology.levels(), 3);
        assert!(RuntimeConfig::hierarchical(&[0, 2], 1).is_err());
    }
}
