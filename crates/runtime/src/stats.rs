//! Per-worker statistics: the paper's worker-state taxonomy and steal
//! accounting.
//!
//! Figures 3 and 5 of the paper decompose each worker's wall time into ten
//! states; Tables I and II count local/remote steals and their failures.
//! [`WorkerStats`] collects exactly those quantities, plus the
//! propagation/splitting/restoring phase split quoted in §VI.

use std::time::{Duration, Instant};

use macs_gpi::StealHistogram;

/// The states a worker can be in, matching the legend of the paper's
/// Fig. 3/5.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum WorkerState {
    /// Processing a work item (propagation + splitting for CP).
    Working = 0,
    /// Acquiring work from the own pool (pop, reacquire) and scanning local
    /// victims.
    Searching = 1,
    /// Scanning remote nodes' pool metadata for a victim.
    SearchingRemote = 2,
    /// Executing a local steal (victim pool locked, items copied).
    Stealing = 3,
    /// Out of work, backing off between steal rounds.
    Idle = 4,
    /// Moving the split pointer to publish work (the release operation).
    Releasing = 5,
    /// Start/end rendezvous.
    Barrier = 6,
    /// Checking and serving remote steal requests.
    Poll = 7,
    /// Posting a remote steal request (mailbox CAS).
    FindRemote = 8,
    /// Waiting for the victim's response.
    WaitRemote = 9,
}

/// Number of distinct worker states.
pub const NUM_STATES: usize = 10;

impl WorkerState {
    pub const ALL: [WorkerState; NUM_STATES] = [
        WorkerState::Working,
        WorkerState::Searching,
        WorkerState::SearchingRemote,
        WorkerState::Stealing,
        WorkerState::Idle,
        WorkerState::Releasing,
        WorkerState::Barrier,
        WorkerState::Poll,
        WorkerState::FindRemote,
        WorkerState::WaitRemote,
    ];

    pub fn name(self) -> &'static str {
        match self {
            WorkerState::Working => "Working",
            WorkerState::Searching => "Searching",
            WorkerState::SearchingRemote => "Searching remote",
            WorkerState::Stealing => "Stealing",
            WorkerState::Idle => "Idle",
            WorkerState::Releasing => "Releasing",
            WorkerState::Barrier => "Barrier",
            WorkerState::Poll => "Poll",
            WorkerState::FindRemote => "Find remote",
            WorkerState::WaitRemote => "Wait remote",
        }
    }
}

/// Tracks which state a worker is in and for how long.
#[derive(Debug)]
pub struct StateClock {
    current: WorkerState,
    since: Instant,
    pub totals: [Duration; NUM_STATES],
}

impl StateClock {
    pub fn start() -> Self {
        StateClock {
            current: WorkerState::Barrier,
            since: Instant::now(),
            totals: [Duration::ZERO; NUM_STATES],
        }
    }

    /// Transition to `state`, charging the elapsed time to the previous
    /// state. A self-transition just keeps accumulating.
    #[inline]
    pub fn set(&mut self, state: WorkerState) {
        if state == self.current {
            return;
        }
        let now = Instant::now();
        self.totals[self.current as usize] += now - self.since;
        self.current = state;
        self.since = now;
    }

    #[inline]
    pub fn current(&self) -> WorkerState {
        self.current
    }

    /// Close the clock (charge the final open interval).
    pub fn finish(&mut self) {
        let now = Instant::now();
        self.totals[self.current as usize] += now - self.since;
        self.since = now;
    }

    pub fn total(&self) -> Duration {
        self.totals.iter().sum()
    }
}

/// The solve-phase split the paper quotes in §VI ("propagation takes around
/// 48%, splitting around 10% and restoring takes around 42%").
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimers {
    pub propagate: Duration,
    pub split: Duration,
    pub restore: Duration,
}

impl PhaseTimers {
    pub fn total(&self) -> Duration {
        self.propagate + self.split + self.restore
    }

    /// (propagate, split, restore) as fractions of their sum.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total().as_secs_f64();
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.propagate.as_secs_f64() / t,
            self.split.as_secs_f64() / t,
            self.restore.as_secs_f64() / t,
        )
    }
}

/// Everything one worker reports at the end of a run.
#[derive(Debug)]
pub struct WorkerStats {
    pub id: usize,
    pub node: usize,
    pub clock: StateClock,
    pub phase: PhaseTimers,
    /// Work items processed (the paper's "nodes"/"stores processed").
    pub items: u64,
    /// Children pushed into the pool.
    pub pushes: u64,
    /// Pushes that spilled to the local overflow stack (ring full).
    pub overflow_spills: u64,
    /// Successful local steals (as thief) and items obtained.
    pub local_steals: u64,
    pub local_steal_items: u64,
    /// Local steal attempts that found a victim's shared region empty.
    pub local_steal_failures: u64,
    /// Successful remote steals (as thief) and items obtained.
    pub remote_steals: u64,
    pub remote_steal_items: u64,
    /// Remote requests answered with "no work".
    pub remote_steal_failures: u64,
    /// Release operations and items shared.
    pub releases: u64,
    pub released_items: u64,
    /// Poll operations (request checks) and requests served.
    pub polls: u64,
    pub requests_served: u64,
    /// Requests served out of a co-located worker's pool (proxy
    /// fulfilment).
    pub proxy_serves: u64,
    /// Requests we had to answer with RESP_FAIL.
    pub requests_refused: u64,
    /// Solutions reported by the processor.
    pub solutions: u64,
    /// Successful steals (as thief) by topological distance.
    pub steals_by_distance: StealHistogram,
    /// First-solution races: steals (local grabs or remote replies) that
    /// resolved after the winner flag was raised, delivering items that
    /// were immediately discarded. Kept out of the steal counts and the
    /// distance histogram so they cannot inflate items-per-steal.
    pub drain_steals: u64,
    /// Victim-pool chunks written across all served responses (≥
    /// `requests_served`; the surplus is the batching win).
    pub response_chunks: u64,
    /// Responses that carried more than one victim's chunk.
    pub batched_responses: u64,
    /// First-solution races: items this worker *started* after the winner
    /// flag was raised somewhere — work the flag's dissemination lag
    /// failed to prevent (see [`RaceRing`]).
    pub nodes_after_win: u64,
    /// First-solution races: items this worker discarded unprocessed
    /// (in hand or pooled) once it observed the winner flag.
    pub abandoned_items: u64,
    /// Leased runs: times this worker parked because the lease width
    /// shrank below its id (it published its pool and served thieves
    /// until regrown or terminated).
    pub parks: u64,
}

impl WorkerStats {
    pub fn new(id: usize, node: usize) -> Self {
        WorkerStats {
            id,
            node,
            clock: StateClock::start(),
            phase: PhaseTimers::default(),
            items: 0,
            pushes: 0,
            overflow_spills: 0,
            local_steals: 0,
            local_steal_items: 0,
            local_steal_failures: 0,
            remote_steals: 0,
            remote_steal_items: 0,
            remote_steal_failures: 0,
            releases: 0,
            released_items: 0,
            polls: 0,
            requests_served: 0,
            proxy_serves: 0,
            requests_refused: 0,
            solutions: 0,
            steals_by_distance: StealHistogram::new(),
            drain_steals: 0,
            response_chunks: 0,
            batched_responses: 0,
            nodes_after_win: 0,
            abandoned_items: 0,
            parks: 0,
        }
    }
}

pub use macs_search::mode::RaceRing;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates_per_state() {
        let mut c = StateClock::start();
        c.set(WorkerState::Working);
        std::thread::sleep(Duration::from_millis(5));
        c.set(WorkerState::Idle);
        std::thread::sleep(Duration::from_millis(2));
        c.set(WorkerState::Working);
        c.finish();
        assert!(c.totals[WorkerState::Working as usize] >= Duration::from_millis(4));
        assert!(c.totals[WorkerState::Idle as usize] >= Duration::from_millis(1));
        assert!(c.total() >= Duration::from_millis(7));
    }

    #[test]
    fn self_transition_is_free() {
        let mut c = StateClock::start();
        c.set(WorkerState::Working);
        for _ in 0..1000 {
            c.set(WorkerState::Working);
        }
        assert_eq!(c.current(), WorkerState::Working);
    }

    #[test]
    fn phase_fractions_sum_to_one() {
        let p = PhaseTimers {
            propagate: Duration::from_millis(48),
            split: Duration::from_millis(10),
            restore: Duration::from_millis(42),
        };
        let (a, b, c) = p.fractions();
        assert!((a + b + c - 1.0).abs() < 1e-9);
        assert!((a - 0.48).abs() < 0.01);
    }

    #[test]
    fn state_names_cover_paper_legend() {
        let names: Vec<&str> = WorkerState::ALL.iter().map(|s| s.name()).collect();
        for expect in [
            "Working",
            "Searching",
            "Searching remote",
            "Stealing",
            "Idle",
            "Releasing",
            "Barrier",
            "Poll",
            "Find remote",
            "Wait remote",
        ] {
            assert!(names.contains(&expect), "{expect} missing");
        }
    }
}
