//! A tiny deterministic PRNG for victim selection and backoff jitter.
//!
//! SplitMix64 (Steele, Lea & Flood): one multiply-xorshift round per draw,
//! no external dependency, and — crucially for reproducible experiments —
//! every worker seeds its own stream from the run seed and its worker id.

/// SplitMix64 pseudo-random generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1234_5678_9ABC_DEF0,
        }
    }

    /// Per-worker stream: decorrelates workers sharing a run seed.
    pub fn for_worker(seed: u64, worker: usize) -> Self {
        let mut r = SplitMix64::new(seed ^ (worker as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        r.next_u64();
        r
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (n > 0).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's multiply-shift; the modulo bias is irrelevant at our n.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform draw in `0..n` as usize.
    #[inline]
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn worker_streams_differ() {
        let mut w0 = SplitMix64::for_worker(7, 0);
        let mut w1 = SplitMix64::for_worker(7, 1);
        let same = (0..64).filter(|_| w0.next_u64() == w1.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SplitMix64::new(1);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }
}
