//! Run entry point: build the world, seed the roots, spawn the workers,
//! aggregate the report.

use std::time::Duration;

use macs_gpi::interconnect::TrafficSnapshot;
use macs_gpi::World;
use macs_pool::SplitPool;

use crate::config::{RuntimeConfig, SeedMode};
use crate::processor::Processor;
use crate::stats::{WorkerState, WorkerStats, NUM_STATES};
use crate::term;
use crate::worker::Worker;

/// Everything a parallel run produced: wall time, per-worker statistics,
/// per-worker processor outputs, and interconnect traffic.
#[derive(Debug)]
pub struct RunReport<O> {
    pub wall: Duration,
    pub workers: Vec<WorkerStats>,
    pub outputs: Vec<O>,
    pub traffic: TrafficSnapshot,
    /// Final global incumbent (optimisation; `i64::MAX` otherwise).
    pub incumbent: i64,
    /// First-solution races: when the winning solution was found,
    /// measured from the run's epoch (`None` when no winner flag was ever
    /// raised — exhaustive runs, unsatisfiable instances).
    pub first_solution: Option<Duration>,
}

impl<O> RunReport<O> {
    /// Total work items processed (the paper's "Total Nodes").
    pub fn total_items(&self) -> u64 {
        self.workers.iter().map(|w| w.items).sum()
    }

    pub fn total_solutions(&self) -> u64 {
        self.workers.iter().map(|w| w.solutions).sum()
    }

    /// First-solution races: items whose expansion *started* after the
    /// win — work the winner flag's dissemination lag failed to prevent.
    pub fn nodes_after_win(&self) -> u64 {
        self.workers.iter().map(|w| w.nodes_after_win).sum()
    }

    /// First-solution races: items discarded unprocessed once workers
    /// observed the winner flag.
    pub fn abandoned_items(&self) -> u64 {
        self.workers.iter().map(|w| w.abandoned_items).sum()
    }

    /// Fraction of aggregate worker time spent in each state (the paper's
    /// Fig. 3/5 bars).
    pub fn state_fractions(&self) -> [f64; NUM_STATES] {
        let mut totals = [0.0f64; NUM_STATES];
        let mut sum = 0.0;
        for w in &self.workers {
            for (i, d) in w.clock.totals.iter().enumerate() {
                totals[i] += d.as_secs_f64();
                sum += d.as_secs_f64();
            }
        }
        if sum > 0.0 {
            for t in totals.iter_mut() {
                *t /= sum;
            }
        }
        totals
    }

    /// Everything that is not `Working`, as a fraction (the paper's
    /// "Overhead" line).
    pub fn overhead_fraction(&self) -> f64 {
        1.0 - self.state_fractions()[WorkerState::Working as usize]
    }

    /// Aggregate items per second.
    pub fn items_per_sec(&self) -> f64 {
        self.total_items() as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    /// Summed steal statistics:
    /// (local ok, local failed, remote ok, remote failed).
    pub fn steal_totals(&self) -> (u64, u64, u64, u64) {
        let mut t = (0, 0, 0, 0);
        for w in &self.workers {
            t.0 += w.local_steals;
            t.1 += w.local_steal_failures;
            t.2 += w.remote_steals;
            t.3 += w.remote_steal_failures;
        }
        t
    }
}

/// Run `roots` through per-worker processors created by `factory` (called
/// once per worker, from that worker's thread).
///
/// Every root and every work item is `slot_words` u64s. Returns when every
/// item (transitively) has been processed.
pub fn run_parallel<P, F>(
    cfg: &RuntimeConfig,
    slot_words: usize,
    roots: &[Vec<u64>],
    factory: F,
) -> RunReport<P::Output>
where
    P: Processor,
    F: Fn(usize) -> P + Sync,
    P::Output: Send,
{
    let pools = build_seeded_pools(cfg, slot_words, roots);
    // The world is created last, just before the workers spawn, so its
    // `start` instant is the one epoch for *both* the run's wall clock
    // and the race's win timestamps — `first_solution ≤ wall` by
    // construction, with no setup time leaking into either.
    let world = World::new(cfg.topology.clone(), cfg.latency, 16);
    run_on_pools(&world, cfg, pools, roots.len() as u64, factory)
}

/// [`run_parallel`] against a caller-supplied [`World`] — the multi-tenant
/// entry point. The caller builds the world over the job's *lease
/// sub-topology* (typically with [`World::leased_on`], windowing a shared
/// register file to the job's own [`macs_gpi::CellBlock`]); `cfg.topology`
/// must be that same sub-topology, since it drives the worker count and
/// victim rings.
pub fn run_parallel_on<P, F>(
    world: &World,
    cfg: &RuntimeConfig,
    slot_words: usize,
    roots: &[Vec<u64>],
    factory: F,
) -> RunReport<P::Output>
where
    P: Processor,
    F: Fn(usize) -> P + Sync,
    P::Output: Send,
{
    assert_eq!(
        cfg.workers(),
        world.topology.total_workers(),
        "config topology must match the world's"
    );
    let pools = build_seeded_pools(cfg, slot_words, roots);
    run_on_pools(world, cfg, pools, roots.len() as u64, factory)
}

fn build_seeded_pools(
    cfg: &RuntimeConfig,
    slot_words: usize,
    roots: &[Vec<u64>],
) -> Vec<SplitPool> {
    let n_workers = cfg.workers();
    assert!(!roots.is_empty(), "need at least one root work item");
    for r in roots {
        assert_eq!(r.len(), slot_words, "root size must match slot_words");
    }

    let pools: Vec<SplitPool> = (0..n_workers)
        .map(|_| SplitPool::new(cfg.pool_capacity, slot_words))
        .collect();

    // Seed the roots as private work; thieves pull everyone else in.
    match cfg.seed_mode {
        SeedMode::WorkerZero => {
            for r in roots {
                assert!(pools[0].push(r), "root seed overflowed pool 0");
            }
        }
        SeedMode::RoundRobin => {
            for (i, r) in roots.iter().enumerate() {
                assert!(pools[i % n_workers].push(r), "root seed overflow");
            }
        }
    }
    pools
}

fn run_on_pools<P, F>(
    world: &World,
    cfg: &RuntimeConfig,
    pools: Vec<SplitPool>,
    n_roots: u64,
    factory: F,
) -> RunReport<P::Output>
where
    P: Processor,
    F: Fn(usize) -> P + Sync,
    P::Output: Send,
{
    let n_workers = cfg.workers();
    let block = world.block;
    term::init_outstanding_at(&world.cells, block.outstanding(), n_roots);
    world.cells.store_i64(block.incumbent(), i64::MAX);
    let mut results: Vec<(WorkerStats, P::Output)> = Vec::with_capacity(n_workers);
    std::thread::scope(|s| {
        let pools = &pools[..];
        let factory = &factory;
        let handles: Vec<_> = (0..n_workers)
            .map(|w| {
                s.spawn(move || {
                    if cfg.pin_threads {
                        // Worker w → cpu_map[w] (or CPU w when no map).
                        // Failure means "run unpinned" — a cgroup cpuset
                        // or non-Linux host must not kill the run.
                        let cpu = match &cfg.cpu_map {
                            Some(map) => map.get(w).copied().unwrap_or(w as u32),
                            None => w as u32,
                        };
                        crate::affinity::pin_current_thread(cpu);
                    }
                    let processor = factory(w);
                    Worker::new(w, cfg, world, pools, processor).run()
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("worker panicked"));
        }
    });
    let wall = world.start.elapsed();

    debug_assert!(
        pools.iter().all(|p| p.is_empty()),
        "pools must be drained at termination"
    );

    let incumbent = world.cells.load_i64(block.incumbent());
    let win_ns = world.cells.load_i64(block.win_ns());
    let (workers, outputs) = results.into_iter().unzip();
    RunReport {
        wall,
        workers,
        outputs,
        traffic: world.interconnect.counters.snapshot(),
        incumbent,
        first_solution: (win_ns != i64::MAX).then(|| Duration::from_nanos(win_ns as u64)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PollPolicy, ReleasePolicy, VictimSelect};
    use crate::processor::{ProcCtx, Step};
    use macs_gpi::LatencyModel;

    /// Synthetic tree task: item = [depth, path]; nodes below `max_depth`
    /// expand into `branch(path)` children; leaves are counted.
    struct TreeProc {
        max_depth: u64,
        uniform_branch: Option<u64>,
        leaves: u64,
        checksum: u64,
    }

    impl TreeProc {
        fn branch(&self, path: u64) -> u64 {
            match self.uniform_branch {
                Some(b) => b,
                // Unbalanced: mix of 0–3 children derived from the path.
                None => {
                    let h = path
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .rotate_left(17)
                        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    h % 4
                }
            }
        }
    }

    impl Processor for TreeProc {
        type Output = (u64, u64); // (leaves, checksum)

        fn process(&mut self, buf: &mut [u64], ctx: &mut ProcCtx<'_>) -> Step {
            let (depth, path) = (buf[0], buf[1]);
            let b = if depth >= self.max_depth {
                0
            } else {
                self.branch(path)
            };
            if b == 0 {
                self.leaves += 1;
                self.checksum = self.checksum.wrapping_add(path | 1);
                ctx.solution();
                return Step::Leaf;
            }
            for i in 1..b {
                ctx.push(&[depth + 1, path.wrapping_mul(31).wrapping_add(i)]);
            }
            buf[0] = depth + 1;
            buf[1] = path.wrapping_mul(31);
            Step::Continue
        }

        fn finish(self) -> (u64, u64) {
            (self.leaves, self.checksum)
        }
    }

    fn run_tree(
        cfg: &RuntimeConfig,
        max_depth: u64,
        uniform: Option<u64>,
    ) -> (RunReport<(u64, u64)>, u64, u64) {
        let report = run_parallel(cfg, 2, &[vec![0u64, 1u64]], |_w| TreeProc {
            max_depth,
            uniform_branch: uniform,
            leaves: 0,
            checksum: 0,
        });
        let leaves: u64 = report.outputs.iter().map(|o| o.0).sum();
        let checksum = report.outputs.iter().fold(0u64, |a, o| a.wrapping_add(o.1));
        (report, leaves, checksum)
    }

    #[test]
    fn single_worker_counts_exactly() {
        let cfg = RuntimeConfig::single_node(1);
        let (report, leaves, _) = run_tree(&cfg, 8, Some(3));
        assert_eq!(leaves, 3u64.pow(8));
        assert_eq!(report.total_solutions(), 3u64.pow(8));
        // Interior nodes: (3^8 − 1) / 2 … plus the leaves.
        let interior = (3u64.pow(8) - 1) / 2;
        assert_eq!(report.total_items(), interior + 3u64.pow(8));
    }

    #[test]
    fn pinned_run_agrees_with_unpinned() {
        // pin_threads changes where threads run, never what they compute
        // — and a cpu_map shorter than the worker count or full of
        // nonsense CPUs must degrade to "unpinned", not crash.
        let cfg_seq = RuntimeConfig::single_node(1);
        let (_, leaves1, sum1) = run_tree(&cfg_seq, 9, Some(3));
        let mut cfg = RuntimeConfig::single_node(4);
        cfg.pin_threads = true;
        let (_, leaves4, sum4) = run_tree(&cfg, 9, Some(3));
        assert_eq!((leaves4, sum4), (leaves1, sum1));
        cfg.cpu_map = Some(vec![0, 9999]); // short + out of range
        let (_, leaves4, sum4) = run_tree(&cfg, 9, Some(3));
        assert_eq!((leaves4, sum4), (leaves1, sum1));
    }

    #[test]
    fn multi_worker_single_node_agrees_with_sequential() {
        let cfg_seq = RuntimeConfig::single_node(1);
        let cfg = RuntimeConfig::single_node(4);
        // Work distribution is timing-dependent: on a loaded host one
        // worker can race through a small tree before the other threads
        // are even scheduled. Retry with a deeper tree each time — the
        // widening race window makes a steal-free run vanishingly
        // unlikely — while the counts must agree on every attempt.
        let mut stole = false;
        for depth in 9..=13 {
            let (_, leaves1, sum1) = run_tree(&cfg_seq, depth, Some(3));
            let (report, leaves4, sum4) = run_tree(&cfg, depth, Some(3));
            assert_eq!(leaves4, leaves1);
            assert_eq!(sum4, sum1, "every leaf processed exactly once");
            let (ls, _, _, _) = report.steal_totals();
            if ls > 0 {
                stole = true;
                break;
            }
        }
        assert!(stole, "expected local steals on a shared-memory node");
    }

    #[test]
    fn hierarchical_topology_uses_remote_steals() {
        let cfg_seq = RuntimeConfig::single_node(1);
        let mut cfg = RuntimeConfig::clustered(4, 2); // 2 nodes × 2 cores
        cfg.poll = PollPolicy::Dynamic { min: 2, max: 64 };
        // As in the single-node agreement test: retry with a deeper tree
        // until the off-node workers were scheduled in time to steal.
        for depth in 10..=13 {
            let (_, leaves1, sum1) = run_tree(&cfg_seq, depth, Some(3));
            let (report, leaves, sum) = run_tree(&cfg, depth, Some(3));
            assert_eq!(leaves, leaves1);
            assert_eq!(sum, sum1);
            let (_, _, rs, _) = report.steal_totals();
            if rs > 0 {
                assert!(report.traffic.remote_reads > 0);
                assert!(report.traffic.bytes_written > 0);
                return;
            }
        }
        panic!("expected remote steals across nodes");
    }

    #[test]
    fn unbalanced_tree_is_conserved() {
        let cfg_seq = RuntimeConfig::single_node(1);
        let (_, leaves1, sum1) = run_tree(&cfg_seq, 22, None);
        assert!(leaves1 > 1_000, "tree should be non-trivial: {leaves1}");
        for topo in [
            RuntimeConfig::single_node(3),
            RuntimeConfig::clustered(4, 2),
            RuntimeConfig::clustered(6, 3),
        ] {
            let (_, leaves, sum) = run_tree(&topo, 22, None);
            assert_eq!(leaves, leaves1);
            assert_eq!(sum, sum1);
        }
    }

    #[test]
    fn latency_model_slows_but_preserves_results() {
        let mut cfg = RuntimeConfig::clustered(4, 2);
        cfg.latency = LatencyModel::infiniband_ddr();
        let (report, leaves, _) = run_tree(&cfg, 9, Some(3));
        assert_eq!(leaves, 3u64.pow(9));
        assert!(report.traffic.remote_reads > 0);
    }

    #[test]
    fn max_steal_and_tuned_release_work() {
        let mut cfg = RuntimeConfig::single_node(4);
        cfg.victim_select = VictimSelect::MaxSteal;
        cfg.release = ReleasePolicy::tuned();
        let (report, leaves, _) = run_tree(&cfg, 9, Some(3));
        assert_eq!(leaves, 3u64.pow(9));
        let releases: u64 = report.workers.iter().map(|w| w.releases).sum();
        assert!(releases > 0);
    }

    #[test]
    fn three_level_topology_agrees_and_records_distances() {
        use macs_gpi::StealHistogram;
        let cfg_seq = RuntimeConfig::single_node(1);
        let (_, leaves1, sum1) = run_tree(&cfg_seq, 10, Some(3));
        // 2 nodes × 2 sockets × 2 cores: local rings at distance 1 and 2,
        // one remote ring at distance 3.
        let cfg = RuntimeConfig::hierarchical(&[2, 2, 2], 1).unwrap();
        let (report, leaves, sum) = run_tree(&cfg, 10, Some(3));
        assert_eq!(leaves, leaves1);
        assert_eq!(sum, sum1);
        let mut hist = StealHistogram::new();
        for w in &report.workers {
            hist.merge(&w.steals_by_distance);
        }
        let (ls, _, rs, _) = report.steal_totals();
        assert_eq!(hist.total(), ls + rs, "histogram counts every steal");
        // Local steals land in the intra-node buckets, remote beyond.
        let local_part: u64 = hist.counts[1..=2].iter().sum();
        assert_eq!(local_part, ls);
        assert_eq!(hist.counts[3], rs);
    }

    #[test]
    fn flat_scan_order_still_agrees() {
        use macs_gpi::ScanOrder;
        let cfg_seq = RuntimeConfig::single_node(1);
        let (_, leaves1, sum1) = run_tree(&cfg_seq, 10, Some(3));
        let mut cfg = RuntimeConfig::hierarchical(&[2, 2, 2], 1).unwrap();
        cfg.scan_order = ScanOrder::Flat;
        let (_, leaves, sum) = run_tree(&cfg, 10, Some(3));
        assert_eq!(leaves, leaves1);
        assert_eq!(sum, sum1);
    }

    #[test]
    fn single_chunk_responses_still_agree() {
        let cfg_seq = RuntimeConfig::single_node(1);
        let (_, leaves1, sum1) = run_tree(&cfg_seq, 10, Some(3));
        let mut cfg = RuntimeConfig::clustered(6, 3);
        cfg.response_batch = 1;
        let (report, leaves, sum) = run_tree(&cfg, 10, Some(3));
        assert_eq!(leaves, leaves1);
        assert_eq!(sum, sum1);
        let chunks: u64 = report.workers.iter().map(|w| w.response_chunks).sum();
        let served: u64 = report.workers.iter().map(|w| w.requests_served).sum();
        assert_eq!(chunks, served, "1 chunk per served response");
        assert_eq!(
            report
                .workers
                .iter()
                .map(|w| w.batched_responses)
                .sum::<u64>(),
            0
        );
    }

    #[test]
    fn tiny_workload_many_workers_terminates() {
        // More workers than work: most workers never get an item and must
        // terminate cleanly via the counter.
        let cfg = RuntimeConfig::clustered(8, 2);
        let (report, leaves, _) = run_tree(&cfg, 1, Some(2));
        assert_eq!(leaves, 2);
        assert_eq!(report.total_items(), 3);
    }

    #[test]
    fn round_robin_seeding_multiple_roots() {
        let mut cfg = RuntimeConfig::single_node(3);
        cfg.seed_mode = SeedMode::RoundRobin;
        let roots: Vec<Vec<u64>> = (0..5).map(|i| vec![0u64, 1000 + i]).collect();
        let report = run_parallel(&cfg, 2, &roots, |_| TreeProc {
            max_depth: 6,
            uniform_branch: Some(2),
            leaves: 0,
            checksum: 0,
        });
        let leaves: u64 = report.outputs.iter().map(|o| o.0).sum();
        assert_eq!(leaves, 5 * 2u64.pow(6));
    }

    #[test]
    fn shrunken_lease_drains_and_agrees() {
        use macs_gpi::cells::CellBlock;
        use macs_gpi::GlobalCells;
        use std::sync::Arc;

        let cfg_seq = RuntimeConfig::single_node(1);
        let (_, leaves1, sum1) = run_tree(&cfg_seq, 20, None);

        // 4 workers on 2 nodes, but the lease is shrunk to 2 before the
        // run even starts and never regrown: workers 2 and 3 must park
        // immediately, and the active pair must be able to drain every
        // item — including the last one in a parked pool (the retention
        // waiver) — or the run would never terminate.
        let cfg = RuntimeConfig::clustered(4, 2);
        let nodes = cfg.topology.nodes();
        let cells = Arc::new(GlobalCells::with_job_blocks(2, nodes));
        let block = CellBlock::for_job(1, nodes);
        let world = World::leased_on(cfg.topology.clone(), cfg.latency, Arc::clone(&cells), block);
        cells.store(block.lease(), 2);
        let report = run_parallel_on(&world, &cfg, 2, &[vec![0u64, 1u64]], |_w| TreeProc {
            max_depth: 20,
            uniform_branch: None,
            leaves: 0,
            checksum: 0,
        });
        let leaves: u64 = report.outputs.iter().map(|o| o.0).sum();
        let sum = report.outputs.iter().fold(0u64, |a, o| a.wrapping_add(o.1));
        assert_eq!(leaves, leaves1);
        assert_eq!(sum, sum1);
        let parks: u64 = report.workers.iter().map(|w| w.parks).sum();
        assert!(parks >= 2, "both out-of-lease workers must park: {parks}");
        // Parked workers never process items under a never-regrown lease.
        assert_eq!(report.workers[2].items, 0);
        assert_eq!(report.workers[3].items, 0);
    }

    #[test]
    fn lease_regrow_resumes_parked_workers() {
        use macs_gpi::cells::CellBlock;
        use macs_gpi::GlobalCells;
        use std::sync::Arc;

        let cfg_seq = RuntimeConfig::single_node(1);
        let (_, leaves1, sum1) = run_tree(&cfg_seq, 12, Some(3));

        let cfg = RuntimeConfig::clustered(4, 2);
        let nodes = cfg.topology.nodes();
        let cells = Arc::new(GlobalCells::with_job_blocks(1, nodes));
        let block = CellBlock::for_job(0, nodes);
        let world = World::leased_on(cfg.topology.clone(), cfg.latency, Arc::clone(&cells), block);
        cells.store(block.lease(), 2);
        // Pre-arm the counter so the grower cannot mistake the not-yet-
        // started run (reset leaves the counter at 0) for a finished one.
        cells.store_i64(block.outstanding(), 1);
        // Regrow the lease to the full width once the shrink handshake
        // confirms both out-of-lease workers parked; they must resume and
        // the totals must still be exact — no item lost or duplicated
        // across the park/unpark edge. The handshake makes the test
        // deterministic even on a single-core host: the regrow cannot
        // outrace the parks it asserts on. If the run terminates first,
        // the parked count drops back to 0 and the grower gives up.
        let grower = {
            let cells = Arc::clone(&cells);
            std::thread::spawn(move || loop {
                if cells.load_i64(block.parked()) >= 2 {
                    cells.store(block.lease(), 4);
                    return true;
                }
                if cells.load_i64(block.outstanding()) == 0 {
                    return false; // run ended before both parks were seen
                }
                std::thread::yield_now();
            })
        };
        let report = run_parallel_on(&world, &cfg, 2, &[vec![0u64, 1u64]], |_w| TreeProc {
            max_depth: 12,
            uniform_branch: Some(3),
            leaves: 0,
            checksum: 0,
        });
        grower.join().unwrap();
        let leaves: u64 = report.outputs.iter().map(|o| o.0).sum();
        let sum = report.outputs.iter().fold(0u64, |a, o| a.wrapping_add(o.1));
        assert_eq!(leaves, leaves1);
        assert_eq!(sum, sum1);
        let parks: u64 = report.workers.iter().map(|w| w.parks).sum();
        assert!(parks >= 2, "workers 2 and 3 parked before the regrow");
    }

    #[test]
    fn report_aggregations_are_consistent() {
        let cfg = RuntimeConfig::single_node(2);
        let (report, _, _) = run_tree(&cfg, 8, Some(3));
        let fr = report.state_fractions();
        let sum: f64 = fr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "state fractions sum to 1: {sum}");
        assert!(report.overhead_fraction() >= 0.0 && report.overhead_fraction() <= 1.0);
        assert!(report.items_per_sec() > 0.0);
    }
}
