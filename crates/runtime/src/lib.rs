//! The generic hierarchical work-stealing runtime of MaCS (paper §IV–V).
//!
//! The paper builds MaCS on the observation that "a dynamic and
//! asynchronous load balancing scheme … required by parallel tree search is
//! orthogonal to the problem at hand": the same pool + stealing machinery
//! drives both the constraint solver and the UTS benchmark. This crate *is*
//! that machinery, generic over the work item:
//!
//! * a [`Processor`] turns one fixed-size work item into zero or more child
//!   items (pushed through [`ProcCtx`]) — `macs-core` implements it with
//!   the CP propagate/split cycle, `macs-uts` with UTS node expansion;
//! * every worker owns a [`SplitPool`](macs_pool::SplitPool) in GPI global
//!   memory and runs the **restore procedure**: own private region → own
//!   shared region → **local steal** (greedy or max-steal victim selection)
//!   → **remote steal** (one-sided metadata scan, request mailbox, victim
//!   polling with a **dynamic polling interval**, in-place one-sided
//!   response, proxy fulfilment) → idle;
//! * termination is distributed and controller-free: a global
//!   outstanding-work counter reaches zero exactly when no work item exists
//!   anywhere, including in flight (see [`term`]);
//! * per-worker [`stats`] mirror the paper's worker-state taxonomy
//!   (Fig. 3/5) and steal accounting (Tables I/II).

pub mod affinity;
pub mod config;
pub mod processor;
pub mod rng;
pub mod run;
pub mod stats;
pub mod term;
pub mod worker;

pub use affinity::pin_current_thread;
pub use config::{
    BoundPolicy, ChunkPolicy, PollPolicy, ReleasePolicy, RuntimeConfig, SeedMode, VictimSelect,
};
pub use processor::{Incumbent, NoIncumbent, ProcCtx, Processor, Step, WorkSink};
pub use rng::SplitMix64;
pub use run::{run_parallel, run_parallel_on, RunReport};
pub use stats::{PhaseTimers, RaceRing, StateClock, WorkerState, WorkerStats, NUM_STATES};

pub use macs_gpi::{
    detect_machine, DetectedMachine, Interconnect, LatencyModel, MachineTopology, ScanOrder,
    StealHistogram, TopoError, Topology, VictimOrder, MAX_LEVELS,
};
