//! The MaCS worker: "the main and single entity" of the architecture
//! (paper §IV). There is no controller — each worker solves, balances load,
//! serves remote steal requests, and detects termination.

use std::cell::Cell;
use std::time::Instant;

use macs_gpi::{CellBlock, GlobalCells, Interconnect, ScanOrder, VictimOrder, World};
use macs_pool::{SplitPool, RESP_FAIL, RESP_PENDING};
use macs_search::{AdaptiveBatch, BoundPolicy, RefreshGate, WorkBatch};

use crate::config::{RuntimeConfig, VictimSelect};
use crate::processor::{Incumbent, ProcCtx, Processor, Step, WorkSink};
use crate::rng::SplitMix64;
use crate::stats::{RaceRing, WorkerState, WorkerStats};
use crate::term::TermHandle;

/// How often (in processed items) a node leader refreshes its node's
/// incumbent mirror from the root cell under the hierarchical policy. One
/// fabric read per node per cadence replaces one per *worker* per item —
/// the leveled GPI cell path.
const LEADER_REFRESH: u32 = 8;

/// Worker-local view of the global branch-and-bound incumbent, with a
/// cache refreshed according to the dissemination policy. The root
/// register lives on node 0: workers there read it locally, everyone else
/// pays the interconnect, which is what makes bound dissemination a
/// scalability concern (paper §VI).
///
/// Under [`BoundPolicy::Hierarchical`] the fabric read is hoisted to the
/// node-leader level of the broadcast tree
/// ([`macs_search::BroadcastTree`]): every node has a mirror register in
/// its own partition (`node_bound_cell`); submitters `fetch_min` both
/// their mirror (local) and the root (fabric), members read only the
/// mirror (local), and the node's leader — alone — refreshes the mirror
/// from the root every `LEADER_REFRESH` items. The pull cadence is the
/// threaded realisation of the leader exchange: identical staleness
/// semantics to a push relay, with no extra broadcaster thread.
pub struct GlobalIncumbent<'a> {
    cells: &'a GlobalCells,
    ic: &'a Interconnect,
    /// Does reaching the root register cross the fabric?
    remote: bool,
    policy: BoundPolicy,
    /// This run's root-incumbent register (job-block relative).
    root_cell: usize,
    /// This worker's node-mirror register (job-block relative, so
    /// co-scheduled jobs on one machine node never share a mirror).
    node_cell: usize,
    /// Node leaders own the mirror-refresh duty.
    leader: bool,
    cache: Cell<i64>,
    gate: RefreshGate,
}

impl<'a> GlobalIncumbent<'a> {
    pub fn new(
        cells: &'a GlobalCells,
        ic: &'a Interconnect,
        remote: bool,
        policy: BoundPolicy,
        block: CellBlock,
        node: usize,
        leader: bool,
    ) -> Self {
        GlobalIncumbent {
            cells,
            ic,
            remote,
            policy,
            root_cell: block.incumbent(),
            node_cell: block.node_bound(node),
            leader,
            cache: Cell::new(i64::MAX),
            gate: RefreshGate::new(),
        }
    }

    fn reload(&self) -> i64 {
        let v = if self.remote {
            self.cells.load_i64_remote(self.ic, self.root_cell)
        } else {
            self.cells.load_i64(self.root_cell)
        };
        self.cache.set(v);
        v
    }
}

impl Incumbent for GlobalIncumbent<'_> {
    fn get(&self) -> i64 {
        match self.policy {
            BoundPolicy::Immediate => self.reload(),
            BoundPolicy::Periodic { every } => {
                if self.gate.due(every) {
                    self.reload()
                } else {
                    self.cache.get()
                }
            }
            BoundPolicy::Hierarchical => {
                if self.leader && self.gate.due(LEADER_REFRESH) {
                    let root = self.reload();
                    self.cells.fetch_min_i64(self.node_cell, root);
                }
                // The mirror sits in this node's partition: a local read.
                let v = self.cells.load_i64(self.node_cell);
                v.min(self.cache.get())
            }
        }
    }

    fn submit(&self, value: i64) -> bool {
        if self.policy == BoundPolicy::Hierarchical {
            // Publish into the node mirror first (shared memory), so
            // co-located workers see it before the fabric round trip.
            self.cells.fetch_min_i64(self.node_cell, value);
        }
        let prev = if self.remote {
            self.cells
                .fetch_min_i64_remote(self.ic, self.root_cell, value)
        } else {
            self.cells.fetch_min_i64(self.root_cell, value)
        };
        self.cache.set(value.min(self.cache.get()));
        value < prev
    }
}

/// Sink plugged under [`ProcCtx`]: pushes children into the worker's own
/// pool (spilling to a local overflow stack when the ring is full) and
/// keeps the termination counter's increment-before-publish invariant.
struct PoolSink<'b, 'a> {
    pool: &'b SplitPool,
    overflow: &'b mut Vec<Box<[u64]>>,
    term: &'b mut TermHandle<'a>,
    world: &'b World,
    node: usize,
    remote: bool,
    pushes: &'b mut u64,
    spills: &'b mut u64,
    solutions: &'b mut u64,
}

impl WorkSink for PoolSink<'_, '_> {
    fn push(&mut self, item: &[u64]) {
        self.term.add(1); // count BEFORE the item becomes visible
        *self.pushes += 1;
        if !self.pool.push(item) {
            self.overflow.push(item.to_vec().into_boxed_slice());
            *self.spills += 1;
        }
    }

    fn solution(&mut self) {
        *self.solutions += 1;
    }

    /// Raise the winner flag (first-solution race). The win instant lands
    /// in [`CELL_WIN_NS`] *before* any flag becomes visible, so every
    /// observer of a raised flag also sees a win time; the earliest of
    /// concurrent winners survives the `fetch_min`. The flag then spreads
    /// like a hierarchical bound update: the winner's own node mirror is
    /// stamped directly (shared memory), the root flag pays one fabric
    /// write, and remote nodes learn of it when their leader next
    /// refreshes (see [`Worker::winner_raised`]).
    fn cancel(&mut self) {
        let cells = &self.world.cells;
        let block = self.world.block;
        if self.remote {
            cells.fetch_min_i64_remote(
                &self.world.interconnect,
                block.win_ns(),
                self.world.elapsed_ns(),
            );
        } else {
            cells.fetch_min_i64(block.win_ns(), self.world.elapsed_ns());
        }
        cells.store(block.node_cancel(self.node), 1);
        if self.remote {
            self.world.interconnect.charge_write(8);
        }
        cells.store(block.cancel(), 1);
    }
}

/// One worker thread's state.
pub(crate) struct Worker<'a, P: Processor> {
    id: usize,
    node: usize,
    cfg: &'a RuntimeConfig,
    world: &'a World,
    pools: &'a [SplitPool],
    my_pool: &'a SplitPool,
    processor: P,
    stats: WorkerStats,
    rng: SplitMix64,
    term: TermHandle<'a>,
    incumbent: GlobalIncumbent<'a>,
    /// The item being processed (slot_words long).
    current: Vec<u64>,
    /// Local-memory spill stack for ring overflow (items here are already
    /// counted as outstanding but invisible to thieves).
    overflow: Vec<Box<[u64]>>,
    /// Flat buffer for assembling remote steal responses.
    steal_flat: Vec<u64>,
    slot_words: usize,
    since_release: u32,
    since_poll: u32,
    poll_interval: u32,
    /// Local victim rings, nearest level first (each excludes `id`). A
    /// flat scan collapses them into a single ring of all co-located
    /// peers.
    local_rings: Vec<Vec<usize>>,
    /// Remote victim *nodes* by distance ring, nearest first (flat scan:
    /// one ring of every other node).
    node_rings: Vec<Vec<usize>>,
    /// Last-successful-steal affinity per distance ring.
    victim_order: VictimOrder,
    /// This node's cancel/winner mirror register.
    cancel_mirror: usize,
    /// Node leaders own the winner-mirror refresh duty (same leader as
    /// the bound mirror's).
    leader: bool,
    /// Reaching the root registers crosses the fabric.
    remote: bool,
    /// Items processed since the leader last refreshed the winner mirror
    /// from the root flag.
    since_winner_refresh: u32,
    /// Set once this worker has observed a raised winner flag.
    observed_win: bool,
    /// Recent item-start instants for `nodes_after_win` accounting.
    race_ring: RaceRing,
    /// Response-batch tuner for [`macs_search::ChunkPolicy::Adaptive`]:
    /// tracks this worker's own served-reply thinness.
    adaptive: AdaptiveBatch,
}

impl<'a, P: Processor> Worker<'a, P> {
    pub fn new(
        id: usize,
        cfg: &'a RuntimeConfig,
        world: &'a World,
        pools: &'a [SplitPool],
        processor: P,
    ) -> Self {
        let topo = &world.topology;
        let node = topo.node_of(id);
        let remote_from_zero = node != 0;
        let slot_words = pools[id].slot_words();
        // Distance-aware: one local ring per intra-node level (socket
        // before node …) and remote nodes grouped by how many levels a
        // steal crosses. Flat: the original one-ring-each scan.
        let (local_rings, node_rings) = cfg.scan_order.victim_rings(topo, id);
        let victim_order = VictimOrder::new(topo, id);
        let leader = id == topo.peers_of(id).start;
        Worker {
            id,
            node,
            cfg,
            world,
            pools,
            my_pool: &pools[id],
            processor,
            stats: WorkerStats::new(id, node),
            rng: SplitMix64::for_worker(cfg.seed, id),
            term: TermHandle::new_at(
                &world.cells,
                &world.interconnect,
                cfg.charge_termination && remote_from_zero,
                cfg.term_flush_batch,
                world.block.outstanding(),
            ),
            incumbent: GlobalIncumbent::new(
                &world.cells,
                &world.interconnect,
                remote_from_zero,
                cfg.bound_policy,
                world.block,
                node,
                leader,
            ),
            current: vec![0u64; slot_words],
            overflow: Vec::new(),
            steal_flat: Vec::new(),
            slot_words,
            since_release: 0,
            since_poll: 0,
            poll_interval: cfg.poll.initial(),
            local_rings,
            node_rings,
            victim_order,
            cancel_mirror: world.block.node_cancel(node),
            leader,
            remote: remote_from_zero,
            since_winner_refresh: 0,
            observed_win: false,
            race_ring: RaceRing::new(),
            adaptive: AdaptiveBatch::starting_at(cfg.response_batch),
        }
    }

    /// The per-steal reservation cap for a victim/thief pair `distance`
    /// levels apart — the chunk policy's decision point.
    fn chunk_cap(&self, distance: usize) -> u64 {
        self.cfg.chunk_policy.cap_for(
            distance,
            self.world.topology.levels(),
            self.cfg.max_steal_chunk,
        )
    }

    // ----- worker-set leases (multi-tenant service runs) --------------------

    /// The job's current lease width in workers (`u64::MAX` when this
    /// world is not leased — every worker is always in-lease). A local
    /// load: the lease register sits in the job's own cell block.
    #[inline]
    fn lease_width(&self) -> u64 {
        if self.world.leased {
            self.world.cells.load(self.world.block.lease())
        } else {
            u64::MAX
        }
    }

    /// Is this worker parked — outside the job's current lease?
    #[inline]
    fn lease_parked(&self) -> bool {
        self.world.leased && (self.id as u64) >= self.world.cells.load(self.world.block.lease())
    }

    /// How many shared items worker `w`'s pool must retain under lease
    /// width `lease`. In-lease victims keep one item (the PR-5 retention
    /// clamp, so a granted steal never idles the victim); a parked victim
    /// retains nothing — it will not process work anyway, and waiving the
    /// clamp is what lets active workers drain a shrunken lease's pools
    /// down to the last item instead of deadlocking on it.
    #[inline]
    fn retained(w: usize, lease: u64) -> u64 {
        u64::from((w as u64) < lease)
    }

    /// Parked: publish everything we hold, serve thieves, and wait until
    /// the lease grows back over our id (`true`) or the job terminates
    /// (`false`). The pool keeps draining monotonically — overflow spill
    /// re-enters the ring as thieves free slots, and every private item
    /// is released — so parked work is always visible to active workers.
    fn park_until_leased(&mut self) -> bool {
        self.stats.parks += 1;
        // Announce the park: the scheduler's shrink handshake watches this
        // register to learn when every out-of-lease worker has actually
        // stopped (pool published, processing ceased).
        self.world.cells.fetch_add_i64(self.world.block.parked(), 1);
        let resumed = self.park_wait();
        self.world
            .cells
            .fetch_add_i64(self.world.block.parked(), -1);
        resumed
    }

    fn park_wait(&mut self) -> bool {
        let mut idle_rounds: u32 = 0;
        loop {
            self.stats.clock.set(WorkerState::Releasing);
            while !self.overflow.is_empty() {
                if self.my_pool.push(self.overflow.last().unwrap()) {
                    self.overflow.pop();
                } else {
                    break;
                }
            }
            let private = self.my_pool.private_len();
            if private > 0 {
                self.stats.releases += 1;
                self.stats.released_items += self.my_pool.release(private);
            }
            self.stats.clock.set(WorkerState::Idle);
            self.term.flush();
            if self.term.finished() {
                return false;
            }
            self.serve_request();
            if !self.lease_parked() {
                return true;
            }
            self.stats.clock.set(WorkerState::Idle);
            Self::backoff(idle_rounds);
            idle_rounds = idle_rounds.saturating_add(1);
        }
    }

    /// The worker main loop (paper §IV: propagate/split under `process`,
    /// plus release, poll and restore around it).
    pub fn run(mut self) -> (WorkerStats, P::Output) {
        self.stats.clock.set(WorkerState::Barrier);
        self.world.barrier.wait();

        let mut have = self.acquire_local();
        loop {
            if !have && !self.restore() {
                break; // global termination
            }
            if self.lease_parked() {
                // The lease shrank below our id. Hand the in-hand item
                // back (it is already counted outstanding, so a plain
                // push keeps the termination invariant — an active worker
                // will steal and finish it), publish the pool, and serve
                // thieves until regrown or terminated. At this point
                // `current` always holds an item: either `have` was true
                // or `restore` just acquired one.
                if !self.my_pool.push(&self.current) {
                    self.overflow.push(self.current.clone().into_boxed_slice());
                    self.stats.overflow_spills += 1;
                }
                have = false;
                if self.park_until_leased() {
                    continue;
                }
                break; // the job terminated while we were parked
            }
            if self.winner_raised() {
                // Cooperative cancellation: discard the item in hand and
                // everything in the local pool; termination follows once
                // every worker has drained.
                self.on_win_observed();
                self.term.finish_one();
                self.stats.abandoned_items += 1;
                while self.acquire_local() {
                    self.term.finish_one();
                    self.stats.abandoned_items += 1;
                }
                have = false;
                continue;
            }
            have = self.process_current();

            self.since_release += 1;
            if self.since_release >= self.cfg.release.interval {
                self.since_release = 0;
                self.maybe_release();
            }
            self.since_poll += 1;
            if self.since_poll >= self.poll_interval {
                self.since_poll = 0;
                self.poll();
            }
        }

        // Someone may have posted a request just before we observed
        // termination: refuse it so no thief waits on a dead victim.
        self.serve_request();
        self.stats.clock.set(WorkerState::Barrier);
        self.world.barrier.wait();
        self.stats.clock.finish();
        (self.stats, self.processor.finish())
    }

    // ----- winner flag (first-solution races) -------------------------------

    /// Has somebody won? In a race, workers poll their *node's* mirror
    /// (a local load); only the node leader — every [`LEADER_REFRESH`]
    /// checks — pays a fabric read of the root flag and refreshes the
    /// mirror, the same leveled route a hierarchical bound update takes.
    /// Exhaustive runs keep the original flat, uncharged poll of the
    /// root flag (generic processors may still cancel), so they pay
    /// nothing for machinery they never use.
    fn winner_raised(&mut self) -> bool {
        if self.observed_win {
            return true;
        }
        if !self.cfg.mode.is_race() {
            return self.world.cells.load(self.world.block.cancel()) != 0;
        }
        if self.world.cells.load(self.cancel_mirror) != 0 {
            return true;
        }
        if self.leader {
            self.since_winner_refresh += 1;
            if self.since_winner_refresh >= LEADER_REFRESH {
                self.since_winner_refresh = 0;
                if self.remote {
                    self.world.interconnect.charge_read(8);
                }
                if self.world.cells.load(self.world.block.cancel()) != 0 {
                    self.world.cells.store(self.cancel_mirror, 1);
                    return true;
                }
            }
        }
        false
    }

    /// First observation of a raised winner flag: settle the
    /// `nodes_after_win` account — every recent item *started* after the
    /// recorded win instant ran only because the flag had not reached this
    /// worker yet.
    fn on_win_observed(&mut self) {
        if self.observed_win {
            return;
        }
        self.observed_win = true;
        let win_ns = if self.remote {
            self.world
                .cells
                .load_i64_remote(&self.world.interconnect, self.world.block.win_ns())
        } else {
            self.world.cells.load_i64(self.world.block.win_ns())
        };
        self.stats.nodes_after_win = self.race_ring.count_after(win_ns);
    }

    // ----- inner cycle ------------------------------------------------------

    fn process_current(&mut self) -> bool {
        self.stats.clock.set(WorkerState::Working);
        if self.cfg.mode.is_race() {
            self.race_ring.record(self.world.elapsed_ns());
        }
        let mut current = std::mem::take(&mut self.current);
        let step = {
            let mut sink = PoolSink {
                pool: self.my_pool,
                overflow: &mut self.overflow,
                term: &mut self.term,
                world: self.world,
                node: self.node,
                remote: self.remote,
                pushes: &mut self.stats.pushes,
                spills: &mut self.stats.overflow_spills,
                solutions: &mut self.stats.solutions,
            };
            let mut ctx = ProcCtx {
                worker_id: self.id,
                node_id: self.node,
                phase: &mut self.stats.phase,
                incumbent: &self.incumbent,
                sink: &mut sink,
            };
            self.processor.process(&mut current, &mut ctx)
        };
        self.current = current;
        self.stats.items += 1;
        match step {
            Step::Leaf => {
                self.term.finish_one();
                false
            }
            Step::Continue => true,
        }
    }

    /// Publish private work into the shared region when it runs low — the
    /// *release* operation whose frequency the paper tunes.
    fn maybe_release(&mut self) {
        // Drain overflow spill back into the ring first, if space opened up.
        while !self.overflow.is_empty() {
            let ok = self.my_pool.push(self.overflow.last().unwrap());
            if ok {
                self.overflow.pop();
            } else {
                break;
            }
        }
        let private = self.my_pool.private_len();
        let shared = self.my_pool.shared_len();
        let pol = &self.cfg.release;
        if private > pol.min_private && shared < pol.share_target {
            self.stats.clock.set(WorkerState::Releasing);
            let k = ((private - pol.min_private) / 2).max(1);
            let m = self.my_pool.release(k);
            self.stats.releases += 1;
            self.stats.released_items += m;
        }
    }

    /// Check the request mailbox, adapting the dynamic polling interval.
    fn poll(&mut self) {
        let hit = self.my_pool.pending_request().is_some();
        if hit {
            self.serve_request();
        } else {
            self.stats.clock.set(WorkerState::Poll);
            self.stats.polls += 1;
        }
        self.poll_interval = self.cfg.poll.next(self.poll_interval, hit);
    }

    // ----- the restore procedure (§V) ---------------------------------------

    /// Obtain a new work item by any means; `false` means the whole
    /// computation terminated.
    fn restore(&mut self) -> bool {
        self.stats.clock.set(WorkerState::Searching);
        if !self.lease_parked() && self.acquire_local() {
            return true;
        }
        let mut idle_rounds: u32 = 0;
        loop {
            // A raced run that is already won has nothing left to steal
            // for: stop raiding other pools (their owners will discard
            // that work anyway) and just drain towards termination. The
            // check also keeps idle node leaders refreshing the winner
            // mirror for their busy peers. A parked worker likewise stops
            // raiding — work it stole would sit unprocessed in an
            // out-of-lease pool — and waits out the lease instead.
            if self.lease_parked() {
                if !self.park_until_leased() {
                    return false;
                }
            } else if self.winner_raised() {
                self.on_win_observed();
            } else {
                // Local steal from a co-located worker.
                if self.try_local_steal() {
                    return true;
                }
                // Remote steal from another node.
                if self.world.topology.nodes() > 1 {
                    match self.try_remote_steal() {
                        RemoteOutcome::Got => return true,
                        RemoteOutcome::Nothing => {}
                        RemoteOutcome::Terminated => return false,
                    }
                }
            }
            // Idle: flush, check termination, serve requests, back off.
            self.stats.clock.set(WorkerState::Idle);
            self.term.flush();
            if self.term.finished() {
                return false;
            }
            self.serve_request();
            self.stats.clock.set(WorkerState::Idle);
            Self::backoff(idle_rounds);
            idle_rounds = idle_rounds.saturating_add(1);
            self.stats.clock.set(WorkerState::Searching);
            if !self.lease_parked() && self.acquire_local() {
                return true;
            }
        }
    }

    /// Pop from the overflow stack, the private region, or (after a
    /// reacquire) the own shared region.
    fn acquire_local(&mut self) -> bool {
        if let Some(item) = self.overflow.pop() {
            self.current.copy_from_slice(&item);
            return true;
        }
        if self.my_pool.pop_private(&mut self.current) {
            return true;
        }
        if self.my_pool.shared_len() > 0 {
            self.my_pool.reacquire(self.cfg.max_steal_chunk);
            if self.my_pool.pop_private(&mut self.current) {
                return true;
            }
        }
        false
    }

    fn try_local_steal(&mut self) -> bool {
        if self.local_rings.iter().all(|r| r.is_empty()) {
            return false;
        }
        self.stats.clock.set(WorkerState::Searching);
        // Walk the rings nearest level first (affinity victim ahead of its
        // ring); within a ring apply the configured selection heuristic.
        // The surplus estimate discounts the item the victim must retain:
        // a pool with a single shared item can never be granted from, so
        // scanning it would only buy a failed steal. Parked victims
        // (outside the current lease) retain nothing — their last item is
        // fair game, or a shrunken lease could never drain.
        let lease = self.lease_width();
        let pools = self.pools;
        let rng = &mut self.rng;
        let victim = match self.cfg.victim_select {
            VictimSelect::Greedy => {
                // First victim with visible surplus, scanning each ring
                // from a random start to avoid convoys.
                self.victim_order.pick_first(
                    &self.local_rings,
                    |n| rng.below_usize(n),
                    |w| {
                        pools[w]
                            .shared_len()
                            .saturating_sub(Self::retained(w, lease))
                    },
                )
            }
            VictimSelect::MaxSteal => {
                // Inspect every candidate of the nearest non-empty ring,
                // pick the largest shared region.
                self.victim_order.pick_max(&self.local_rings, |w| {
                    pools[w]
                        .shared_len()
                        .saturating_sub(Self::retained(w, lease))
                })
            }
        };
        let Some((v, _)) = victim else {
            return false;
        };

        self.stats.clock.set(WorkerState::Stealing);
        let shared = self.pools[v].shared_len();
        let cap = self.chunk_cap(self.world.topology.distance(self.id, v));
        let want = WorkBatch::share_ceil(shared, cap);
        let current = &mut self.current;
        let overflow = &mut self.overflow;
        let my_pool = self.my_pool;
        let mut first = true;
        let n = self.pools[v].steal(want, |item| {
            if first {
                current.copy_from_slice(item);
                first = false;
            } else if !my_pool.push(item) {
                overflow.push(item.to_vec().into_boxed_slice());
            }
        });
        if n > 0 {
            if self.winner_raised() {
                // The winner flag was raised while we picked and locked
                // the victim: the run loop discards these items as
                // abandoned, so the steal lands in the drain bucket —
                // the same exclusion every other steal path applies.
                self.stats.drain_steals += 1;
            } else {
                self.stats.local_steals += 1;
                self.stats.local_steal_items += n;
                self.record_steal_outcome(v, true);
            }
            true
        } else {
            // The victim looked loaded but the lock-time check found
            // nothing: a failed (local) steal.
            self.stats.local_steal_failures += 1;
            self.record_steal_outcome(v, false);
            false
        }
    }

    /// Update the distance histogram and the per-ring affinity. The flat
    /// scan keeps no affinity — it is the pre-topology baseline.
    fn record_steal_outcome(&mut self, victim: usize, success: bool) {
        let topo = &self.world.topology;
        if success {
            self.stats
                .steals_by_distance
                .record(topo.distance(self.id, victim));
        }
        if self.cfg.scan_order == ScanOrder::DistanceAware {
            if success {
                self.victim_order.record_success(topo, victim);
            } else {
                self.victim_order.record_failure(topo, victim);
            }
        }
    }

    fn try_remote_steal(&mut self) -> RemoteOutcome {
        let topo = &self.world.topology;
        let ic = &self.world.interconnect;
        self.stats.clock.set(WorkerState::SearchingRemote);

        // Find a victim: read the pool state of whole remote nodes
        // one-sidedly and pick the worker with the largest surplus — "the
        // request is only sent to a worker that has a surplus of work".
        // Node rings are walked nearest level first, so a same-cluster
        // node is probed before a cross-cluster one; within a ring the
        // node that last yielded work (affinity) is probed first, then
        // random candidates.
        let mut victim: Option<usize> = None;
        'rings: for (ri, ring) in self.node_rings.iter().enumerate() {
            if ring.is_empty() {
                continue;
            }
            let ring_d = topo.local_distance_max() + 1 + ri;
            let attempts = self.cfg.remote_node_attempts.max(1) as usize;
            let rot = self.rng.below_usize(ring.len());
            for cand_node in self
                .victim_order
                .node_probe_order(topo, ring, ring_d, rot)
                .take(attempts)
            {
                let mut best: Option<(u64, usize)> = None;
                let lease = self.lease_width();
                for w in topo.workers_on(cand_node) {
                    let meta = self.pools[w].meta_remote(ic);
                    // Skip pools with a pending request (mailbox busy) and
                    // pools with a single shared item — the retention
                    // clamp makes them unservable, so posting there buys a
                    // guaranteed-refused round trip. A parked victim
                    // retains nothing, so even its last item is worth the
                    // request.
                    if meta.req == 0 {
                        let s = meta.shared_len();
                        if s > Self::retained(w, lease) && best.map(|(b, _)| s > b).unwrap_or(true)
                        {
                            best = Some((s, w));
                        }
                    }
                }
                if let Some((_, w)) = best {
                    victim = Some(w);
                    break 'rings;
                }
            }
        }
        let Some(v) = victim else {
            return RemoteOutcome::Nothing;
        };

        // Claim the victim's mailbox.
        self.stats.clock.set(WorkerState::FindRemote);
        self.my_pool.reset_response();
        let t0 = Instant::now();
        if !self.pools[v].try_post_request_remote(ic, self.id) {
            return RemoteOutcome::Nothing; // another thief got there first
        }

        // Wait for the victim's (possibly proxied) answer.
        self.stats.clock.set(WorkerState::WaitRemote);
        loop {
            match self.my_pool.response() {
                RESP_PENDING => {
                    // Serve our own mailbox while waiting (avoids mutual
                    // thief/victim waits) and abandon on termination.
                    if self.my_pool.pending_request().is_some() {
                        self.serve_request();
                        self.stats.clock.set(WorkerState::WaitRemote);
                    }
                    self.term.flush();
                    if self.term.finished() {
                        return RemoteOutcome::Terminated;
                    }
                    std::hint::spin_loop();
                }
                RESP_FAIL => {
                    self.my_pool.reset_response();
                    self.stats.remote_steal_failures += 1;
                    self.record_steal_outcome(v, false);
                    return RemoteOutcome::Nothing;
                }
                n => {
                    // Items were written in place at our head; the fabric
                    // cannot deliver them faster than one round trip.
                    ic.enforce_rtt_floor(t0, n as usize * self.slot_words * 8);
                    self.my_pool.reset_response();
                    self.my_pool.adopt_written(n);
                    if self.winner_raised() {
                        // The reply raced the winner flag and lost: the
                        // run loop discards these items as abandoned, so
                        // counting the steal as *successful* would inflate
                        // the histogram and items-per-remote-steal. It
                        // lands in the separate drain bucket instead.
                        self.stats.drain_steals += 1;
                    } else {
                        self.stats.remote_steals += 1;
                        self.stats.remote_steal_items += n;
                        self.record_steal_outcome(v, true);
                    }
                    let got = self.my_pool.pop_private(&mut self.current);
                    debug_assert!(got, "adopted items must be poppable");
                    return RemoteOutcome::Got;
                }
            }
        }
    }

    // ----- victim side -------------------------------------------------------

    /// Serve a pending remote steal request, if any: reserve work from our
    /// shared region and — up to `response_batch` chunks — from co-located
    /// workers' regions too, write everything in place into the thief's
    /// pool and notify once. Batching several victims' chunks into the one
    /// response amortises the thief's round-trip (the RTT floor is paid
    /// per response, not per chunk). Refuse with `RESP_FAIL` when nothing
    /// can be found anywhere on the node.
    fn serve_request(&mut self) {
        let Some(thief) = self.my_pool.pending_request() else {
            return;
        };
        self.stats.clock.set(WorkerState::Poll);
        self.stats.polls += 1;
        debug_assert_ne!(thief, self.id);
        let ic = &self.world.interconnect;
        let thief_pool = &self.pools[thief];

        // How many slots the thief can accept at its head. One response
        // carries at most the chunk policy's per-steal cap — static, or
        // scaled by the thief's topological distance (a far thief's
        // expensive round trip carries a proportionally bigger
        // reservation) — but up to `response_batch` co-located pools may
        // contribute chunks to fill it: a reply assembled from several
        // small surpluses instead of one thin (or failed) chunk, so the
        // thief's round trip delivers full value. Under the adaptive
        // policy the batch ceiling follows this worker's own reply
        // thinness instead of the static knob.
        let tm = thief_pool.meta_remote(ic);
        let free = thief_pool.capacity() as u64 - (tm.head - tm.tail);
        let cap = self.chunk_cap(self.world.topology.distance(self.id, thief));
        let max_chunks = if self.cfg.chunk_policy.is_adaptive() {
            self.adaptive.batch() as u64
        } else {
            self.cfg.response_batch.max(1) as u64
        };
        let reply_cap = free.min(cap);
        let mut budget = reply_cap;
        let lease = self.lease_width();

        self.steal_flat.clear();
        let flat = &mut self.steal_flat;
        let mut chunks: u64 = 0;
        let mut served_by_proxy = false;
        let mut n = 0u64;

        // Chunk 1: our own shared region (shrinking it from the tail, as
        // the paper describes the reservation). A parked server gives its
        // whole region away — it is not coming back for it.
        if budget > 0 {
            let shared = self.my_pool.shared_len();
            let own_half = if Self::retained(self.id, lease) == 0 {
                shared.min(budget)
            } else {
                WorkBatch::share_ceil(shared, budget)
            };
            let got = self
                .my_pool
                .steal(own_half, |item| flat.extend_from_slice(item));
            if got > 0 {
                chunks += 1;
                n += got;
                budget -= got;
            }
        }

        // Further chunks: proxy fulfilment from co-located workers with
        // surplus, largest first, one chunk each — but only while the
        // reply is *thin* (under `WorkBatch::thin_threshold`, which never
        // exceeds the cap). A healthy single-pool chunk ships as-is; a
        // dribble of a reply, which would send the thief straight back
        // into another round trip, gets topped up from the node's other
        // pools. With `response_batch` = 1 this runs only when our own
        // region was empty — the original single-chunk proxy behaviour.
        // The gate stays anchored to the *static* cap even when the
        // chunk policy grants a far thief a bigger reservation: scaling
        // the gate with the cap over-exports from the serving node, and
        // the drained pools' owners then turn remote themselves
        // (measured in `chunk_ablation` — the same failure mode PR-2
        // found for aggressive batching).
        let gate_cap = reply_cap.min(self.cfg.max_steal_chunk);
        let top_up_below = WorkBatch::thin_threshold(gate_cap);
        let mut taken: Vec<usize> = Vec::new();
        while budget > 0 && (n == 0 || (n < top_up_below && chunks < max_chunks)) {
            let peers = self.world.topology.peers_of(self.id);
            let cand = peers
                .filter(|&w| w != self.id && w != thief && !taken.contains(&w))
                .map(|w| (self.pools[w].shared_len(), w))
                // A lone shared item cannot be granted from an in-lease
                // pool (retention) but drains freely from a parked one.
                .filter(|&(s, w)| s > Self::retained(w, lease))
                .max();
            let Some((shared, w)) = cand else {
                break;
            };
            taken.push(w);
            let half = if Self::retained(w, lease) == 0 {
                shared.min(budget)
            } else {
                WorkBatch::share_ceil(shared, budget)
            };
            let got = self.pools[w].steal(half, |item| flat.extend_from_slice(item));
            if got > 0 {
                chunks += 1;
                n += got;
                budget -= got;
                served_by_proxy = true;
            }
        }

        if n > 0 {
            thief_pool.write_slots_remote(ic, tm.head, &self.steal_flat);
            thief_pool.write_response_remote(ic, n);
            if self.cfg.chunk_policy.is_adaptive() {
                self.adaptive.observe(n, gate_cap);
            }
            self.stats.requests_served += 1;
            self.stats.response_chunks += chunks;
            if chunks > 1 {
                self.stats.batched_responses += 1;
            }
            if served_by_proxy {
                self.stats.proxy_serves += 1;
            }
        } else {
            thief_pool.write_response_remote(ic, RESP_FAIL);
            self.stats.requests_refused += 1;
        }
        self.my_pool.clear_request();
    }

    fn backoff(round: u32) {
        if round < 8 {
            for _ in 0..(1u32 << round.min(6)) {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
    }
}

enum RemoteOutcome {
    Got,
    Nothing,
    Terminated,
}
