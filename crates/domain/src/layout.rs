//! Fixed memory layout of a store for a given problem.

use crate::{bits, Val, VarId};

/// Number of 64-bit header words at the front of every store.
///
/// * word 0 — search depth (low 32 bits) and the variable branched on to
///   create this store, plus one (high 32 bits; 0 = root / none);
/// * word 1 — the objective bound known when the store was created
///   (`i64::MAX` for satisfaction problems), as a two's-complement `u64`;
/// * word 2 — node serial number (diagnostics / tracing only);
/// * word 3 — reserved (must be zero).
pub const HEADER_WORDS: usize = 4;

/// The compile-time shape of every store of a problem: how many variables,
/// how wide each bitmap cell is, and where each cell lives.
///
/// All stores of a problem share one layout, so a store is just
/// `layout.store_words()` contiguous `u64`s — the fixed-size, relocatable
/// unit of work the paper builds its pools and one-sided transfers around.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreLayout {
    num_vars: usize,
    max_value: Val,
    words_per_var: usize,
}

impl StoreLayout {
    /// Layout for `num_vars` variables over values `0..=max_value`.
    ///
    /// # Panics
    /// Panics if `num_vars` is zero.
    pub fn new(num_vars: usize, max_value: Val) -> Self {
        assert!(num_vars > 0, "a problem needs at least one variable");
        StoreLayout {
            num_vars,
            max_value,
            words_per_var: bits::words_for(max_value),
        }
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Largest representable value (domains are subsets of `0..=max_value`).
    #[inline]
    pub fn max_value(&self) -> Val {
        self.max_value
    }

    /// Width of one domain cell in 64-bit words.
    #[inline]
    pub fn words_per_var(&self) -> usize {
        self.words_per_var
    }

    /// Total store size in 64-bit words (header + all cells).
    #[inline]
    pub fn store_words(&self) -> usize {
        HEADER_WORDS + self.num_vars * self.words_per_var
    }

    /// Total store size in bytes (the paper quotes stores in bytes, e.g.
    /// 136 bytes for 17-queens domains).
    #[inline]
    pub fn store_bytes(&self) -> usize {
        self.store_words() * 8
    }

    /// Size in bytes of the domain cells only (excluding our header); this
    /// matches the paper's accounting of store size.
    #[inline]
    pub fn cells_bytes(&self) -> usize {
        self.num_vars * self.words_per_var * 8
    }

    /// Word offset of variable `v`'s cell.
    #[inline]
    pub fn var_offset(&self, v: VarId) -> usize {
        debug_assert!(v < self.num_vars);
        HEADER_WORDS + v * self.words_per_var
    }

    /// Word range of variable `v`'s cell.
    #[inline]
    pub fn var_range(&self, v: VarId) -> core::ops::Range<usize> {
        let o = self.var_offset(v);
        o..o + self.words_per_var
    }

    /// Word range of the whole cell region (every domain, no header).
    ///
    /// The cells are laid out variable-major in one contiguous slab, so
    /// word-parallel passes (first-fail scans, assignment counting) can
    /// walk this range linearly instead of slicing per variable — the
    /// cache-friendly access pattern the store representation exists for.
    #[inline]
    pub fn cells_range(&self) -> core::ops::Range<usize> {
        HEADER_WORDS..self.store_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_queens_store_is_136_bytes_of_cells() {
        // The paper: "17 variables which represents a store size of 136
        // bytes" — 17 cells of one 64-bit word each (values 0..16).
        let l = StoreLayout::new(17, 16);
        assert_eq!(l.words_per_var(), 1);
        assert_eq!(l.cells_bytes(), 136);
        assert_eq!(l.store_words(), HEADER_WORDS + 17);
    }

    #[test]
    fn offsets_are_contiguous() {
        let l = StoreLayout::new(5, 100);
        assert_eq!(l.words_per_var(), 2);
        assert_eq!(l.var_offset(0), HEADER_WORDS);
        assert_eq!(l.var_offset(4), HEADER_WORDS + 8);
        assert_eq!(l.var_range(1), HEADER_WORDS + 2..HEADER_WORDS + 4);
        assert_eq!(l.store_words(), HEADER_WORDS + 10);
    }

    #[test]
    #[should_panic]
    fn zero_vars_rejected() {
        let _ = StoreLayout::new(0, 3);
    }
}
