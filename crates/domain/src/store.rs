//! The store: a self-contained, relocatable unit of work.

use crate::{bits, StoreLayout, Val, VarId};

/// Objective bound stored in satisfaction stores ("no bound yet").
pub const NO_BOUND: i64 = i64::MAX;

/// Branch variable recorded in a raw store header (word 0, high 32 bits;
/// 0 = none). Reads the header straight from a pool slot or work buffer —
/// the hot search loop uses this instead of reconstituting a [`Store`]
/// (which would heap-copy every word just to inspect one).
#[inline]
pub fn branch_var_of(words: &[u64]) -> Option<VarId> {
    let hi = (words[0] >> 32) as u32;
    if hi == 0 {
        None
    } else {
        Some(hi as usize - 1)
    }
}

/// A store holds the complete solver state of one search-tree node: the
/// domain of every variable plus a small header (depth, last branch
/// variable, objective bound at creation).
///
/// It is a flat `Box<[u64]>` and carries no pointers, so it can be copied
/// into a work-pool slot, written one-sided into a remote pool, or cloned,
/// by a plain word copy. Interpretation of the words requires the problem's
/// [`StoreLayout`], which every accessor takes by reference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Store {
    words: Box<[u64]>,
}

impl Store {
    /// A root store: every variable gets the full domain `0..=max_value`,
    /// depth 0, no branch variable, no bound.
    pub fn root(layout: &StoreLayout) -> Self {
        let mut words = vec![0u64; layout.store_words()].into_boxed_slice();
        for v in 0..layout.num_vars() {
            bits::fill_full(&mut words[layout.var_range(v)], layout.max_value());
        }
        let mut s = Store { words };
        s.set_bound(NO_BOUND);
        s
    }

    /// Reconstitute a store from raw words (e.g. a pool slot).
    ///
    /// # Panics
    /// Panics if the slice length does not match the layout.
    pub fn from_words(layout: &StoreLayout, words: &[u64]) -> Self {
        assert_eq!(words.len(), layout.store_words(), "store size mismatch");
        Store {
            words: words.to_vec().into_boxed_slice(),
        }
    }

    /// The raw words (header + cells), ready for a word copy into a slot.
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable raw words.
    #[inline]
    pub fn as_words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Overwrite this store from raw words of the same layout.
    #[inline]
    pub fn copy_from_words(&mut self, words: &[u64]) {
        self.words.copy_from_slice(words);
    }

    // ----- header ---------------------------------------------------------

    /// Search depth (number of branching decisions above this node).
    #[inline]
    pub fn depth(&self) -> u32 {
        (self.words[0] & 0xffff_ffff) as u32
    }

    #[inline]
    pub fn set_depth(&mut self, d: u32) {
        self.words[0] = (self.words[0] & !0xffff_ffff) | d as u64;
    }

    /// The variable branched on to create this store, if any.
    #[inline]
    pub fn branch_var(&self) -> Option<VarId> {
        let hi = (self.words[0] >> 32) as u32;
        if hi == 0 {
            None
        } else {
            Some(hi as usize - 1)
        }
    }

    #[inline]
    pub fn set_branch_var(&mut self, v: Option<VarId>) {
        let hi = v.map(|x| x as u64 + 1).unwrap_or(0);
        self.words[0] = (self.words[0] & 0xffff_ffff) | (hi << 32);
    }

    /// Objective bound known when this store was created (`NO_BOUND` when
    /// solving a satisfaction problem).
    #[inline]
    pub fn bound(&self) -> i64 {
        self.words[1] as i64
    }

    #[inline]
    pub fn set_bound(&mut self, b: i64) {
        self.words[1] = b as u64;
    }

    /// Diagnostic serial number.
    #[inline]
    pub fn serial(&self) -> u64 {
        self.words[2]
    }

    #[inline]
    pub fn set_serial(&mut self, s: u64) {
        self.words[2] = s;
    }

    // ----- cells ----------------------------------------------------------

    /// Domain bitmap of variable `v`.
    #[inline]
    pub fn dom<'a>(&'a self, layout: &StoreLayout, v: VarId) -> &'a [u64] {
        &self.words[layout.var_range(v)]
    }

    /// Mutable domain bitmap of variable `v`.
    #[inline]
    pub fn dom_mut<'a>(&'a mut self, layout: &StoreLayout, v: VarId) -> &'a mut [u64] {
        &mut self.words[layout.var_range(v)]
    }

    /// Value of `v` if assigned (singleton domain).
    #[inline]
    pub fn value(&self, layout: &StoreLayout, v: VarId) -> Option<Val> {
        bits::singleton(self.dom(layout, v))
    }

    /// Is every variable assigned?
    pub fn all_assigned(&self, layout: &StoreLayout) -> bool {
        (0..layout.num_vars()).all(|v| bits::is_singleton(self.dom(layout, v)))
    }

    /// Number of assigned variables.
    pub fn assigned_count(&self, layout: &StoreLayout) -> usize {
        (0..layout.num_vars())
            .filter(|&v| bits::is_singleton(self.dom(layout, v)))
            .count()
    }

    /// First variable (in index order) whose domain is not a singleton.
    pub fn first_unassigned(&self, layout: &StoreLayout) -> Option<VarId> {
        (0..layout.num_vars()).find(|&v| !bits::is_singleton(self.dom(layout, v)))
    }

    /// Is any domain empty (the store is failed)?
    pub fn any_empty(&self, layout: &StoreLayout) -> bool {
        (0..layout.num_vars()).any(|v| bits::is_empty(self.dom(layout, v)))
    }

    /// Extract the full assignment; `None` unless all variables are
    /// assigned.
    pub fn assignment(&self, layout: &StoreLayout) -> Option<Vec<Val>> {
        let mut out = Vec::with_capacity(layout.num_vars());
        for v in 0..layout.num_vars() {
            out.push(self.value(layout, v)?);
        }
        Some(out)
    }

    /// Borrow as a read-only view that carries the layout.
    #[inline]
    pub fn view<'a>(&'a self, layout: &'a StoreLayout) -> StoreView<'a> {
        StoreView {
            layout,
            words: &self.words,
        }
    }
}

/// A read-only view over raw store words together with their layout.
///
/// Useful for inspecting stores that live inside pool slots or scratch
/// buffers without copying them out.
#[derive(Clone, Copy)]
pub struct StoreView<'a> {
    pub layout: &'a StoreLayout,
    pub words: &'a [u64],
}

impl<'a> StoreView<'a> {
    pub fn new(layout: &'a StoreLayout, words: &'a [u64]) -> Self {
        debug_assert_eq!(words.len(), layout.store_words());
        StoreView { layout, words }
    }

    #[inline]
    pub fn dom(&self, v: VarId) -> &'a [u64] {
        &self.words[self.layout.var_range(v)]
    }

    #[inline]
    pub fn value(&self, v: VarId) -> Option<Val> {
        bits::singleton(self.dom(v))
    }

    #[inline]
    pub fn depth(&self) -> u32 {
        (self.words[0] & 0xffff_ffff) as u32
    }

    #[inline]
    pub fn bound(&self) -> i64 {
        self.words[1] as i64
    }

    pub fn all_assigned(&self) -> bool {
        (0..self.layout.num_vars()).all(|v| bits::is_singleton(self.dom(v)))
    }

    pub fn assignment(&self) -> Option<Vec<Val>> {
        (0..self.layout.num_vars()).map(|v| self.value(v)).collect()
    }
}

/// A mutable view over raw store words together with their layout.
pub struct StoreViewMut<'a> {
    pub layout: &'a StoreLayout,
    pub words: &'a mut [u64],
}

impl<'a> StoreViewMut<'a> {
    pub fn new(layout: &'a StoreLayout, words: &'a mut [u64]) -> Self {
        debug_assert_eq!(words.len(), layout.store_words());
        StoreViewMut { layout, words }
    }

    #[inline]
    pub fn dom(&self, v: VarId) -> &[u64] {
        &self.words[self.layout.var_range(v)]
    }

    #[inline]
    pub fn dom_mut(&mut self, v: VarId) -> &mut [u64] {
        &mut self.words[self.layout.var_range(v)]
    }

    #[inline]
    pub fn value(&self, v: VarId) -> Option<Val> {
        bits::singleton(self.dom(v))
    }

    #[inline]
    pub fn depth(&self) -> u32 {
        (self.words[0] & 0xffff_ffff) as u32
    }

    #[inline]
    pub fn set_depth(&mut self, d: u32) {
        self.words[0] = (self.words[0] & !0xffff_ffff) | d as u64;
    }

    #[inline]
    pub fn set_branch_var(&mut self, v: Option<VarId>) {
        let hi = v.map(|x| x as u64 + 1).unwrap_or(0);
        self.words[0] = (self.words[0] & 0xffff_ffff) | (hi << 32);
    }

    #[inline]
    pub fn bound(&self) -> i64 {
        self.words[1] as i64
    }

    #[inline]
    pub fn set_bound(&mut self, b: i64) {
        self.words[1] = b as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> StoreLayout {
        StoreLayout::new(4, 9)
    }

    #[test]
    fn root_store_full_domains() {
        let l = layout();
        let s = Store::root(&l);
        for v in 0..4 {
            assert_eq!(bits::count(s.dom(&l, v)), 10);
        }
        assert_eq!(s.depth(), 0);
        assert_eq!(s.branch_var(), None);
        assert_eq!(s.bound(), NO_BOUND);
        assert!(!s.all_assigned(&l));
        assert_eq!(s.first_unassigned(&l), Some(0));
    }

    #[test]
    fn header_round_trip() {
        let l = layout();
        let mut s = Store::root(&l);
        s.set_depth(7);
        s.set_branch_var(Some(3));
        s.set_bound(-42);
        s.set_serial(99);
        assert_eq!(s.depth(), 7);
        assert_eq!(s.branch_var(), Some(3));
        assert_eq!(s.bound(), -42);
        assert_eq!(s.serial(), 99);
        s.set_branch_var(None);
        assert_eq!(s.branch_var(), None);
        assert_eq!(s.depth(), 7, "branch var must not clobber depth");
    }

    #[test]
    fn relocation_is_exact() {
        let l = layout();
        let mut s = Store::root(&l);
        bits::keep_only(s.dom_mut(&l, 2), 5);
        s.set_depth(3);
        let copy = Store::from_words(&l, s.as_words());
        assert_eq!(copy, s);
        assert_eq!(copy.value(&l, 2), Some(5));
    }

    #[test]
    fn assignment_extraction() {
        let l = layout();
        let mut s = Store::root(&l);
        for v in 0..4 {
            bits::keep_only(s.dom_mut(&l, v), v as Val + 1);
        }
        assert!(s.all_assigned(&l));
        assert_eq!(s.assignment(&l), Some(vec![1, 2, 3, 4]));
        assert_eq!(s.assigned_count(&l), 4);
    }

    #[test]
    fn views_agree_with_store() {
        let l = layout();
        let mut s = Store::root(&l);
        bits::keep_only(s.dom_mut(&l, 1), 8);
        let v = s.view(&l);
        assert_eq!(v.value(1), Some(8));
        assert!(!v.all_assigned());
        let mut w = s.as_words().to_vec();
        let mut mv = StoreViewMut::new(&l, &mut w);
        bits::keep_only(mv.dom_mut(0), 1);
        mv.set_depth(2);
        assert_eq!(mv.value(0), Some(1));
        assert_eq!(mv.depth(), 2);
    }
}
