//! Bitmap finite domains and the relocatable, self-contained *store*.
//!
//! This crate implements the data-representation layer of MaCS (Machado,
//! Pedro & Abreu, ICPP 2013). The paper's §IV describes the store as the
//! central element of the solver:
//!
//! > "Each variable's domain is implemented as a fixed-size bitmap. A store
//! > is self-contained and implemented as a continuous region of memory
//! > where each cell is the bitmap of the domain of each variable. This
//! > turns a store into a relocatable object that can be moved or copied to
//! > other memory regions."
//!
//! A [`Store`] here is exactly that: a flat `Box<[u64]>` holding a small
//! header followed by one fixed-width bitmap per variable. Because its size
//! is fixed for a given problem ([`StoreLayout`]), stores can be copied
//! word-by-word into work-pool slots, written one-sided into a remote
//! worker's pool, and reconstituted without any pointer fix-up — the
//! property the paper calls "definitely a key point in MaCS' parallel
//! performance".
//!
//! Domains are finite sets of small naturals `0..=max_value`, represented
//! as bitmaps ([`bits`]). All domain operations work directly on `[u64]`
//! slices so they apply equally to a domain inside a store, inside a pool
//! slot, or inside a scratch buffer.

pub mod bits;
pub mod layout;
pub mod store;

pub use layout::{StoreLayout, HEADER_WORDS};
pub use store::{branch_var_of, Store, StoreView, StoreViewMut};

/// Identifier of a decision variable (index into the store's cells).
pub type VarId = usize;

/// A domain value. Domains are finite prefixes of the naturals, as in the
/// paper ("finite domains, encoded as a finite prefix of natural numbers").
pub type Val = u32;
