//! Word-level bitmap operations on `[u64]` slices.
//!
//! A domain over values `0..=max` occupies `words_for(max)` 64-bit words;
//! bit `v` of the bitmap is set iff value `v` is in the domain. All
//! functions assume (and preserve) the invariant that bits above `max` are
//! zero, which keeps population counts and min/max scans branch-light.

use crate::Val;

/// Number of 64-bit words needed for values `0..=max`.
#[inline]
pub const fn words_for(max: Val) -> usize {
    (max as usize + 64) / 64
}

/// Mask of valid bits in the last word of a domain over `0..=max`.
#[inline]
pub const fn last_word_mask(max: Val) -> u64 {
    let rem = (max as u64 + 1) % 64;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

/// Set the domain to the full set `{0, …, max}`.
#[inline]
pub fn fill_full(dom: &mut [u64], max: Val) {
    let n = words_for(max);
    debug_assert!(dom.len() >= n);
    for w in dom[..n - 1].iter_mut() {
        *w = u64::MAX;
    }
    dom[n - 1] = last_word_mask(max);
    for w in dom[n..].iter_mut() {
        *w = 0;
    }
}

/// Empty the domain.
#[inline]
pub fn clear(dom: &mut [u64]) {
    for w in dom.iter_mut() {
        *w = 0;
    }
}

/// Does the domain contain `v`?
#[inline]
pub fn contains(dom: &[u64], v: Val) -> bool {
    let (w, b) = (v as usize / 64, v as usize % 64);
    w < dom.len() && dom[w] >> b & 1 == 1
}

/// Remove `v`; returns `true` if the domain changed.
#[inline]
pub fn remove(dom: &mut [u64], v: Val) -> bool {
    let (w, b) = (v as usize / 64, v as usize % 64);
    if w >= dom.len() {
        return false;
    }
    let old = dom[w];
    dom[w] = old & !(1u64 << b);
    dom[w] != old
}

/// Insert `v` (used by tests and model construction, not by propagation).
#[inline]
pub fn insert(dom: &mut [u64], v: Val) {
    let (w, b) = (v as usize / 64, v as usize % 64);
    dom[w] |= 1u64 << b;
}

/// Reduce the domain to the singleton `{v}`; returns `true` if it changed.
#[inline]
pub fn keep_only(dom: &mut [u64], v: Val) -> bool {
    let (w, b) = (v as usize / 64, v as usize % 64);
    let mut changed = false;
    for (i, word) in dom.iter_mut().enumerate() {
        let want = if i == w { 1u64 << b } else { 0 };
        let new = *word & want;
        if new != *word {
            changed = true;
            *word = new;
        }
    }
    changed
}

/// Number of values in the domain.
#[inline]
pub fn count(dom: &[u64]) -> u32 {
    dom.iter().map(|w| w.count_ones()).sum()
}

/// Is the domain empty?
#[inline]
pub fn is_empty(dom: &[u64]) -> bool {
    dom.iter().all(|&w| w == 0)
}

/// Smallest value, if any.
#[inline]
pub fn min(dom: &[u64]) -> Option<Val> {
    for (i, &w) in dom.iter().enumerate() {
        if w != 0 {
            return Some((i * 64 + w.trailing_zeros() as usize) as Val);
        }
    }
    None
}

/// Largest value, if any.
#[inline]
pub fn max(dom: &[u64]) -> Option<Val> {
    for (i, &w) in dom.iter().enumerate().rev() {
        if w != 0 {
            return Some((i * 64 + 63 - w.leading_zeros() as usize) as Val);
        }
    }
    None
}

/// If the domain is a singleton `{v}`, return `v`.
#[inline]
pub fn singleton(dom: &[u64]) -> Option<Val> {
    let mut found: Option<Val> = None;
    for (i, &w) in dom.iter().enumerate() {
        if w == 0 {
            continue;
        }
        if found.is_some() || !w.is_power_of_two() {
            return None;
        }
        found = Some((i * 64 + w.trailing_zeros() as usize) as Val);
    }
    found
}

/// Is the domain exactly one value?
#[inline]
pub fn is_singleton(dom: &[u64]) -> bool {
    singleton(dom).is_some()
}

/// Smallest value strictly greater than `v`, if any.
#[inline]
pub fn next_above(dom: &[u64], v: Val) -> Option<Val> {
    let start = v as usize + 1;
    let (mut w, b) = (start / 64, start % 64);
    if w >= dom.len() {
        return None;
    }
    let masked = dom[w] & (u64::MAX << b);
    if masked != 0 {
        return Some((w * 64 + masked.trailing_zeros() as usize) as Val);
    }
    w += 1;
    while w < dom.len() {
        if dom[w] != 0 {
            return Some((w * 64 + dom[w].trailing_zeros() as usize) as Val);
        }
        w += 1;
    }
    None
}

/// Remove every value `< v`; returns `true` if the domain changed.
#[inline]
pub fn remove_below(dom: &mut [u64], v: Val) -> bool {
    let (w, b) = (v as usize / 64, v as usize % 64);
    let mut changed = false;
    for (i, word) in dom.iter_mut().enumerate() {
        let keep = if i < w {
            0
        } else if i == w {
            u64::MAX << b
        } else {
            u64::MAX
        };
        let new = *word & keep;
        if new != *word {
            changed = true;
            *word = new;
        }
    }
    changed
}

/// Remove every value `> v`; returns `true` if the domain changed.
#[inline]
pub fn remove_above(dom: &mut [u64], v: Val) -> bool {
    let (w, b) = (v as usize / 64, v as usize % 64);
    let mut changed = false;
    for (i, word) in dom.iter_mut().enumerate() {
        let keep = if i < w {
            u64::MAX
        } else if i == w {
            if b == 63 {
                u64::MAX
            } else {
                (1u64 << (b + 1)) - 1
            }
        } else {
            0
        };
        let new = *word & keep;
        if new != *word {
            changed = true;
            *word = new;
        }
    }
    changed
}

/// Intersect `dom` with `other`; returns `true` if `dom` changed.
#[inline]
pub fn intersect(dom: &mut [u64], other: &[u64]) -> bool {
    intersect_masked(dom, other) != 0
}

/// Remove from `dom` every value in `other`; returns `true` if it changed.
#[inline]
pub fn subtract(dom: &mut [u64], other: &[u64]) -> bool {
    subtract_masked(dom, other) != 0
}

/// The bit marking word `w` in a changed-words mask. Words past 63 share
/// bit 63, so the mask over-approximates for very wide cells (> 4096
/// values) — sound for wake filtering, which only skips on a zero overlap.
#[inline]
pub const fn word_bit(w: usize) -> u64 {
    1u64 << if w < 63 { w } else { 63 }
}

/// Mask with one bit per word of an `n`-word cell (saturating at 64).
#[inline]
pub const fn all_words_mask(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Intersect `dom` with `other`, skipping the write on unchanged words;
/// returns the changed-words mask ([`word_bit`] per modified word, 0 = no
/// change).
#[inline]
pub fn intersect_masked(dom: &mut [u64], other: &[u64]) -> u64 {
    let mut mask = 0u64;
    for (i, (d, &o)) in dom.iter_mut().zip(other).enumerate() {
        let new = *d & o;
        if new != *d {
            mask |= word_bit(i);
            *d = new;
        }
    }
    mask
}

/// Remove from `dom` every value in `other`, skipping the write on
/// unchanged words; returns the changed-words mask.
#[inline]
pub fn subtract_masked(dom: &mut [u64], other: &[u64]) -> u64 {
    let mut mask = 0u64;
    for (i, (d, &o)) in dom.iter_mut().zip(other).enumerate() {
        let new = *d & !o;
        if new != *d {
            mask |= word_bit(i);
            *d = new;
        }
    }
    mask
}

/// The `k`-th smallest value (0-based), if the domain has more than `k`
/// values. Word-parallel: whole words are skipped by popcount before the
/// final word is scanned bit by bit.
pub fn nth(dom: &[u64], mut k: u32) -> Option<Val> {
    for (i, &w) in dom.iter().enumerate() {
        let c = w.count_ones();
        if k < c {
            // Select the k-th set bit of w by clearing the k lowest.
            let mut w = w;
            for _ in 0..k {
                w &= w - 1;
            }
            return Some((i * 64 + w.trailing_zeros() as usize) as Val);
        }
        k -= c;
    }
    None
}

/// Write into `dst` the set `{ v + shift | v ∈ src }` (left shift of the
/// bitmap by `shift` bits), truncated to `dst`'s width. Used by
/// offset-equality propagators: `x = y + c` intersects `dom(x)` with
/// `dom(y) << c`.
pub fn shifted_up(src: &[u64], dst: &mut [u64], shift: u32) {
    clear(dst);
    let (ws, bs) = (shift as usize / 64, shift as usize % 64);
    for (i, &w) in src.iter().enumerate() {
        if w == 0 {
            continue;
        }
        let lo = i + ws;
        if lo < dst.len() {
            dst[lo] |= w << bs;
        }
        if bs != 0 && lo + 1 < dst.len() {
            dst[lo + 1] |= w >> (64 - bs);
        }
    }
}

/// Write into `dst` the set `{ v - shift | v ∈ src, v ≥ shift }`.
pub fn shifted_down(src: &[u64], dst: &mut [u64], shift: u32) {
    clear(dst);
    let (ws, bs) = (shift as usize / 64, shift as usize % 64);
    for (i, d) in dst.iter_mut().enumerate() {
        let lo = i + ws;
        let mut w = 0u64;
        if lo < src.len() {
            w |= src[lo] >> bs;
        }
        if bs != 0 && lo + 1 < src.len() {
            w |= src[lo + 1] << (64 - bs);
        }
        *d = w;
    }
}

/// Iterator over the values of a domain, ascending.
pub struct Iter<'a> {
    dom: &'a [u64],
    word: usize,
    cur: u64,
}

impl<'a> Iter<'a> {
    #[inline]
    pub fn new(dom: &'a [u64]) -> Self {
        let cur = if dom.is_empty() { 0 } else { dom[0] };
        Iter { dom, word: 0, cur }
    }
}

impl Iterator for Iter<'_> {
    type Item = Val;

    #[inline]
    fn next(&mut self) -> Option<Val> {
        loop {
            if self.cur != 0 {
                let b = self.cur.trailing_zeros();
                self.cur &= self.cur - 1;
                return Some((self.word * 64) as Val + b);
            }
            self.word += 1;
            if self.word >= self.dom.len() {
                return None;
            }
            self.cur = self.dom[self.word];
        }
    }
}

/// Convenience: iterate the values of a domain.
#[inline]
pub fn iter(dom: &[u64]) -> Iter<'_> {
    Iter::new(dom)
}

/// Iterator over the values of a domain, descending.
pub struct RevIter<'a> {
    dom: &'a [u64],
    /// Word index + 1 of `cur` (0 = exhausted).
    word1: usize,
    cur: u64,
}

impl<'a> RevIter<'a> {
    #[inline]
    pub fn new(dom: &'a [u64]) -> Self {
        let word1 = dom.len();
        let cur = if word1 == 0 { 0 } else { dom[word1 - 1] };
        RevIter { dom, word1, cur }
    }
}

impl Iterator for RevIter<'_> {
    type Item = Val;

    #[inline]
    fn next(&mut self) -> Option<Val> {
        loop {
            if self.cur != 0 {
                let b = 63 - self.cur.leading_zeros();
                self.cur &= !(1u64 << b);
                return Some(((self.word1 - 1) * 64) as Val + b);
            }
            if self.word1 <= 1 {
                return None;
            }
            self.word1 -= 1;
            self.cur = self.dom[self.word1 - 1];
        }
    }
}

/// Convenience: iterate the values of a domain, descending.
#[inline]
pub fn iter_rev(dom: &[u64]) -> RevIter<'_> {
    RevIter::new(dom)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_vals(max: Val, vals: &[Val]) -> Vec<u64> {
        let mut d = vec![0u64; words_for(max)];
        for &v in vals {
            insert(&mut d, v);
        }
        d
    }

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(0), 1);
        assert_eq!(words_for(63), 1);
        assert_eq!(words_for(64), 2);
        assert_eq!(words_for(127), 2);
        assert_eq!(words_for(128), 3);
    }

    #[test]
    fn fill_full_sets_exactly_prefix() {
        let mut d = vec![0u64; words_for(70)];
        fill_full(&mut d, 70);
        assert_eq!(count(&d), 71);
        assert!(contains(&d, 0));
        assert!(contains(&d, 70));
        assert!(!contains(&d, 71));
    }

    #[test]
    fn remove_and_contains() {
        let mut d = from_vals(100, &[3, 64, 100]);
        assert!(remove(&mut d, 64));
        assert!(!remove(&mut d, 64));
        assert!(!contains(&d, 64));
        assert_eq!(count(&d), 2);
    }

    #[test]
    fn min_max_singleton() {
        let d = from_vals(130, &[5, 77, 129]);
        assert_eq!(min(&d), Some(5));
        assert_eq!(max(&d), Some(129));
        assert_eq!(singleton(&d), None);
        let s = from_vals(130, &[77]);
        assert_eq!(singleton(&s), Some(77));
        assert!(is_singleton(&s));
        let e = from_vals(130, &[]);
        assert!(is_empty(&e));
        assert_eq!(min(&e), None);
        assert_eq!(max(&e), None);
    }

    #[test]
    fn keep_only_works_across_words() {
        let mut d = from_vals(200, &[1, 65, 130, 199]);
        assert!(keep_only(&mut d, 130));
        assert_eq!(singleton(&d), Some(130));
        assert!(!keep_only(&mut d, 130));
    }

    #[test]
    fn bounds_removal() {
        let mut d = from_vals(128, &[0, 10, 64, 65, 128]);
        assert!(remove_below(&mut d, 11));
        assert_eq!(min(&d), Some(64));
        assert!(remove_above(&mut d, 65));
        assert_eq!(max(&d), Some(65));
        assert_eq!(count(&d), 2);
    }

    #[test]
    fn remove_above_bit63_edge() {
        let mut d = from_vals(100, &[62, 63, 64]);
        assert!(remove_above(&mut d, 63));
        assert_eq!(count(&d), 2);
        assert!(contains(&d, 63));
        assert!(!contains(&d, 64));
    }

    #[test]
    fn next_above_scans_words() {
        let d = from_vals(200, &[3, 64, 190]);
        assert_eq!(next_above(&d, 3), Some(64));
        assert_eq!(next_above(&d, 64), Some(190));
        assert_eq!(next_above(&d, 190), None);
        assert_eq!(next_above(&d, 0), Some(3));
    }

    #[test]
    fn set_algebra() {
        let mut a = from_vals(100, &[1, 2, 3, 64]);
        let b = from_vals(100, &[2, 64, 99]);
        assert!(intersect(&mut a, &b));
        assert_eq!(count(&a), 2);
        let mut c = from_vals(100, &[2, 64, 70]);
        assert!(subtract(&mut c, &b));
        assert_eq!(singleton(&c), Some(70));
    }

    #[test]
    fn shifts_match_semantics() {
        let src = from_vals(120, &[0, 5, 63, 64, 100]);
        let mut dst = vec![0u64; words_for(130)];
        shifted_up(&src, &mut dst, 7);
        let got: Vec<Val> = iter(&dst).collect();
        assert_eq!(got, vec![7, 12, 70, 71, 107]);
        let mut down = vec![0u64; words_for(120)];
        shifted_down(&src, &mut down, 7);
        let got: Vec<Val> = iter(&down).collect();
        // 0 and 5 fall below zero and vanish.
        assert_eq!(got, vec![56, 57, 93]);
    }

    #[test]
    fn shift_by_multiple_of_64() {
        let src = from_vals(10, &[1, 9]);
        let mut dst = vec![0u64; words_for(200)];
        shifted_up(&src, &mut dst, 64);
        let got: Vec<Val> = iter(&dst).collect();
        assert_eq!(got, vec![65, 73]);
        let mut back = vec![0u64; words_for(200)];
        shifted_down(&dst, &mut back, 64);
        let got: Vec<Val> = iter(&back).collect();
        assert_eq!(got, vec![1, 9]);
    }

    #[test]
    fn iterator_yields_ascending() {
        let d = from_vals(190, &[190, 0, 64, 63, 127, 128]);
        let got: Vec<Val> = iter(&d).collect();
        assert_eq!(got, vec![0, 63, 64, 127, 128, 190]);
    }

    #[test]
    fn rev_iterator_yields_descending() {
        let d = from_vals(190, &[190, 0, 64, 63, 127, 128]);
        let got: Vec<Val> = iter_rev(&d).collect();
        assert_eq!(got, vec![190, 128, 127, 64, 63, 0]);
        let empty = from_vals(190, &[]);
        assert_eq!(iter_rev(&empty).next(), None);
    }

    #[test]
    fn nth_selects_by_rank() {
        let d = from_vals(200, &[3, 64, 65, 130, 199]);
        assert_eq!(nth(&d, 0), Some(3));
        assert_eq!(nth(&d, 2), Some(65));
        assert_eq!(nth(&d, 4), Some(199));
        assert_eq!(nth(&d, 5), None);
    }

    #[test]
    fn masked_set_ops_report_changed_words() {
        let mut a = from_vals(130, &[1, 64, 129]);
        let b = from_vals(130, &[1, 64, 100]);
        // Only word 2 (value 129) changes under intersection with b.
        assert_eq!(intersect_masked(&mut a, &b), word_bit(2));
        assert_eq!(intersect_masked(&mut a, &b), 0, "idempotent");
        let mut c = from_vals(130, &[1, 64]);
        assert_eq!(subtract_masked(&mut c, &b), word_bit(0) | word_bit(1));
        assert!(is_empty(&c));
    }

    #[test]
    fn word_bit_saturates() {
        assert_eq!(word_bit(0), 1);
        assert_eq!(word_bit(63), 1 << 63);
        assert_eq!(word_bit(200), 1 << 63);
        assert_eq!(all_words_mask(1), 1);
        assert_eq!(all_words_mask(3), 0b111);
        assert_eq!(all_words_mask(64), u64::MAX);
        assert_eq!(all_words_mask(100), u64::MAX);
    }
}
