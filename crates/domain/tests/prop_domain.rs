//! Property-based tests for bitmap domain operations: every operation is
//! checked against a reference model built on `std::collections::BTreeSet`.

use macs_domain::bits;
use macs_domain::Val;
use proptest::prelude::*;
use std::collections::BTreeSet;

const MAX: Val = 170; // spans three words

fn dom_from_set(s: &BTreeSet<Val>) -> Vec<u64> {
    let mut d = vec![0u64; bits::words_for(MAX)];
    for &v in s {
        bits::insert(&mut d, v);
    }
    d
}

fn set_strategy() -> impl Strategy<Value = BTreeSet<Val>> {
    prop::collection::btree_set(0..=MAX, 0..60)
}

proptest! {
    #[test]
    fn count_min_max_match_reference(s in set_strategy()) {
        let d = dom_from_set(&s);
        prop_assert_eq!(bits::count(&d) as usize, s.len());
        prop_assert_eq!(bits::min(&d), s.iter().next().copied());
        prop_assert_eq!(bits::max(&d), s.iter().next_back().copied());
        prop_assert_eq!(bits::is_empty(&d), s.is_empty());
        prop_assert_eq!(bits::is_singleton(&d), s.len() == 1);
    }

    #[test]
    fn remove_matches_reference(mut s in set_strategy(), v in 0..=MAX) {
        let mut d = dom_from_set(&s);
        let changed = bits::remove(&mut d, v);
        prop_assert_eq!(changed, s.remove(&v));
        prop_assert_eq!(d, dom_from_set(&s));
    }

    #[test]
    fn keep_only_matches_reference(s in set_strategy(), v in 0..=MAX) {
        let mut d = dom_from_set(&s);
        let changed = bits::keep_only(&mut d, v);
        let expect: BTreeSet<Val> = s.iter().copied().filter(|&x| x == v).collect();
        prop_assert_eq!(changed, expect != s);
        prop_assert_eq!(d, dom_from_set(&expect));
    }

    #[test]
    fn bound_removals_match_reference(s in set_strategy(), v in 0..=MAX) {
        let mut below = dom_from_set(&s);
        bits::remove_below(&mut below, v);
        let expect: BTreeSet<Val> = s.iter().copied().filter(|&x| x >= v).collect();
        prop_assert_eq!(below, dom_from_set(&expect));

        let mut above = dom_from_set(&s);
        bits::remove_above(&mut above, v);
        let expect: BTreeSet<Val> = s.iter().copied().filter(|&x| x <= v).collect();
        prop_assert_eq!(above, dom_from_set(&expect));
    }

    #[test]
    fn intersect_subtract_match_reference(a in set_strategy(), b in set_strategy()) {
        let mut d = dom_from_set(&a);
        bits::intersect(&mut d, &dom_from_set(&b));
        let expect: BTreeSet<Val> = a.intersection(&b).copied().collect();
        prop_assert_eq!(d, dom_from_set(&expect));

        let mut d = dom_from_set(&a);
        bits::subtract(&mut d, &dom_from_set(&b));
        let expect: BTreeSet<Val> = a.difference(&b).copied().collect();
        prop_assert_eq!(d, dom_from_set(&expect));
    }

    #[test]
    fn iterator_matches_reference(s in set_strategy()) {
        let d = dom_from_set(&s);
        let got: Vec<Val> = bits::iter(&d).collect();
        let expect: Vec<Val> = s.iter().copied().collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn next_above_matches_reference(s in set_strategy(), v in 0..=MAX) {
        let d = dom_from_set(&s);
        let expect = s.range(v + 1..).next().copied();
        prop_assert_eq!(bits::next_above(&d, v), expect);
    }

    #[test]
    fn shift_up_matches_reference(s in set_strategy(), k in 0..80u32) {
        let src = dom_from_set(&s);
        let mut dst = vec![0u64; bits::words_for(MAX + 80)];
        bits::shifted_up(&src, &mut dst, k);
        let got: Vec<Val> = bits::iter(&dst).collect();
        let expect: Vec<Val> = s.iter().map(|&x| x + k).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn shift_down_matches_reference(s in set_strategy(), k in 0..80u32) {
        let src = dom_from_set(&s);
        let mut dst = vec![0u64; bits::words_for(MAX)];
        bits::shifted_down(&src, &mut dst, k);
        let got: Vec<Val> = bits::iter(&dst).collect();
        let expect: Vec<Val> = s.iter().filter(|&&x| x >= k).map(|&x| x - k).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn shift_round_trip(s in set_strategy(), k in 0..60u32) {
        let src = dom_from_set(&s);
        let mut up = vec![0u64; bits::words_for(MAX + 60)];
        bits::shifted_up(&src, &mut up, k);
        let mut back = vec![0u64; bits::words_for(MAX)];
        bits::shifted_down(&up, &mut back, k);
        prop_assert_eq!(back, src);
    }
}
