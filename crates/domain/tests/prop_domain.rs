//! Randomised model tests for bitmap domain operations: every operation is
//! checked against a reference model built on `std::collections::BTreeSet`.
//!
//! Deterministic seeded random cases (no external property-testing
//! dependency in this build environment); every failure message carries
//! the case seed.

use macs_domain::bits;
use macs_domain::Val;
use std::collections::BTreeSet;

const MAX: Val = 170; // spans three words
const CASES: u64 = 300;

/// Inline SplitMix64 — keeps the test crate dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }

    /// A random value set of 0..60 elements within 0..=MAX.
    fn set(&mut self) -> BTreeSet<Val> {
        let n = self.below(60);
        (0..n).map(|_| self.below(MAX as u64 + 1) as Val).collect()
    }
}

fn dom_from_set(s: &BTreeSet<Val>) -> Vec<u64> {
    let mut d = vec![0u64; bits::words_for(MAX)];
    for &v in s {
        bits::insert(&mut d, v);
    }
    d
}

fn for_each_case(mut f: impl FnMut(&mut Rng, u64)) {
    for case in 0..CASES {
        let mut rng = Rng(0xD0_0D ^ case.wrapping_mul(0x9E37_79B9));
        f(&mut rng, case);
    }
}

#[test]
fn count_min_max_match_reference() {
    for_each_case(|rng, case| {
        let s = rng.set();
        let d = dom_from_set(&s);
        assert_eq!(bits::count(&d) as usize, s.len(), "case {case}");
        assert_eq!(bits::min(&d), s.iter().next().copied(), "case {case}");
        assert_eq!(bits::max(&d), s.iter().next_back().copied(), "case {case}");
        assert_eq!(bits::is_empty(&d), s.is_empty(), "case {case}");
        assert_eq!(bits::is_singleton(&d), s.len() == 1, "case {case}");
    });
}

#[test]
fn remove_matches_reference() {
    for_each_case(|rng, case| {
        let mut s = rng.set();
        let v = rng.below(MAX as u64 + 1) as Val;
        let mut d = dom_from_set(&s);
        let changed = bits::remove(&mut d, v);
        assert_eq!(changed, s.remove(&v), "case {case}");
        assert_eq!(d, dom_from_set(&s), "case {case}");
    });
}

#[test]
fn keep_only_matches_reference() {
    for_each_case(|rng, case| {
        let s = rng.set();
        let v = rng.below(MAX as u64 + 1) as Val;
        let mut d = dom_from_set(&s);
        let changed = bits::keep_only(&mut d, v);
        let expect: BTreeSet<Val> = s.iter().copied().filter(|&x| x == v).collect();
        assert_eq!(changed, expect != s, "case {case}");
        assert_eq!(d, dom_from_set(&expect), "case {case}");
    });
}

#[test]
fn bound_removals_match_reference() {
    for_each_case(|rng, case| {
        let s = rng.set();
        let v = rng.below(MAX as u64 + 1) as Val;
        let mut below = dom_from_set(&s);
        bits::remove_below(&mut below, v);
        let expect: BTreeSet<Val> = s.iter().copied().filter(|&x| x >= v).collect();
        assert_eq!(below, dom_from_set(&expect), "case {case}");

        let mut above = dom_from_set(&s);
        bits::remove_above(&mut above, v);
        let expect: BTreeSet<Val> = s.iter().copied().filter(|&x| x <= v).collect();
        assert_eq!(above, dom_from_set(&expect), "case {case}");
    });
}

#[test]
fn intersect_subtract_match_reference() {
    for_each_case(|rng, case| {
        let a = rng.set();
        let b = rng.set();
        let mut d = dom_from_set(&a);
        bits::intersect(&mut d, &dom_from_set(&b));
        let expect: BTreeSet<Val> = a.intersection(&b).copied().collect();
        assert_eq!(d, dom_from_set(&expect), "case {case}");

        let mut d = dom_from_set(&a);
        bits::subtract(&mut d, &dom_from_set(&b));
        let expect: BTreeSet<Val> = a.difference(&b).copied().collect();
        assert_eq!(d, dom_from_set(&expect), "case {case}");
    });
}

#[test]
fn iterator_matches_reference() {
    for_each_case(|rng, case| {
        let s = rng.set();
        let d = dom_from_set(&s);
        let got: Vec<Val> = bits::iter(&d).collect();
        let expect: Vec<Val> = s.iter().copied().collect();
        assert_eq!(got, expect, "case {case}");
    });
}

#[test]
fn next_above_matches_reference() {
    for_each_case(|rng, case| {
        let s = rng.set();
        let v = rng.below(MAX as u64 + 1) as Val;
        let d = dom_from_set(&s);
        let expect = s.range(v + 1..).next().copied();
        assert_eq!(bits::next_above(&d, v), expect, "case {case}");
    });
}

#[test]
fn shift_up_matches_reference() {
    for_each_case(|rng, case| {
        let s = rng.set();
        let k = rng.below(80) as u32;
        let src = dom_from_set(&s);
        let mut dst = vec![0u64; bits::words_for(MAX + 80)];
        bits::shifted_up(&src, &mut dst, k);
        let got: Vec<Val> = bits::iter(&dst).collect();
        let expect: Vec<Val> = s.iter().map(|&x| x + k).collect();
        assert_eq!(got, expect, "case {case}");
    });
}

#[test]
fn shift_down_matches_reference() {
    for_each_case(|rng, case| {
        let s = rng.set();
        let k = rng.below(80) as u32;
        let src = dom_from_set(&s);
        let mut dst = vec![0u64; bits::words_for(MAX)];
        bits::shifted_down(&src, &mut dst, k);
        let got: Vec<Val> = bits::iter(&dst).collect();
        let expect: Vec<Val> = s.iter().filter(|&&x| x >= k).map(|&x| x - k).collect();
        assert_eq!(got, expect, "case {case}");
    });
}

#[test]
fn shift_round_trip() {
    for_each_case(|rng, case| {
        let s = rng.set();
        let k = rng.below(60) as u32;
        let src = dom_from_set(&s);
        let mut up = vec![0u64; bits::words_for(MAX + 60)];
        bits::shifted_up(&src, &mut up, k);
        let mut back = vec![0u64; bits::words_for(MAX)];
        bits::shifted_down(&up, &mut back, k);
        assert_eq!(back, src, "case {case}");
    });
}
