//! The PaCCS controller/agent solver.
//!
//! Agents drive the same [`SearchKernel`] as MaCS; only the communication
//! substrate differs — two-sided messages over channels, a controller that
//! collects solutions, and a [`WorkBatch`] handed over per steal.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::{Duration, Instant};

use macs_domain::Val;
use macs_engine::CompiledProblem;
use macs_gpi::{Interconnect, LatencyModel, MachineTopology, StealHistogram, TopoError, Topology};
use macs_search::{
    AtomicIncumbent, BoundPolicy, BroadcastTree, ChunkPolicy, IncumbentSource, RaceRing,
    RefreshGate, SearchKernel, SearchMode, StepOutcome, WorkBatch, WorkItem,
};

/// How often (in processed stores) a node-leader agent refreshes its
/// node's incumbent mirror from the controller under
/// [`BoundPolicy::Hierarchical`].
const LEADER_REFRESH: u32 = 8;

/// Configuration of a PaCCS run.
#[derive(Clone, Debug)]
pub struct PaccsConfig {
    pub topology: MachineTopology,
    pub latency: LatencyModel,
    /// Sleep between failed steal sweeps.
    pub steal_retry_backoff_us: u64,
    /// Items handed over per successful steal (victim gives up to half its
    /// queue, capped here). The static reference cap; `chunk_policy` maps
    /// it and the thief's distance to the effective per-steal cap.
    pub max_steal_chunk: usize,
    /// Steal-chunk granularity (see [`ChunkPolicy`]). PaCCS agents each
    /// own a single stack — there are no co-located pools to batch into
    /// one reply — so `Adaptive` here means distance-scaled grants; the
    /// reply-thinness signal it would tune the batch with is still
    /// measured (`PaccsOutcome::thin_replies`), with the same degenerate
    /// small-cap guard as the other backends.
    pub chunk_policy: ChunkPolicy,
    pub keep_solutions: usize,
    /// When incumbent improvements reach other agents. `Immediate` reads
    /// the controller's value directly (the original behaviour);
    /// `Periodic` caches it per agent; `Hierarchical` routes it through
    /// per-node mirror atomics that node leaders refresh from the
    /// controller — the message-passing face of the node-leader broadcast
    /// tree.
    pub bound_policy: BoundPolicy,
    /// Exhaustive search, or a first-solution race (satisfaction only):
    /// the winner raises a flag that spreads through per-node mirror
    /// atomics the same way a hierarchical bound does, and every agent
    /// abandons its remaining stack on observing it.
    pub mode: SearchMode,
}

impl PaccsConfig {
    pub fn with_workers(n: usize) -> Self {
        PaccsConfig {
            topology: Topology::single_node(n).into(),
            latency: LatencyModel::zero(),
            steal_retry_backoff_us: 50,
            max_steal_chunk: 8,
            chunk_policy: ChunkPolicy::default(),
            keep_solutions: 16,
            bound_policy: BoundPolicy::Immediate,
            mode: SearchMode::Exhaustive,
        }
    }

    pub fn clustered(total: usize, cores_per_node: usize) -> Self {
        PaccsConfig {
            topology: Topology::clustered(total, cores_per_node).into(),
            ..PaccsConfig::with_workers(total)
        }
    }

    /// An N-level machine shape, e.g. `&[2, 2, 4]` with `node_prefix = 1`
    /// for 2 nodes × 2 sockets × 4 cores; agent neighbourhoods follow the
    /// levels.
    pub fn hierarchical(shape: &[usize], node_prefix: usize) -> Result<Self, TopoError> {
        let topology = MachineTopology::try_new(shape, node_prefix)?;
        Ok(PaccsConfig {
            topology,
            ..PaccsConfig::with_workers(1)
        })
    }
}

/// Result of a PaCCS run.
#[derive(Debug)]
pub struct PaccsOutcome {
    /// Solutions delivered to the controller (for optimisation: improving
    /// solutions).
    pub solutions: u64,
    /// Total stores processed.
    pub nodes: u64,
    pub best_cost: Option<i64>,
    pub best_assignment: Option<Vec<Val>>,
    pub kept: Vec<Vec<Val>>,
    pub wall: Duration,
    /// Successful steals from a same-node / remote-node victim.
    pub local_steals: u64,
    pub remote_steals: u64,
    /// Steal requests answered with `NoWork`.
    pub failed_steals: u64,
    /// Successful steals by topological distance (thief side).
    pub steals_by_distance: StealHistogram,
    /// Total messages exchanged.
    pub messages: u64,
    /// Cross-node messages attributable to bound dissemination (relay
    /// fan-out on improvements, plus periodic refresh pulls).
    pub bound_msgs: u64,
    /// First-solution races: wall time from run start to the winning
    /// solution (`None` otherwise).
    pub first_solution: Option<Duration>,
    /// First-solution races: stores whose expansion started after the win
    /// — the dissemination lag's bill.
    pub nodes_after_win: u64,
    /// First-solution races: stores discarded unprocessed (stacks and
    /// late steal replies) once agents observed the winner flag.
    pub abandoned_items: u64,
    /// First-solution races: steal replies that delivered work to an agent
    /// that had already observed the winner flag — kept out of
    /// `local_steals`/`remote_steals` and the distance histogram so a
    /// race's drain cannot masquerade as successful stealing.
    pub drain_steals: u64,
    /// Served replies that were *thin* (below `WorkBatch::thin_threshold`
    /// of the effective cap) — the scarcity signal the adaptive policy
    /// reads; on a single-stack backend it is reported rather than acted
    /// on.
    pub thin_replies: u64,
}

enum Msg {
    /// Steal request from an idle agent.
    StealReq { thief: usize },
    /// Steal reply carrying work.
    Work(WorkBatch),
    /// Steal reply: nothing to give.
    NoWork,
    /// Agent → controller: a solution.
    Solution {
        cost: Option<i64>,
        assignment: Vec<Val>,
    },
    /// Controller → agents: stop.
    Terminate,
}

struct Shared<'a> {
    prob: &'a CompiledProblem,
    cfg: &'a PaccsConfig,
    ic: Interconnect,
    senders: Vec<Sender<Msg>>,
    to_controller: Sender<Msg>,
    /// Agents currently holding work — the termination invariant is
    /// `active + in_flight ≥ 1` whenever any store exists anywhere.
    active: AtomicUsize,
    /// Work messages in flight.
    in_flight: AtomicUsize,
    /// Best objective value (PaCCS routes bound values through the
    /// controller; the value lives centrally and stale reads are sound).
    incumbent: AtomicIncumbent,
    /// Per-node incumbent mirrors (hierarchical policy): agents read
    /// their node's mirror, node leaders refresh it from the controller.
    node_bounds: Vec<AtomicIncumbent>,
    /// The broadcast tree the hierarchical policy routes over.
    tree: BroadcastTree,
    messages: AtomicU64,
    bound_msgs: AtomicU64,
    /// The run's epoch (first-solution win times are measured from it).
    t0: Instant,
    /// Root winner flag of a first-solution race.
    win_flag: AtomicBool,
    /// Per-node winner-flag mirrors: agents poll their own node's mirror
    /// (shared memory); only node leaders re-read the root flag, every
    /// [`LEADER_REFRESH`] stores — the same leveled route a hierarchical
    /// bound update takes.
    node_wins: Vec<AtomicBool>,
    /// Win instant in ns since `t0` (`i64::MAX` = no winner; the earliest
    /// of concurrent winners survives the `fetch_min`).
    win_ns: AtomicI64,
}

impl Shared<'_> {
    /// Send an agent-to-agent message, charging the fabric for cross-node
    /// traffic (MPI send, no one-sided shortcut).
    fn send(&self, from: usize, to: usize, msg: Msg) {
        if !self.cfg.topology.is_local(from, to) {
            let bytes = match &msg {
                Msg::Work(batch) => batch.payload_bytes() + 64,
                _ => 64,
            };
            self.ic.charge_write(bytes);
        }
        self.messages.fetch_add(1, Ordering::Relaxed);
        let _ = self.senders[to].send(msg);
    }

    /// Send to the controller (hosted on node 0).
    fn send_controller(&self, from: usize, msg: Msg) {
        if self.cfg.topology.node_of(from) != 0 {
            self.ic.charge_write(64);
        }
        self.messages.fetch_add(1, Ordering::Relaxed);
        let _ = self.to_controller.send(msg);
    }

    /// Nanoseconds since the run's epoch (saturating below the
    /// no-winner sentinel).
    fn elapsed_ns(&self) -> i64 {
        i64::try_from(self.t0.elapsed().as_nanos()).unwrap_or(i64::MAX - 1)
    }

    /// Raise the winner flag from `agent` (first-solution race): stamp
    /// the win instant first so any observer of a raised flag also sees a
    /// time, then the agent's own node mirror (shared memory) and the
    /// root flag (one fabric write when off the controller's node).
    fn raise_win(&self, agent: usize) {
        let node = self.cfg.topology.node_of(agent);
        self.win_ns.fetch_min(self.elapsed_ns(), Ordering::AcqRel);
        self.node_wins[node].store(true, Ordering::Release);
        if node != 0 {
            self.ic.charge_write(8);
        }
        self.win_flag.store(true, Ordering::Release);
    }
}

/// One agent's view of the branch-and-bound incumbent, applying the run's
/// [`BoundPolicy`]:
///
/// * `Immediate` — read the controller's atomic on every node (the
///   original behaviour);
/// * `Periodic { every }` — work from a cached copy refreshed every
///   `every` nodes (one conceptual controller pull each);
/// * `Hierarchical` — read the node's mirror atomic (shared memory);
///   improvements are pushed mirror-first, and the node *leader* alone
///   refreshes the mirror from the controller every [`LEADER_REFRESH`]
///   nodes — the controller-relay realisation of the broadcast tree, with
///   the relay fan-out billed per improvement.
struct AgentIncumbent<'s, 'p> {
    shared: &'s Shared<'p>,
    node: usize,
    off_controller: bool,
    leader: bool,
    cache: Cell<i64>,
    gate: RefreshGate,
}

impl<'s, 'p> AgentIncumbent<'s, 'p> {
    fn new(id: usize, shared: &'s Shared<'p>) -> Self {
        let topo = &shared.cfg.topology;
        AgentIncumbent {
            shared,
            node: topo.node_of(id),
            off_controller: topo.node_of(id) != 0,
            leader: shared.tree.is_leader(id),
            cache: Cell::new(i64::MAX),
            gate: RefreshGate::new(),
        }
    }

    fn count_bound_msgs(&self, n: u64) {
        if n > 0 {
            self.shared.bound_msgs.fetch_add(n, Ordering::Relaxed);
        }
    }
}

impl IncumbentSource for AgentIncumbent<'_, '_> {
    fn bound(&self) -> i64 {
        match self.shared.cfg.bound_policy {
            BoundPolicy::Immediate => self.shared.incumbent.get(),
            BoundPolicy::Periodic { every } => {
                if self.gate.due(every) {
                    self.count_bound_msgs(self.off_controller as u64);
                    let v = self.shared.incumbent.get();
                    self.cache.set(v);
                    v
                } else {
                    self.cache.get()
                }
            }
            BoundPolicy::Hierarchical => {
                if self.leader && self.gate.due(LEADER_REFRESH) {
                    let v = self.shared.incumbent.get();
                    self.shared.node_bounds[self.node].offer(v);
                }
                self.shared.node_bounds[self.node].get()
            }
        }
    }

    fn offer(&self, cost: i64) -> bool {
        let policy = self.shared.cfg.bound_policy;
        if policy == BoundPolicy::Hierarchical {
            // Mirror first: co-located agents see it without the
            // controller round trip.
            self.shared.node_bounds[self.node].offer(cost);
        }
        let improved = self.shared.incumbent.offer(cost);
        if improved {
            let origin = self.shared.cfg.topology.workers_on(self.node).start;
            self.count_bound_msgs(match policy {
                BoundPolicy::Immediate => self.shared.tree.eager_fanout(origin).fabric_msgs,
                BoundPolicy::Periodic { .. } => self.off_controller as u64,
                BoundPolicy::Hierarchical => {
                    self.shared.tree.hierarchical_fanout(origin).fabric_msgs
                }
            });
        }
        self.cache.set(self.cache.get().min(cost));
        improved
    }
}

#[derive(Default)]
struct AgentResult {
    nodes: u64,
    local_steals: u64,
    remote_steals: u64,
    failed_steals: u64,
    steals_by_distance: StealHistogram,
    nodes_after_win: u64,
    abandoned: u64,
    drain_steals: u64,
    thin_replies: u64,
}

/// Victim side of a steal: hand over the oldest half of the queue (the
/// largest sub-problems), capped by the chunk policy at the thief's
/// topological distance — a same-socket thief takes a small bite, a
/// cross-cluster thief's expensive round trip carries a bigger
/// reservation. The victim always keeps at least one store, so it stays
/// active. `WorkBatch::split_front` removes from the deque's front in
/// O(chunk) — the old `Vec::drain(..give)` memmoved the whole remaining
/// stack on every steal. Returns whether the (served) reply was thin
/// under the shared degenerate-cap-guarded threshold.
fn reply_steal(
    victim: usize,
    thief: usize,
    stack: &mut VecDeque<WorkItem>,
    shared: &Shared<'_>,
) -> Option<bool> {
    let topo = &shared.cfg.topology;
    let cap = shared.cfg.chunk_policy.cap_for(
        topo.distance(victim, thief),
        topo.levels(),
        shared.cfg.max_steal_chunk as u64,
    ) as usize;
    let batch = WorkBatch::split_front(stack, cap);
    if batch.is_empty() {
        shared.send(victim, thief, Msg::NoWork);
        return None;
    }
    // Thinness is judged against the static cap (never more than the
    // effective one) — the same degenerate-small-cap-guarded gate the
    // shared-memory backends use for their top-up decision.
    let gate_cap = (cap as u64).min(shared.cfg.max_steal_chunk as u64);
    let thin = (batch.len() as u64) < WorkBatch::thin_threshold(gate_cap);
    shared.in_flight.fetch_add(1, Ordering::AcqRel);
    shared.send(victim, thief, Msg::Work(batch));
    Some(thin)
}

/// Accept a `Work` reply: the order (activate, then release the in-flight
/// count) keeps the termination invariant.
fn accept_work(batch: WorkBatch, stack: &mut VecDeque<WorkItem>, shared: &Shared<'_>) {
    shared.active.fetch_add(1, Ordering::AcqRel);
    shared.in_flight.fetch_sub(1, Ordering::AcqRel);
    batch.adopt_into(stack);
}

/// The search-agent loop: drain messages, expand one store through the
/// shared kernel, steal when idle.
fn agent_main(id: usize, shared: &Shared<'_>, rx: &Receiver<Msg>, seeded: bool) -> AgentResult {
    let prob = shared.prob;
    let mut kernel = SearchKernel::new(prob);
    let mut stack: VecDeque<WorkItem> = VecDeque::new();
    let mut res = AgentResult::default();
    let incumbent = AgentIncumbent::new(id, shared);
    // First-solution race state: optimisation runs must keep searching to
    // prove the optimum, so the race only arms on satisfaction problems.
    let race = shared.cfg.mode.is_race() && !prob.objective.is_some();
    let node = shared.cfg.topology.node_of(id);
    let win_leader = shared.tree.is_leader(id);
    let mut ring = RaceRing::new();
    let mut since_win_check: u32 = 0;

    if seeded {
        // `active` was pre-incremented by the launcher, before any thread
        // ran, so the controller can never observe a spuriously quiet start.
        let root = kernel.alloc_root();
        stack.push_back(root);
    }

    // Victim order: the topology's distance rings flattened nearest
    // first — socket peers, then node peers, then each remote ring — the
    // paper's expanding neighbourhood, derived from the machine's levels
    // instead of an ad-hoc local/remote split.
    let topo = &shared.cfg.topology;
    let victims: Vec<usize> = topo.rings(id).into_iter().flatten().collect();

    loop {
        // ---- winner flag (first-solution race) ---------------------------
        // Agents poll their node's mirror (shared memory); node leaders
        // alone re-read the root flag every LEADER_REFRESH stores and
        // refresh the mirror — the leveled route of the broadcast tree.
        if race {
            let mut raised = shared.node_wins[node].load(Ordering::Acquire);
            if !raised && win_leader {
                since_win_check += 1;
                if since_win_check >= LEADER_REFRESH {
                    since_win_check = 0;
                    if node != 0 {
                        shared.ic.charge_read(8);
                    }
                    if shared.win_flag.load(Ordering::Acquire) {
                        shared.node_wins[node].store(true, Ordering::Release);
                        raised = true;
                    }
                }
            }
            if raised {
                // Settle the race account and drain to termination.
                let win_ns = shared.win_ns.load(Ordering::Acquire);
                res.nodes_after_win = ring.count_after(win_ns);
                if !stack.is_empty() {
                    res.abandoned += stack.len() as u64;
                    while let Some(it) = stack.pop_back() {
                        kernel.recycle(it);
                    }
                    // We held work, so we were counted active.
                    shared.active.fetch_sub(1, Ordering::AcqRel);
                }
                loop {
                    match rx.recv() {
                        Ok(Msg::StealReq { thief }) => shared.send(id, thief, Msg::NoWork),
                        Ok(Msg::Work(batch)) => {
                            // A reply that raced the flag and lost: the
                            // items die here, settling the in-flight count
                            // without ever becoming active.
                            res.abandoned += batch.len() as u64;
                            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                        }
                        Ok(Msg::NoWork) => {}
                        Ok(Msg::Terminate) | Err(_) => return res,
                        Ok(Msg::Solution { .. }) => unreachable!(),
                    }
                }
            }
        }

        // MPI-progress: drain pending messages.
        while let Ok(msg) = rx.try_recv() {
            match msg {
                Msg::StealReq { thief } => {
                    if reply_steal(id, thief, &mut stack, shared) == Some(true) {
                        res.thin_replies += 1;
                    }
                }
                Msg::Terminate => return res,
                Msg::Work(batch) => accept_work(batch, &mut stack, shared), // defensive
                Msg::NoWork => {}
                Msg::Solution { .. } => unreachable!("agents do not receive solutions"),
            }
        }

        if let Some(mut store) = stack.pop_back() {
            // ---- process one store (the same kernel MaCS runs) -----------
            res.nodes += 1;
            if race {
                ring.record(shared.elapsed_ns());
            }
            match kernel.step(&mut store, &incumbent) {
                StepOutcome::Failed => {}
                StepOutcome::Solution(sol) => match sol.cost {
                    Some(cost) => {
                        if sol.improved {
                            shared.send_controller(
                                id,
                                Msg::Solution {
                                    cost: Some(cost),
                                    assignment: sol.assignment,
                                },
                            );
                        }
                    }
                    None => {
                        shared.send_controller(
                            id,
                            Msg::Solution {
                                cost: None,
                                assignment: sol.assignment,
                            },
                        );
                        if race {
                            shared.raise_win(id);
                        }
                    }
                },
                StepOutcome::Children(_) => kernel.push_children(&mut stack),
            }
            kernel.recycle(store);
            if stack.is_empty() {
                // Out of work: stop being counted before the idle sweep.
                shared.active.fetch_sub(1, Ordering::AcqRel);
            }
        } else {
            // ---- idle: steal sweep over the expanding neighbourhood ------
            let mut got = false;
            'sweep: for &victim in &victims {
                shared.send(id, victim, Msg::StealReq { thief: id });
                // Block for this victim's reply, serving interleaved
                // messages (requests get refused — we are idle).
                loop {
                    match rx.recv() {
                        Ok(Msg::Work(batch)) => {
                            accept_work(batch, &mut stack, shared);
                            // A reply that arrives after this agent's node
                            // observed the winner flag delivers work the
                            // top-of-loop drain will immediately discard:
                            // count it in the drain bucket, not as a
                            // successful steal (it must not inflate the
                            // histogram or items-per-steal).
                            if race && shared.node_wins[node].load(Ordering::Acquire) {
                                res.drain_steals += 1;
                            } else {
                                res.steals_by_distance.record(topo.distance(id, victim));
                                if topo.is_local(victim, id) {
                                    res.local_steals += 1;
                                } else {
                                    res.remote_steals += 1;
                                }
                            }
                            got = true;
                            break 'sweep;
                        }
                        Ok(Msg::NoWork) => {
                            res.failed_steals += 1;
                            break;
                        }
                        Ok(Msg::StealReq { thief }) => {
                            shared.send(id, thief, Msg::NoWork);
                        }
                        Ok(Msg::Terminate) | Err(_) => return res,
                        Ok(Msg::Solution { .. }) => unreachable!(),
                    }
                }
            }
            if !got {
                std::thread::sleep(Duration::from_micros(
                    shared.cfg.steal_retry_backoff_us.max(1),
                ));
            }
        }
    }
}

/// Solve `prob` with the PaCCS architecture (controller + search agents).
pub fn paccs_solve(prob: &CompiledProblem, cfg: &PaccsConfig) -> PaccsOutcome {
    let n = cfg.topology.total_workers();
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel::<Msg>();
        senders.push(tx);
        receivers.push(rx);
    }
    let (ctl_tx, ctl_rx) = channel::<Msg>();

    let shared = Shared {
        prob,
        cfg,
        ic: Interconnect::new(cfg.latency),
        senders,
        to_controller: ctl_tx,
        active: AtomicUsize::new(1), // the seeded agent, counted up front
        in_flight: AtomicUsize::new(0),
        incumbent: AtomicIncumbent::new(),
        node_bounds: (0..cfg.topology.nodes())
            .map(|_| AtomicIncumbent::new())
            .collect(),
        tree: BroadcastTree::new(&cfg.topology),
        messages: AtomicU64::new(0),
        bound_msgs: AtomicU64::new(0),
        t0: Instant::now(),
        win_flag: AtomicBool::new(false),
        node_wins: (0..cfg.topology.nodes())
            .map(|_| AtomicBool::new(false))
            .collect(),
        win_ns: AtomicI64::new(i64::MAX),
    };

    let t0 = Instant::now();
    let mut agent_results: Vec<AgentResult> = Vec::with_capacity(n);
    let mut solutions_seen: u64 = 0;
    let mut kept: Vec<Vec<Val>> = Vec::new();
    let mut best: Option<(i64, Vec<Val>)> = None;

    let absorb = |msg: Msg,
                  best: &mut Option<(i64, Vec<Val>)>,
                  kept: &mut Vec<Vec<Val>>,
                  solutions_seen: &mut u64| {
        if let Msg::Solution { cost, assignment } = msg {
            *solutions_seen += 1;
            match cost {
                Some(c) => {
                    if best.as_ref().map(|(b, _)| c < *b).unwrap_or(true) {
                        *best = Some((c, assignment));
                    }
                }
                None => {
                    if kept.len() < cfg.keep_solutions {
                        kept.push(assignment);
                    }
                }
            }
        }
    };

    std::thread::scope(|s| {
        let shared = &shared;
        // `std::sync::mpsc::Receiver` is `Send` but not `Sync`: each agent
        // takes its receiver by value.
        let handles: Vec<_> = receivers
            .drain(..)
            .enumerate()
            .map(|(id, rx)| s.spawn(move || agent_main(id, shared, &rx, id == 0)))
            .collect();

        // ---- controller: collect solutions, detect termination -----------
        loop {
            while let Ok(msg) = ctl_rx.try_recv() {
                absorb(msg, &mut best, &mut kept, &mut solutions_seen);
            }
            let quiet = shared.active.load(Ordering::Acquire) == 0
                && shared.in_flight.load(Ordering::Acquire) == 0;
            if quiet {
                // The invariant makes a single observation sufficient; a
                // confirming read is cheap insurance.
                std::thread::sleep(Duration::from_micros(100));
                if shared.active.load(Ordering::Acquire) == 0
                    && shared.in_flight.load(Ordering::Acquire) == 0
                {
                    break;
                }
            } else {
                std::thread::yield_now();
            }
        }
        for id in 0..n {
            shared.send(0, id, Msg::Terminate);
        }
        for h in handles {
            agent_results.push(h.join().expect("agent panicked"));
        }
        // Solutions sent in the final moments are still in the channel.
        while let Ok(msg) = ctl_rx.try_recv() {
            absorb(msg, &mut best, &mut kept, &mut solutions_seen);
        }
    });

    let wall = t0.elapsed();
    let nodes = agent_results.iter().map(|r| r.nodes).sum();
    let (best_cost, best_assignment) = match best {
        Some((c, a)) => (Some(c), Some(a)),
        None => (None, kept.first().cloned()),
    };
    PaccsOutcome {
        solutions: solutions_seen,
        nodes,
        best_cost,
        best_assignment,
        kept,
        wall,
        local_steals: agent_results.iter().map(|r| r.local_steals).sum(),
        remote_steals: agent_results.iter().map(|r| r.remote_steals).sum(),
        failed_steals: agent_results.iter().map(|r| r.failed_steals).sum(),
        steals_by_distance: {
            let mut h = StealHistogram::new();
            for r in &agent_results {
                h.merge(&r.steals_by_distance);
            }
            h
        },
        messages: shared.messages.load(Ordering::Relaxed),
        bound_msgs: shared.bound_msgs.load(Ordering::Relaxed),
        first_solution: {
            let ns = shared.win_ns.load(Ordering::Acquire);
            (ns != i64::MAX).then(|| Duration::from_nanos(ns as u64))
        },
        nodes_after_win: agent_results.iter().map(|r| r.nodes_after_win).sum(),
        abandoned_items: agent_results.iter().map(|r| r.abandoned).sum(),
        drain_steals: agent_results.iter().map(|r| r.drain_steals).sum(),
        thin_replies: agent_results.iter().map(|r| r.thin_replies).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macs_engine::seq::{solve_seq, SeqOptions};
    use macs_problems::{qap::QapInstance, qap_model, queens, QueensModel};

    #[test]
    fn queens_counts_match_sequential() {
        for n in [6usize, 7, 8] {
            let prob = queens(n, QueensModel::Pairwise);
            let seq = solve_seq(&prob, &SeqOptions::default());
            for cfg in [
                PaccsConfig::with_workers(1),
                PaccsConfig::with_workers(4),
                PaccsConfig::clustered(4, 2),
            ] {
                let out = paccs_solve(&prob, &cfg);
                assert_eq!(out.solutions, seq.solutions, "queens-{n}");
                assert!(out.nodes >= seq.nodes / 2);
            }
        }
    }

    #[test]
    fn qap_optimum_matches_sequential() {
        let inst = QapInstance::cube8_like(5);
        let prob = qap_model(&inst);
        let seq = solve_seq(&prob, &SeqOptions::default());
        for workers in [1usize, 3] {
            let out = paccs_solve(&prob, &PaccsConfig::with_workers(workers));
            assert_eq!(out.best_cost, seq.best_cost);
            let a = out.best_assignment.as_ref().unwrap();
            assert_eq!(inst.cost(&a[..8]), seq.best_cost.unwrap());
        }
    }

    #[test]
    fn hierarchical_run_counts_steal_classes() {
        let prob = queens(10, QueensModel::Pairwise);
        let seq = solve_seq(&prob, &SeqOptions::default());
        let cfg = PaccsConfig::clustered(4, 2);
        // Work distribution is timing-dependent; on a loaded host the
        // seeded agent can occasionally race through a small tree alone, so
        // allow a few attempts to observe stealing.
        let mut stole = false;
        for _ in 0..3 {
            let out = paccs_solve(&prob, &cfg);
            assert_eq!(out.solutions, seq.solutions);
            assert!(out.messages > 0);
            if out.local_steals + out.remote_steals > 0 {
                stole = true;
                break;
            }
        }
        assert!(
            stole,
            "no stealing observed in 3 runs of queens-10 × 4 agents"
        );
    }

    #[test]
    fn three_level_neighbourhoods_agree_with_sequential() {
        let prob = queens(8, QueensModel::Pairwise);
        let seq = solve_seq(&prob, &SeqOptions::default());
        // 2 nodes × 2 sockets × 2 cores: the sweep expands socket → node
        // → remote.
        let mut cfg = PaccsConfig::hierarchical(&[2, 2, 2], 1).unwrap();
        cfg.max_steal_chunk = 4;
        let out = paccs_solve(&prob, &cfg);
        assert_eq!(out.solutions, seq.solutions);
        assert_eq!(
            out.steals_by_distance.total(),
            out.local_steals + out.remote_steals,
            "histogram counts every steal"
        );
        assert!(PaccsConfig::hierarchical(&[2, 0], 1).is_err());
    }

    #[test]
    fn unsat_reports_zero() {
        let prob = queens(3, QueensModel::Pairwise);
        let out = paccs_solve(&prob, &PaccsConfig::with_workers(2));
        assert_eq!(out.solutions, 0);
        assert!(out.best_assignment.is_none());
    }

    #[test]
    fn first_solution_race_stops_early_with_a_valid_solution() {
        let prob = queens(9, QueensModel::Pairwise);
        let full = solve_seq(&prob, &SeqOptions::default());
        let mut cfg = PaccsConfig::clustered(4, 2);
        cfg.mode = macs_search::SearchMode::FirstSolution;
        let out = paccs_solve(&prob, &cfg);
        assert!(out.solutions >= 1, "a winner must be reported");
        let a = out.best_assignment.as_ref().expect("winning assignment");
        assert!(prob.check_assignment(a));
        assert!(
            out.nodes + out.abandoned_items < full.nodes,
            "the race must cut the enumeration short: {} + {} vs {}",
            out.nodes,
            out.abandoned_items,
            full.nodes
        );
        assert!(out.first_solution.is_some(), "win time recorded");
        assert!(out.first_solution.unwrap() <= out.wall);
    }

    #[test]
    fn race_on_unsat_instance_terminates_exhaustively() {
        let prob = queens(3, QueensModel::Pairwise);
        let mut cfg = PaccsConfig::with_workers(2);
        cfg.mode = macs_search::SearchMode::FirstSolution;
        let out = paccs_solve(&prob, &cfg);
        assert_eq!(out.solutions, 0);
        assert!(out.first_solution.is_none(), "no winner on unsat");
        assert_eq!(out.nodes_after_win, 0);
    }
}
