//! **PaCCS** — the baseline parallel constraint solver MaCS is compared
//! against (paper §IV, §VI).
//!
//! PaCCS (Pedro, 2012) predates MaCS and is implemented with MPI: "a
//! distinguished process initiates the search, collects solutions, detects
//! termination and returns answers", and load balancing is work stealing
//! where "the idle agent first tries to obtain work from an agent in its
//! immediate neighbourhood, constituted by the agents in the same
//! shared-memory system. Failing that, it then expands the considered
//! neighbourhood until it encompasses the whole parallel search system."
//!
//! This crate reproduces that architecture with two-sided message passing
//! (crossbeam channels standing in for MPI, cross-node messages charged to
//! the same [`Interconnect`](macs_gpi::Interconnect) model MaCS uses):
//!
//! * a **controller** collects solutions, redistributes bound improvements
//!   and broadcasts termination;
//! * **search agents** run the same propagate/split kernel as MaCS
//!   (`macs-engine` — the paper notes the two systems share their
//!   constraint-propagation implementation, which is why their sequential
//!   performance is comparable) over a plain private deque;
//! * an idle agent sends steal *requests* in neighbourhood order (same
//!   node first, then expanding) and blocks for each reply — the two-sided
//!   protocol whose extra hand-shakes are exactly what MaCS' one-sided
//!   design removes.

pub mod solver;

pub use solver::{paccs_solve, PaccsConfig, PaccsOutcome};
