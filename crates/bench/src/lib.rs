//! Shared harness code for regenerating every table and figure of the
//! paper's evaluation (§VI).
//!
//! Each `fig*`/`table*`/`ablation*` binary in `src/bin/` prints the same
//! rows/series the paper reports, produced by the discrete-event simulator
//! (for the 8–512-core series) or the threaded runtime (for host-scale
//! measurements). See EXPERIMENTS.md for the experiment-by-experiment
//! mapping and recorded outputs.

pub mod reference;

use macs_core::{CpOutput, CpProcessor, SearchMode};
use macs_engine::CompiledProblem;
use macs_gpi::{MachineTopology, Topology};
use macs_runtime::{WorkerState, NUM_STATES};
use macs_search::{BoundPolicy, ChunkPolicy};
use macs_sim::{simulate_macs, simulate_paccs, CostModel, FabricModel, SimConfig, SimReport};

/// The cross-bin flags, defined once so their wording is identical in
/// every bin's `--help` (before this helper each bin hand-rolled its
/// usage block and the common flags drifted). A bin lists exactly the
/// subset it actually parses — advertising a flag the bin ignores would
/// be worse than drift.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommonFlag {
    /// `--mode exhaustive|first-solution` (via [`mode_arg`]).
    Mode,
    /// `--shape AxBxC[:p]` (via [`shape_arg`]).
    Shape,
    /// `--bound-policy immediate|periodic[:k]|hierarchical` (via
    /// [`bound_policy_arg`]).
    BoundPolicy,
    /// `--chunk-policy static|distance[:base,factor]|adaptive` (via
    /// [`chunk_policy_arg`]).
    ChunkPolicy,
    /// `--fabric latency|contention[:PS[,CTRL[,HDR]]]` (via [`fabric_arg`]).
    Fabric,
    /// `--cost-model <path>` (via [`cost_model_arg`]).
    CostModel,
    /// `--detect-topo` (via [`detect_topo_flag`]).
    DetectTopo,
    /// `--full` (via [`full_scale`] / [`core_series`]).
    Full,
    /// `--xl` (via [`xl_scale`] / [`xl_cells`]).
    Xl,
}

impl CommonFlag {
    fn row(self) -> (&'static str, &'static str) {
        match self {
            CommonFlag::Mode => (
                "--mode <M>",
                "search mode for every backend: exhaustive or\nfirst-solution (satisfaction instances race to\nthe first solution) [default: exhaustive]",
            ),
            CommonFlag::Shape => (
                "--shape AxBxC[:p]",
                "machine shape (levels outermost-first, `:p` =\nnode prefix, default 1)",
            ),
            CommonFlag::BoundPolicy => (
                "--bound-policy <P>",
                "bound dissemination for all backends: immediate,\nperiodic[:k] or hierarchical",
            ),
            CommonFlag::ChunkPolicy => (
                "--chunk-policy <P>",
                "steal-chunk granularity for all backends: static,\ndistance[:base,factor] (reservation scales with the\nthief's topological distance) or adaptive",
            ),
            CommonFlag::Fabric => (
                "--fabric <F>",
                "steal-plane message pricing for the simulator:\nlatency (flat per-ring) or contention[:PS[,CTRL[,HDR]]]\n(finite links, FIFO queueing) [default: latency]",
            ),
            CommonFlag::CostModel => (
                "--cost-model <path>",
                "load the simulator's protocol costs from a\n`macs-cost-model v1` file (see the calibrate bin)\ninstead of the built-in paper constants",
            ),
            CommonFlag::DetectTopo => (
                "--detect-topo",
                "simulate this host's detected topology (Linux\nsysfs; flat fallback elsewhere) instead of the\ndeclared shapes",
            ),
            CommonFlag::Full => ("--full", "paper-scale series (up to 512 simulated cores)"),
            CommonFlag::Xl => (
                "--xl",
                "64k-core cells on depth-5/6 shapes, with divergence\ngates (exit non-zero if the pinned shape inverts)",
            ),
        }
    }
}

/// Compose a bin's `--help` text: its own flags first, then the uniform
/// rows for whichever `--mode` / `--shape` / `--bound-policy` /
/// `--chunk-policy` / `--full` flags the bin parses, and `-h` —
/// identically formatted everywhere. Pass the result to [`maybe_help`].
pub fn usage(bin: &str, about: &str, extra: &[(&str, &str)], common: &[CommonFlag]) -> String {
    let common: Vec<(&str, &str)> = common.iter().map(|c| c.row()).collect();
    let width = extra
        .iter()
        .chain(common.iter())
        .map(|(flag, _)| flag.len())
        .max()
        .unwrap_or(0)
        .max("-h, --help".len());
    let mut out = format!(
        "{bin} — {about}\n\nUSAGE:\n    cargo run --release -p macs-bench --bin {bin} [OPTIONS]\n\nOPTIONS:\n"
    );
    let mut row = |flag: &str, desc: &str| {
        for (i, line) in desc.lines().enumerate() {
            if i == 0 {
                out.push_str(&format!("    {flag:<width$}  {line}\n"));
            } else {
                out.push_str(&format!("    {:<width$}  {line}\n", ""));
            }
        }
    };
    for (flag, desc) in extra.iter().chain(common.iter()) {
        row(flag, desc);
    }
    row("-h, --help", "this text");
    out
}

/// The paper's cluster shape: 4 cores per node; fewer than 4 cores means a
/// single node.
pub fn topo_for(cores: usize) -> Topology {
    if cores >= 4 && cores.is_multiple_of(4) {
        Topology::clustered(cores, 4)
    } else {
        Topology::single_node(cores)
    }
}

/// A hierarchical shape with the same total: `cores` workers arranged as
/// nodes × 2 sockets × 4 cores (node boundary at the outer level), for
/// the distance-aware experiments. Falls back to [`topo_for`]'s shape
/// when `cores` doesn't fill at least one 8-core node.
pub fn deep_topo_for(cores: usize) -> MachineTopology {
    if cores >= 8 && cores.is_multiple_of(8) {
        MachineTopology::try_new(&[cores / 8, 2, 4], 1).expect("valid deep shape")
    } else {
        topo_for(cores).into()
    }
}

/// A depth-5 shape at `cores` total: `cores/32` pairs of node-pairs ×
/// 2 × 2 × 2 sockets × 4 cores, fabric above level 3 (`node_prefix` 2) —
/// so there are *two* remote ring levels and the distance-aware scan's
/// nearest-remote-first order actually has a choice to make. Falls back
/// to [`deep_topo_for`] when `cores` doesn't fill the shape.
pub fn deep5_topo_for(cores: usize) -> MachineTopology {
    if cores >= 64 && cores.is_multiple_of(32) {
        MachineTopology::try_new(&[cores / 32, 2, 2, 2, 4], 2).expect("valid deep5 shape")
    } else {
        deep_topo_for(cores)
    }
}

/// A depth-6 shape at `cores` total: one more intra-node level than
/// [`deep5_topo_for`] (`cores/64` × 2 × 2 × 2 × 2 × 4, `node_prefix` 2).
pub fn deep6_topo_for(cores: usize) -> MachineTopology {
    if cores >= 128 && cores.is_multiple_of(64) {
        MachineTopology::try_new(&[cores / 64, 2, 2, 2, 2, 4], 2).expect("valid deep6 shape")
    } else {
        deep5_topo_for(cores)
    }
}

/// Parse a `--shape` argument of the form `2x2x4` or `2x2x4:1`
/// (levels outermost-first, optional `:node_prefix`, default prefix 1).
/// All shape validation errors surface as readable messages, not panics.
pub fn parse_shape(s: &str) -> Result<MachineTopology, String> {
    let (dims, prefix) = match s.split_once(':') {
        Some((d, p)) => {
            let prefix = p
                .parse::<usize>()
                .map_err(|e| format!("bad node prefix {p:?} in shape {s:?}: {e}"))?;
            (d, prefix)
        }
        None => (s, 1),
    };
    let shape: Vec<usize> = dims
        .split('x')
        .map(|t| {
            t.parse::<usize>()
                .map_err(|e| format!("bad level extent {t:?} in shape {s:?}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    MachineTopology::try_new(&shape, prefix).map_err(|e| format!("invalid shape {s:?}: {e}"))
}

/// `--bound-policy immediate|periodic[:k]|hierarchical` from the process
/// arguments, if present (`periodic` defaults to a 32-node refresh
/// cadence). Malformed policies exit with a readable message (exit
/// code 2). See [`macs_search::bounds`] for what each policy does.
pub fn bound_policy_arg() -> Option<BoundPolicy> {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--bound-policy" {
            let Some(v) = args.get(i + 1) else {
                eprintln!("--bound-policy needs a value: immediate, periodic[:k] or hierarchical");
                std::process::exit(2);
            };
            match v.parse::<BoundPolicy>() {
                Ok(p) => return Some(p),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// `--chunk-policy static|distance[:base,factor]|adaptive` from the
/// process arguments, if present (`distance` defaults to `16,2`: the
/// static 16-item cap near, doubling to 32 at the machine diameter).
/// Malformed policies exit with a readable message (exit code 2). See
/// [`macs_search::batch`] for what each policy does.
pub fn chunk_policy_arg() -> Option<ChunkPolicy> {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--chunk-policy" {
            let Some(v) = args.get(i + 1) else {
                eprintln!(
                    "--chunk-policy needs a value: static, distance[:base,factor] or adaptive"
                );
                std::process::exit(2);
            };
            match v.parse::<ChunkPolicy>() {
                Ok(p) => return Some(p),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// `--fabric latency|contention[:PS[,CTRL[,HDR]]]` from the process
/// arguments, if present. Malformed models exit with a readable message
/// (exit code 2). See [`macs_sim::fabric`] for what each model prices.
pub fn fabric_arg() -> Option<FabricModel> {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--fabric" {
            let Some(v) = args.get(i + 1) else {
                eprintln!("--fabric needs a value: latency or contention[:PS[,CTRL[,HDR]]]");
                std::process::exit(2);
            };
            match v.parse::<FabricModel>() {
                Ok(m) => return Some(m),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// `--cost-model <path>` from the process arguments, if present: the
/// calibrated [`CostModel`] to run the simulator with (typically the
/// file the `calibrate` bin emitted). Unreadable or malformed files
/// exit with the codec's typed message (exit code 2).
pub fn cost_model_arg() -> Option<CostModel> {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--cost-model" {
            let Some(v) = args.get(i + 1) else {
                eprintln!("--cost-model needs a path to a `macs-cost-model v1` file");
                std::process::exit(2);
            };
            match CostModel::load(std::path::Path::new(v)) {
                Ok(m) => return Some(m),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// `--detect-topo` from the process arguments: this host's detected
/// [`MachineTopology`] (sysfs on Linux, flat `available_parallelism`
/// fallback elsewhere — detection never fails, see
/// `MachineTopology::detect`).
pub fn detect_topo_flag() -> Option<MachineTopology> {
    if std::env::args().any(|a| a == "--detect-topo") {
        Some(MachineTopology::detect())
    } else {
        None
    }
}

/// Apply the host-binding overrides to a built [`SimConfig`]: a
/// `--cost-model` file replaces the built-in constants and
/// `--detect-topo` replaces the declared shape with this host's. Bins
/// call this at every `SimConfig` construction site so one flag reaches
/// every cell of a sweep.
pub fn apply_host_overrides(cfg: &mut SimConfig) {
    if let Some(m) = cost_model_arg() {
        cfg.costs = m;
    }
    if let Some(t) = detect_topo_flag() {
        cfg.topology = t;
    }
}

/// Print `usage` and exit 0 when `--help`/`-h` was passed. Harness bins
/// call this first with [`usage`]'s output, so every flag — the per-bin
/// ones *and* the uniform `--mode`/`--shape`/`--bound-policy`/`--full`
/// block — is discoverable without reading the source.
pub fn maybe_help(usage: &str) {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        println!("{usage}");
        std::process::exit(0);
    }
}

/// `--mode exhaustive|first-solution` from the process arguments, if
/// present. Malformed modes exit with a readable message (exit code 2).
pub fn mode_arg() -> Option<SearchMode> {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--mode" {
            let Some(v) = args.get(i + 1) else {
                eprintln!("--mode needs a value: exhaustive or first-solution");
                std::process::exit(2);
            };
            match v.parse::<SearchMode>() {
                Ok(m) => return Some(m),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// `--shape AxBxC[:prefix]` from the process arguments, if present;
/// malformed shapes exit with a readable message (exit code 2).
pub fn shape_arg() -> Option<MachineTopology> {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--shape" {
            let Some(v) = args.get(i + 1) else {
                eprintln!("--shape needs a value, e.g. --shape 2x2x4:1");
                std::process::exit(2);
            };
            match parse_shape(v) {
                Ok(t) => return Some(t),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// Simulate MaCS solving `prob` under `cfg` (exhaustive).
pub fn sim_cp_macs(prob: &CompiledProblem, cfg: &SimConfig) -> SimReport<CpOutput> {
    sim_cp_macs_mode(prob, cfg, SearchMode::Exhaustive)
}

/// Simulate MaCS solving `prob` under `cfg` in the given search mode
/// (one solution is kept per worker so a race's winner is inspectable).
pub fn sim_cp_macs_mode(
    prob: &CompiledProblem,
    cfg: &SimConfig,
    mode: SearchMode,
) -> SimReport<CpOutput> {
    simulate_macs(
        cfg,
        prob.layout.store_words(),
        &[prob.root.as_words().to_vec()],
        |_| CpProcessor::new(prob, 1, mode),
    )
}

/// Simulate PaCCS solving `prob` under `cfg` (exhaustive).
pub fn sim_cp_paccs(prob: &CompiledProblem, cfg: &SimConfig) -> SimReport<CpOutput> {
    sim_cp_paccs_mode(prob, cfg, SearchMode::Exhaustive)
}

/// Simulate PaCCS solving `prob` under `cfg` in the given search mode.
pub fn sim_cp_paccs_mode(
    prob: &CompiledProblem,
    cfg: &SimConfig,
    mode: SearchMode,
) -> SimReport<CpOutput> {
    simulate_paccs(
        cfg,
        prob.layout.store_words(),
        &[prob.root.as_words().to_vec()],
        |_| CpProcessor::new(prob, 1, mode),
    )
}

/// Parse `--name value` from the process arguments.
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == format!("--{name}") {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                return v;
            }
        }
    }
    default
}

/// Validate a QAP sub-instance size from `--n`-style arguments with a
/// readable exit instead of a library panic.
pub fn qap_size_arg(name: &str, default: usize) -> usize {
    let n = arg(name, default);
    if !(2..=16).contains(&n) {
        eprintln!("--{name} must be in 2..=16 (got {n})");
        std::process::exit(2);
    }
    n
}

/// `--full` switches the harnesses from quick (minutes) to paper-scale
/// instances.
pub fn full_scale() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// The core counts of the paper's x-axes (quick mode stops at 128).
pub fn core_series() -> Vec<usize> {
    if full_scale() {
        vec![8, 16, 32, 64, 128, 256, 512]
    } else {
        vec![8, 16, 32, 64, 128]
    }
}

/// `--xl` switches the ablation bins to the 64k-core depth-5/6 cells
/// where ring effects diverge (and arms their divergence gates).
pub fn xl_scale() -> bool {
    std::env::args().any(|a| a == "--xl")
}

/// The `--xl` cells: (label, 64k-core machine) on the depth-5 and
/// depth-6 shapes. Ring effects that are noise at 512 cores — which
/// remote ring a steal lands on, how far a bound broadcast fans out —
/// separate cleanly here.
pub fn xl_cells() -> Vec<(&'static str, MachineTopology)> {
    vec![
        ("deep5-64k", deep5_topo_for(65_536)),
        ("deep6-64k", deep6_topo_for(65_536)),
    ]
}

/// Print the Fig. 3/5-style worker-state breakdown, one row per core
/// count.
pub fn print_state_table(rows: &[(usize, [f64; NUM_STATES], f64)]) {
    print!("{:>6}", "cores");
    for s in WorkerState::ALL {
        print!("  {:>16}", s.name());
    }
    println!("  {:>9}", "Overhead");
    for (cores, fr, overhead) in rows {
        print!("{cores:>6}");
        for f in fr {
            print!("  {:>15.2}%", f * 100.0);
        }
        println!("  {:>8.2}%", overhead * 100.0);
    }
}

/// One row of a paper-style work-stealing table (Tables I and II).
pub struct StealRow {
    pub cores: usize,
    pub total_nodes: u64,
    pub local_total: u64,
    pub local_failed: u64,
    pub remote_total: u64,
    pub remote_failed: u64,
}

/// Print Tables I/II with the paper's columns: total, per-core, failed and
/// failure rate for local and remote steals.
pub fn print_steal_table(title: &str, rows: &[StealRow]) {
    println!("{title}");
    println!(
        "{:>6} {:>12} | {:>9} {:>9} {:>7} {:>6} | {:>9} {:>9} {:>7} {:>6}",
        "Cores",
        "Total Nodes",
        "L.Total",
        "L.p/core",
        "L.Fail",
        "Rate",
        "R.Total",
        "R.p/core",
        "R.Fail",
        "Rate"
    );
    for r in rows {
        let lrate = pct(r.local_failed, r.local_total + r.local_failed);
        let rrate = pct(r.remote_failed, r.remote_total + r.remote_failed);
        println!(
            "{:>6} {:>12} | {:>9} {:>9.2} {:>7} {:>5.2}% | {:>9} {:>9.2} {:>7} {:>5.2}%",
            r.cores,
            r.total_nodes,
            r.local_total,
            r.local_total as f64 / r.cores as f64,
            r.local_failed,
            lrate,
            r.remote_total,
            r.remote_total as f64 / r.cores as f64,
            r.remote_failed,
            rrate,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_shape_accepts_levels_and_prefix() {
        let t = parse_shape("2x2x4").unwrap();
        assert_eq!(t.shape(), &[2, 2, 4]);
        assert_eq!(t.node_prefix(), 1);
        let t = parse_shape("2x2x4:2").unwrap();
        assert_eq!(t.node_prefix(), 2);
        assert_eq!(t.nodes(), 4);
        let t = parse_shape("8:0").unwrap();
        assert_eq!(t.levels(), 1);
        assert_eq!(t.nodes(), 1);
    }

    #[test]
    fn parse_shape_reports_readable_errors() {
        for bad in ["", "2xx4", "2x0x4", "axb", "2x2:9", "2x2:x"] {
            let err = parse_shape(bad).unwrap_err();
            assert!(err.contains(&format!("{bad:?}")), "{err}");
        }
    }

    #[test]
    fn usage_lists_the_common_flags_for_every_bin() {
        let u = usage(
            "demo",
            "does demo things.",
            &[("--n <N>", "a size")],
            &[
                CommonFlag::Mode,
                CommonFlag::Shape,
                CommonFlag::BoundPolicy,
                CommonFlag::Full,
            ],
        );
        for needle in [
            "--bin demo",
            "--n <N>",
            "--mode <M>",
            "--shape AxBxC[:p]",
            "--bound-policy <P>",
            "--full",
            "-h, --help",
        ] {
            assert!(u.contains(needle), "missing {needle:?} in:\n{u}");
        }
        // Bin flags come before the common block.
        assert!(u.find("--n <N>").unwrap() < u.find("--mode <M>").unwrap());
        // A bin that parses none of the common flags advertises none.
        let bare = usage("demo", "x", &[], &[]);
        assert!(
            !bare.contains("--mode") && !bare.contains("--full"),
            "{bare}"
        );
        assert!(bare.contains("-h, --help"));
    }

    #[test]
    fn deep_topo_preserves_the_core_count() {
        assert_eq!(deep_topo_for(64).total_workers(), 64);
        assert_eq!(deep_topo_for(64).levels(), 3);
        assert_eq!(deep_topo_for(4).levels(), 2);
        assert_eq!(deep_topo_for(1).total_workers(), 1);
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// One row of a Fig. 4/6-style scaling series.
#[derive(Clone, Copy, Debug)]
pub struct ScaleRow {
    pub cores: usize,
    pub seconds: f64,
    pub speedup: f64,
    pub efficiency: f64,
    pub mnodes_per_sec: f64,
}

/// Build a scaling row from a simulation report and the 1-core baseline.
pub fn scale_row<O>(cores: usize, base_s: f64, report: &SimReport<O>) -> ScaleRow {
    let seconds = report.makespan_ns as f64 / 1e9;
    let speedup = base_s / seconds;
    ScaleRow {
        cores,
        seconds,
        speedup,
        efficiency: speedup / cores as f64,
        mnodes_per_sec: report.total_items() as f64 / seconds / 1e6,
    }
}

/// Print one or more named scaling series side by side (speed-up,
/// efficiency and performance — the a/b/c panels of Fig. 4 and 6).
pub fn print_scaling(series: &[(&str, Vec<ScaleRow>)], ideal_mnodes_1core: f64) {
    println!("-- speed-up --");
    print!("{:>6}", "cores");
    for (name, _) in series {
        print!(" {name:>14}");
    }
    println!();
    for i in 0..series[0].1.len() {
        print!("{:>6}", series[0].1[i].cores);
        for (_, rows) in series {
            print!(" {:>14.2}", rows[i].speedup);
        }
        println!();
    }
    println!("-- efficiency --");
    for i in 0..series[0].1.len() {
        print!("{:>6}", series[0].1[i].cores);
        for (_, rows) in series {
            print!(" {:>13.1}%", rows[i].efficiency * 100.0);
        }
        println!();
    }
    println!("-- performance (Mnodes/s, ideal = cores × 1-core rate) --");
    for i in 0..series[0].1.len() {
        let cores = series[0].1[i].cores;
        print!(
            "{:>6} {:>10.2} (ideal)",
            cores,
            ideal_mnodes_1core * cores as f64
        );
        for (_, rows) in series {
            print!(" {:>12.2}", rows[i].mnodes_per_sec);
        }
        println!();
    }
}
