//! Frozen pre-optimisation propagation engine and node driver.
//!
//! `perf_record` measures this PR's sequential wins (word-parallel
//! propagation with wake filtering, scan hints, and the removal of the
//! hot-path allocations) by driving the *same* compiled problem through
//! two kernels built from the same crates:
//!
//! * the optimised path: [`macs_search::SearchKernel`] over the current
//!   [`macs_engine::Engine`];
//! * this module: a faithful snapshot of the engine and kernel behaviour
//!   *before* this PR, re-expressed against the current API.
//!
//! What the reference reproduces:
//!
//! * **wake-all scheduling** — the change-log drain ignores the
//!   changed-words mask and the assignment-only flag, re-queueing every
//!   watcher of every touched variable (the pre-PR `Vec<Vec<u32>>`
//!   watcher lists);
//! * **no scan hints** — [`ChangeLog::new`] keeps `min`/`max` scanning
//!   cells from word 0 / the last word;
//! * **seed-by-reconstitution** — the branch-variable header read goes
//!   through `Store::from_words(..).branch_var()`, heap-copying the whole
//!   store per node, exactly as the pre-PR kernel did;
//! * **value-list splitting** — the brancher materialises a `Vec<Val>` of
//!   the split domain per node (plus the extra whole-store copy of the
//!   old `DomainSplit`+`Max` path);
//! * **per-variable first-fail** — `choose_var` slices each cell through
//!   `layout.var_range` instead of walking the flat cell slab;
//! * **looping `neq_offset`** — the disequality propagator re-verifies
//!   until a pass sees no change (the current one proves a single
//!   directed pass reaches the fixpoint); frozen here as
//!   `neq_offset_ref`, every other propagator delegates to the shared
//!   `Propag::run`;
//! * **unconditional phase timers** — the pre-PR kernel stamped
//!   `Instant::now` around propagation and splitting on every node with
//!   no way to opt out; the optimised kernel made timing switchable.
//!
//! What it deliberately shares with the optimised path: the store arena
//! (predates this PR) and the `bits` kernels themselves (the masked
//! set operations replaced the old word loops in place, so both sides
//! use the same word code — the comparison isolates the engine-level
//! changes, not the `u64` arithmetic).
//!
//! Node expansion order is identical on both sides by construction, which
//! `perf_record` checks by comparing node and solution counts.

use std::collections::VecDeque;
use std::time::Instant;

use macs_domain::{bits, Store, StoreLayout, StoreView, StoreViewMut, Val, VarId};
use macs_engine::propag::Scratch;
use macs_engine::{
    BranchKind, ChangeLog, CompiledProblem, Failed, PropOutcome, PropState, Propag, ScheduleSeed,
    ValSelect, VarSelect,
};
use macs_search::{IncumbentSource, KernelTimers, StoreSlab, WorkItem};

/// The pre-PR `x ≠ y + c` body: loop until a verification pass changes
/// nothing. The optimised engine replaced this with one directed pass.
fn neq_offset_ref(st: &mut PropState<'_>, x: VarId, y: VarId, c: i64) -> Result<(), Failed> {
    loop {
        let mut changed = false;
        if let Some(vy) = st.value(y) {
            let forbidden = vy as i64 + c;
            if (0..=st.layout().max_value() as i64).contains(&forbidden) {
                changed |= st.remove(x, forbidden as Val)?;
            }
        }
        if let Some(vx) = st.value(x) {
            let forbidden = vx as i64 - c;
            if (0..=st.layout().max_value() as i64).contains(&forbidden) {
                changed |= st.remove(y, forbidden as Val)?;
            }
        }
        if !changed {
            return Ok(());
        }
    }
}

/// The pre-PR fixpoint engine: same queue discipline as
/// [`macs_engine::Engine`], wake-all drain, hint-free change log.
pub struct RefEngine {
    queue: VecDeque<u32>,
    queued: Vec<bool>,
    log: ChangeLog,
    scratch: Scratch,
    /// Individual propagator executions (the wake-filtering win shows up
    /// here: fewer runs for the same fixpoint).
    pub runs: u64,
}

impl RefEngine {
    pub fn new(prob: &CompiledProblem) -> Self {
        RefEngine {
            queue: VecDeque::with_capacity(prob.props.len()),
            queued: vec![false; prob.props.len()],
            log: ChangeLog::new(prob.layout.num_vars()),
            scratch: Scratch::for_words(prob.layout.words_per_var()),
            runs: 0,
        }
    }

    #[inline]
    fn enqueue(&mut self, p: u32) {
        if !self.queued[p as usize] {
            self.queued[p as usize] = true;
            self.queue.push_back(p);
        }
    }

    /// Pre-PR propagation: identical fixpoint, unfiltered rescheduling.
    pub fn propagate(
        &mut self,
        prob: &CompiledProblem,
        words: &mut [u64],
        incumbent: i64,
        seed: ScheduleSeed,
    ) -> PropOutcome {
        for &p in &self.queue {
            self.queued[p as usize] = false;
        }
        self.queue.clear();
        self.log.clear();
        match seed {
            ScheduleSeed::All => {
                for p in 0..prob.props.len() as u32 {
                    self.enqueue(p);
                }
            }
            ScheduleSeed::Var(v) => {
                for i in 0..prob.watchers[v].len() {
                    self.enqueue(prob.watchers[v][i].prop);
                }
                if prob.objective.is_some() {
                    self.enqueue(prob.props.len() as u32 - 1);
                }
            }
        }
        while let Some(p) = self.queue.pop_front() {
            self.queued[p as usize] = false;
            self.runs += 1;
            let mut st = PropState::new(&prob.layout, words, &mut self.log, incumbent);
            // Route `≠` through the frozen looping body; everything else is
            // byte-for-byte the shared propagator code.
            let res = match prob.props[p as usize] {
                Propag::NeqOffset { x, y, c } => neq_offset_ref(&mut st, x, y, c),
                ref prop => prop.run(&mut st, &mut self.scratch, &prob.objective),
            };
            if res.is_err() {
                return PropOutcome::Failed;
            }
            let queue = &mut self.queue;
            let queued = &mut self.queued;
            // Wake-all: mask and assignment information discarded.
            self.log.drain(|v, _mask, _assigned| {
                for w in &prob.watchers[v] {
                    if w.prop != p && !queued[w.prop as usize] {
                        queued[w.prop as usize] = true;
                        queue.push_back(w.prop);
                    }
                }
            });
        }
        PropOutcome::Fixpoint
    }
}

/// Pre-PR variable selection: per-variable cell slicing for both
/// heuristics.
fn choose_var_ref(b: &macs_engine::Brancher, layout: &StoreLayout, words: &[u64]) -> Option<VarId> {
    match b.var {
        VarSelect::InputOrder => {
            (0..layout.num_vars()).find(|&v| !bits::is_singleton(&words[layout.var_range(v)]))
        }
        VarSelect::FirstFail => {
            let mut best: Option<(u32, VarId)> = None;
            for v in 0..layout.num_vars() {
                let sz = bits::count(&words[layout.var_range(v)]);
                if sz > 1 && best.map(|(b, _)| sz < b).unwrap_or(true) {
                    best = Some((sz, v));
                    if sz == 2 {
                        break;
                    }
                }
            }
            best.map(|(_, v)| v)
        }
    }
}

/// Pre-PR splitting: collect the domain into a `Vec<Val>` and derive the
/// children from the list (one heap allocation per split; two for the
/// old `DomainSplit`+`Max` path).
fn split_ref(
    b: &macs_engine::Brancher,
    prob: &CompiledProblem,
    parent: &[u64],
    scratch: &mut [u64],
    mut emit: impl FnMut(&[u64]),
    var: VarId,
) -> usize {
    let layout = &prob.layout;
    let depth = (parent[0] & 0xffff_ffff) as u32 + 1;

    let mut values: Vec<Val> = bits::iter(&parent[layout.var_range(var)]).collect();
    if b.val == ValSelect::Max {
        values.reverse();
    }

    match b.kind {
        BranchKind::Eager => {
            for &v in &values {
                scratch.copy_from_slice(parent);
                let mut c = StoreViewMut::new(layout, scratch);
                bits::keep_only(c.dom_mut(var), v);
                c.set_depth(depth);
                c.set_branch_var(Some(var));
                emit(scratch);
            }
            values.len()
        }
        BranchKind::Binary => {
            let v = values[0];
            scratch.copy_from_slice(parent);
            let mut left = StoreViewMut::new(layout, scratch);
            bits::keep_only(left.dom_mut(var), v);
            left.set_depth(depth);
            left.set_branch_var(Some(var));
            emit(scratch);

            scratch.copy_from_slice(parent);
            let mut right = StoreViewMut::new(layout, scratch);
            bits::remove(right.dom_mut(var), v);
            right.set_depth(depth);
            right.set_branch_var(Some(var));
            emit(scratch);
            2
        }
        BranchKind::DomainSplit => {
            let mut asc = values;
            if b.val == ValSelect::Max {
                asc.reverse();
            }
            let mid = asc[(asc.len() - 1) / 2];

            scratch.copy_from_slice(parent);
            let mut lo = StoreViewMut::new(layout, scratch);
            bits::remove_above(lo.dom_mut(var), mid);
            lo.set_depth(depth);
            lo.set_branch_var(Some(var));
            let lo_first = b.val != ValSelect::Max;
            if lo_first {
                emit(scratch);
                scratch.copy_from_slice(parent);
                let mut hi = StoreViewMut::new(layout, scratch);
                bits::remove_below(hi.dom_mut(var), mid + 1);
                hi.set_depth(depth);
                hi.set_branch_var(Some(var));
                emit(scratch);
            } else {
                let mut hi_buf = parent.to_vec();
                let mut hi = StoreViewMut::new(layout, &mut hi_buf);
                bits::remove_below(hi.dom_mut(var), mid + 1);
                hi.set_depth(depth);
                hi.set_branch_var(Some(var));
                emit(&hi_buf);
                emit(scratch);
            }
            2
        }
    }
}

/// What one reference step did (mirrors
/// [`macs_search::StepOutcome`] without the solution payload —
/// `perf_record` only counts).
pub enum RefStep {
    Failed,
    /// Complete assignment; its cost (if optimising) was offered to the
    /// incumbent. `true` iff it improved (or the problem is satisfaction).
    Solution(bool),
    Children(usize),
}

/// The pre-PR node kernel: arena-backed like the optimised one, but with
/// the allocation-heavy seed/choose/split behaviours and [`RefEngine`].
pub struct RefKernel<'a> {
    prob: &'a CompiledProblem,
    engine: RefEngine,
    scratch: Vec<u64>,
    children: Vec<WorkItem>,
    slab: StoreSlab,
    /// Pre-PR phase timers: unconditional, stamped on every node.
    timers: KernelTimers,
}

impl<'a> RefKernel<'a> {
    pub fn new(prob: &'a CompiledProblem) -> Self {
        let words = prob.layout.store_words();
        RefKernel {
            prob,
            engine: RefEngine::new(prob),
            scratch: vec![0u64; words],
            children: Vec::new(),
            slab: StoreSlab::new(words),
            timers: KernelTimers::default(),
        }
    }

    /// Accumulated phase timers, resetting them (pre-PR API).
    pub fn take_timers(&mut self) -> KernelTimers {
        std::mem::take(&mut self.timers)
    }

    pub fn alloc_root(&mut self) -> WorkItem {
        let root = self.prob.root.as_words().to_vec();
        self.slab.alloc_copy(&root)
    }

    pub fn prop_runs(&self) -> u64 {
        self.engine.runs
    }

    #[inline]
    pub fn recycle(&mut self, buf: WorkItem) {
        self.slab.recycle(buf);
    }

    pub fn step<I: IncumbentSource + ?Sized>(&mut self, buf: &mut [u64], inc: &I) -> RefStep {
        let prob = self.prob;
        let layout = &prob.layout;
        let bound = if prob.objective.is_some() {
            inc.bound()
        } else {
            i64::MAX
        };
        // Pre-PR seed read: reconstitute the store to inspect one header
        // word.
        let seed = match Store::from_words(layout, buf).branch_var() {
            Some(v) => ScheduleSeed::Var(v),
            None => ScheduleSeed::All,
        };
        let t0 = Instant::now();
        let failed = self.engine.propagate(prob, buf, bound, seed) == PropOutcome::Failed;
        self.timers.propagate += t0.elapsed();
        if failed {
            return RefStep::Failed;
        }
        let t0 = Instant::now();
        let Some(var) = choose_var_ref(&prob.brancher, layout, buf) else {
            self.timers.split += t0.elapsed();
            let view = StoreView::new(layout, buf);
            let improved = match prob.objective.cost(view) {
                Some(c) => inc.offer(c),
                None => true,
            };
            return RefStep::Solution(improved);
        };
        let slab = &mut self.slab;
        let children = &mut self.children;
        let n = split_ref(
            &prob.brancher,
            prob,
            buf,
            &mut self.scratch,
            |c| children.push(slab.alloc_copy(c)),
            var,
        );
        for c in children.iter_mut() {
            c[1] = bound as u64;
        }
        self.timers.split += t0.elapsed();
        RefStep::Children(n)
    }

    /// Move the staged children onto the back of a LIFO work queue in
    /// reverse exploration order (pop order = exploration order).
    pub fn push_children(&mut self, stack: &mut VecDeque<WorkItem>) {
        while let Some(c) = self.children.pop() {
            stack.push_back(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macs_problems::{queens, QueensModel};
    use macs_search::{NoBound, SearchKernel, StepOutcome};

    /// The reference kernel and the optimised kernel must walk the same
    /// tree: same node count, same solution count, node for node.
    #[test]
    fn reference_walks_the_same_tree_as_the_optimised_kernel() {
        let prob = queens(8, QueensModel::Pairwise);

        let mut refk = RefKernel::new(&prob);
        let mut stack: VecDeque<WorkItem> = VecDeque::new();
        let root = refk.alloc_root();
        stack.push_back(root);
        let (mut ref_nodes, mut ref_sols) = (0u64, 0u64);
        while let Some(mut store) = stack.pop_back() {
            ref_nodes += 1;
            match refk.step(&mut store, &NoBound) {
                RefStep::Failed => {}
                RefStep::Solution(_) => ref_sols += 1,
                RefStep::Children(_) => refk.push_children(&mut stack),
            }
            refk.recycle(store);
        }

        let mut kernel = SearchKernel::new(&prob);
        let mut stack: VecDeque<WorkItem> = VecDeque::new();
        let root = kernel.alloc_root();
        stack.push_back(root);
        let (mut nodes, mut sols) = (0u64, 0u64);
        while let Some(mut store) = stack.pop_back() {
            nodes += 1;
            match kernel.step(&mut store, &NoBound) {
                StepOutcome::Failed => {}
                StepOutcome::Solution(_) => sols += 1,
                StepOutcome::Children(_) => kernel.push_children(&mut stack),
            }
            kernel.recycle(store);
        }

        assert_eq!(ref_sols, 92, "queens-8");
        assert_eq!((ref_nodes, ref_sols), (nodes, sols));
        // The whole point: the filtered engine reaches the same fixpoints
        // with strictly fewer propagator executions.
        assert!(
            kernel.prop_runs() < refk.prop_runs(),
            "filtered runs {} must undercut wake-all runs {}",
            kernel.prop_runs(),
            refk.prop_runs()
        );
    }
}
