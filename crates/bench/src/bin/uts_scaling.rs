//! Reference \[1\] — the UTS benchmark that the MaCS pool/load balancer was
//! built on: scaling of pure tree search with no constraint work.

use macs_bench::{arg, core_series, topo_for};
use macs_sim::{simulate_macs, CostModel, SimConfig};
use macs_uts::{uts_sequential, GeoLaw, TreeShape, UtsProcessor, SLOT_WORDS};

fn main() {
    macs_bench::maybe_help(&macs_bench::usage(
        "uts_scaling",
        "UTS speed-up/efficiency series (reference [1]: pure tree search,\nno constraint work).",
        &[
            ("--seed <N>", "tree seed [default: 3]"),
            ("--geo", "geometric tree instead of the binomial default"),
            ("--law <L>", "geometric shape law: linear, fixed or cyclic"),
            ("--b0 <F>", "geometric root branching [default: 4.0]"),
            ("--depth <N>", "geometric depth bound gen_mx [default: 14]"),
        ],
        &[macs_bench::CommonFlag::Full],
    ));
    // Default: the near-critical binomial tree (the classic UTS stress
    // shape); pass --geo with --law/--b0/--depth for a geometric tree.
    let seed: u32 = arg("seed", 3);
    let shape = if std::env::args().any(|a| a == "--geo") {
        TreeShape::Geometric {
            b0: arg("b0", 4.0),
            gen_mx: arg("depth", 14),
            law: arg("law", GeoLaw::Linear),
        }
    } else {
        TreeShape::medium_bin(seed)
    };
    let reference = uts_sequential(shape, seed);
    println!(
        "UTS tree {shape:?}: {} nodes, {} leaves, depth {}\n",
        reference.nodes, reference.leaves, reference.max_depth
    );

    let mut base_cfg = SimConfig::new(topo_for(1));
    base_cfg.costs = CostModel::woodcrest_ib(1_500); // UTS nodes are cheap
    let base = simulate_macs(
        &base_cfg,
        SLOT_WORDS,
        &[UtsProcessor::root_item(seed)],
        |_| UtsProcessor::new(shape),
    );
    let base_s = base.makespan_ns as f64 / 1e9;

    println!(
        "{:>6} {:>11} {:>11} {:>9} {:>9} {:>9}",
        "cores", "speed-up", "efficiency", "l.steals", "r.steals", "failed"
    );
    for cores in core_series() {
        let mut cfg = SimConfig::new(topo_for(cores));
        cfg.costs = CostModel::woodcrest_ib(1_500);
        let r = simulate_macs(&cfg, SLOT_WORDS, &[UtsProcessor::root_item(seed)], |_| {
            UtsProcessor::new(shape)
        });
        assert_eq!(r.total_items(), reference.nodes, "tree conserved");
        let (lo, lf, ro, rf) = r.steal_totals();
        let s = base_s / (r.makespan_ns as f64 / 1e9);
        println!(
            "{cores:>6} {s:>11.2} {:>10.1}% {lo:>9} {ro:>9} {:>9}",
            100.0 * s / cores as f64,
            lf + rf
        );
    }
}
