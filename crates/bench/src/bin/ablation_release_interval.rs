//! §VI — the MaCS(default) → MaCS(best) improvement: "simply based on the
//! reduction of the number of (extraneous) release operations". Sweeps the
//! work release interval and reports releases, overhead and efficiency.

use macs_bench::{arg, sim_cp_macs, topo_for};
use macs_problems::{queens, QueensModel};
use macs_runtime::{ReleasePolicy, WorkerState};
use macs_sim::{CostModel, SimConfig};

fn main() {
    macs_bench::maybe_help(&macs_bench::usage(
        "ablation_release_interval",
        "work-release-interval sweep: the MaCS(default) → MaCS(best)\nimprovement of §VI.",
        &[
            ("--n <N>", "queens size [default: 12]"),
            ("--cores <N>", "simulated cores [default: 64]"),
        ],
        &[
            macs_bench::CommonFlag::CostModel,
            macs_bench::CommonFlag::DetectTopo,
        ],
    ));
    let n: usize = arg("n", 12);
    let cores: usize = arg("cores", 64);
    let prob = queens(n, QueensModel::Pairwise);

    let mut base_cfg = SimConfig::new(topo_for(1));
    base_cfg.costs = CostModel::paper_queens();
    if let Some(m) = macs_bench::cost_model_arg() {
        base_cfg.costs = m;
    }
    let base_s = sim_cp_macs(&prob, &base_cfg).makespan_ns as f64 / 1e9;

    println!("Release-interval ablation, queens-{n} @ {cores} simulated cores\n");
    println!(
        "{:>9} {:>10} {:>12} {:>11} {:>11}",
        "interval", "releases", "Releasing%", "speed-up", "efficiency"
    );
    for interval in [1u32, 4, 16, 32, 128] {
        let mut cfg = SimConfig::new(topo_for(cores));
        cfg.costs = CostModel::paper_queens();
        macs_bench::apply_host_overrides(&mut cfg);
        cfg.release = ReleasePolicy {
            interval,
            ..ReleasePolicy::default()
        };
        let r = sim_cp_macs(&prob, &cfg);
        let releases: u64 = r.workers.iter().map(|w| w.releases).sum();
        let rel_frac = r.state_fractions()[WorkerState::Releasing as usize];
        let s = base_s / (r.makespan_ns as f64 / 1e9);
        println!(
            "{interval:>9} {releases:>10} {:>11.2}% {:>11.2} {:>10.1}%",
            rel_frac * 100.0,
            s,
            100.0 * s / cores as f64
        );
    }
    println!(
        "\nPaper shape: fewer releases → lower Releasing overhead → higher efficiency,\n\
              until the interval is so large that thieves find empty shared regions."
    );
}
