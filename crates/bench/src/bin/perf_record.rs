//! The perf trajectory recorder.
//!
//! Two trajectories live here:
//!
//! * the PR-6 record (`BENCH_6.json`, the default mode): sequential node
//!   throughput (optimised kernel vs the frozen pre-PR reference),
//!   work-pool steal latency (lock-free vs mutex baseline), and
//!   propagation filter throughput;
//! * the PR-8 record (`BENCH_8.json`, via `--sim`): simulator events/sec
//!   and peak RSS per scale point — queens-14 at 4k→262k simulated cores
//!   under both fabric models, plus esc16e\[11\] and UTS completeness
//!   rows at 64k — with a same-seed determinism double-run at every
//!   scale point (hard fail on any trace divergence);
//! * the PR-9 record (`BENCH_9.json`, via `--service`): the multi-tenant
//!   solve service on the simulator backend — throughput and sojourn
//!   percentiles per scale point under both lease policies, 32 → 512
//!   simulated cores up to 64 tenants, with a same-seed determinism
//!   double-run at every point. The tracked trajectory is the set of
//!   elastic/static policy ratios, which live entirely in virtual time
//!   and are therefore machine-independent.
//!
//! Modes:
//!
//! * default — measure everything (medians of `--runs` repetitions for
//!   the throughput metrics) and write the JSON record;
//! * `--check <file>` — measure, then compare the machine-independent
//!   ratios against a previously committed record; exit 1 on a >10%
//!   regression. For the PR-6 record those are the optimised/reference
//!   speed-ups; for `--sim` they are the events/sec ratios of each scale
//!   point against the 4096-core base (how throughput *scales* is a
//!   property of the event core; absolute events/sec is the host's).
//!
//! The node budgets restart the depth-first walk from the root if a tree
//! is exhausted early; both kernels share the restart logic, so they
//! always expand identical node sequences (checked at startup on small
//! full trees).

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use macs_bench::reference::{RefEngine, RefKernel, RefStep};
use macs_bench::{arg, cost_model_arg, maybe_help, sim_cp_macs, usage};
use macs_domain::bits;
use macs_engine::{CompiledProblem, Engine, ScheduleSeed};
use macs_gpi::MachineTopology;
use macs_pool::{LockedPool, SplitPool};
use macs_problems::{qap::QapInstance, qap_model, queens, QueensModel};
use macs_runtime::Topology;
use macs_search::{LocalIncumbent, NoBound, SearchKernel, StepOutcome, WorkItem};
use macs_service::{
    generate, JobScheduler, LeasePolicy, ServiceConfig, SimBackend, WorkloadConfig,
};
use macs_sim::{simulate_macs, CostModel, FabricModel, SimConfig};
use macs_uts::{TreeShape, UtsProcessor, SLOT_WORDS};

// ---------------------------------------------------------------------------
// sequential node throughput
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, Default)]
struct Drive {
    nodes: u64,
    solutions: u64,
    prop_runs: u64,
    secs: f64,
}

/// Expand up to `budget` nodes depth-first through the optimised kernel.
fn drive_opt(prob: &CompiledProblem, budget: u64, optimise: bool) -> Drive {
    let mut kernel = SearchKernel::new(prob);
    // Throughput run: nothing reads the phase timers here, so take the
    // timing-off fast path (the reference kernel has no such switch).
    kernel.set_timing(false);
    let inc = LocalIncumbent::new();
    let mut stack: VecDeque<WorkItem> = VecDeque::new();
    let root = kernel.alloc_root();
    stack.push_back(root);
    let mut out = Drive::default();
    let t0 = Instant::now();
    while out.nodes < budget {
        let Some(mut store) = stack.pop_back() else {
            if budget == u64::MAX {
                break; // unbounded budget = run the whole tree once
            }
            let root = kernel.alloc_root();
            stack.push_back(root);
            continue;
        };
        out.nodes += 1;
        let step = if optimise {
            kernel.step(&mut store, &inc)
        } else {
            kernel.step(&mut store, &NoBound)
        };
        match step {
            StepOutcome::Failed => {}
            StepOutcome::Solution(s) => {
                if s.cost.is_none() || s.improved {
                    out.solutions += 1;
                }
            }
            StepOutcome::Children(_) => kernel.push_children(&mut stack),
        }
        kernel.recycle(store);
    }
    out.secs = t0.elapsed().as_secs_f64();
    out.prop_runs = kernel.prop_runs();
    out
}

/// The same walk through the frozen pre-PR reference kernel.
fn drive_ref(prob: &CompiledProblem, budget: u64, optimise: bool) -> Drive {
    let mut kernel = RefKernel::new(prob);
    let inc = LocalIncumbent::new();
    let mut stack: VecDeque<WorkItem> = VecDeque::new();
    let root = kernel.alloc_root();
    stack.push_back(root);
    let mut out = Drive::default();
    let t0 = Instant::now();
    while out.nodes < budget {
        let Some(mut store) = stack.pop_back() else {
            if budget == u64::MAX {
                break; // unbounded budget = run the whole tree once
            }
            let root = kernel.alloc_root();
            stack.push_back(root);
            continue;
        };
        out.nodes += 1;
        let step = if optimise {
            kernel.step(&mut store, &inc)
        } else {
            kernel.step(&mut store, &NoBound)
        };
        match step {
            RefStep::Failed => {}
            RefStep::Solution(improved) => {
                if improved {
                    out.solutions += 1;
                }
            }
            RefStep::Children(_) => kernel.push_children(&mut stack),
        }
        kernel.recycle(store);
    }
    out.secs = t0.elapsed().as_secs_f64();
    out.prop_runs = kernel.prop_runs();
    out
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

#[derive(Debug)]
struct SeqRecord {
    nodes: u64,
    opt_nodes_per_sec: f64,
    ref_nodes_per_sec: f64,
    speedup: f64,
    opt_prop_runs: u64,
    ref_prop_runs: u64,
}

fn measure_seq(prob: &CompiledProblem, budget: u64, optimise: bool, runs: usize) -> SeqRecord {
    let mut opt = Vec::with_capacity(runs);
    let mut refr = Vec::with_capacity(runs);
    let (mut opt_runs, mut ref_runs) = (0, 0);
    for _ in 0..runs {
        let o = drive_opt(prob, budget, optimise);
        let r = drive_ref(prob, budget, optimise);
        assert_eq!(
            (o.nodes, o.solutions),
            (r.nodes, r.solutions),
            "kernels diverged on {}",
            prob.name
        );
        opt.push(o.nodes as f64 / o.secs);
        refr.push(r.nodes as f64 / r.secs);
        opt_runs = o.prop_runs;
        ref_runs = r.prop_runs;
    }
    let o = median(&mut opt);
    let r = median(&mut refr);
    SeqRecord {
        nodes: budget,
        opt_nodes_per_sec: o,
        ref_nodes_per_sec: r,
        speedup: o / r,
        opt_prop_runs: opt_runs,
        ref_prop_runs: ref_runs,
    }
}

// ---------------------------------------------------------------------------
// propagation filter throughput
// ---------------------------------------------------------------------------

fn domain_popcount(prob: &CompiledProblem, words: &[u64]) -> u64 {
    let l = &prob.layout;
    (0..l.num_vars())
        .map(|v| bits::count(&words[l.var_range(v)]) as u64)
        .sum()
}

/// Filtered values per second when re-propagating the first branching
/// decision of queens-n (alldifferent model): assign queen 0, seed the
/// queue from that variable, count the values the fixpoint removes.
fn prop_filter_throughput(prob: &CompiledProblem, iters: u64, reference: bool) -> f64 {
    let mut engine = Engine::new(prob);
    let mut ref_engine = RefEngine::new(prob);
    let mut store = prob.root.clone();
    let mut filtered = 0u64;
    let t0 = Instant::now();
    for _ in 0..iters {
        store.copy_from_words(prob.root.as_words());
        bits::keep_only(store.dom_mut(&prob.layout, 0), 0);
        let before = domain_popcount(prob, store.as_words());
        let out = if reference {
            ref_engine.propagate(prob, store.as_words_mut(), i64::MAX, ScheduleSeed::Var(0))
        } else {
            engine.propagate(prob, store.as_words_mut(), i64::MAX, ScheduleSeed::Var(0))
        };
        assert_eq!(out, macs_engine::PropOutcome::Fixpoint);
        filtered += before - domain_popcount(prob, store.as_words());
    }
    filtered as f64 / t0.elapsed().as_secs_f64()
}

// ---------------------------------------------------------------------------
// steal latency
// ---------------------------------------------------------------------------

/// The two pool variants behind one face so the latency harness is shared.
trait BenchPool: Sync {
    fn push(&self, item: &[u64]) -> bool;
    fn pop_private(&self, dst: &mut [u64]) -> bool;
    fn release(&self, k: u64) -> u64;
    fn steal_up_to(&self, max: u64) -> u64;
}

impl BenchPool for SplitPool {
    fn push(&self, item: &[u64]) -> bool {
        SplitPool::push(self, item)
    }
    fn pop_private(&self, dst: &mut [u64]) -> bool {
        SplitPool::pop_private(self, dst)
    }
    fn release(&self, k: u64) -> u64 {
        SplitPool::release(self, k)
    }
    fn steal_up_to(&self, max: u64) -> u64 {
        self.steal(max, |_| {})
    }
}

impl BenchPool for LockedPool {
    fn push(&self, item: &[u64]) -> bool {
        LockedPool::push(self, item)
    }
    fn pop_private(&self, dst: &mut [u64]) -> bool {
        LockedPool::pop_private(self, dst)
    }
    fn release(&self, k: u64) -> u64 {
        LockedPool::release(self, k)
    }
    fn steal_up_to(&self, max: u64) -> u64 {
        self.steal(max, |_| {})
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Latency {
    p50_ns: u64,
    p99_ns: u64,
    steals: u64,
}

/// One owner churns push/release/pop against `threads − 1` thieves, each
/// timing its successful `steal` calls. Thread counts above the host's
/// parallelism run oversubscribed — equally for both pool variants, so
/// the comparison stays apples-to-apples.
fn steal_latency<P: BenchPool>(pool: &P, threads: usize, dur: Duration) -> Latency {
    use std::sync::atomic::{AtomicBool, Ordering};
    let stop = AtomicBool::new(false);
    let slot_words = 18; // queens-14 store: 4 header + 14 cells
    let item = vec![1u64; slot_words];
    let mut samples: Vec<Vec<u64>> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..threads.saturating_sub(1) {
            handles.push(s.spawn(|| {
                let mut ns: Vec<u64> = Vec::with_capacity(1 << 14);
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    let n = pool.steal_up_to(4);
                    if n > 0 {
                        ns.push(t0.elapsed().as_nanos() as u64);
                    } else {
                        std::thread::yield_now();
                    }
                }
                ns
            }));
        }
        // Owner loop: keep the shared region stocked.
        let mut out = vec![0u64; slot_words];
        let deadline = Instant::now() + dur;
        while Instant::now() < deadline {
            for _ in 0..8 {
                if !pool.push(&item) {
                    pool.pop_private(&mut out);
                }
            }
            pool.release(8);
            pool.pop_private(&mut out);
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            samples.push(h.join().expect("thief panicked"));
        }
    });
    let mut all: Vec<u64> = samples.into_iter().flatten().collect();
    if all.is_empty() {
        return Latency::default();
    }
    all.sort_unstable();
    Latency {
        p50_ns: all[all.len() / 2],
        p99_ns: all[(all.len() * 99) / 100],
        steals: all.len() as u64,
    }
}

fn latency_pair(threads: usize, dur: Duration) -> (Latency, Latency) {
    let lf = SplitPool::new(1024, 18);
    let lk = LockedPool::new(1024, 18);
    (
        steal_latency(&lf, threads, dur),
        steal_latency(&lk, threads, dur),
    )
}

// ---------------------------------------------------------------------------
// record I/O (hand-rolled JSON: the repo deliberately has no serde)
// ---------------------------------------------------------------------------

fn fmt_latency(l: &Latency) -> String {
    format!(
        "{{\"p50_ns\": {}, \"p99_ns\": {}, \"steals\": {}}}",
        l.p50_ns, l.p99_ns, l.steals
    )
}

fn fmt_seq(s: &SeqRecord) -> String {
    format!(
        "{{\n      \"nodes\": {},\n      \"optimized_nodes_per_sec\": {:.0},\n      \"reference_nodes_per_sec\": {:.0},\n      \"speedup_vs_reference\": {:.3},\n      \"optimized_prop_runs\": {},\n      \"reference_prop_runs\": {}\n    }}",
        s.nodes,
        s.opt_nodes_per_sec,
        s.ref_nodes_per_sec,
        s.speedup,
        s.opt_prop_runs,
        s.ref_prop_runs
    )
}

/// Pull `"key": <number>` out of the section of `text` that follows
/// `section` (enough JSON parsing for the format this bin writes).
fn json_number_after(text: &str, section: &str, key: &str) -> Option<f64> {
    let start = text.find(&format!("\"{section}\""))?;
    let rest = &text[start..];
    let k = rest.find(&format!("\"{key}\""))?;
    let after = &rest[k..];
    let colon = after.find(':')?;
    let tail = after[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

// ---------------------------------------------------------------------------
// the PR-8 simulator trajectory (--sim): events/sec + peak RSS per scale
// ---------------------------------------------------------------------------

/// Process-lifetime peak RSS in kB (`VmHWM`), 0 where /proc is absent.
/// Monotone over the process: callers run scale points smallest-first so
/// each reading approximates that point's own peak.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

#[derive(Debug)]
struct SimPoint {
    workload: &'static str,
    cores: usize,
    fabric: String,
    nodes: u64,
    events: u64,
    events_per_sec: f64,
    wall_s: f64,
    makespan_ms: f64,
    peak_rss_kb: u64,
    peak_live_items: u64,
    trace_hash: u64,
    determinism_runs: u32,
}

impl SimPoint {
    fn json(&self) -> String {
        format!(
            "{{\"workload\": \"{}\", \"cores\": {}, \"fabric\": \"{}\", \"nodes\": {}, \"events\": {}, \"events_per_sec\": {:.0}, \"wall_s\": {:.2}, \"makespan_ms\": {:.3}, \"peak_rss_kb\": {}, \"peak_live_items\": {}, \"trace_hash\": \"{:#018x}\", \"determinism_runs\": {}}}",
            self.workload,
            self.cores,
            self.fabric,
            self.nodes,
            self.events,
            self.events_per_sec,
            self.wall_s,
            self.makespan_ms,
            self.peak_rss_kb,
            self.peak_live_items,
            self.trace_hash,
            self.determinism_runs
        )
    }
}

/// Run queens-14 at `cores` under `fabric`, `runs`× with the same seed
/// (every repetition must replay bit-identically — hard fail otherwise);
/// events/sec is the best repetition's.
fn sim_point(prob: &CompiledProblem, cores: usize, fabric: FabricModel, runs: u32) -> SimPoint {
    let mut cfg = SimConfig::new(Topology::clustered(cores, 4));
    cfg.costs = CostModel::paper_queens();
    cfg.fabric = fabric;
    let mut best: Option<SimPoint> = None;
    let mut first: Option<(u64, u64)> = None;
    for _ in 0..runs.max(1) {
        let t0 = Instant::now();
        let r = sim_cp_macs(prob, &cfg);
        let wall = t0.elapsed().as_secs_f64();
        match first {
            None => first = Some((r.trace_hash, r.digest())),
            Some(f) => assert_eq!(
                f,
                (r.trace_hash, r.digest()),
                "NON-DETERMINISTIC: queens-14 @ {cores} {fabric} diverged between same-seed runs"
            ),
        }
        let p = SimPoint {
            workload: "queens-14",
            cores,
            fabric: fabric.to_string(),
            nodes: r.total_items(),
            events: r.events,
            events_per_sec: r.events as f64 / wall,
            wall_s: wall,
            makespan_ms: r.makespan_ns as f64 / 1e6,
            peak_rss_kb: peak_rss_kb(),
            peak_live_items: r.peak_live_items,
            trace_hash: r.trace_hash,
            determinism_runs: runs.max(1),
        };
        if best
            .as_ref()
            .map(|b| p.events_per_sec > b.events_per_sec)
            .unwrap_or(true)
        {
            best = Some(p);
        }
    }
    best.expect("at least one run")
}

fn run_sim_trajectory(quick: bool, out_path: &str, check_path: &str) {
    let base_cores = 4_096usize;
    let scales: &[usize] = if quick {
        &[4_096, 65_536]
    } else {
        &[4_096, 65_536, 131_072, 262_144]
    };
    let models = [
        FabricModel::Latency,
        "contention".parse::<FabricModel>().unwrap(),
    ];
    let q14 = queens(14, QueensModel::Pairwise);

    let mut points: Vec<SimPoint> = Vec::new();
    for &cores in scales {
        for fabric in models {
            // Same-seed double-run at every point pins determinism where
            // the test suite stops (it covers up to 32k); the contention
            // model is double-checked at the base point only — the big
            // points' budget goes to the latency series the scaling
            // ratios are gated on.
            let runs = if fabric.is_contention() && cores > base_cores && !quick {
                1
            } else {
                2
            };
            eprintln!("sim: queens-14 @ {cores} cores, {fabric} ({runs} run(s))...");
            let p = sim_point(&q14, cores, fabric, runs);
            eprintln!(
                "     {:.0} events/s, wall {:.1}s, peak RSS {} MB",
                p.events_per_sec,
                p.wall_s,
                p.peak_rss_kb / 1024
            );
            points.push(p);
        }
    }

    // Scaling ratios: events/sec at each point over the same-model base.
    // Machine-independent enough to gate: both sides move with the host.
    let ratio_of = |fabric: &str, cores: usize| -> f64 {
        let at = |c: usize| {
            points
                .iter()
                .find(|p| p.fabric == fabric && p.cores == c)
                .map(|p| p.events_per_sec)
                .unwrap_or(0.0)
        };
        at(cores) / at(base_cores).max(1.0)
    };
    let mut ratios: Vec<(String, f64)> = Vec::new();
    for fabric in ["latency", "contention"] {
        for &cores in &scales[1..] {
            ratios.push((format!("{fabric}_{cores}_vs_base"), ratio_of(fabric, cores)));
        }
    }

    // Completeness rows at 64k: the other two workload families the event
    // core must carry (recorded, not gated — different cost models).
    let mut completeness: Vec<SimPoint> = Vec::new();
    if !quick {
        eprintln!("sim: esc16e[11] @ 65536 cores (completeness row)...");
        let esc = qap_model(&QapInstance::esc16e().sub_instance(11));
        let mut cfg = SimConfig::new(Topology::clustered(65_536, 4));
        cfg.costs = CostModel::paper_qap();
        let t0 = Instant::now();
        let r = sim_cp_macs(&esc, &cfg);
        let wall = t0.elapsed().as_secs_f64();
        completeness.push(SimPoint {
            workload: "esc16e11",
            cores: 65_536,
            fabric: "latency".into(),
            nodes: r.total_items(),
            events: r.events,
            events_per_sec: r.events as f64 / wall,
            wall_s: wall,
            makespan_ms: r.makespan_ns as f64 / 1e6,
            peak_rss_kb: peak_rss_kb(),
            peak_live_items: r.peak_live_items,
            trace_hash: r.trace_hash,
            determinism_runs: 1,
        });
        eprintln!("sim: UTS binomial @ 65536 cores (completeness row)...");
        let seed = 3u32;
        let shape = TreeShape::medium_bin(seed);
        let mut cfg = SimConfig::new(Topology::clustered(65_536, 4));
        cfg.costs = CostModel::woodcrest_ib(1_500);
        let t0 = Instant::now();
        let r = simulate_macs(&cfg, SLOT_WORDS, &[UtsProcessor::root_item(seed)], |_| {
            UtsProcessor::new(shape)
        });
        let wall = t0.elapsed().as_secs_f64();
        completeness.push(SimPoint {
            workload: "uts-bin",
            cores: 65_536,
            fabric: "latency".into(),
            nodes: r.total_items(),
            events: r.events,
            events_per_sec: r.events as f64 / wall,
            wall_s: wall,
            makespan_ms: r.makespan_ns as f64 / 1e6,
            peak_rss_kb: peak_rss_kb(),
            peak_live_items: r.peak_live_items,
            trace_hash: r.trace_hash,
            determinism_runs: 1,
        });
    }

    for p in points.iter().chain(&completeness) {
        println!(
            "{:<10} @ {:>6} cores [{:<10}]: {:>9.0} events/s  wall {:>6.1}s  peak RSS {:>5} MB  ({} nodes)",
            p.workload,
            p.cores,
            p.fabric,
            p.events_per_sec,
            p.wall_s,
            p.peak_rss_kb / 1024,
            p.nodes
        );
    }
    for (k, v) in &ratios {
        println!("scaling {k}: {v:.3}");
    }

    if !check_path.is_empty() {
        let prev = std::fs::read_to_string(check_path)
            .unwrap_or_else(|e| panic!("cannot read {check_path}: {e}"));
        let mut failed = false;
        for (key, measured) in &ratios {
            let Some(recorded) = json_number_after(&prev, "scaling", key) else {
                // Quick runs gate only the points they measured; a full
                // record holds more ratio keys than a quick check needs.
                eprintln!("check: no \"{key}\" under \"scaling\" in {check_path} (skipped)");
                continue;
            };
            let floor = recorded * 0.9;
            if *measured < floor {
                eprintln!(
                    "check FAILED: events/sec ratio {key} = {measured:.3} fell below 90% of the recorded {recorded:.3}"
                );
                failed = true;
            } else {
                eprintln!("check ok: {key} = {measured:.3} (recorded {recorded:.3})");
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("sim check passed against {check_path}");
        return;
    }

    let host_par = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = format!(
        "{{\n  \"record\": \"BENCH_8\",\n  \"bin\": \"perf_record --sim\",\n  \"quick\": {quick},\n  \"host\": {{\n    \"available_parallelism\": {host_par},\n    \"note\": \"absolute events/sec and RSS are machine-dependent; the scaling ratios are the tracked trajectory. VmHWM is a process-lifetime high-water mark — points run smallest-first so each row approximates its own peak.\"\n  }},\n  \"scale_points\": [\n"
    );
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 < points.len() { "," } else { "" };
        json.push_str(&format!("    {}{sep}\n", p.json()));
    }
    json.push_str("  ],\n  \"scaling\": {\n");
    json.push_str(&format!("    \"base_cores\": {base_cores}"));
    for (k, v) in &ratios {
        json.push_str(&format!(",\n    \"{k}\": {v:.3}"));
    }
    json.push_str("\n  },\n  \"completeness_64k\": [\n");
    for (i, p) in completeness.iter().enumerate() {
        let sep = if i + 1 < completeness.len() { "," } else { "" };
        json.push_str(&format!("    {}{sep}\n", p.json()));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}

// ---------------------------------------------------------------------------
// the PR-10 calibration trajectory (--calibration): calibrated vs default
// ---------------------------------------------------------------------------

/// The calibrated model the record is pinned against: a real artifact of
/// running the `calibrate` bin on a dev host, committed next to the bin.
/// `--cost-model` overrides it.
const COMMITTED_MODEL: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/data/calibrated_host.cost");

#[derive(Debug)]
struct CalPoint {
    workload: &'static str,
    cores: usize,
    default_ms: f64,
    calibrated_ms: f64,
    s_default: f64,
    s_calibrated: f64,
    err: f64,
}

/// Simulate `prob` at every width of the 2–32-core prefix under both the
/// default constants and the calibrated model; the tracked numbers are
/// the per-width relative errors between the two speedup curves. All
/// quantities are virtual-time outputs of the bit-deterministic
/// simulator, so the record is machine-independent and the check
/// tolerance absorbs intentional cost-charging changes, not noise.
fn run_calibration_trajectory(quick: bool, out_path: &str, check_path: &str) {
    let model_path: String = std::env::args()
        .skip_while(|a| a != "--cost-model")
        .nth(1)
        .unwrap_or_else(|| COMMITTED_MODEL.to_string());
    let calibrated = cost_model_arg().unwrap_or_else(|| {
        CostModel::load(std::path::Path::new(COMMITTED_MODEL))
            .unwrap_or_else(|e| panic!("cannot load the committed model: {e}"))
    });
    let default = CostModel::default();
    let widths: &[usize] = if quick { &[2, 8] } else { &[2, 4, 8, 16, 32] };
    let workloads: Vec<(&'static str, CompiledProblem)> = vec![
        ("queens11", queens(11, QueensModel::Pairwise)),
        ("esc16e9", qap_model(&QapInstance::esc16e().sub_instance(9))),
    ];

    let mut points: Vec<CalPoint> = Vec::new();
    for (name, prob) in &workloads {
        let mut rows: Vec<(usize, u64, u64)> = Vec::new();
        for &p in widths {
            // The host-shaped case: one shared-memory node, flat.
            let topo = MachineTopology::flat(p);
            let def = sim_cp_macs(prob, &SimConfig::new(topo.clone()).with_cost_model(default));
            let cal = sim_cp_macs(prob, &SimConfig::new(topo).with_cost_model(calibrated));
            rows.push((p, def.makespan_ns.max(1), cal.makespan_ns.max(1)));
        }
        let (_, base_def, base_cal) = rows[0];
        for (p, def_ns, cal_ns) in rows {
            let s_default = base_def as f64 / def_ns as f64;
            let s_calibrated = base_cal as f64 / cal_ns as f64;
            points.push(CalPoint {
                workload: name,
                cores: p,
                default_ms: def_ns as f64 / 1e6,
                calibrated_ms: cal_ns as f64 / 1e6,
                s_default,
                s_calibrated,
                err: (s_calibrated / s_default - 1.0).abs(),
            });
        }
    }

    for p in &points {
        println!(
            "{:<10} @ {:>2} cores: default {:>9.3} ms  calibrated {:>9.3} ms  S {:>5.2} vs {:>5.2}  err {:.3}",
            p.workload, p.cores, p.default_ms, p.calibrated_ms, p.s_default, p.s_calibrated, p.err
        );
    }

    if !check_path.is_empty() {
        let prev = std::fs::read_to_string(check_path)
            .unwrap_or_else(|e| panic!("cannot read {check_path}: {e}"));
        let mut failed = false;
        for p in &points {
            let key = format!("err_{}_{}", p.workload, p.cores);
            let Some(recorded) = json_number_after(&prev, "calibration", &key) else {
                eprintln!("check: no \"{key}\" under \"calibration\" in {check_path} (skipped)");
                continue;
            };
            // The sim is bit-deterministic: same code + same models give
            // the recorded error exactly. The tolerance is headroom for
            // intentional cost-charging changes that shift both curves.
            if (p.err - recorded).abs() > 0.05 {
                eprintln!(
                    "check FAILED: curve error {key} = {:.3} drifted from the recorded {recorded:.3} by more than 0.05",
                    p.err
                );
                failed = true;
            } else {
                eprintln!("check ok: {key} = {:.3} (recorded {recorded:.3})", p.err);
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("calibration check passed against {check_path}");
        return;
    }

    let mut json = format!(
        "{{\n  \"record\": \"BENCH_10\",\n  \"bin\": \"perf_record --calibration\",\n  \"quick\": {quick},\n  \"model\": \"{model_path}\",\n  \"note\": \"speedup curves of the simulator under the committed calibrated model vs the built-in defaults, per width of a flat 2-32-core host prefix; every number is virtual-time and bit-deterministic, so the record is machine-independent. err = |S_cal/S_def - 1| per point.\",\n  \"points\": [\n"
    );
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 < points.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"cores\": {}, \"makespan_default_ms\": {:.3}, \"makespan_calibrated_ms\": {:.3}, \"speedup_default\": {:.3}, \"speedup_calibrated\": {:.3}, \"err\": {:.3}}}{sep}\n",
            p.workload, p.cores, p.default_ms, p.calibrated_ms, p.s_default, p.s_calibrated, p.err
        ));
    }
    json.push_str("  ],\n  \"calibration\": {");
    for (i, p) in points.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        json.push_str(&format!(
            "{sep}\n    \"err_{}_{}\": {:.3}",
            p.workload, p.cores, p.err
        ));
    }
    json.push_str("\n  }\n}\n");
    std::fs::write(out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}

// ---------------------------------------------------------------------------
// the PR-9 service trajectory (--service): lease policies under load
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct ServicePoint {
    cores: usize,
    tenants: usize,
    jobs: usize,
    policy: String,
    completed: u64,
    rejected: u64,
    throughput_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    max_queue_depth: usize,
    fairness: f64,
    makespan_ms: f64,
    wall_s: f64,
    digest: u64,
}

impl ServicePoint {
    fn json(&self) -> String {
        format!(
            "{{\"cores\": {}, \"tenants\": {}, \"jobs\": {}, \"policy\": \"{}\", \"completed\": {}, \"rejected\": {}, \"throughput_per_sec\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"max_queue_depth\": {}, \"fairness\": {:.3}, \"makespan_ms\": {:.3}, \"wall_s\": {:.2}, \"digest\": \"{:#018x}\"}}",
            self.cores,
            self.tenants,
            self.jobs,
            self.policy,
            self.completed,
            self.rejected,
            self.throughput_per_sec,
            self.p50_ns,
            self.p99_ns,
            self.p999_ns,
            self.max_queue_depth,
            self.fairness,
            self.makespan_ms,
            self.wall_s,
            self.digest
        )
    }
}

/// Serve one trace at one scale under one policy, twice with the same
/// seed — the service simulator must replay bit-identically (hard fail
/// otherwise) — and hard-gate the scheduler invariants and the oracle.
fn service_point(
    nodes: usize,
    tenants: usize,
    jobs: usize,
    policy: LeasePolicy,
    oracle: &mut macs_service::Oracle,
) -> ServicePoint {
    let cores_per_node = 4usize;
    let trace = generate(&WorkloadConfig {
        jobs,
        tenants,
        mean_interarrival_ns: 5_000,
        seed: 0x9E1_5EED ^ ((nodes as u64) << 32) ^ jobs as u64,
    });
    let cfg = ServiceConfig {
        nodes,
        cores_per_node,
        queue_cap: (jobs / 4).max(4),
        policy,
        cost_model: Default::default(),
    };
    let t0 = Instant::now();
    let r = SimBackend::default().serve(&cfg, &trace);
    let wall = t0.elapsed().as_secs_f64();
    let replay = SimBackend::default().serve(&cfg, &trace);
    assert_eq!(
        r.digest(),
        replay.digest(),
        "NON-DETERMINISTIC: service @ {} cores {policy} diverged between same-seed runs",
        nodes * cores_per_node
    );
    assert!(
        r.violations.is_empty(),
        "service @ {} cores {policy}: {:?}",
        nodes * cores_per_node,
        r.violations
    );
    for rec in r.records.iter().filter(|rec| !rec.rejected) {
        oracle
            .verify(rec.class, &rec.answer)
            .unwrap_or_else(|e| panic!("service @ {nodes} nodes job {}: {e}", rec.id));
    }
    ServicePoint {
        cores: nodes * cores_per_node,
        tenants,
        jobs,
        policy: policy.to_string(),
        completed: r.completed(),
        rejected: r.rejected(),
        throughput_per_sec: r.throughput_per_sec(),
        p50_ns: r.sojourn_percentile_ns(50.0),
        p99_ns: r.sojourn_percentile_ns(99.0),
        p999_ns: r.sojourn_percentile_ns(99.9),
        max_queue_depth: r.max_queue_depth,
        fairness: r.fairness_ratio(),
        makespan_ms: r.makespan_ns as f64 / 1e6,
        wall_s: wall,
        digest: r.digest(),
    }
}

fn run_service_trajectory(quick: bool, out_path: &str, check_path: &str) {
    // (nodes, tenants, jobs): 32 → 512 simulated cores; the last point is
    // the 512-core × 64-tenant acceptance cell. Quick mode runs the end
    // points of the same series — the cells must be identical to the full
    // record's, or the (deterministic) ratios would differ by design.
    let scales: &[(usize, usize, usize)] = if quick {
        &[(8, 8, 32), (128, 64, 96)]
    } else {
        &[(8, 8, 32), (32, 16, 48), (128, 64, 96)]
    };
    let mut oracle = macs_service::Oracle::new();
    let mut points: Vec<ServicePoint> = Vec::new();
    for &(nodes, tenants, jobs) in scales {
        for policy in [
            LeasePolicy::Static {
                nodes: (nodes / 4).max(1),
            },
            LeasePolicy::QueueDepth { min: 1, max: nodes },
        ] {
            eprintln!(
                "service: {} cores, {tenants} tenants, {jobs} jobs, {policy}...",
                nodes * 4
            );
            let p = service_point(nodes, tenants, jobs, policy, &mut oracle);
            eprintln!(
                "     {:.1} jobs/s, p99 {:.3} ms, {} rejected, wall {:.1}s",
                p.throughput_per_sec,
                p.p99_ns as f64 / 1e6,
                p.rejected,
                p.wall_s
            );
            points.push(p);
        }
    }

    // The tracked trajectory: per-scale elastic/static ratios. Both sides
    // are virtual-time quantities of a bit-deterministic simulation, so
    // the ratios are machine-independent; the 10% check tolerance absorbs
    // intentional cost-model drift, not noise.
    let at = |cores: usize, elastic: bool| -> Option<&ServicePoint> {
        points
            .iter()
            .find(|p| p.cores == cores && p.policy.starts_with("queue-depth") == elastic)
    };
    let mut ratios: Vec<(String, f64)> = Vec::new();
    for &(nodes, _, _) in scales {
        let cores = nodes * 4;
        if let (Some(s), Some(e)) = (at(cores, false), at(cores, true)) {
            // Jobs the machine actually served: elastic admission over
            // static admission (≥ 1 when elasticity absorbs the burst).
            ratios.push((
                format!("served_elastic_vs_static_{cores}"),
                e.completed as f64 / (s.completed as f64).max(1.0),
            ));
            // Worst-case queueing: static peak depth over elastic.
            ratios.push((
                format!("queue_depth_static_vs_elastic_{cores}"),
                s.max_queue_depth as f64 / (e.max_queue_depth as f64).max(1.0),
            ));
        }
    }

    for p in &points {
        println!(
            "{:>4} cores x {:>2} tenants [{:<18}]: {:>8.1} jobs/s  p99 {:>8.3} ms  queue {:>3}  rej {:>3}  wall {:>5.2}s",
            p.cores,
            p.tenants,
            p.policy,
            p.throughput_per_sec,
            p.p99_ns as f64 / 1e6,
            p.max_queue_depth,
            p.rejected,
            p.wall_s
        );
    }
    for (k, v) in &ratios {
        println!("ratio {k}: {v:.3}");
    }

    if !check_path.is_empty() {
        let prev = std::fs::read_to_string(check_path)
            .unwrap_or_else(|e| panic!("cannot read {check_path}: {e}"));
        let mut failed = false;
        for (key, measured) in &ratios {
            let Some(recorded) = json_number_after(&prev, "ratios", key) else {
                eprintln!("check: no \"{key}\" under \"ratios\" in {check_path} (skipped)");
                continue;
            };
            let floor = recorded * 0.9;
            if *measured < floor {
                eprintln!(
                    "check FAILED: service ratio {key} = {measured:.3} fell below 90% of the recorded {recorded:.3}"
                );
                failed = true;
            } else {
                eprintln!("check ok: {key} = {measured:.3} (recorded {recorded:.3})");
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("service check passed against {check_path}");
        return;
    }

    let mut json = format!(
        "{{\n  \"record\": \"BENCH_9\",\n  \"bin\": \"perf_record --service\",\n  \"quick\": {quick},\n  \"note\": \"all throughput/sojourn/queue numbers are virtual-time quantities of the bit-deterministic service simulator; only wall_s is machine-dependent. The tracked trajectory is the elastic/static ratio set.\",\n  \"service_points\": [\n"
    );
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 < points.len() { "," } else { "" };
        json.push_str(&format!("    {}{sep}\n", p.json()));
    }
    json.push_str("  ],\n  \"ratios\": {");
    for (i, (k, v)) in ratios.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        json.push_str(&format!("{sep}\n    \"{k}\": {v:.3}"));
    }
    json.push_str("\n  }\n}\n");
    std::fs::write(out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}

fn main() {
    let u = usage(
        "perf_record",
        "records the PR-6 perf trajectory (BENCH_6.json): sequential node\nthroughput vs the frozen pre-PR kernel, lock-free vs mutex steal\nlatency, propagation filter throughput. With --sim, records the PR-8\nsimulator trajectory instead (BENCH_8.json): events/sec + peak RSS per\nscale point, 4k to 262k simulated cores, with a same-seed determinism\ndouble-run at every point. With --service, records the PR-9 service\ntrajectory (BENCH_9.json): lease-policy throughput/sojourn ratios at\n32 to 512 simulated cores, determinism double-run at every point. With\n--calibration, records the PR-10 trajectory (BENCH_10.json): the\nsimulator's speedup curves under the committed calibrated cost model\nvs the built-in defaults, per width of a flat 2-32-core host prefix.",
        &[
            ("--out <FILE>", "where to write the record [default: BENCH_6.json,\nBENCH_8.json with --sim, BENCH_9.json with --service,\nBENCH_10.json with --calibration]"),
            (
                "--check <FILE>",
                "measure, then fail (exit 1) if a recorded ratio regressed\n>10%: optimised/reference speed-ups by default, per-scale-point\nevents/sec ratios vs the 4096-core base with --sim, elastic/static\npolicy ratios with --service, per-width curve errors (absolute\ndrift > 0.05) with --calibration",
            ),
            ("--runs <N>", "repetitions per throughput metric (median) [default: 5]"),
            ("--quick", "reduced budgets: smaller node/latency windows; with --sim\nonly the 4k and 64k scale points, with --service only the 32- and\n512-core points, with --calibration only the 2- and 8-core widths\n(CI smoke)"),
            ("--sim", "record the simulator scale trajectory (BENCH_8.json)"),
            ("--service", "record the multi-tenant service trajectory (BENCH_9.json)"),
            ("--calibration", "record the calibrated-vs-default curve trajectory\n(BENCH_10.json); --cost-model overrides the committed model"),
        ],
        &[macs_bench::CommonFlag::CostModel],
    );
    maybe_help(&u);

    let runs = arg("runs", 5usize).max(1);
    let quick = std::env::args().any(|a| a == "--quick");
    let sim = std::env::args().any(|a| a == "--sim");
    let service = std::env::args().any(|a| a == "--service");
    let calibration = std::env::args().any(|a| a == "--calibration");
    let out_path = arg(
        "out",
        if calibration {
            "BENCH_10.json"
        } else if service {
            "BENCH_9.json"
        } else if sim {
            "BENCH_8.json"
        } else {
            "BENCH_6.json"
        }
        .to_string(),
    );
    let check_path: String = arg("check", String::new());

    if calibration {
        run_calibration_trajectory(quick, &out_path, &check_path);
        return;
    }
    if service {
        run_service_trajectory(quick, &out_path, &check_path);
        return;
    }
    if sim {
        run_sim_trajectory(quick, &out_path, &check_path);
        return;
    }

    // Each propagation sample must cover tens of milliseconds (one
    // fixpoint is sub-microsecond) or a single descheduling skews the
    // ratio on a loaded host.
    let (q_budget, qap_budget, prop_iters, lat_dur) = if quick {
        (30_000u64, 15_000u64, 20_000u64, Duration::from_millis(60))
    } else {
        (
            200_000u64,
            80_000u64,
            100_000u64,
            Duration::from_millis(150),
        )
    };

    // -- cross-kernel sanity on small full trees ----------------------------
    let small = queens(9, QueensModel::Pairwise);
    let o = drive_opt(&small, u64::MAX, false);
    let r = drive_ref(&small, u64::MAX, false);
    assert_eq!(
        (o.nodes, o.solutions),
        (r.nodes, r.solutions),
        "kernels must walk identical queens-9 trees"
    );
    assert_eq!(o.solutions, 352, "queens-9 solution count");
    eprintln!(
        "tree check: queens-9 identical ({} nodes, {} solutions); filtered prop runs {} vs wake-all {}",
        o.nodes, o.solutions, o.prop_runs, r.prop_runs
    );

    // -- sequential throughput ----------------------------------------------
    let q14 = queens(14, QueensModel::Pairwise);
    eprintln!("measuring queens-14 ({q_budget} nodes × {runs} runs × 2 kernels)...");
    let seq_q14 = measure_seq(&q14, q_budget, false, runs);
    let esc = qap_model(&QapInstance::esc16e().sub_instance(11));
    eprintln!("measuring esc16e[11] ({qap_budget} nodes × {runs} runs × 2 kernels)...");
    let seq_esc = measure_seq(&esc, qap_budget, true, runs);

    // -- propagation filter throughput --------------------------------------
    let q14ad = queens(14, QueensModel::AllDiff);
    eprintln!("measuring propagation filter throughput ({prop_iters} fixpoints)...");
    // Warm up, then interleave the two engines run-for-run so clock or
    // cache drift hits both sides alike.
    let _ = prop_filter_throughput(&q14ad, prop_iters / 4 + 1, false);
    let _ = prop_filter_throughput(&q14ad, prop_iters / 4 + 1, true);
    let (mut opt_f, mut ref_f) = (Vec::new(), Vec::new());
    for _ in 0..runs {
        opt_f.push(prop_filter_throughput(&q14ad, prop_iters, false));
        ref_f.push(prop_filter_throughput(&q14ad, prop_iters, true));
    }
    let (opt_fv, ref_fv) = (median(&mut opt_f), median(&mut ref_f));

    // -- steal latency -------------------------------------------------------
    eprintln!("measuring steal latency (8 and 32 threads, lock-free vs mutex)...");
    let (lf8, lk8) = latency_pair(8, lat_dur);
    let (lf32, lk32) = latency_pair(32, lat_dur);

    let host_par = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let json = format!(
        "{{\n  \"record\": \"BENCH_6\",\n  \"bin\": \"perf_record\",\n  \"runs_per_metric\": {runs},\n  \"quick\": {quick},\n  \"host\": {{\n    \"available_parallelism\": {host_par},\n    \"note\": \"thread counts above the host's parallelism are oversubscribed equally for both pool variants; absolute numbers are machine-dependent, the *_vs_reference ratios are the tracked trajectory\"\n  }},\n  \"sequential\": {{\n    \"queens14\": {},\n    \"esc16e11\": {}\n  }},\n  \"propagation\": {{\n    \"queens14_alldiff_assign0\": {{\n      \"optimized_filtered_values_per_sec\": {:.0},\n      \"reference_filtered_values_per_sec\": {:.0},\n      \"speedup_vs_reference\": {:.3}\n    }}\n  }},\n  \"steal_latency\": {{\n    \"threads_8\": {{\"splitpool\": {}, \"lockedpool\": {}}},\n    \"threads_32\": {{\"splitpool\": {}, \"lockedpool\": {}}}\n  }},\n  \"tree_check\": \"queens-9 full tree identical across kernels ({} nodes, 352 solutions)\"\n}}\n",
        fmt_seq(&seq_q14),
        fmt_seq(&seq_esc),
        opt_fv,
        ref_fv,
        opt_fv / ref_fv,
        fmt_latency(&lf8),
        fmt_latency(&lk8),
        fmt_latency(&lf32),
        fmt_latency(&lk32),
        o.nodes,
    );

    println!(
        "queens-14:   {:>10.0} nodes/s optimized  {:>10.0} reference  ({:.2}x)",
        seq_q14.opt_nodes_per_sec, seq_q14.ref_nodes_per_sec, seq_q14.speedup
    );
    println!(
        "esc16e[11]:  {:>10.0} nodes/s optimized  {:>10.0} reference  ({:.2}x)",
        seq_esc.opt_nodes_per_sec, seq_esc.ref_nodes_per_sec, seq_esc.speedup
    );
    println!(
        "propagation: {:>10.0} filtered/s optimized  {:>10.0} reference  ({:.2}x)",
        opt_fv,
        ref_fv,
        opt_fv / ref_fv
    );
    for (t, lf, lk) in [(8, lf8, lk8), (32, lf32, lk32)] {
        println!(
            "steal @{t:>2} threads: lock-free p50 {:>7} ns p99 {:>8} ns ({} steals) | mutex p50 {:>7} ns p99 {:>8} ns ({} steals)",
            lf.p50_ns, lf.p99_ns, lf.steals, lk.p50_ns, lk.p99_ns, lk.steals
        );
    }

    if !check_path.is_empty() {
        let prev = std::fs::read_to_string(&check_path)
            .unwrap_or_else(|e| panic!("cannot read {check_path}: {e}"));
        let mut failed = false;
        for (section, measured) in [
            ("queens14", seq_q14.speedup),
            ("esc16e11", seq_esc.speedup),
            ("queens14_alldiff_assign0", opt_fv / ref_fv),
        ] {
            let Some(recorded) = json_number_after(&prev, section, "speedup_vs_reference") else {
                eprintln!("check: no speedup_vs_reference under \"{section}\" in {check_path}");
                failed = true;
                continue;
            };
            let floor = recorded * 0.9;
            if measured < floor {
                eprintln!(
                    "check FAILED: {section} speed-up {measured:.3} fell below 90% of the recorded {recorded:.3}"
                );
                failed = true;
            } else {
                eprintln!("check ok: {section} speed-up {measured:.3} (recorded {recorded:.3})");
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("check passed against {check_path}");
        return;
    }

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
