//! Figure 4 — N-Queens scalability: (a) speed-up, (b) parallel efficiency,
//! (c) performance in Mnodes/s vs the ideal, for MaCS (default), MaCS
//! (best: tuned release interval) and PaCCS.

use macs_bench::{arg, core_series, print_scaling, scale_row, sim_cp_macs, sim_cp_paccs, topo_for};
use macs_problems::{queens, QueensModel};
use macs_runtime::ReleasePolicy;
use macs_sim::{CostModel, SimConfig};

fn main() {
    macs_bench::maybe_help(&macs_bench::usage(
        "fig4_queens_scaling",
        "Figure 4 — N-Queens scalability: speed-up, efficiency and\nMnodes/s for MaCS (default), MaCS (best) and PaCCS.",
        &[("--n <N>", "queens size [default: 12]")],
        &[macs_bench::CommonFlag::Full],
    ));
    let n: usize = arg("n", 12);
    let prob = queens(n, QueensModel::Pairwise);
    println!("Fig. 4 — queens-{n} scalability (simulated; paper: queens-17)\n");

    // Per-system 1-core baselines (each system is normalised by its own
    // sequential execution, as in the paper).
    let mut base_cfg = SimConfig::new(topo_for(1));
    base_cfg.costs = CostModel::paper_queens();
    let base_m = sim_cp_macs(&prob, &base_cfg);
    let base_m_s = base_m.makespan_ns as f64 / 1e9;
    let _ = base_m_s;
    let mut best_base_cfg = base_cfg.clone();
    best_base_cfg.release = ReleasePolicy::tuned();
    let base_b_s = sim_cp_macs(&prob, &best_base_cfg).makespan_ns as f64 / 1e9;
    let base_p_s = sim_cp_paccs(&prob, &base_cfg).makespan_ns as f64 / 1e9;
    let ideal = base_m.total_items() as f64 / base_m_s / 1e6;

    let mut macs_default = Vec::new();
    let mut macs_best = Vec::new();
    let mut paccs = Vec::new();
    for cores in core_series() {
        let mut cfg = SimConfig::new(topo_for(cores));
        cfg.costs = CostModel::paper_queens();
        // Both MaCS variants are normalised by the release-free 1-core
        // execution, so the default's extraneous-release cost shows up as
        // an efficiency dip (paper: 91% at 8 cores, recovered by "best").
        macs_default.push(scale_row(cores, base_b_s, &sim_cp_macs(&prob, &cfg)));
        let mut best = cfg.clone();
        best.release = ReleasePolicy::tuned();
        macs_best.push(scale_row(cores, base_b_s, &sim_cp_macs(&prob, &best)));
        paccs.push(scale_row(cores, base_p_s, &sim_cp_paccs(&prob, &cfg)));
        eprintln!("  [{cores} cores done]");
    }
    print_scaling(
        &[
            ("MaCS", macs_default),
            ("MaCS(best)", macs_best),
            ("PaCCS", paccs),
        ],
        ideal,
    );
    println!(
        "\nPaper shape: all three scale near-linearly; MaCS default efficiency dips\n\
              (release overhead), MaCS(best) recovers to ~96%; PaCCS close behind."
    );
}
